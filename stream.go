package thermalsched

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/scenario"
	"thermalsched/internal/sched"
	"thermalsched/internal/stream"
)

// Online-workload types. A StreamSpec describes a seeded arrival trace
// (periodic sources plus a Poisson/bursty aperiodic process) over a
// generated platform, dispatched online — placement decided with past
// knowledge only — against live thermal state; see Request.Stream and
// FlowStream.
type (
	// StreamArrivalParams parameterizes the arrival process; zero
	// values take the documented defaults.
	StreamArrivalParams = scenario.ArrivalParams
	// StreamWorkload is a fully generated arrival trace plus its
	// library and platform description.
	StreamWorkload = scenario.StreamWorkload
	// StreamJob is one released job of a stream workload.
	StreamJob = scenario.StreamJob
)

// Online policy names accepted by Request.Policy on FlowStream.
const (
	StreamPolicyFIFO    = stream.PolicyFIFO
	StreamPolicyRandom  = stream.PolicyRandom
	StreamPolicyCoolest = stream.PolicyCoolest
	StreamPolicyGreedy  = stream.PolicyGreedy
	// StreamPolicyAdmit is PolicyGreedy gated by predictive admission
	// control; StreamPolicyZigzag is PolicyCoolest gated by forced
	// idle-slack cooling gaps. Both build their thermal supervisor from
	// the stream spec's ladder knobs.
	StreamPolicyAdmit  = stream.PolicyAdmit
	StreamPolicyZigzag = stream.PolicyZigzag
)

// StreamPolicies lists the online policy names in canonical order.
func StreamPolicies() []string { return stream.Policies() }

// StreamSpec parameterizes the FlowStream online run: the workload half
// (Name/Seed/Arrivals/Platform, lowered to scenario.StreamSpec and
// cached by fingerprint like scenarios are) plus the dispatch half
// (step sizes, realized-duration spread, Monte-Carlo replication). The
// zero value plus a seed is a valid spec; the seed contract is
// verbatim — zero included — for both Seed and SimSeed.
type StreamSpec struct {
	// Name names the generated workload (default "stream").
	Name string `json:"name,omitempty"`
	// Seed drives the workload generation (arrival trace, library,
	// platform), verbatim.
	Seed int64 `json:"seed"`
	// Arrivals parameterizes the arrival process; Platform the
	// generated platform (defaults documented in internal/scenario).
	Arrivals StreamArrivalParams    `json:"arrivals,omitempty"`
	Platform ScenarioPlatformParams `json:"platform,omitempty"`
	// DT is the co-simulation step in schedule time units (default 1);
	// TimeScale converts one schedule time unit to seconds of transient
	// simulation (default 0.1).
	DT        float64 `json:"dt,omitempty"`
	TimeScale float64 `json:"timeScale,omitempty"`
	// MinFactor draws each job's realized duration uniformly from
	// [MinFactor, 1] × WCET (default 1: worst case).
	MinFactor float64 `json:"minFactor,omitempty"`
	// SimSeed drives replica 0's duration factors and random-policy
	// draws (replica i uses SimSeed + i), verbatim.
	SimSeed int64 `json:"simSeed,omitempty"`
	// Replicas is the number of seeded Monte-Carlo dispatch runs to fan
	// across the engine's worker pool (default 1, at most
	// MaxSimulateReplicas).
	Replicas int `json:"replicas,omitempty"`
	// FairC, SeriousC and CriticalC are the thermal supervisor's state
	// ladder (defaults 72/80/88 °C), consumed by the admit and zigzag
	// policies; the other policies never build a supervisor.
	FairC     float64 `json:"fairC,omitempty"`
	SeriousC  float64 `json:"seriousC,omitempty"`
	CriticalC float64 `json:"criticalC,omitempty"`
	// SeriousScale and CriticalScale are the admit policy's graduated
	// safety-net throttle factors (defaults 0.7, 0.4). Stream jobs are
	// non-preemptive and run at nominal speed, so on this flow the
	// factors only shape the supervisor's state bookkeeping — admission
	// denial is how the supervisor acts on the dispatcher.
	SeriousScale  float64 `json:"seriousScale,omitempty"`
	CriticalScale float64 `json:"criticalScale,omitempty"`
	// RetryAfter is the admit policy's admission-hold length in schedule
	// time units (default 2).
	RetryAfter float64 `json:"retryAfter,omitempty"`
	// Hysteresis is the admit policy's state-demotion margin in °C
	// (default 2): a block leaves a thermal state only after cooling
	// that far below the state's entry threshold.
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// CoolTime is the zigzag policy's forced cooling-gap length in
	// schedule time units (default 5), rounded up to whole DT steps.
	CoolTime float64 `json:"coolTime,omitempty"`
}

func (s *StreamSpec) withDefaults() StreamSpec {
	out := StreamSpec{}
	if s != nil {
		out = *s
	}
	if out.DT == 0 {
		out.DT = 1
	}
	if out.TimeScale == 0 {
		out.TimeScale = 0.1
	}
	if out.MinFactor == 0 {
		out.MinFactor = 1
	}
	if out.Replicas == 0 {
		out.Replicas = 1
	}
	if out.FairC == 0 {
		out.FairC = 72
	}
	if out.SeriousC == 0 {
		out.SeriousC = 80
	}
	if out.CriticalC == 0 {
		out.CriticalC = 88
	}
	if out.SeriousScale == 0 {
		out.SeriousScale = 0.7
	}
	if out.CriticalScale == 0 {
		out.CriticalScale = 0.4
	}
	if out.RetryAfter == 0 {
		out.RetryAfter = 2
	}
	if out.Hysteresis == 0 {
		out.Hysteresis = 2
	}
	if out.CoolTime == 0 {
		out.CoolTime = 5
	}
	return out
}

// workloadSpec lowers the spec's workload half to the generator's form.
func (s StreamSpec) workloadSpec() scenario.StreamSpec {
	return scenario.StreamSpec{Name: s.Name, Seed: s.Seed, Arrivals: s.Arrivals, Platform: s.Platform}
}

// validate reports the first problem with the stream parameters, as a
// typed field error. The nil receiver reports the missing spec — the
// registry's validate hook calls this for every FlowStream request.
func (s *StreamSpec) validate() error {
	if s == nil {
		return fieldErr("stream", "a stream request needs a stream spec")
	}
	if err := s.workloadSpec().Validate(); err != nil {
		return fieldErr("stream", "%v", err)
	}
	n := s.withDefaults()
	if n.DT < 0 || n.TimeScale < 0 {
		return fieldErr("stream.dt", "negative stream step (dt %g, timeScale %g)", s.DT, s.TimeScale)
	}
	if !(n.DT > 0) || !(n.TimeScale > 0) {
		return fieldErr("stream.dt", "stream step must be positive (dt %g, timeScale %g)", n.DT, n.TimeScale)
	}
	if n.MinFactor < 0 || n.MinFactor > 1 {
		return fieldErr("stream.minFactor", "stream MinFactor %g out of (0, 1]", s.MinFactor)
	}
	if n.Replicas < 0 {
		return fieldErr("stream.replicas", "negative replica count %d", s.Replicas)
	}
	if n.Replicas > MaxSimulateReplicas {
		return fieldErr("stream.replicas", "%d replicas exceed the limit %d", n.Replicas, MaxSimulateReplicas)
	}
	if n.Hysteresis < 0 {
		return fieldErr("stream.hysteresis", "negative hysteresis %g", s.Hysteresis)
	}
	return validateSupervisorKnobs("stream", n.FairC, n.SeriousC, n.CriticalC,
		n.SeriousScale, n.CriticalScale, n.RetryAfter, n.CoolTime)
}

// fingerprint digests the normalized spec, field by field: the workload
// half reuses the generator's canonical fingerprint (the stream-cache
// key), the dispatch half serializes explicitly. The thermalvet
// fpfields analyzer checks the registration statically.
//
//thermalvet:serializes StreamSpec
func (s *StreamSpec) fingerprint() string {
	n := s.withDefaults()
	ws := scenario.StreamSpec{Name: n.Name, Seed: n.Seed, Arrivals: n.Arrivals, Platform: n.Platform}
	h := fnv.New64a()
	fmt.Fprintf(h, "streamreq/v3|%s|%g|%g|%g|%d|%d|%g|%g|%g|%g|%g|%g|%g|%g",
		ws.Fingerprint(), n.DT, n.TimeScale, n.MinFactor, n.SimSeed, n.Replicas,
		n.FairC, n.SeriousC, n.CriticalC, n.SeriousScale, n.CriticalScale, n.RetryAfter,
		n.Hysteresis, n.CoolTime)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ladder lowers the spec's thermal-state thresholds. Call on a
// withDefaults() copy.
func (s StreamSpec) ladder() Ladder {
	return Ladder{FairC: s.FairC, SeriousC: s.SeriousC, CriticalC: s.CriticalC}
}

// streamSupervisor materializes a fresh thermal supervisor for one
// dispatch replica of the policy, or nil for the policies that run
// unsupervised. Each replica gets its own instance: supervisors carry
// per-run state (admission holds, cooling gaps) and are not safe for
// concurrent use. Call on a withDefaults() spec.
func streamSupervisor(policy string, spec StreamSpec) (ThermalSupervisor, error) {
	switch policy {
	case stream.PolicyAdmit:
		return dtm.NewAdmitController(spec.ladder(), spec.SeriousScale, spec.CriticalScale, spec.RetryAfter, spec.Hysteresis)
	case stream.PolicyZigzag:
		// A true idle gap (CoolScale 0), one supervisor step per DT.
		return dtm.NewZigZagController(spec.ladder(), spec.CoolTime, spec.DT, 0)
	}
	return nil, nil
}

// GenerateStreamWorkload builds the workload described by the spec's
// generation half. It is the typed counterpart of the stream flow's
// input resolution; the same spec always generates an identical trace.
func GenerateStreamWorkload(spec StreamSpec) (*StreamWorkload, error) {
	return scenario.GenerateStream(spec.workloadSpec())
}

// streamFor returns the (possibly cached) workload for a spec.
func (e *Engine) streamFor(spec StreamSpec) (*StreamWorkload, error) {
	ws := spec.workloadSpec()
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	fp := ws.Fingerprint()
	if wl, ok := e.streams.get(fp); ok {
		return wl, nil
	}
	wl, err := scenario.GenerateStream(ws)
	if err != nil {
		return nil, err
	}
	e.streams.put(fp, wl)
	return wl, nil
}

// StreamCacheStats reports the generated-workload cache's hit/miss
// counters and current size, for observability and tests.
func (e *Engine) StreamCacheStats() (hits, misses uint64, size int) {
	return e.streams.stats()
}

// StreamReport is the FlowStream payload: the workload's realized
// shape plus per-replica percentile statistics of the online dispatch,
// including the price-of-onlineness ratio against the clairvoyant
// offline bound of each realized trace (≥ 1 by construction).
type StreamReport struct {
	// Policy is the resolved online policy; Replicas the Monte-Carlo
	// fan-out width.
	Policy   string `json:"policy"`
	Replicas int    `json:"replicas"`
	// Jobs splits into PeriodicJobs + AperiodicJobs; Horizon is the
	// arrival window; PEs the platform size.
	Jobs          int     `json:"jobs"`
	PeriodicJobs  int     `json:"periodicJobs"`
	AperiodicJobs int     `json:"aperiodicJobs"`
	Horizon       float64 `json:"horizon"`
	PEs           int     `json:"pes"`
	// Replica statistics: realized makespan and thermal envelope,
	// deadline-miss rate, responsiveness, and the clairvoyant bound
	// with its price ratio.
	Makespan     Stats `json:"makespan"`
	PeakTempC    Stats `json:"peakTempC"`
	AvgTempC     Stats `json:"avgTempC"`
	MissRate     Stats `json:"missRate"`
	MeanResponse Stats `json:"meanResponse"`
	MaxLateness  Stats `json:"maxLateness"`
	OfflineBound Stats `json:"offlineBound"`
	Price        Stats `json:"price"`
	// MeanEnergy and MeanSteps average delivered energy and thermal
	// steps per replica.
	MeanEnergy float64 `json:"meanEnergy"`
	MeanSteps  float64 `json:"meanSteps"`
	// MeanAdmissionDenials is the average number of dispatch attempts
	// the thermal supervisor refused per replica. Omitted for the
	// unsupervised policies, which never deny.
	MeanAdmissionDenials float64 `json:"meanAdmissionDenials,omitempty"`
}

// runStreamFlow resolves the workload, builds its platform substrate
// through the shared cosynth path (thermal-model cache included), and
// fans Replicas seeded online dispatches across the worker pool —
// replica i draws its realization from SimSeed + i. Results are
// byte-identical at every parallelism level: replicas land in a slice
// by index and every aggregate is computed in index order.
func (e *Engine) runStreamFlow(ctx context.Context, req *Request) (*Response, error) {
	spec := req.Stream.withDefaults()
	wl, err := e.streamFor(spec)
	if err != nil {
		return nil, err
	}
	policy, err := stream.ParsePolicy(req.Policy)
	if err != nil {
		return nil, err // unreachable after Validate
	}
	bus := req.BusTimePerUnit
	if bus == 0 {
		bus = cosynth.DefaultBusTimePerUnit
	}
	desc := &cosynth.PlatformDesc{TypeNames: wl.PETypeNames, Layout: wl.Layout}
	arch, _, model, _, err := cosynth.BuildPlatformDesc(wl.Lib, bus, *e.thermalFor(req), e.modelProvider(), desc)
	if err != nil {
		return nil, err
	}
	jobs := make([]stream.Job, len(wl.Jobs))
	for i, j := range wl.Jobs {
		jobs[i] = stream.Job{ID: j.ID, Type: j.Type, Arrival: j.Arrival, Deadline: j.Deadline}
	}

	results := make([]*stream.Result, spec.Replicas)
	errs := make([]error, spec.Replicas)
	runReplica := func(i int) {
		// Each replica gets its own influence oracle and supervisor:
		// both are incremental state, not safe for concurrent use, and
		// oracle rows are built lazily so unused policies pay nothing.
		oracle, err := sched.NewModelOracle(model, arch)
		if err != nil {
			errs[i] = err
			return
		}
		sup, err := streamSupervisor(policy, spec)
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = stream.Run(ctx, stream.Input{
			Jobs:       jobs,
			Lib:        wl.Lib,
			Arch:       arch,
			Model:      model,
			Oracle:     oracle,
			Supervisor: sup,
		}, stream.Config{
			Policy:    policy,
			DT:        spec.DT,
			TimeScale: spec.TimeScale,
			MinFactor: spec.MinFactor,
			Seed:      spec.SimSeed + int64(i),
		})
	}
	// Replica fan-out mirrors runSimulateFlow: extra parallelism comes
	// from the engine-wide token pool so concurrent RunBatch workers
	// stay bounded; a request-level Parallelism narrows this run to its
	// own pool of P−1 tokens plus the inline slot (P=1 is fully
	// serial). Either way results are byte-identical — only wall-clock
	// changes.
	tokens := e.simTokens
	if req.Parallelism > 0 {
		tokens = make(chan struct{}, req.Parallelism-1)
	}
	var wg sync.WaitGroup
	for i := 0; i < spec.Replicas; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-tokens }()
				runReplica(i)
			}(i)
		default:
			runReplica(i)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	makespans := make([]float64, spec.Replicas)
	peaks := make([]float64, spec.Replicas)
	avgs := make([]float64, spec.Replicas)
	missRates := make([]float64, spec.Replicas)
	responses := make([]float64, spec.Replicas)
	latenesses := make([]float64, spec.Replicas)
	bounds := make([]float64, spec.Replicas)
	prices := make([]float64, spec.Replicas)
	steps, energy, denials := 0, 0.0, 0
	for i, r := range results {
		makespans[i] = r.Makespan
		peaks[i] = r.PeakTempC
		avgs[i] = r.AvgTempC
		missRates[i] = r.MissRate
		responses[i] = r.MeanResponse
		latenesses[i] = r.MaxLateness
		bounds[i] = r.OfflineBound
		prices[i] = r.Price
		steps += r.Steps
		energy += r.Energy
		denials += r.AdmissionDenials
	}
	n := float64(spec.Replicas)
	report := &StreamReport{
		Policy:               policy,
		Replicas:             spec.Replicas,
		Jobs:                 len(wl.Jobs),
		PeriodicJobs:         wl.Periodic,
		AperiodicJobs:        wl.Aperiodic,
		Horizon:              wl.Spec.Arrivals.Horizon,
		PEs:                  len(wl.PETypeNames),
		Makespan:             statsOf(makespans),
		PeakTempC:            statsOf(peaks),
		AvgTempC:             statsOf(avgs),
		MissRate:             statsOf(missRates),
		MeanResponse:         statsOf(responses),
		MaxLateness:          statsOf(latenesses),
		OfflineBound:         statsOf(bounds),
		Price:                statsOf(prices),
		MeanEnergy:           energy / n,
		MeanSteps:            float64(steps) / n,
		MeanAdmissionDenials: float64(denials) / n,
	}
	return &Response{
		Flow:        FlowStream,
		Graph:       wl.Spec.Name,
		Policy:      policy,
		Fingerprint: wl.Fingerprint,
		Stream:      report,
	}, nil
}
