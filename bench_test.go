package thermalsched

import (
	"context"
	"fmt"
	"testing"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/experiments"
	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/power"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// The benchmarks below regenerate every evaluation artifact of the
// paper. Each table bench recomputes the full table per iteration and,
// on the first iteration, logs the rows in the paper's layout so
// `go test -bench . -v` doubles as the reproduction harness
// (cmd/tables prints the same tables without the timing).

func newSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.NewSuite()
	if err != nil {
		b.Fatal(err)
	}
	s.FloorplanGenerations = 10
	return s
}

// BenchmarkTable1CoSynthesis regenerates the co-synthesis half of
// Table 1: baseline and power heuristics 1–3 on customized
// architectures for Bm1–Bm4.
func BenchmarkTable1CoSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		tab, err := s.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

// BenchmarkTable1Platform regenerates the platform half of Table 1 only
// (no co-synthesis search), the cheap headline comparison.
func BenchmarkTable1Platform(b *testing.B) {
	s := newSuite(b)
	policies := []sched.Policy{sched.Baseline, sched.MinTaskPower, sched.MinPEPower, sched.MinTaskEnergy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range s.Graphs {
			for _, p := range policies {
				res, err := cosynth.RunPlatform(g, s.Lib, cosynth.PlatformConfig{Policy: p})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s %-12s totPow=%6.2f maxT=%7.2f avgT=%7.2f",
						g.Name, p, res.Metrics.TotalPower, res.Metrics.MaxTemp, res.Metrics.AvgTemp)
				}
			}
		}
	}
}

// BenchmarkTable2ThermalCoSynthesis regenerates Table 2: power-aware
// (heuristic 3) vs thermal-aware on the customized architecture.
func BenchmarkTable2ThermalCoSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		tab, err := s.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

// BenchmarkTable3ThermalPlatform regenerates Table 3: power-aware vs
// thermal-aware on the platform architecture.
func BenchmarkTable3ThermalPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		tab, err := s.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

// BenchmarkFigure1Flows exercises the two flows of the paper's Figure 1
// end to end (the figure is a flowchart, so its artifact is the flows
// themselves): Fig. 1a co-synthesis with thermal-aware floorplanning and
// Fig. 1b platform-based design with thermal inquiries.
func BenchmarkFigure1Flows(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm1")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Fig1a_CoSynthesis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cosynth.RunCoSynthesis(g, lib, cosynth.CoSynthConfig{
				Policy: sched.ThermalAware, FloorplanGenerations: 10,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fig1b_Platform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{
				Policy: sched.ThermalAware,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFloorplanGAvsSA is ablation A1 (DESIGN.md): the GA
// floorplanner of reference [3] against a simulated-annealing baseline
// on the same thermal objective.
func BenchmarkAblationFloorplanGAvsSA(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	hs := hotspot.DefaultConfig()
	blocks := make([]floorplan.Block, 0, 4)
	powerMap := map[string]float64{}
	for i, spec := range techlib.CoSynthesisSpecs() {
		name := fmt.Sprintf("pe%d", i)
		ti, _ := lib.PETypeIndex(spec.Name)
		blocks = append(blocks, floorplan.Block{
			Name: name, Area: lib.PEType(ti).Area, MinAspect: 0.5, MaxAspect: 2,
		})
		powerMap[name] = 3 + float64(i)*2 // uneven heat, the interesting case
	}
	eval := func(fp *floorplan.Floorplan, pw map[string]float64) (float64, error) {
		m, err := hotspot.NewModel(fp, hs)
		if err != nil {
			return 0, err
		}
		t, err := m.SteadyState(pw)
		if err != nil {
			return 0, err
		}
		return t.Max(), nil
	}
	b.Run("GA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := floorplan.DefaultGAConfig()
			cfg.Generations = 20
			cfg.Eval = eval
			cfg.Power = powerMap
			res, err := floorplan.RunGA(blocks, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("GA: peak %.2f °C, area %.2f mm², %d evals",
					res.PeakTemp, res.Area*1e6, res.Evals)
			}
		}
	})
	b.Run("SA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := floorplan.DefaultSAConfig()
			cfg.Eval = eval
			cfg.Power = powerMap
			res, err := floorplan.RunSA(blocks, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("SA: peak %.2f °C, area %.2f mm², %d evals",
					res.PeakTemp, res.Area*1e6, res.Evals)
			}
		}
	})
}

// BenchmarkAblationTempWeight is ablation A2 (DESIGN.md): the DC
// temperature-weight sweep on Bm2, showing the feasibility/temperature
// trade-off the DC equation's last term controls.
func BenchmarkAblationTempWeight(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm2")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []float64{0, 5, 10, 20, 40} {
		b.Run(fmt.Sprintf("w=%g", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig(sched.ThermalAware)
				cfg.TempWeight = w
				res, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{
					Policy: sched.ThermalAware, Sched: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("w=%g: maxT=%.2f avgT=%.2f makespan=%.0f feasible=%v",
						w, res.Metrics.MaxTemp, res.Metrics.AvgTemp,
						res.Metrics.Makespan, res.Metrics.Feasible)
				}
			}
		})
	}
}

// BenchmarkExtensionLeakageLoop is extension A3 (DESIGN.md): the
// temperature-dependent leakage fixed point the paper's introduction
// motivates, applied to the platform's schedule-time power.
func BenchmarkExtensionLeakageLoop(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm1")
	if err != nil {
		b.Fatal(err)
	}
	res, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.MinTaskEnergy})
	if err != nil {
		b.Fatal(err)
	}
	dyn, err := res.Schedule.PEAveragePower(g.Deadline)
	if err != nil {
		b.Fatal(err)
	}
	leak := power.DefaultLeakage()
	solve := func(p []float64) ([]float64, error) {
		t, err := res.Model.SteadyStateVec(p)
		if err != nil {
			return nil, err
		}
		return t.Values(), nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp, err := leak.FixedPoint(dyn, solve, 1e-6, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			noLeak, _ := res.Model.SteadyStateVec(dyn)
			b.Logf("leakage loop: %d iterations, peak %.2f °C (vs %.2f without leakage)",
				fp.Iterations, maxOf(fp.Temps), noLeak.Max())
		}
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BenchmarkExtensionDTM compares dynamic-thermal-management throttling
// under the baseline and the thermal-aware schedules: the statically
// balanced schedule should need less run-time throttling (extension to
// the paper's reference [2]).
func BenchmarkExtensionDTM(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm1")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []sched.Policy{sched.Baseline, sched.ThermalAware} {
		b.Run(p.String(), func(b *testing.B) {
			run, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: p})
			if err != nil {
				b.Fatal(err)
			}
			exec, err := sim.Execute(run.Schedule, sim.Options{MinFactor: 1, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			trace, err := exec.Trace(2)
			if err != nil {
				b.Fatal(err)
			}
			samples, err := trace.Reorder(run.Model.BlockNames())
			if err != nil {
				b.Fatal(err)
			}
			// Loop the schedule several times so the die approaches its
			// operating point (0.02 s per schedule time unit).
			looped := make([][]float64, 0, len(samples)*10)
			for k := 0; k < 10; k++ {
				looped = append(looped, samples...)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl, err := dtm.NewToggleController(88, 3, 0.4)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dtm.Run(run.Model, ctrl, looped, 2*0.02)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: peak %.2f °C, throttled %.1f%%, slowdown %.2f%%",
						p, res.PeakTemp, 100*res.ThrottledFraction, 100*res.Slowdown())
				}
			}
		})
	}
}

// BenchmarkRobustnessSweep runs the randomized power-aware vs
// thermal-aware comparison (EXPERIMENTS.md, robustness study).
func BenchmarkRobustnessSweep(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(lib, 20, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkSimExecute measures the discrete-event executor.
func BenchmarkSimExecute(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm4")
	if err != nil {
		b.Fatal(err)
	}
	run, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.MinTaskEnergy})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(run.Schedule, sim.Options{MinFactor: 0.7, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the substrates.

// BenchmarkHotSpotSteadyState measures the thermal-inquiry fast path:
// one influence-matrix row product per block, zero allocations.
func BenchmarkHotSpotSteadyState(b *testing.B) {
	fp, err := floorplan.Grid("b", 16, 4e-6)
	if err != nil {
		b.Fatal(err)
	}
	m, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 16)
	for i := range p {
		p[i] = float64(i%4) + 1
	}
	dst := make([]float64, 16)
	if err := m.SteadyStateInto(dst, p); err != nil { // build the influence matrix outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SteadyStateInto(dst, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotSpotSteadyStateDirect is the reference full-solve path
// the fast path replaced; kept so the speedup stays measurable.
func BenchmarkHotSpotSteadyStateDirect(b *testing.B) {
	fp, err := floorplan.Grid("b", 16, 4e-6)
	if err != nil {
		b.Fatal(err)
	}
	m, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 16)
	for i := range p {
		p[i] = float64(i%4) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyStateDirect(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotSpotModelBuild(b *testing.B) {
	fp, err := floorplan.Grid("b", 16, 4e-6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hotspot.NewModel(fp, hotspot.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotSpotTransientStep(b *testing.B) {
	fp, err := floorplan.Grid("b", 16, 4e-6)
	if err != nil {
		b.Fatal(err)
	}
	m, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := m.NewTransient(0.01)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 16)
	for i := range p {
		p[i] = 2
	}
	dst := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.StepVecInto(dst, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerPolicies(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm4")
	if err != nil {
		b.Fatal(err)
	}
	arch, fp, _, oracle, err := cosynth.BuildPlatform(lib, cosynth.DefaultBusTimePerUnit, hotspot.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	_ = fp
	for _, p := range sched.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			cfg := sched.DefaultConfig(p)
			if p == sched.ThermalAware {
				cfg.Oracle = oracle
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.AllocateAndSchedule(g, arch, lib, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFloorplanPack(b *testing.B) {
	blocks := make([]floorplan.Block, 8)
	for i := range blocks {
		blocks[i] = floorplan.Block{
			Name: fmt.Sprintf("b%d", i), Area: 1e-6 * float64(1+i%3),
			MinAspect: 0.5, MaxAspect: 2,
		}
	}
	e := floorplan.InitialExpression(len(blocks))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := floorplan.Pack(e, blocks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaskGraphGenerate(b *testing.B) {
	p := taskgraph.GenParams{
		Name: "bench", Tasks: 50, Edges: 70, Deadline: 2000,
		Types: 8, Sources: 1, MaxData: 40, Seed: 7,
	}
	for i := 0; i < b.N; i++ {
		if _, err := taskgraph.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConditionalTaskGraphs exercises the conditional-task-graph
// extension (the Xie & Wolf substrate the paper's ASP builds on):
// worst-case scheduling of a CTG plus Bernoulli branch realization.
func BenchmarkConditionalTaskGraphs(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Generate(taskgraph.GenParams{
		Name: "ctg", Tasks: 40, Edges: 60, Deadline: 2200,
		Types: taskgraph.NumTaskTypes, Sources: 1, MaxData: 20,
		BranchFraction: 0.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	run, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.MinTaskEnergy})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Execute(run.Schedule, sim.Options{
			MinFactor: 0.8, Seed: int64(i), Conditional: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp, err := run.Schedule.ExpectedEnergy()
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("CTG: %d/%d tasks executed, realized energy %.0f, expected %.0f, worst case %.0f",
				res.Executed, g.NumTasks(), res.Energy, exp, run.Schedule.TotalEnergy())
		}
	}
}

// BenchmarkFloorplanGA measures the thermal-objective GA floorplanner —
// every candidate pays a Stockmeyer pack plus a HotSpot model build and
// solve — at serial and parallel settings of the search backbone. The
// result is byte-identical at every P (asserted in
// internal/floorplan/parallel_test.go); only wall-clock changes, from
// the expression-fingerprint memo and the worker pool.
func BenchmarkFloorplanGA(b *testing.B) {
	hs := hotspot.DefaultConfig()
	blocks := make([]floorplan.Block, 6)
	powerMap := map[string]float64{}
	for i := range blocks {
		name := fmt.Sprintf("pe%d", i)
		blocks[i] = floorplan.Block{
			Name: name, Area: 1e-6 * float64(4+2*(i%3)), MinAspect: 0.5, MaxAspect: 2,
		}
		powerMap[name] = 3 + float64(i)*2
	}
	eval := func(fp *floorplan.Floorplan, pw map[string]float64) (float64, error) {
		m, err := hotspot.NewModel(fp, hs)
		if err != nil {
			return 0, err
		}
		t, err := m.SteadyState(pw)
		if err != nil {
			return 0, err
		}
		return t.Max(), nil
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := floorplan.DefaultGAConfig()
				cfg.Generations = 20
				cfg.Parallelism = p
				cfg.Eval = eval
				cfg.Power = powerMap
				res, err := floorplan.RunGA(blocks, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("P=%d: peak %.2f °C, %d evals, %d memo hits",
						p, res.PeakTemp, res.Evals, res.MemoHits)
				}
			}
		})
	}
}

// BenchmarkCoSynthesis measures the full thermal-aware co-synthesis
// flow on Bm1 (the BenchmarkFigure1Flows/Fig1a workload) at serial and
// parallel settings: candidate architectures fan out over the pool and
// each GA floorplanner shares it.
func BenchmarkCoSynthesis(b *testing.B) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.Benchmark("Bm1")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := cosynth.RunCoSynthesis(g, lib, cosynth.CoSynthConfig{
					Policy: sched.ThermalAware, FloorplanGenerations: 10, Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("P=%d: %d PEs, %d evals, %d memo hits",
						p, len(res.Arch.PEs), res.SearchEvals, res.SearchMemoHits)
				}
			}
		})
	}
}

// BenchmarkScenarioGenerate measures synthetic-scenario generation —
// the setup cost a campaign pays once per scenario (then amortized via
// the Engine's fingerprint cache).
func BenchmarkScenarioGenerate(b *testing.B) {
	for _, n := range []int{50, 500} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			spec := ScenarioSpec{
				Graph:    ScenarioGraphParams{Tasks: n},
				Platform: ScenarioPlatformParams{PEs: 8, MinSpeed: 0.6, MaxSpeed: 2.0},
			}
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i)
				if _, err := GenerateScenario(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaign measures a small end-to-end campaign: scenario
// generation, the policy grid on the worker pool, and aggregation.
func BenchmarkCampaign(b *testing.B) {
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	req := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 4, Seed: 1, MinTasks: 20, MaxTasks: 40,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotSpotSteadyStateLarge measures one steady-state thermal
// inquiry on a 256-block platform — the regime the sparse backend
// exists for. The dense path back-substitutes the full factorization
// (O(n²) per inquiry); the sparse path combines the handful of cached
// influence rows the powered blocks touch (O(k·n)), so the gap widens
// with platform size. Rows are warmed outside the timer, matching the
// scheduler's steady state where every powered block has been inquired
// about before.
func BenchmarkHotSpotSteadyStateLarge(b *testing.B) {
	const blocks = 256
	fp, err := floorplan.Grid("b", blocks, 4e-6)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, blocks)
	for i := 0; i < 8; i++ {
		p[i*31] = 3 + float64(i)
	}
	for _, solver := range []string{hotspot.SolverDense, hotspot.SolverSparse, hotspot.SolverPCG} {
		b.Run(solver, func(b *testing.B) {
			cfg := hotspot.DefaultConfig()
			cfg.Solver = solver
			m, err := hotspot.NewModel(fp, cfg)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, blocks)
			if err := m.SteadyStateInto(out, p); err != nil { // warm caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SteadyStateInto(out, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStream measures one full online dispatch of the default
// stream workload (48 jobs over a 600-unit horizon on 4 PEs): arrival
// releases, policy placements and the per-DT thermal co-simulation
// steps. The greedy sub-benchmark additionally pays one influence-
// oracle inquiry per (pending job, idle PE) pair — the price of
// thermal foresight over FIFO's head-of-line pop — and is the PR-9
// hot path the nightly baseline gates.
// BenchmarkAdmission measures the thermal supervisor's predictive
// admission path end to end, per surface. The simulate rows run one
// warm-started closed-loop co-simulation of Bm1 per op: toggle is the
// reactive baseline on the shared coloop core, admit pays the one-time
// RiseForecaster setup (each PE block's unit-step self-response sampled
// out to the longest task's WCET) plus per-dispatch forecast lookups
// and embargo bookkeeping on top, so the toggle→admit delta is the
// entire cost of admission control. The stream row dispatches the default
// online workload under the admit policy, where the same queries gate
// every placement attempt.
func BenchmarkAdmission(b *testing.B) {
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for _, ctrl := range []string{"toggle", "admit"} {
		b.Run("simulate/"+ctrl, func(b *testing.B) {
			req := NewRequest(FlowSimulate,
				WithBenchmark("Bm1"),
				WithSimulate(SimulateSpec{Controller: ctrl, MinFactor: 0.8, WarmStart: true}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("stream/admit", func(b *testing.B) {
		req := NewRequest(FlowStream, WithStream(StreamSpec{Seed: 1, MinFactor: 0.8}))
		req.Policy = StreamPolicyAdmit
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStream(b *testing.B) {
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []string{StreamPolicyFIFO, StreamPolicyGreedy} {
		b.Run(policy, func(b *testing.B) {
			req := NewRequest(FlowStream, WithStream(StreamSpec{Seed: 1, MinFactor: 0.8}))
			req.Policy = policy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
