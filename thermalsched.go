// Package thermalsched reproduces "Thermal-Aware Task Allocation and
// Scheduling for Embedded Systems" (Hung, Xie, Vijaykrishnan, Kandemir,
// Irwin — DATE 2005): a list-scheduling Allocation and Scheduling
// Procedure (ASP) whose dynamic criticality folds in either power
// heuristics or the average temperature reported by a HotSpot-style
// compact thermal model, embedded in both a platform-based design flow
// and a hardware/software co-synthesis flow with a thermal-aware
// genetic-algorithm floorplanner.
//
// The primary API is the Engine: construct one with NewEngine, keep it
// for the life of the process, and feed it JSON-serializable Requests.
// The Engine owns the technology library, the parsed paper benchmarks
// and a cache of thermal-model factorizations, threads context
// cancellation into every hot loop, and fans batches out across a
// bounded worker pool:
//
//	eng, _ := thermalsched.NewEngine()
//	resp, _ := eng.Run(ctx, thermalsched.NewRequest(
//		thermalsched.FlowPlatform,
//		thermalsched.WithBenchmark("Bm1"),
//		thermalsched.WithPolicy(thermalsched.ThermalAware),
//	))
//	fmt.Printf("peak %.1f °C\n", resp.Metrics.MaxTemp)
//
// Engine.Platform and Engine.CoSynthesize are the typed counterparts
// returning full FlowResults (schedule, floorplan, thermal model), and
// cmd/thermschedd serves Engine.Run over HTTP/JSON. The package-level
// RunPlatform/RunCoSynthesis/RunSweep functions predate the Engine;
// they remain as thin deprecated wrappers over a shared default Engine
// and return results identical to earlier releases.
//
// Beyond the paper's four benchmarks, the generate and campaign flows
// run the same machinery on synthetic workloads: seeded random task
// graphs on generated heterogeneous platforms (ScenarioSpec), singly
// or fanned out as a policy-comparison campaign (CampaignSpec).
//
// This package is the public facade over the implementation packages:
//
//	internal/taskgraph   task graphs, TGFF-like generator, paper benchmarks
//	internal/techlib     technology library (WCET/WCPC tables, PE types)
//	internal/scenario    synthetic scenarios: seeded graph + platform generators
//	internal/sched       the ASP: policies Baseline, H1–H3, ThermalAware
//	internal/floorplan   slicing-tree GA/SA floorplanner, platform layouts
//	internal/hotspot     compact thermal RC model (steady state, transient)
//	internal/power       power profiles, traces, leakage feedback
//	internal/cosynth     the two flows of the paper's Figure 1
//	internal/experiments Tables 1–3, the sweep, DTM and scaling studies
//	internal/service     request validation/routing for cmd/thermschedd
package thermalsched

import (
	"context"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/experiments"
	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/power"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Task graph types and constructors.
type (
	// Graph is a task graph with a completion deadline.
	Graph = taskgraph.Graph
	// Task is one node of a task graph.
	Task = taskgraph.Task
	// GraphEdge is a data dependency between two tasks.
	GraphEdge = taskgraph.Edge
	// GenParams parameterizes the TGFF-like task-graph generator.
	GenParams = taskgraph.GenParams
)

// NewGraph returns an empty task graph.
func NewGraph(name string, deadline float64) *Graph { return taskgraph.NewGraph(name, deadline) }

// GenerateGraph builds a random task graph with exact task/edge counts.
func GenerateGraph(p GenParams) (*Graph, error) { return taskgraph.Generate(p) }

// Benchmark returns one of the paper's benchmarks ("Bm1" … "Bm4").
func Benchmark(name string) (*Graph, error) { return taskgraph.Benchmark(name) }

// Benchmarks returns all four paper benchmarks.
func Benchmarks() ([]*Graph, error) { return taskgraph.Benchmarks() }

// Technology library types and constructors.
type (
	// Library stores WCET/WCPC per (task type, PE type) plus PE costs
	// and areas.
	Library = techlib.Library
	// PEType describes a processing-element type.
	PEType = techlib.PEType
	// LibraryEntry is a WCET/WCPC pair.
	LibraryEntry = techlib.Entry
)

// StandardLibrary returns the deterministic technology library the
// reproduction's experiments share.
func StandardLibrary() (*Library, error) { return techlib.StandardLibrary() }

// Scheduler types.
type (
	// Architecture is a set of PE instances plus the bus model.
	Architecture = sched.Architecture
	// PE is one processing element instance.
	PE = sched.PE
	// Schedule is a complete task mapping and timing.
	Schedule = sched.Schedule
	// Policy selects the ASP variant.
	Policy = sched.Policy
	// SchedConfig tunes the ASP.
	SchedConfig = sched.Config
)

// ASP policy constants (paper §2).
const (
	Baseline      = sched.Baseline
	MinTaskPower  = sched.MinTaskPower  // heuristic 1
	MinPEPower    = sched.MinPEPower    // heuristic 2
	MinTaskEnergy = sched.MinTaskEnergy // heuristic 3
	ThermalAware  = sched.ThermalAware
)

// ParsePolicy converts a policy name ("baseline", "h1" … "thermal").
func ParsePolicy(s string) (Policy, error) { return sched.ParsePolicy(s) }

// Policies lists all ASP variants in paper order.
func Policies() []Policy { return sched.Policies() }

// AllocateAndSchedule runs the ASP directly on an explicit architecture.
// Most callers want Engine.Run or Engine.Platform instead.
func AllocateAndSchedule(g *Graph, arch Architecture, lib *Library, cfg SchedConfig) (*Schedule, error) {
	return sched.AllocateAndSchedule(g, arch, lib, cfg)
}

// AllocateAndScheduleCtx is AllocateAndSchedule with cancellation
// threaded into the ASP's greedy loop.
func AllocateAndScheduleCtx(ctx context.Context, g *Graph, arch Architecture, lib *Library, cfg SchedConfig) (*Schedule, error) {
	return sched.AllocateAndScheduleCtx(ctx, g, arch, lib, cfg)
}

// Thermal model types.
type (
	// ThermalConfig holds the physical parameters of the thermal model.
	ThermalConfig = hotspot.Config
	// ThermalModel is a compact thermal RC network built from a floorplan.
	ThermalModel = hotspot.Model
	// Temps holds per-block temperatures.
	Temps = hotspot.Temps
	// Floorplan is a set of placed, named blocks.
	Floorplan = floorplan.Floorplan
	// FloorplanBlock is an unplaced block for the floorplanner.
	FloorplanBlock = floorplan.Block
)

// DefaultThermalConfig returns the reproduction's thermal calibration.
func DefaultThermalConfig() ThermalConfig { return hotspot.DefaultConfig() }

// NewThermalModel builds the thermal network for a floorplan.
func NewThermalModel(fp *Floorplan, cfg ThermalConfig) (*ThermalModel, error) {
	return hotspot.NewModel(fp, cfg)
}

// FloorplanGA runs the thermal-aware genetic-algorithm floorplanner.
func FloorplanGA(blocks []FloorplanBlock, cfg floorplan.GAConfig) (*floorplan.Result, error) {
	return floorplan.RunGA(blocks, cfg)
}

// DefaultGAConfig returns the floorplanner's default GA parameters.
func DefaultGAConfig() floorplan.GAConfig { return floorplan.DefaultGAConfig() }

// Flow types (paper Figure 1).
type (
	// FlowResult is the outcome of a platform or co-synthesis run.
	FlowResult = cosynth.Result
	// FlowMetrics are the three columns of the paper's tables.
	FlowMetrics = cosynth.Metrics
	// PlatformConfig parameterizes the platform-based flow (Fig. 1b).
	PlatformConfig = cosynth.PlatformConfig
	// CoSynthConfig parameterizes the co-synthesis flow (Fig. 1a).
	CoSynthConfig = cosynth.CoSynthConfig
)

// RunPlatform schedules g on the paper's fixed platform of four
// identical PEs under the given policy (Fig. 1b).
//
// Deprecated: use Engine.Run with FlowPlatform or Engine.Platform. This
// wrapper runs on the shared DefaultEngine and returns metrics
// identical to earlier releases.
func RunPlatform(g *Graph, lib *Library, policy Policy) (*FlowResult, error) {
	return RunPlatformConfig(g, lib, PlatformConfig{Policy: policy})
}

// RunPlatformConfig is RunPlatform with full configuration control.
//
// Deprecated: use Engine.Run with FlowPlatform or Engine.Platform.
func RunPlatformConfig(g *Graph, lib *Library, cfg PlatformConfig) (*FlowResult, error) {
	e, err := DefaultEngine()
	if err != nil {
		return nil, err
	}
	return e.platform(context.Background(), g, lib, cfg)
}

// RunCoSynthesis runs the co-synthesis flow (Fig. 1a): deadline-driven
// PE selection with floorplanning and thermal extraction in the loop.
//
// Deprecated: use Engine.Run with FlowCoSynthesis or
// Engine.CoSynthesize. This wrapper runs on the shared DefaultEngine
// and returns metrics identical to earlier releases.
func RunCoSynthesis(g *Graph, lib *Library, policy Policy) (*FlowResult, error) {
	return RunCoSynthesisConfig(g, lib, CoSynthConfig{Policy: policy})
}

// RunCoSynthesisConfig is RunCoSynthesis with full configuration control.
//
// Deprecated: use Engine.Run with FlowCoSynthesis or Engine.CoSynthesize.
func RunCoSynthesisConfig(g *Graph, lib *Library, cfg CoSynthConfig) (*FlowResult, error) {
	e, err := DefaultEngine()
	if err != nil {
		return nil, err
	}
	return e.cosynthesize(context.Background(), g, lib, cfg)
}

// Power-domain types.
type (
	// PowerProfile is the per-PE power timeline of a schedule.
	PowerProfile = power.Profile
	// LeakageModel captures temperature-dependent leakage.
	LeakageModel = power.LeakageModel
)

// PowerProfileOf extracts the power profile of a schedule.
func PowerProfileOf(s *Schedule) (*PowerProfile, error) { return power.FromSchedule(s) }

// DefaultLeakage returns the calibrated leakage model.
func DefaultLeakage() LeakageModel { return power.DefaultLeakage() }

// Run-time extensions: discrete-event execution and dynamic thermal
// management (the paper's reference [2]).
type (
	// SimOptions controls the discrete-event schedule executor.
	SimOptions = sim.Options
	// SimResult is a realized execution of a schedule.
	SimResult = sim.Result
	// DTMController throttles PE power based on observed temperatures.
	DTMController = dtm.Controller
	// DTMResult summarizes a DTM transient run.
	DTMResult = dtm.RunResult
	// ThermalSupervisor is the widened thermal-management contract: a
	// DTMController that also classifies block temperatures into
	// graduated thermal states and answers admission queries.
	ThermalSupervisor = dtm.Supervisor
	// ThermalState is one rung of the supervisor's temperature ladder
	// (nominal, fair, serious, critical).
	ThermalState = dtm.ThermalState
	// Ladder holds the ascending fair/serious/critical thresholds that
	// split the temperature axis into the four thermal states.
	Ladder = dtm.Ladder
)

// SuperviseDTM adapts a reactive DTM controller to the supervisor
// contract: scaling works as before and every admission is granted.
func SuperviseDTM(c DTMController, l Ladder) (ThermalSupervisor, error) {
	return dtm.Supervise(c, l)
}

// NewAdmitDTM returns the predictive admission-control supervisor:
// starts forecast to push a block to the serious state are refused for
// retryAfter time units, with graduated throttling as a safety net.
// State demotions carry hysteresis °C of stickiness, matching the
// reactive toggle's trip-and-release shape.
func NewAdmitDTM(l Ladder, seriousScale, criticalScale, retryAfter, hysteresis float64) (ThermalSupervisor, error) {
	return dtm.NewAdmitController(l, seriousScale, criticalScale, retryAfter, hysteresis)
}

// NewZigZagDTM returns the idle-slack cooling supervisor (Chrobak et
// al., arXiv 0801.4238): a block reaching serious is forced through a
// coolTime-long gap at coolScale power, refusing new starts meanwhile.
func NewZigZagDTM(l Ladder, coolTime, stepTime, coolScale float64) (ThermalSupervisor, error) {
	return dtm.NewZigZagController(l, coolTime, stepTime, coolScale)
}

// ExecuteSchedule replays a schedule with actual (≤ WCET) execution
// times and reports the realized timing, energy and power trace.
func ExecuteSchedule(s *Schedule, opt SimOptions) (*SimResult, error) {
	return sim.Execute(s, opt)
}

// NewToggleDTM returns a threshold/hysteresis throttling controller.
func NewToggleDTM(triggerC, hysteresis, throttle float64) (DTMController, error) {
	return dtm.NewToggleController(triggerC, hysteresis, throttle)
}

// NewPIDTM returns a proportional–integral thermal controller
// (reference [2]'s control-theoretic DTM).
func NewPIDTM(setpointC, kp, ki, minScale float64) (DTMController, error) {
	return dtm.NewPIController(setpointC, kp, ki, minScale)
}

// RunDTM drives a transient simulation of per-block power samples under
// a DTM controller.
func RunDTM(model *ThermalModel, ctrl DTMController, samples [][]float64, dt float64) (*DTMResult, error) {
	return dtm.Run(model, ctrl, samples, dt)
}

// Experiment suite (Tables 1–3).
type (
	// Suite bundles the benchmarks and library for table regeneration.
	Suite = experiments.Suite
	// Table1 is the power-heuristic comparison.
	Table1 = experiments.Table1
	// VersusTable is the power-aware vs thermal-aware comparison
	// (Tables 2 and 3).
	VersusTable = experiments.VersusTable
)

// NewSuite builds the standard experiment suite.
func NewSuite() (*Suite, error) { return experiments.NewSuite() }

// SweepResult aggregates the randomized robustness study.
type SweepResult = experiments.SweepResult

// Scaling-study types (Engine.ScalingTable, cmd/tables -scaling).
type (
	// ScalingTable is the beyond-the-paper scaling study: the
	// thermal-aware flow over generated scenarios of growing task
	// counts.
	ScalingTable = experiments.ScalingTable
	// ScalingRow is one task-count point of the scaling study.
	ScalingRow = experiments.ScalingRow
)

// RunSweep compares the power-aware and thermal-aware ASPs over count
// random task graphs on the platform flow.
//
// Deprecated: use Engine.Run with FlowSweep or Engine.Sweep. This
// wrapper runs on the shared DefaultEngine's model cache and returns
// results identical to earlier releases.
func RunSweep(lib *Library, count int, seed int64) (*SweepResult, error) {
	e, err := DefaultEngine()
	if err != nil {
		return nil, err
	}
	return experiments.RunSweepWith(context.Background(), lib, count, seed,
		cosynth.PlatformConfig{Models: e.modelProvider()})
}
