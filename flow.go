package thermalsched

import (
	"context"
	"fmt"
	"strings"

	"thermalsched/internal/stream"
)

// FieldError is a typed request-validation failure naming the offending
// field, so every surface — Engine callers, the service's 400 bodies,
// the CLI's usage errors — reports the same machine-readable shape.
// Field is the request's JSON path ("flow", "simulate.replicas", …);
// the synthetic path "input" names the cross-field benchmark/graph/
// scenario arity rules. Unwrap with errors.As to reach Field.
type FieldError struct {
	Field string
	Msg   string
}

// Error renders the canonical message shared verbatim across surfaces.
func (e *FieldError) Error() string {
	return fmt.Sprintf("thermalsched: invalid %s: %s", e.Field, e.Msg)
}

// fieldErr builds a FieldError in one line.
func fieldErr(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// flowInput classifies what a flow consumes from the request's input
// fields (Benchmark / Graph / Scenario / Stream).
type flowInput int

const (
	// flowInputOne: exactly one of benchmark, graph or scenario.
	flowInputOne flowInput = iota
	// flowInputGenerated: none — the flow generates its own inputs.
	flowInputGenerated
	// flowInputScenario: a scenario spec and nothing else.
	flowInputScenario
	// flowInputStream: a stream spec and nothing else.
	flowInputStream
)

// flowSpec is one row of the flow registry — the single place a flow
// registers its dispatch, validation and help text. Engine.Run,
// FlowKinds(), Request.Validate(), the service's routing (via Validate)
// and the CLI's -flow help all read from this table, so adding a flow
// is exactly one new entry plus its run function.
type flowSpec struct {
	kind FlowKind
	// summary is the one-line help text the CLI renders for -flow.
	summary string
	// input selects the generic input-arity rule Validate enforces.
	input flowInput
	// run executes the flow (after Validate) on the engine.
	run func(*Engine, context.Context, *Request) (*Response, error)
	// validate holds flow-specific checks beyond the generic rules;
	// nil means none.
	validate func(*Request) error
	// parallelism marks flows that consume Request.Parallelism.
	parallelism bool
	// onlinePolicy marks flows whose Policy field names an online
	// policy (stream.ParsePolicy) rather than an offline ASP variant.
	onlinePolicy bool
}

// flowRegistry lists every flow in canonical order. Order is API:
// FlowKinds() and the CLI help render it verbatim. It is populated in
// init (not a var initializer) because the run hooks reach Engine
// methods that themselves dispatch through the registry — a var
// initializer would be an initialization cycle.
var (
	flowRegistry []flowSpec
	flowIndex    map[FlowKind]*flowSpec
)

func init() {
	flowRegistry = flowTable()
	flowIndex = make(map[FlowKind]*flowSpec, len(flowRegistry))
	for i := range flowRegistry {
		flowIndex[flowRegistry[i].kind] = &flowRegistry[i]
	}
}

func flowTable() []flowSpec {
	return []flowSpec{
		{
			kind:    FlowPlatform,
			summary: "schedule on the fixed 4-PE platform (paper Fig. 1b)",
			input:   flowInputOne,
			run:     (*Engine).runPlatformFlow,
		},
		{
			kind:        FlowCoSynthesis,
			summary:     "deadline-driven architecture selection with floorplanning in the loop (paper Fig. 1a)",
			input:       flowInputOne,
			run:         (*Engine).runCoSynthFlow,
			parallelism: true,
		},
		{
			kind:     FlowSweep,
			summary:  "randomized power-aware vs thermal-aware robustness study",
			input:    flowInputGenerated,
			run:      (*Engine).runSweepFlow,
			validate: validateSweepFlow,
		},
		{
			kind:     FlowDTM,
			summary:  "open-loop dynamic-thermal-management transient study",
			input:    flowInputOne,
			run:      (*Engine).runDTMFlow,
			validate: validateDTMFlow,
		},
		{
			kind:        FlowSimulate,
			summary:     "closed-loop DTM co-simulation with Monte-Carlo replicas",
			input:       flowInputOne,
			run:         (*Engine).runSimulateFlow,
			validate:    validateSimulateFlow,
			parallelism: true,
		},
		{
			kind:     FlowGenerate,
			summary:  "materialize a synthetic scenario without scheduling it",
			input:    flowInputScenario,
			run:      runGenerateFlowCtx,
			validate: validateGenerateFlow,
		},
		{
			kind:    FlowCampaign,
			summary: "policy duel fanned across a generated scenario family",
			input:   flowInputGenerated,
			run:     (*Engine).runCampaignFlow,
		},
		{
			kind:         FlowStream,
			summary:      "online scheduling of periodic + aperiodic arrivals against live thermal state",
			input:        flowInputStream,
			run:          (*Engine).runStreamFlow,
			validate:     validateStreamFlow,
			parallelism:  true,
			onlinePolicy: true,
		},
	}
}

// flowFor resolves a registry row.
func flowFor(kind FlowKind) (*flowSpec, bool) {
	fs, ok := flowIndex[kind]
	return fs, ok
}

// FlowKinds lists every flow an Engine accepts, in registry order.
func FlowKinds() []FlowKind {
	out := make([]FlowKind, len(flowRegistry))
	for i := range flowRegistry {
		out[i] = flowRegistry[i].kind
	}
	return out
}

// FlowNames renders the registry as a comma-separated name list — the
// CLI's -flow value set.
func FlowNames() string {
	names := make([]string, len(flowRegistry))
	for i := range flowRegistry {
		names[i] = string(flowRegistry[i].kind)
	}
	return strings.Join(names, ", ")
}

// FlowUsage renders one help line per flow for the CLI's -flow text.
func FlowUsage() string {
	var b strings.Builder
	for _, fs := range flowRegistry {
		fmt.Fprintf(&b, "  %-12s %s\n", fs.kind, fs.summary)
	}
	return b.String()
}

// runGenerateFlowCtx adapts the generate flow (which never blocks long
// enough to need cancellation) to the registry signature.
func runGenerateFlowCtx(e *Engine, _ context.Context, req *Request) (*Response, error) {
	return e.runGenerateFlow(req)
}

// Flow-specific validation hooks. The generic rules (flow existence,
// input arity, policy syntax, shared knob ranges, cross-flow spec
// rejection) live in Request.Validate; these cover the rest.

func validateSweepFlow(r *Request) error {
	if r.SweepCount < 0 {
		return fieldErr("sweepCount", "negative sweep count %d", r.SweepCount)
	}
	return nil
}

func validateGenerateFlow(r *Request) error {
	if r.Solver != "" {
		return fieldErr("solver", "solver override on a %q request (it never builds a thermal model)", r.Flow)
	}
	return nil
}

func validateDTMFlow(r *Request) error {
	if r.DTM == nil {
		return nil
	}
	switch r.DTM.Controller {
	case "", "toggle", "pi":
		return nil
	}
	return fieldErr("dtm.controller", "unknown DTM controller %q (want toggle or pi)", r.DTM.Controller)
}

// simulateControllers is the FlowSimulate controller-kind value set, in
// help order.
var simulateControllers = []string{"toggle", "pi", "none", "admit", "zigzag"}

func validSimulateController(name string) bool {
	if name == "" {
		return true
	}
	for _, c := range simulateControllers {
		if name == c {
			return true
		}
	}
	return false
}

// validateSupervisorKnobs checks the thermal-supervisor knob ranges
// shared by the simulate and stream specs; prefix is the JSON path
// ("simulate" or "stream"). Call on a withDefaults() copy so zero
// (defaulted) knobs are already resolved.
func validateSupervisorKnobs(prefix string, fairC, seriousC, criticalC, seriousScale, criticalScale, retryAfter, coolTime float64) error {
	if !(fairC < seriousC && seriousC < criticalC) {
		return fieldErr(prefix+".fairC", "thermal-state ladder must ascend (fair %g, serious %g, critical %g)",
			fairC, seriousC, criticalC)
	}
	if seriousScale < 0 || seriousScale > 1 || criticalScale < 0 || criticalScale > 1 {
		return fieldErr(prefix+".seriousScale", "admission scales (serious %g, critical %g) out of [0, 1]",
			seriousScale, criticalScale)
	}
	if !(retryAfter > 0) {
		return fieldErr(prefix+".retryAfter", "admission RetryAfter %g must be positive", retryAfter)
	}
	if !(coolTime > 0) {
		return fieldErr(prefix+".coolTime", "zig-zag CoolTime %g must be positive", coolTime)
	}
	return nil
}

func validateSimulateFlow(r *Request) error {
	s := r.Simulate
	if s == nil {
		return nil
	}
	if !validSimulateController(s.Controller) {
		return fieldErr("simulate.controller", "unknown simulate controller %q (want one of %v)", s.Controller, simulateControllers)
	}
	if s.Replicas < 0 {
		return fieldErr("simulate.replicas", "negative replica count %d", s.Replicas)
	}
	if s.Replicas > MaxSimulateReplicas {
		return fieldErr("simulate.replicas", "%d replicas exceed the limit %d", s.Replicas, MaxSimulateReplicas)
	}
	if s.DT < 0 || s.TimeScale < 0 {
		return fieldErr("simulate.dt", "negative simulate step (dt %g, timeScale %g)", s.DT, s.TimeScale)
	}
	if s.MinFactor < 0 || s.MinFactor > 1 {
		return fieldErr("simulate.minFactor", "simulate MinFactor %g out of (0, 1]", s.MinFactor)
	}
	n := s.withDefaults()
	return validateSupervisorKnobs("simulate", n.FairC, n.SeriousC, n.CriticalC,
		n.SeriousScale, n.CriticalScale, n.RetryAfter, n.CoolTime)
}

func validateStreamFlow(r *Request) error {
	return r.Stream.validate()
}

// checkPolicy validates the request's Policy field against the flow's
// policy family.
func (fs *flowSpec) checkPolicy(r *Request) error {
	if fs.onlinePolicy {
		if _, err := stream.ParsePolicy(r.Policy); err != nil {
			return fieldErr("policy", "%v", err)
		}
		return nil
	}
	if _, err := r.policy(); err != nil {
		return fieldErr("policy", "%v", err)
	}
	return nil
}
