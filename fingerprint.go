package thermalsched

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Fingerprint returns a stable hex digest of the request's canonical
// form: two requests with equal fingerprints are guaranteed to produce
// byte-identical Responses (modulo the wall-clock elapsedMs field), so
// the async job tier can coalesce identical in-flight or journaled
// requests onto one Engine evaluation. It is built like the Engine's
// modelKey and scenario.Spec.Fingerprint: every field is serialized
// explicitly, field by field — a reflective dump would silently
// destabilize the key on pointer fields. The thermalvet fpfields
// analyzer checks the registrations below against the struct
// definitions, so adding a field without serializing it here fails
// `go vet`; TestRequestFingerprintCoversFields keeps one slim
// runtime pin as belt-and-braces.
//
// Canonicalization rules:
//
//   - Seed normalizes nil to 1: a nil Seed "keeps the historical
//     default (1)" in every flow that consumes it (sweep and
//     cosynthesis), so nil and an explicit 1 coalesce. An explicit 0
//     is seed 0, distinct from both — the seed-zero contract.
//   - Parallelism is excluded: results are documented byte-identical
//     at every parallelism level, so requests differing only there
//     coalesce onto one evaluation.
//   - Solver serializes raw, NOT normalized: "" means "the engine's
//     backend", which only coincides with an explicit "dense" when the
//     engine default happens to be dense — the fingerprint cannot see
//     the engine. Keeping them distinct is the safe (one-way) direction.
//   - The other pointer-typed knobs (TempWeight, …, DTM, Simulate,
//     Campaign) serialize presence plus value, except DTM and Simulate
//     which serialize their withDefaults() normalization — the only
//     form the flows ever consume — so a nil spec, a zero spec and an
//     explicitly-default-valued spec all share one fingerprint.
//
// Distinct fingerprints do NOT imply distinct responses (two different
// seeds can happen to schedule identically); the guarantee is one-way,
// which is the safe direction for a coalescing key.
//
//thermalvet:serializes Request skip(Parallelism)
//thermalvet:serializes GraphSpec
//thermalvet:serializes TaskSpec
//thermalvet:serializes EdgeSpec
//thermalvet:serializes DTMSpec
//thermalvet:serializes CampaignSpec
func (r *Request) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "req/v4|%s|%s|%s|%s|%t|%g|", r.Flow, r.Benchmark, r.Policy, r.Solver, r.IncludeGantt, r.BusTimePerUnit)
	fpFloatPtr(h, r.TempWeight)
	fpFloatPtr(h, r.PowerWeight)
	fpFloatPtr(h, r.EnergyWeight)
	fpFloatPtr(h, r.ThermalHorizon)
	fmt.Fprintf(h, "%d|%d|%d|", r.MaxPEs, r.FloorplanGenerations, r.SweepCount)
	fmt.Fprintf(h, "ct%d|", len(r.CandidateTypes))
	for _, t := range r.CandidateTypes {
		fmt.Fprintf(h, "%s|", t)
	}
	seed := int64(1) // nil keeps the historical default
	if r.Seed != nil {
		seed = *r.Seed
	}
	fmt.Fprintf(h, "seed=%d|", seed)
	if r.Graph == nil {
		fmt.Fprint(h, "g-|")
	} else {
		g := r.Graph
		fmt.Fprintf(h, "g+%s|%g|t%d|", g.Name, g.Deadline, len(g.Tasks))
		for _, t := range g.Tasks {
			fmt.Fprintf(h, "%d,%s,%d;", t.ID, t.Name, t.Type)
		}
		fmt.Fprintf(h, "e%d|", len(g.Edges))
		for _, e := range g.Edges {
			fmt.Fprintf(h, "%d,%d,%g,%g;", e.From, e.To, e.Data, e.Prob)
		}
	}
	if r.Scenario == nil {
		fmt.Fprint(h, "sc-|")
	} else {
		// Scenario specs already define the canonical fingerprint the
		// Engine's scenario cache keys on; reuse it verbatim.
		fmt.Fprintf(h, "sc+%s|", r.Scenario.Fingerprint())
	}
	if r.Stream == nil {
		fmt.Fprint(h, "st-|")
	} else {
		// Stream specs define their own canonical fingerprint (workload
		// half keyed like the stream cache, dispatch half normalized).
		fmt.Fprintf(h, "st+%s|", r.Stream.fingerprint())
	}
	d := r.DTM.withDefaults()
	fmt.Fprintf(h, "dtm:%s|%g|%g|%g|%g|%g|%g|%g|%g|%g|%d|%g|%d|",
		d.Controller, d.TriggerC, d.Hysteresis, d.Throttle, d.SetpointC, d.Kp, d.Ki,
		d.MinScale, d.SampleDT, d.TimeScale, d.Passes, d.MinFactor, d.SimSeed)
	s := r.Simulate.withDefaults()
	fpSimulateSpec(h, "sim:", s)
	c := r.Campaign.withDefaults()
	fmt.Fprintf(h, "cmp:%d|%d|%d|%d|p%d|", c.Scenarios, c.Seed, c.MinTasks, c.MaxTasks, len(c.Policies))
	for _, p := range c.Policies {
		fmt.Fprintf(h, "%s|", p)
	}
	fmt.Fprintf(h, "ctl%d|", len(c.Controllers))
	for _, p := range c.Controllers {
		fmt.Fprintf(h, "%s|", p)
	}
	if c.Template == nil {
		fmt.Fprint(h, "tpl-|")
	} else {
		fmt.Fprintf(h, "tpl+%s|", c.Template.Fingerprint())
	}
	// Unlike Request.Simulate, presence is semantic here: nil means
	// "static platform flow", a set spec (even zero-valued) means
	// "closed-loop co-simulation". Only the set case normalizes.
	if c.Simulate == nil {
		fmt.Fprint(h, "csim-|")
	} else {
		fpSimulateSpec(h, "csim+", c.Simulate.withDefaults())
	}
	// Presence is semantic here too: nil means "offline scenario
	// campaign", a set spec means "online stream campaign".
	if c.Stream == nil {
		fmt.Fprint(h, "cst-|")
	} else {
		fmt.Fprintf(h, "cst+%s|", c.Stream.fingerprint())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fpSimulateSpec serializes a withDefaults()-normalized SimulateSpec —
// the only form the flows ever consume — under the given tag, shared by
// the request's own spec and the campaign's embedded one.
//
//thermalvet:serializes SimulateSpec
func fpSimulateSpec(w io.Writer, tag string, s SimulateSpec) {
	fmt.Fprintf(w, "%s%s|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%g|%d|%t|%t|%d|",
		tag, s.Controller, s.TriggerC, s.Hysteresis, s.Throttle, s.SetpointC, s.Kp, s.Ki,
		s.MinScale, s.FairC, s.SeriousC, s.CriticalC, s.SeriousScale, s.CriticalScale,
		s.RetryAfter, s.CoolTime, s.DT, s.TimeScale, s.MinFactor, s.Seed, s.Conditional,
		s.WarmStart, s.Replicas)
}

// fpFloatPtr serializes an optional float knob as presence plus value:
// nil ("use the calibrated default") stays distinct from any explicit
// override, including an explicit zero.
func fpFloatPtr(w io.Writer, v *float64) {
	if v == nil {
		fmt.Fprint(w, "-|")
		return
	}
	fmt.Fprintf(w, "+%g|", *v)
}
