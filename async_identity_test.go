package thermalsched_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermalsched"
	"thermalsched/internal/jobs"
	"thermalsched/internal/service"
)

// asyncFlows is one representative, fully-seeded request per flow the
// engine supports. The async job tier must return byte-identical
// responses for every one of them.
func asyncFlows() map[string]thermalsched.Request {
	return map[string]thermalsched.Request{
		"platform": thermalsched.NewRequest(thermalsched.FlowPlatform,
			thermalsched.WithBenchmark("Bm1"), thermalsched.WithPolicy(thermalsched.ThermalAware)),
		"cosynthesis": thermalsched.NewRequest(thermalsched.FlowCoSynthesis,
			thermalsched.WithBenchmark("Bm1"), thermalsched.WithPolicy(thermalsched.MinTaskEnergy),
			thermalsched.WithFloorplanGenerations(4)),
		"sweep": thermalsched.NewRequest(thermalsched.FlowSweep,
			thermalsched.WithSweepCount(3), thermalsched.WithSeed(7)),
		"dtm": thermalsched.NewRequest(thermalsched.FlowDTM,
			thermalsched.WithBenchmark("Bm1"), thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithDTM(thermalsched.DTMSpec{Controller: "toggle", TriggerC: 80, Passes: 2})),
		"simulate": thermalsched.NewRequest(thermalsched.FlowSimulate,
			thermalsched.WithBenchmark("Bm2"), thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithSimulate(thermalsched.SimulateSpec{Replicas: 2, Seed: 3, MinFactor: 0.8})),
		"generate": thermalsched.NewRequest(thermalsched.FlowGenerate,
			thermalsched.WithScenario(thermalsched.ScenarioSpec{
				Seed: 11,
				Graph: thermalsched.ScenarioGraphParams{
					Tasks: 30, Shape: thermalsched.ScenarioShapeSeriesParallel, BranchDensity: 0.4,
				},
				Platform: thermalsched.ScenarioPlatformParams{PEs: 5, MinSpeed: 0.6, MaxSpeed: 2.0},
			})),
		"stream": thermalsched.NewRequest(thermalsched.FlowStream,
			thermalsched.WithStream(thermalsched.StreamSpec{
				Seed: 3, MinFactor: 0.8, Replicas: 2,
			})),
		"campaign": thermalsched.NewRequest(thermalsched.FlowCampaign,
			thermalsched.WithCampaign(thermalsched.CampaignSpec{
				Scenarios: 3, Seed: 9, MinTasks: 20, MaxTasks: 30,
				Policies: []string{"h3", "thermal"},
			})),
		"simulate-admit": thermalsched.NewRequest(thermalsched.FlowSimulate,
			thermalsched.WithBenchmark("Bm2"), thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithSimulate(thermalsched.SimulateSpec{
				Controller: "admit", Replicas: 2, Seed: 3, MinFactor: 0.8, WarmStart: true,
			})),
		"stream-zigzag": streamPolicyRequest(thermalsched.StreamPolicyZigzag),
	}
}

// streamPolicyRequest builds the seeded stream request the async suite
// runs under one named online policy.
func streamPolicyRequest(policy string) thermalsched.Request {
	req := thermalsched.NewRequest(thermalsched.FlowStream,
		thermalsched.WithStream(thermalsched.StreamSpec{
			Seed: 3, MinFactor: 0.8, Replicas: 2,
		}))
	req.Policy = policy
	return req
}

func normalizeResp(t *testing.T, resp *thermalsched.Response) string {
	t.Helper()
	resp.ElapsedMS = 0
	blob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// submitAndWait drives the job API over HTTP: POST /v1/jobs, then poll
// GET /v1/jobs/{id} to a terminal state.
func submitAndWait(t *testing.T, base string, req thermalsched.Request) jobs.Job {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !j.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", j.ID, j.State)
		}
		time.Sleep(10 * time.Millisecond)
		poll, err := http.Get(base + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(poll.Body).Decode(&j)
		poll.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if j.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", j.State, j.Error)
	}
	if j.Response == nil {
		t.Fatal("done job carries no response")
	}
	return j
}

// The async contract, end to end: for every flow, a job submitted via
// POST /v1/jobs resolves to a Response byte-identical to the
// synchronous Engine.Run, the journaled copy survives a service
// restart byte-for-byte, and the restarted service serves it without
// re-evaluating.
func TestAsyncJobIdenticalToSyncAcrossFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow async identity suite skipped in -short mode")
	}
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(engine, service.Config{Jobs: jobs.Config{JournalPath: journal}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())

	want := map[string]string{}
	for name, req := range asyncFlows() {
		// Sync surface: POST /v1/run on the same service.
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: sync status %d", name, resp.StatusCode)
		}
		var sync thermalsched.Response
		err = json.NewDecoder(resp.Body).Decode(&sync)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want[name] = normalizeResp(t, &sync)

		// Async surface: the job API.
		j := submitAndWait(t, srv.URL, req)
		if got := normalizeResp(t, j.Response); got != want[name] {
			t.Errorf("%s: async response diverges from sync:\n  sync  %.200s\n  async %.200s", name, want[name], got)
		}
	}
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same journal with a fresh engine: every flow's
	// persisted response must be served back byte-identical, with zero
	// re-evaluations.
	engine2, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := service.New(engine2, service.Config{Jobs: jobs.Config{JournalPath: journal}})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer func() {
		srv2.Close()
		svc2.Close()
	}()
	for name, req := range asyncFlows() {
		j := submitAndWait(t, srv2.URL, req)
		if !j.FromJournal {
			t.Errorf("%s: restarted service re-evaluated instead of replaying the journal", name)
		}
		if got := normalizeResp(t, j.Response); got != want[name] {
			t.Errorf("%s: journaled response diverges from sync:\n  sync    %.200s\n  journal %.200s", name, want[name], got)
		}
	}
	st := svc2.Jobs().Stats()
	if st.Counters.Evaluations != 0 {
		t.Errorf("restarted service ran %d evaluations, want 0", st.Counters.Evaluations)
	}
	if int(st.Counters.Replayed) != len(asyncFlows()) {
		t.Errorf("replayed %d journal records, want %d", st.Counters.Replayed, len(asyncFlows()))
	}
}

// scrapeMetrics fetches /metrics and returns sample name → value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("malformed metrics value %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// A duplicate submission of an identical request must pay zero extra
// engine evaluations — whether it lands while the original is still in
// flight (attached) or after it finished (served from the result
// store) — and both jobs must resolve to the same response bytes.
// Asserted through the public /metrics counters.
func TestAsyncDuplicateCoalescesToZeroExtraEvaluations(t *testing.T) {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(engine, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer func() {
		srv.Close()
		svc.Close()
	}()

	req := thermalsched.NewRequest(thermalsched.FlowCampaign,
		thermalsched.WithCampaign(thermalsched.CampaignSpec{
			Scenarios: 3, Seed: 42, MinTasks: 20, MaxTasks: 30,
			Policies: []string{"h3", "thermal"},
		}))
	a := submitAndWait(t, srv.URL, req)
	b := submitAndWait(t, srv.URL, req)
	if normalizeResp(t, a.Response) != normalizeResp(t, b.Response) {
		t.Error("coalesced duplicate returned different response bytes")
	}

	m := scrapeMetrics(t, srv.URL)
	if got := m["thermschedd_jobs_submitted_total"]; got != 2 {
		t.Errorf("submitted_total %g, want 2", got)
	}
	if got := m["thermschedd_engine_evaluations_total"]; got != 1 {
		t.Errorf("evaluations_total %g, want exactly 1 — the duplicate paid for an evaluation", got)
	}
	inflight := m[`thermschedd_coalesce_hits_total{kind="inflight"}`]
	stored := m[`thermschedd_coalesce_hits_total{kind="stored"}`]
	if inflight+stored != 1 {
		t.Errorf("coalesce hits inflight=%g stored=%g, want exactly one hit", inflight, stored)
	}
}
