package thermalsched

import (
	"context"
	"encoding/json"
	"testing"
)

// respJSON marshals a response with the wall-clock field zeroed, for
// byte-identity comparisons.
func respJSON(t *testing.T, resp *Response) string {
	t.Helper()
	r := *resp
	r.ElapsedMS = 0
	blob, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// The acceptance property of the parallel search backbone: for every
// paper benchmark, the co-synthesis Response JSON is byte-identical
// whether the search runs serially (parallelism 1), at an explicit
// parallel setting, or at the engine default (GOMAXPROCS).
func TestCoSynthesisResponseParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four co-synthesis runs per parallelism level skipped in -short mode")
	}
	e := testEngine(t)
	ctx := context.Background()
	for _, bench := range []string{"Bm1", "Bm2", "Bm3", "Bm4"} {
		serialReq := NewRequest(FlowCoSynthesis,
			WithBenchmark(bench), WithFloorplanGenerations(8), WithParallelism(1))
		serial, err := e.Run(ctx, serialReq)
		if err != nil {
			t.Fatal(err)
		}
		want := respJSON(t, serial)
		for _, p := range []int{0, 4} { // 0 = engine default
			req := NewRequest(FlowCoSynthesis,
				WithBenchmark(bench), WithFloorplanGenerations(8), WithParallelism(p))
			got, err := e.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if respJSON(t, got) != want {
				t.Errorf("%s: parallelism %d response diverged from serial", bench, p)
			}
		}
	}
}

// The generated-scenario campaign carries the same guarantee across the
// whole stack: one engine pinned serial, one with a parallel search
// backbone, byte-identical campaign reports.
func TestCampaignResponseParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("50-scenario campaign pair skipped in -short mode")
	}
	serialEngine, err := NewEngine(WithSearchParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallelEngine, err := NewEngine(WithSearchParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 50,
		Seed:      2005,
		MinTasks:  20,
		MaxTasks:  200,
	}))
	ctx := context.Background()
	serial, err := serialEngine.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelEngine.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if respJSON(t, serial) != respJSON(t, parallel) {
		t.Error("50-scenario campaign diverged between serial and parallel engines")
	}
}

// Search parallelism composes with the RunBatch worker pool: batch
// entries share the engine-wide token pool, every entry succeeds, and
// each equals its standalone serial run. (This is the parallel
// backbone's composed-concurrency path; CI runs it under -race.)
func TestRunBatchComposesWithSearchPool(t *testing.T) {
	e, err := NewEngine(WithWorkers(4), WithSearchParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = NewRequest(FlowCoSynthesis, WithBenchmark("Bm1"), WithFloorplanGenerations(6))
	}
	resps, err := e.RunBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Run(ctx, NewRequest(FlowCoSynthesis,
		WithBenchmark("Bm1"), WithFloorplanGenerations(6), WithParallelism(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := respJSON(t, serial)
	for i, resp := range resps {
		if resp.Error != "" {
			t.Fatalf("batch entry %d failed: %s", i, resp.Error)
		}
		if respJSON(t, resp) != want {
			t.Errorf("batch entry %d diverged from the standalone serial run", i)
		}
	}
}

// SearchMemoStats aggregates the floorplanner's memo accounting across
// co-synthesis runs, like ScenarioCacheStats does for scenarios.
func TestSearchMemoStats(t *testing.T) {
	e := testEngine(t)
	evals0, hits0 := e.SearchMemoStats()
	if evals0 != 0 || hits0 != 0 {
		t.Fatalf("fresh engine reports %d evals, %d hits", evals0, hits0)
	}
	_, err := e.Run(context.Background(), NewRequest(FlowCoSynthesis,
		WithBenchmark("Bm1"), WithFloorplanGenerations(8)))
	if err != nil {
		t.Fatal(err)
	}
	evals, hits := e.SearchMemoStats()
	if evals == 0 {
		t.Error("co-synthesis reported no packing evaluations")
	}
	if hits == 0 {
		t.Error("co-synthesis reported no memo hits (convergent GA populations revisit genomes)")
	}
}

// Request validation covers the new knob.
func TestRequestParallelismValidation(t *testing.T) {
	req := NewRequest(FlowCoSynthesis, WithBenchmark("Bm1"), WithParallelism(-2))
	if err := req.Validate(); err == nil {
		t.Error("negative parallelism accepted")
	}
	req = NewRequest(FlowPlatform, WithBenchmark("Bm1"), WithParallelism(4))
	if err := req.Validate(); err == nil {
		t.Error("parallelism on a non-search flow accepted (it would be silently ignored)")
	}
	req = NewRequest(FlowCoSynthesis, WithBenchmark("Bm1"), WithParallelism(4))
	if err := req.Validate(); err != nil {
		t.Errorf("cosynthesis parallelism rejected: %v", err)
	}
	if _, err := NewEngine(WithSearchParallelism(0)); err == nil {
		t.Error("zero engine search parallelism accepted")
	}
}
