package thermalsched

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/experiments"
	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	rt "thermalsched/internal/runtime"
	"thermalsched/internal/search"
	"thermalsched/internal/sim"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Engine is the primary entry point of the package: construct one with
// NewEngine, keep it for the life of the process, and feed it Requests.
// It owns the technology library, the parsed paper benchmarks, and a
// bounded cache of thermal-model factorizations keyed by floorplan and
// configuration, so repeated runs skip the setup the legacy free
// functions redid on every call. An Engine is safe for concurrent use.
type Engine struct {
	lib     *Library
	thermal ThermalConfig
	workers int
	// models is a bounded LRU of thermal models keyed by floorplan
	// geometry and configuration. Models are safe for concurrent
	// read-only use, so one cached instance can serve many RunBatch
	// workers at once; a hit reuses not only the Cholesky factorization
	// but also the model's lazily-built influence matrix — the
	// steady-state fast path every thermal inquiry rides — so repeated
	// thermal flows over one floorplan pay for both exactly once.
	models *search.LRU[*hotspot.Model]
	// scenarios memoizes generated synthetic scenarios by fingerprint,
	// so a campaign's policies share one generation per scenario;
	// streams does the same for generated online workloads.
	scenarios *fpCache[*Scenario]
	streams   *fpCache[*StreamWorkload]
	benches   map[string]*Graph
	ordered   []string // benchmark names in paper order
	// simTokens is the engine-wide parallelism pool for simulate-flow
	// replica fan-out; see runSimulateFlow.
	simTokens chan struct{}
	// search is the engine-wide parallel search backbone
	// (WithSearchParallelism): one token pool shared by every
	// co-synthesis run's candidate fan-out and GA floorplanner, so
	// search parallelism composes with the RunBatch worker pool without
	// oversubscription — acquisition is non-blocking and saturated jobs
	// run inline on their worker.
	search *search.Pool
	// searchEvals/searchMemoHits aggregate the floorplanner's memo
	// accounting across every co-synthesis run; see SearchMemoStats.
	searchEvals    atomic.Uint64
	searchMemoHits atomic.Uint64
}

// Option configures an Engine under construction; see NewEngine.
type Option func(*engineOptions)

type engineOptions struct {
	lib       *Library
	thermal   ThermalConfig
	workers   int
	cacheSize int
	searchPar int
}

// DefaultModelCacheSize bounds the Engine's thermal-model cache. A
// platform flow needs one entry; a co-synthesis run touches a few
// hundred candidate floorplans, most visited repeatedly by the GA.
const DefaultModelCacheSize = 512

// WithLibrary substitutes a custom technology library for the standard
// one.
func WithLibrary(lib *Library) Option {
	return func(o *engineOptions) { o.lib = lib }
}

// WithThermalConfig substitutes the thermal-model calibration used for
// every flow the Engine runs.
func WithThermalConfig(cfg ThermalConfig) Option {
	return func(o *engineOptions) { o.thermal = cfg }
}

// WithSolverBackend selects the steady-state thermal solver backend for
// every flow the Engine runs: one of hotspot.SolverNames (dense, the
// golden reference and the default; sparse; pcg). Equivalent to setting
// ThermalConfig.Solver through WithThermalConfig, and overridable per
// run via Request.Solver.
func WithSolverBackend(name string) Option {
	return func(o *engineOptions) { o.thermal.Solver = name }
}

// WithWorkers bounds RunBatch's worker pool (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(o *engineOptions) { o.workers = n }
}

// WithModelCacheSize bounds the thermal-model factorization cache; zero
// disables caching entirely.
func WithModelCacheSize(n int) Option {
	return func(o *engineOptions) { o.cacheSize = n }
}

// WithSearchParallelism bounds the engine's parallel search backbone:
// the concurrent candidate evaluations of the co-synthesis architecture
// loops and the GA floorplanner inside them (default: GOMAXPROCS; 1
// runs every search serially, the historical behavior). Candidates are
// always generated serially from the seeded RNG and merged in
// submission order, so results are byte-identical at every setting —
// parallelism only changes wall-clock. Requests can override the value
// per run via Request.Parallelism.
func WithSearchParallelism(n int) Option {
	return func(o *engineOptions) { o.searchPar = n }
}

// NewEngine builds an Engine: it loads (or accepts) the technology
// library, parses the paper benchmarks once, and prepares the thermal
// model cache.
func NewEngine(opts ...Option) (*Engine, error) {
	o := engineOptions{
		thermal:   hotspot.DefaultConfig(),
		workers:   runtime.GOMAXPROCS(0),
		cacheSize: DefaultModelCacheSize,
		searchPar: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		return nil, fmt.Errorf("thermalsched: engine needs at least 1 worker, got %d", o.workers)
	}
	if o.searchPar < 1 {
		return nil, fmt.Errorf("thermalsched: engine needs search parallelism of at least 1, got %d", o.searchPar)
	}
	if o.cacheSize < 0 {
		return nil, fmt.Errorf("thermalsched: negative model cache size %d", o.cacheSize)
	}
	if err := o.thermal.Validate(); err != nil {
		return nil, err
	}
	lib := o.lib
	if lib == nil {
		std, err := techlib.StandardLibrary()
		if err != nil {
			return nil, err
		}
		lib = std
	} else if err := lib.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		lib:       lib,
		thermal:   o.thermal,
		workers:   o.workers,
		models:    search.NewLRU[*hotspot.Model](o.cacheSize),
		scenarios: newFPCache[*Scenario](DefaultScenarioCacheSize),
		streams:   newFPCache[*StreamWorkload](DefaultScenarioCacheSize),
		benches:   make(map[string]*Graph),
		simTokens: make(chan struct{}, o.workers),
		search:    search.NewPool(o.searchPar),
	}
	for _, name := range taskgraph.BenchmarkNames() {
		g, err := taskgraph.Benchmark(name)
		if err != nil {
			return nil, err
		}
		e.benches[name] = g
		e.ordered = append(e.ordered, name)
	}
	return e, nil
}

// Library returns the engine's technology library.
func (e *Engine) Library() *Library { return e.lib }

// thermalFor resolves the thermal configuration for one request: the
// engine's calibration, with the request's Solver override applied when
// it differs. The common cases (no override, or an override naming the
// engine's own backend) return the engine's shared config pointer so
// every flow keys the model cache identically.
func (e *Engine) thermalFor(req *Request) *ThermalConfig {
	if req.Solver == "" || req.Solver == e.thermal.Solver {
		return &e.thermal
	}
	hs := e.thermal
	hs.Solver = req.Solver
	return &hs
}

// Benchmark returns a copy of the engine's pre-parsed paper benchmark.
// The copy is the caller's to mutate; the engine's cached graph stays
// pristine for subsequent runs.
func (e *Engine) Benchmark(name string) (*Graph, error) {
	g, err := e.benchmark(name)
	if err != nil {
		return nil, err
	}
	return g.Clone(), nil
}

// benchmark returns the shared parsed graph. Internal callers only
// read it (scheduling never mutates the input graph).
func (e *Engine) benchmark(name string) (*Graph, error) {
	if g, ok := e.benches[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("thermalsched: unknown benchmark %q (want one of %s)",
		name, strings.Join(e.ordered, ", "))
}

// resolveGraph materializes the request's input graph.
func (e *Engine) resolveGraph(req *Request) (*Graph, error) {
	if req.Graph != nil {
		return req.Graph.Graph()
	}
	return e.benchmark(req.Benchmark)
}

// runInput is a resolved request input: the task graph plus the
// library and platform substrate it runs on. Benchmark and inline-graph
// requests use the engine's standard library and the paper platform;
// scenario requests bring their own generated library and platform.
type runInput struct {
	graph    *Graph
	lib      *Library
	platform *cosynth.PlatformDesc // nil = the paper's 4-PE platform
	scen     *Scenario             // non-nil when generated
}

// resolveInput materializes the request's graph, library and platform.
func (e *Engine) resolveInput(req *Request) (*runInput, error) {
	if req.Scenario != nil {
		sc, err := e.scenarioFor(*req.Scenario)
		if err != nil {
			return nil, err
		}
		return &runInput{
			graph:    sc.Graph,
			lib:      sc.Lib,
			platform: &cosynth.PlatformDesc{TypeNames: sc.PETypeNames, Layout: sc.Layout},
			scen:     sc,
		}, nil
	}
	g, err := e.resolveGraph(req)
	if err != nil {
		return nil, err
	}
	return &runInput{graph: g, lib: e.lib}, nil
}

// Run validates and executes one request. Cancellation is threaded into
// every flow's hot loop — the ASP's greedy step, the GA floorplanner's
// packing evaluations and co-synthesis's candidate evaluations — so a
// cancelled context aborts promptly with an error wrapping ctx.Err().
func (e *Engine) Run(ctx context.Context, req Request) (*Response, error) {
	//thermalvet:allow walltime(elapsedMs is an observability stamp, documented as excluded from the byte-identity contract)
	start := time.Now()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Dispatch through the flow registry — the same table Validate,
	// FlowKinds() and the CLI help read, so a flow exists on every
	// surface or none.
	fs, ok := flowFor(req.Flow)
	if !ok { // unreachable after Validate
		return nil, fmt.Errorf("thermalsched: unknown flow %q", req.Flow)
	}
	resp, err := fs.run(e, ctx, &req)
	if err != nil {
		return nil, err
	}
	//thermalvet:allow walltime(elapsedMs is an observability stamp, documented as excluded from the byte-identity contract)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// RunBatch fans requests out across a bounded worker pool (WithWorkers)
// and returns one response per request, in order. Individual failures
// are reported in Response.Error rather than failing the batch; the
// returned error is non-nil only when ctx is cancelled, in which case
// unfinished entries carry the cancellation error.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) ([]*Response, error) {
	out := make([]*Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, err := e.Run(ctx, reqs[i])
				if err != nil {
					resp = &Response{Flow: reqs[i].Flow, Error: err.Error()}
				}
				out[i] = resp
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i, r := range out {
			if r == nil {
				out[i] = &Response{Flow: reqs[i].Flow, Error: err.Error()}
			}
		}
		return out, err
	}
	return out, nil
}

// Platform runs the platform-based flow (Fig. 1b) on a task graph and
// returns the full result — schedule, floorplan, thermal model and
// metrics. It is the typed counterpart of Run with FlowPlatform for
// callers who need more than the serializable Response.
func (e *Engine) Platform(ctx context.Context, g *Graph, opts ...RequestOption) (*FlowResult, error) {
	req := NewRequest(FlowPlatform, opts...)
	cfg, err := req.platformConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(&req)
	return e.platform(ctx, g, e.lib, cfg)
}

// CoSynthesize runs the co-synthesis flow (Fig. 1a) on a task graph and
// returns the full result. It is the typed counterpart of Run with
// FlowCoSynthesis.
func (e *Engine) CoSynthesize(ctx context.Context, g *Graph, opts ...RequestOption) (*FlowResult, error) {
	req := NewRequest(FlowCoSynthesis, opts...)
	cfg, err := req.cosynthConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(&req)
	return e.cosynthesize(ctx, g, e.lib, cfg)
}

// Sweep runs the randomized power-aware vs thermal-aware study with
// the engine's thermal calibration and model cache applied to every
// platform run.
func (e *Engine) Sweep(ctx context.Context, count int, seed int64) (*SweepResult, error) {
	return e.sweep(ctx, count, seed, &e.thermal)
}

// sweep is the request-aware body of Sweep: hs carries the thermal
// calibration (possibly a per-request solver override from thermalFor).
func (e *Engine) sweep(ctx context.Context, count int, seed int64, hs *ThermalConfig) (*SweepResult, error) {
	return experiments.RunSweepWith(ctx, e.lib, count, seed, cosynth.PlatformConfig{
		HotSpot: hs,
		Models:  e.modelProvider(),
	})
}

// ScalingTable runs the beyond-the-paper scaling study — the
// thermal-aware platform flow over generated scenarios of the given
// task counts on a generated heterogeneous platform — with the engine's
// thermal calibration and model cache applied to every run. Nil sizes
// means experiments.DefaultScalingSizes (20 → 500 tasks); zero pes
// means 8.
func (e *Engine) ScalingTable(ctx context.Context, sizes []int, pes int, seed int64) (*experiments.ScalingTable, error) {
	return experiments.RunScalingTable(ctx, sizes, pes, seed, cosynth.PlatformConfig{
		HotSpot: &e.thermal,
		Models:  e.modelProvider(),
	}, e.ModelCacheStats)
}

// platform executes the platform flow with the engine's thermal model
// cache wired in. lib is explicit so the deprecated free functions can
// route caller-supplied libraries through the shared engine.
func (e *Engine) platform(ctx context.Context, g *Graph, lib *Library, cfg cosynth.PlatformConfig) (*FlowResult, error) {
	if cfg.Models == nil {
		cfg.Models = e.modelProvider()
	}
	return cosynth.RunPlatformCtx(ctx, g, lib, cfg)
}

// cosynthesize executes the co-synthesis flow with the engine's thermal
// model cache and parallel search backbone wired in. A request-level
// Parallelism (cfg.Parallelism > 0) builds its own bounded pool;
// otherwise the engine-wide shared pool applies, so concurrent RunBatch
// workers draw search parallelism from one budget.
func (e *Engine) cosynthesize(ctx context.Context, g *Graph, lib *Library, cfg cosynth.CoSynthConfig) (*FlowResult, error) {
	if cfg.Models == nil {
		cfg.Models = e.modelProvider()
	}
	if cfg.Search == nil && cfg.Parallelism == 0 {
		cfg.Search = e.search
	}
	res, err := cosynth.RunCoSynthesisCtx(ctx, g, lib, cfg)
	if err != nil {
		return nil, err
	}
	e.searchEvals.Add(uint64(res.SearchEvals))
	e.searchMemoHits.Add(uint64(res.SearchMemoHits))
	return res, nil
}

func (e *Engine) runPlatformFlow(ctx context.Context, req *Request) (*Response, error) {
	in, err := e.resolveInput(req)
	if err != nil {
		return nil, err
	}
	cfg, err := req.platformConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(req)
	cfg.Platform = in.platform
	res, err := e.platform(ctx, in.graph, in.lib, cfg)
	if err != nil {
		return nil, err
	}
	resp, err := flowResponse(FlowPlatform, cfg.Policy, res, req.IncludeGantt, false)
	if err != nil {
		return nil, err
	}
	in.stamp(resp)
	return resp, nil
}

func (e *Engine) runCoSynthFlow(ctx context.Context, req *Request) (*Response, error) {
	in, err := e.resolveInput(req)
	if err != nil {
		return nil, err
	}
	cfg, err := req.cosynthConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(req)
	if in.scen != nil && cfg.CandidateTypes == nil {
		// A generated scenario brings its own library; co-synthesis
		// selects from its PE palette rather than the standard one.
		cfg.CandidateTypes = in.scen.PETypeNames
	}
	res, err := e.cosynthesize(ctx, in.graph, in.lib, cfg)
	if err != nil {
		return nil, err
	}
	resp, err := flowResponse(FlowCoSynthesis, cfg.Policy, res, req.IncludeGantt, true)
	if err != nil {
		return nil, err
	}
	in.stamp(resp)
	return resp, nil
}

// stamp records the generated scenario's fingerprint on a response so
// clients can key caches and reproduce the run.
func (in *runInput) stamp(resp *Response) {
	if in.scen != nil {
		resp.Fingerprint = in.scen.Fingerprint
	}
}

func (e *Engine) runSweepFlow(ctx context.Context, req *Request) (*Response, error) {
	count := req.SweepCount
	if count == 0 {
		count = 4
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	res, err := e.sweep(ctx, count, seed, e.thermalFor(req))
	if err != nil {
		return nil, err
	}
	return &Response{Flow: FlowSweep, Sweep: res}, nil
}

func (e *Engine) runDTMFlow(ctx context.Context, req *Request) (*Response, error) {
	in, err := e.resolveInput(req)
	if err != nil {
		return nil, err
	}
	cfg, err := req.platformConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(req)
	cfg.Platform = in.platform
	res, err := e.platform(ctx, in.graph, in.lib, cfg)
	if err != nil {
		return nil, err
	}
	spec := req.DTM.withDefaults()
	var ctrl DTMController
	switch spec.Controller {
	case "toggle":
		ctrl, err = dtm.NewToggleController(spec.TriggerC, spec.Hysteresis, spec.Throttle)
	case "pi":
		ctrl, err = dtm.NewPIController(spec.SetpointC, spec.Kp, spec.Ki, spec.MinScale)
	default: // unreachable after Validate
		err = fmt.Errorf("thermalsched: unknown DTM controller %q", spec.Controller)
	}
	if err != nil {
		return nil, err
	}
	exec, err := sim.Execute(res.Schedule, sim.Options{MinFactor: spec.MinFactor, Seed: spec.SimSeed})
	if err != nil {
		return nil, err
	}
	trace, err := exec.Trace(spec.SampleDT)
	if err != nil {
		return nil, err
	}
	pass, err := trace.Reorder(res.Model.BlockNames())
	if err != nil {
		return nil, err
	}
	samples := make([][]float64, 0, len(pass)*spec.Passes)
	for i := 0; i < spec.Passes; i++ {
		samples = append(samples, pass...)
	}
	dtmRes, err := dtm.Run(res.Model, ctrl, samples, spec.SampleDT*spec.TimeScale)
	if err != nil {
		return nil, err
	}
	resp, err := flowResponse(FlowDTM, cfg.Policy, res, req.IncludeGantt, false)
	if err != nil {
		return nil, err
	}
	resp.DTM = dtmReport(spec.Controller, dtmRes)
	in.stamp(resp)
	return resp, nil
}

// simSupervisor materializes a fresh thermal supervisor for the spec.
// Each replica gets its own instance: supervisors carry per-run state
// (throttle latches, PI integrals, admission holds, cooling gaps) and
// are not safe for concurrent use. The reactive controllers (toggle,
// pi) adapt to the supervisor contract behind the spec's ladder shim;
// admit and zigzag are proactive and gate dispatches through Admit.
func simSupervisor(spec SimulateSpec) (ThermalSupervisor, error) {
	ladder := spec.ladder()
	switch spec.Controller {
	case "toggle":
		c, err := dtm.NewToggleController(spec.TriggerC, spec.Hysteresis, spec.Throttle)
		if err != nil {
			return nil, err
		}
		return dtm.Supervise(c, ladder)
	case "pi":
		c, err := dtm.NewPIController(spec.SetpointC, spec.Kp, spec.Ki, spec.MinScale)
		if err != nil {
			return nil, err
		}
		return dtm.Supervise(c, ladder)
	case "admit":
		return dtm.NewAdmitController(ladder, spec.SeriousScale, spec.CriticalScale, spec.RetryAfter, spec.Hysteresis)
	case "zigzag":
		// A true idle gap (CoolScale 0), one supervisor step per DT.
		return dtm.NewZigZagController(ladder, spec.CoolTime, spec.DT, 0)
	case "none":
		return nil, nil
	default: // unreachable after Validate
		return nil, fmt.Errorf("thermalsched: unknown simulate controller %q", spec.Controller)
	}
}

// runSimulateFlow schedules on the platform, then co-simulates the
// schedule, the transient thermal model and the DTM controller in
// lockstep — Replicas seeded Monte-Carlo runs fanned across the
// engine's worker pool (replica i draws its realization from Seed+i).
func (e *Engine) runSimulateFlow(ctx context.Context, req *Request) (*Response, error) {
	in, err := e.resolveInput(req)
	if err != nil {
		return nil, err
	}
	cfg, err := req.platformConfig()
	if err != nil {
		return nil, err
	}
	cfg.HotSpot = e.thermalFor(req)
	cfg.Platform = in.platform
	res, err := e.platform(ctx, in.graph, in.lib, cfg)
	if err != nil {
		return nil, err
	}
	spec := req.Simulate.withDefaults()

	results := make([]*rt.Result, spec.Replicas)
	errs := make([]error, spec.Replicas)
	runReplica := func(i int) {
		sup, err := simSupervisor(spec)
		if err != nil {
			errs[i] = err
			return
		}
		rcfg := rt.Config{
			DT:         spec.DT,
			TimeScale:  spec.TimeScale,
			Supervisor: sup,
			WarmStart:  spec.WarmStart,
			Exec: sim.Options{
				MinFactor:   spec.MinFactor,
				Seed:        spec.Seed + int64(i),
				Conditional: spec.Conditional,
			},
		}
		results[i], errs[i] = rt.Simulate(ctx, res.Schedule, res.Model, rcfg)
	}
	// Replica fan-out draws extra parallelism from the engine-wide token
	// pool (shared with every concurrently running simulate flow, sized
	// to the worker count): when a token is free the replica runs on its
	// own goroutine, otherwise it runs inline here. This keeps the total
	// number of concurrent co-simulations bounded by the pool size even
	// when RunBatch workers each hit this path at once — a per-request
	// pool would multiply up to workers² goroutines. A request-level
	// Parallelism narrows this run to its own pool of P−1 tokens plus
	// the inline slot (P=1 is fully serial); either way results are
	// byte-identical — only wall-clock changes.
	tokens := e.simTokens
	if req.Parallelism > 0 {
		tokens = make(chan struct{}, req.Parallelism-1)
	}
	var wg sync.WaitGroup
	for i := 0; i < spec.Replicas; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-tokens }()
				runReplica(i)
			}(i)
		default:
			runReplica(i)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	makespans := make([]float64, spec.Replicas)
	peaks := make([]float64, spec.Replicas)
	throttles := make([]float64, spec.Replicas)
	misses, steps, energy, denials := 0, 0, 0.0, 0
	for i, r := range results {
		makespans[i] = r.Makespan
		peaks[i] = r.PeakTempC
		throttles[i] = r.ThrottleTime
		if !r.DeadlineMet {
			misses++
		}
		steps += r.Steps
		energy += r.Energy
		denials += r.AdmissionDenials
	}
	n := float64(spec.Replicas)
	report := &SimulateReport{
		Controller:           spec.Controller,
		Replicas:             spec.Replicas,
		StaticMakespan:       res.Schedule.Makespan,
		Deadline:             res.Schedule.Graph.Deadline,
		Makespan:             statsOf(makespans),
		PeakTempC:            statsOf(peaks),
		ThrottleTime:         statsOf(throttles),
		DeadlineMissRate:     float64(misses) / n,
		MeanSteps:            float64(steps) / n,
		MeanEnergy:           energy / n,
		MeanAdmissionDenials: float64(denials) / n,
	}
	resp, err := flowResponse(FlowSimulate, cfg.Policy, res, req.IncludeGantt, false)
	if err != nil {
		return nil, err
	}
	resp.Simulate = report
	in.stamp(resp)
	return resp, nil
}

// modelProvider returns the cosynth-layer hook backed by the engine's
// factorization cache.
func (e *Engine) modelProvider() cosynth.ModelProvider {
	if e.models.Cap() == 0 {
		return nil // caching disabled; cosynth falls back to hotspot.NewModel
	}
	return func(fp *floorplan.Floorplan, cfg hotspot.Config) (*hotspot.Model, error) {
		key := modelKey(fp, cfg)
		if m, ok := e.models.Get(key); ok {
			return m, nil
		}
		m, err := hotspot.NewModel(fp, cfg)
		if err != nil {
			return nil, err
		}
		e.models.Put(key, m)
		return m, nil
	}
}

// ModelCacheStats reports the thermal-model cache's hit/miss counters
// and current size, for observability and tests.
func (e *Engine) ModelCacheStats() (hits, misses uint64, size int) {
	return e.models.Stats()
}

// SearchMemoStats reports the floorplanner's expression-fingerprint
// memo accounting aggregated over every co-synthesis run the engine has
// executed: evals counts packings actually evaluated, memoHits the
// candidates answered from a memo instead — the search-side counterpart
// of ScenarioCacheStats.
func (e *Engine) SearchMemoStats() (evals, memoHits uint64) {
	return e.searchEvals.Load(), e.searchMemoHits.Load()
}

// modelKey fingerprints a (floorplan, thermal config) pair. Floorplans
// are keyed by exact block geometry, so two floorplans solve to the
// same factorization iff they are the same layout. The Config fields
// are serialized explicitly, field by field — a reflective "%+v" would
// silently produce colliding (pointer addresses) or unstable keys if
// Config ever gained pointer or slice fields. The thermalvet fpfields
// analyzer checks the registration below statically: a Config field
// missing from this serialization fails the lint job by name.
//
//thermalvet:serializes hotspot.Config
func modelKey(fp *floorplan.Floorplan, cfg hotspot.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "si=%g,die=%g,sivh=%g,iface=%g,spk=%g,spt=%g,spvh=%g,sps=%g,ring=%g,conv=%g,sinkc=%g,amb=%g,",
		cfg.SiliconConductivity, cfg.DieThickness, cfg.SiliconVolumetricHeat,
		cfg.InterfaceResistivity, cfg.SpreaderConductivity, cfg.SpreaderThickness,
		cfg.SpreaderVolumetricHeat, cfg.SpreaderToSinkResistance, cfg.SpreaderRingWidth,
		cfg.ConvectionResistance, cfg.SinkHeatCapacity, cfg.AmbientC)
	// The solver backend is part of the key: a cached model carries its
	// backend-specific factorization and influence representation, so a
	// dense and a sparse run over one floorplan must never share an
	// entry. "" normalizes to "dense" (SolverKind) so the default and
	// the explicit spelling do share one.
	slv := cfg.Solver
	if slv == "" {
		slv = hotspot.SolverDense
	}
	fmt.Fprintf(&b, "slv=%s,pcgtol=%g|", slv, cfg.PCGTolerance)
	for _, blk := range fp.Blocks() {
		fmt.Fprintf(&b, "%s:%g,%g,%g,%g;", blk.Name, blk.Rect.X, blk.Rect.Y, blk.Rect.W, blk.Rect.H)
	}
	return b.String()
}

// Default engine backing the deprecated package-level functions. It is
// built lazily so programs that construct their own Engine never pay
// for it.
var (
	defaultEngineOnce sync.Once
	defaultEngineVal  *Engine
	defaultEngineErr  error
)

// DefaultEngine returns the lazily-built shared Engine the deprecated
// package-level functions run on.
func DefaultEngine() (*Engine, error) {
	defaultEngineOnce.Do(func() {
		defaultEngineVal, defaultEngineErr = NewEngine()
	})
	return defaultEngineVal, defaultEngineErr
}
