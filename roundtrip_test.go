package thermalsched_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"testing"

	"thermalsched"
	"thermalsched/internal/service"
)

// A flow must round-trip identically through every surface: Engine.Run
// in-process, POST /v1/run over the service, and the CLI's -json mode
// all emit the same Response for the same seeded request (modulo the
// wall-clock elapsedMs field). crossSurface runs that check for one
// request and its equivalent CLI invocation.
func crossSurface(t *testing.T, req thermalsched.Request, cliArgs []string) {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI subprocess skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}

	normalize := func(resp *thermalsched.Response) string {
		resp.ElapsedMS = 0
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	// Surface 1: in-process Engine.
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := engine.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := normalize(direct)

	// Surface 2: the HTTP service.
	svc, err := service.New(engine, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("service status %d", httpResp.StatusCode)
	}
	var served thermalsched.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if got := normalize(&served); got != wantJSON {
		t.Errorf("service response diverges from Engine.Run:\n  engine  %s\n  service %s", wantJSON, got)
	}

	// Surface 3: the CLI's -json mode.
	out, err := exec.Command("go", append([]string{"run", "./cmd/thermsched"}, cliArgs...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("CLI failed: %v\n%s", err, out)
	}
	var cli thermalsched.Response
	if err := json.Unmarshal(out, &cli); err != nil {
		t.Fatalf("decoding CLI output: %v\n%s", err, out)
	}
	if got := normalize(&cli); got != wantJSON {
		t.Errorf("CLI response diverges from Engine.Run:\n  engine %s\n  cli    %s", wantJSON, got)
	}
}

func TestSimulateResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowSimulate,
			thermalsched.WithBenchmark("Bm2"),
			thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithSimulate(thermalsched.SimulateSpec{Replicas: 3, Seed: 5, MinFactor: 0.8}),
		),
		[]string{"-flow", "simulate", "-benchmark", "Bm2", "-policy", "thermal",
			"-replicas", "3", "-seed", "5", "-minfactor", "0.8", "-json"})
}

func TestGenerateResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowGenerate,
			thermalsched.WithScenario(thermalsched.ScenarioSpec{
				Seed: 11,
				Graph: thermalsched.ScenarioGraphParams{
					Tasks: 35, Shape: thermalsched.ScenarioShapeSeriesParallel, BranchDensity: 0.4,
				},
				Platform: thermalsched.ScenarioPlatformParams{
					PEs: 6, MinSpeed: 0.6, MaxSpeed: 2.0,
				},
			}),
		),
		[]string{"-flow", "generate", "-tasks", "35", "-shape", "series-parallel",
			"-branchfrac", "0.4", "-pes", "6", "-minspeed", "0.6", "-maxspeed", "2.0",
			"-seed", "11", "-json"})
}

// The proactive controller kinds must round-trip like the reactive
// ones: same spec (admission knobs included), same denials count, same
// bytes on every surface.
func TestSimulateAdmitResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowSimulate,
			thermalsched.WithBenchmark("Bm2"),
			thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithSimulate(thermalsched.SimulateSpec{
				Controller: "admit", Replicas: 3, Seed: 5, MinFactor: 0.8, WarmStart: true,
			}),
		),
		[]string{"-flow", "simulate", "-benchmark", "Bm2", "-policy", "thermal",
			"-controller", "admit", "-warmstart",
			"-replicas", "3", "-seed", "5", "-minfactor", "0.8", "-json"})
}

func TestSimulateZigzagResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowSimulate,
			thermalsched.WithBenchmark("Bm2"),
			thermalsched.WithPolicy(thermalsched.ThermalAware),
			thermalsched.WithSimulate(thermalsched.SimulateSpec{
				Controller: "zigzag", Replicas: 2, Seed: 5, MinFactor: 0.8, WarmStart: true, CoolTime: 3,
			}),
		),
		[]string{"-flow", "simulate", "-benchmark", "Bm2", "-policy", "thermal",
			"-controller", "zigzag", "-warmstart", "-cooltime", "3",
			"-replicas", "2", "-seed", "5", "-minfactor", "0.8", "-json"})
}

func TestStreamAdmitResponseIdenticalAcrossSurfaces(t *testing.T) {
	req := thermalsched.NewRequest(thermalsched.FlowStream,
		thermalsched.WithStream(thermalsched.StreamSpec{
			Seed: 3, MinFactor: 0.8, Replicas: 2,
		}))
	req.Policy = thermalsched.StreamPolicyAdmit
	crossSurface(t, req,
		[]string{"-flow", "stream", "-policy", "admit", "-seed", "3",
			"-minfactor", "0.8", "-replicas", "2", "-json"})
}

func TestStreamResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowStream,
			thermalsched.WithStream(thermalsched.StreamSpec{
				Seed: 3, MinFactor: 0.8, Replicas: 2,
			}),
		),
		[]string{"-flow", "stream", "-seed", "3", "-minfactor", "0.8",
			"-replicas", "2", "-json"})
}

func TestCampaignResponseIdenticalAcrossSurfaces(t *testing.T) {
	crossSurface(t,
		thermalsched.NewRequest(thermalsched.FlowCampaign,
			thermalsched.WithCampaign(thermalsched.CampaignSpec{
				Scenarios: 4,
				Seed:      9,
				MinTasks:  20,
				MaxTasks:  40,
				Policies:  []string{"h3", "thermal"},
			}),
		),
		[]string{"-flow", "campaign", "-scenarios", "4", "-seed", "9",
			"-mintasks", "20", "-maxtasks", "40", "-policies", "h3,thermal", "-json"})
}
