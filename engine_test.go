package thermalsched

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
)

// Golden equivalence: the deprecated free functions and the new Engine
// must agree bit-for-bit, so old call sites migrate without any metric
// drift.

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var benchmarkNames = []string{"Bm1", "Bm2", "Bm3", "Bm4"}

func TestEngineMatchesDeprecatedRunPlatform(t *testing.T) {
	e := testEngine(t)
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range benchmarkNames {
		for _, policy := range Policies() {
			g, err := Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			old, err := RunPlatform(g, lib, policy)
			if err != nil {
				t.Fatalf("%s/%s wrapper: %v", name, policy, err)
			}
			resp, err := e.Run(context.Background(), NewRequest(
				FlowPlatform, WithBenchmark(name), WithPolicy(policy),
			))
			if err != nil {
				t.Fatalf("%s/%s engine: %v", name, policy, err)
			}
			if *resp.Metrics != old.Metrics {
				t.Errorf("%s/%s metrics diverge:\n  wrapper %+v\n  engine  %+v",
					name, policy, old.Metrics, *resp.Metrics)
			}
		}
	}
}

func TestEngineMatchesDeprecatedRunCoSynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("co-synthesis equivalence skipped in -short mode")
	}
	e := testEngine(t)
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	// Reduced GA effort keeps the 4-benchmark sweep fast; equivalence
	// must hold at any effort since both sides receive the same config.
	const gens = 5
	for _, name := range benchmarkNames {
		g, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		old, err := RunCoSynthesisConfig(g, lib, CoSynthConfig{
			Policy: MinTaskEnergy, FloorplanGenerations: gens,
		})
		if err != nil {
			t.Fatalf("%s wrapper: %v", name, err)
		}
		resp, err := e.Run(context.Background(), NewRequest(
			FlowCoSynthesis,
			WithBenchmark(name),
			WithPolicy(MinTaskEnergy),
			WithFloorplanGenerations(gens),
		))
		if err != nil {
			t.Fatalf("%s engine: %v", name, err)
		}
		if *resp.Metrics != old.Metrics {
			t.Errorf("%s metrics diverge:\n  wrapper %+v\n  engine  %+v",
				name, old.Metrics, *resp.Metrics)
		}
	}
}

func TestEngineMatchesDeprecatedRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep equivalence skipped in -short mode")
	}
	e := testEngine(t)
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	old, err := RunSweep(lib, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Run(context.Background(), NewRequest(
		FlowSweep, WithSweepCount(3), WithSeed(7),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, resp.Sweep) {
		t.Errorf("sweep diverges:\n  wrapper %+v\n  engine  %+v", old, resp.Sweep)
	}
}

// RunBatch over Bm1–Bm4 must return exactly the metrics of four
// sequential Run calls, in order, while fanning out across workers.
func TestEngineRunBatchMatchesSequential(t *testing.T) {
	e, err := NewEngine(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for _, name := range benchmarkNames {
		reqs = append(reqs, NewRequest(FlowPlatform, WithBenchmark(name), WithPolicy(ThermalAware)))
	}
	batch, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("batch returned %d responses for %d requests", len(batch), len(reqs))
	}
	for i, req := range reqs {
		seq, err := e.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] == nil || batch[i].Error != "" {
			t.Fatalf("batch entry %d failed: %+v", i, batch[i])
		}
		if *batch[i].Metrics != *seq.Metrics {
			t.Errorf("%s batch/sequential metrics diverge:\n  batch %+v\n  seq   %+v",
				req.Benchmark, *batch[i].Metrics, *seq.Metrics)
		}
	}
}

// Cancellation mid co-synthesis must surface ctx.Err() promptly instead
// of finishing the (long) architecture search.
func TestEngineRunCancellation(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.Run(ctx, NewRequest(
		FlowCoSynthesis, WithBenchmark("Bm4"), WithPolicy(ThermalAware),
	))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled co-synthesis returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// A full Bm4 thermal co-synthesis takes tens of seconds; a prompt
	// abort is orders of magnitude faster. Generous bound for CI noise.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

func TestEngineRequestJSONRoundTrip(t *testing.T) {
	g, err := GenerateGraph(GenParams{
		Name: "wire", Tasks: 6, Edges: 6, Deadline: 900,
		Types: 8, Sources: 1, MaxData: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(
		FlowCoSynthesis,
		WithGraph(g),
		WithPolicy(MinTaskEnergy),
		WithSeed(0), // explicit zero must survive the wire
		WithMaxPEs(3),
		WithFloorplanGenerations(4),
		WithTempWeight(12.5),
	)
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Request
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, decoded) {
		t.Fatalf("request round trip diverges:\n  in  %+v\n  out %+v", req, decoded)
	}
	if decoded.Seed == nil || *decoded.Seed != 0 {
		t.Fatalf("explicit zero seed lost on the wire: %+v", decoded.Seed)
	}
	g2, err := decoded.Graph.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() || g2.Deadline != g.Deadline {
		t.Errorf("graph spec round trip diverges: %d/%d/%g vs %d/%d/%g",
			g2.NumTasks(), g2.NumEdges(), g2.Deadline, g.NumTasks(), g.NumEdges(), g.Deadline)
	}

	// A response must round trip too: it is the service's wire format.
	e := testEngine(t)
	resp, err := e.Run(context.Background(), NewRequest(FlowPlatform, WithBenchmark("Bm1")))
	if err != nil {
		t.Fatal(err)
	}
	blob, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var decodedResp Response
	if err := json.Unmarshal(blob, &decodedResp); err != nil {
		t.Fatal(err)
	}
	if *decodedResp.Metrics != *resp.Metrics {
		t.Errorf("response metrics round trip diverges")
	}
}

func TestEngineDTMFlow(t *testing.T) {
	e := testEngine(t)
	resp, err := e.Run(context.Background(), NewRequest(
		FlowDTM,
		WithBenchmark("Bm1"),
		WithPolicy(ThermalAware),
		WithDTM(DTMSpec{Controller: "toggle", TriggerC: 80, Passes: 2}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if resp.DTM == nil {
		t.Fatal("dtm flow returned no DTM report")
	}
	if resp.DTM.Steps <= 0 {
		t.Errorf("dtm ran %d steps", resp.DTM.Steps)
	}
	if resp.DTM.PeakTempC <= DefaultThermalConfig().AmbientC {
		t.Errorf("dtm peak %v not above ambient", resp.DTM.PeakTempC)
	}
	if resp.Metrics == nil || !resp.Metrics.Feasible {
		t.Errorf("dtm flow lost the underlying schedule metrics: %+v", resp.Metrics)
	}
}

func TestEngineModelCacheReuse(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 3; i++ {
		if _, err := e.Run(context.Background(), NewRequest(
			FlowPlatform, WithBenchmark("Bm1"), WithPolicy(ThermalAware),
		)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := e.ModelCacheStats()
	if misses != 1 || size != 1 {
		t.Errorf("platform flow should build one model once: hits %d, misses %d, size %d",
			hits, misses, size)
	}
	if hits < 2 {
		t.Errorf("expected cache hits on repeated platform runs, got %d", hits)
	}
}

func TestEngineRequestValidation(t *testing.T) {
	e := testEngine(t)
	bad := []Request{
		{},                   // no flow
		{Flow: "warp"},       // unknown flow
		{Flow: FlowPlatform}, // no graph source
		{Flow: FlowPlatform, Benchmark: "Bm1", Graph: &GraphSpec{}}, // both sources
		{Flow: FlowPlatform, Benchmark: "Bm1", Policy: "coldest"},   // unknown policy
		{Flow: FlowSweep, Benchmark: "Bm1"},                         // sweep with input graph
		{Flow: FlowPlatform, Benchmark: "Bm1", MaxPEs: -1},
		{Flow: FlowPlatform, Benchmark: "Bm1", DTM: &DTMSpec{}}, // dtm knobs on platform
		{Flow: FlowDTM, Benchmark: "Bm1", DTM: &DTMSpec{Controller: "bangbang"}},
	}
	for i, req := range bad {
		if _, err := e.Run(context.Background(), req); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, req)
		}
	}
	if _, err := e.Run(context.Background(), NewRequest(FlowPlatform, WithBenchmark("Bm9"))); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestEngineGanttIncluded(t *testing.T) {
	e := testEngine(t)
	resp, err := e.Run(context.Background(), NewRequest(
		FlowPlatform, WithBenchmark("Bm1"), WithGantt(),
	))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gantt == "" {
		t.Error("requested gantt missing from response")
	}
	resp, err = e.Run(context.Background(), NewRequest(FlowPlatform, WithBenchmark("Bm1")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gantt != "" {
		t.Error("unrequested gantt present in response")
	}
}

// Concurrent thermal runs share one cached model, and with it one
// lazily-built influence matrix (the steady-state fast path): the
// results must match a sequential run exactly.
func TestEngineConcurrentThermalRunsShareModel(t *testing.T) {
	e := testEngine(t)
	req := NewRequest(FlowPlatform, WithBenchmark("Bm2"), WithPolicy(ThermalAware))
	want, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = req
	}
	out, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range out {
		if resp.Error != "" {
			t.Fatalf("batch entry %d failed: %s", i, resp.Error)
		}
		if !reflect.DeepEqual(resp.Metrics, want.Metrics) {
			t.Errorf("batch entry %d metrics %+v, want %+v", i, resp.Metrics, want.Metrics)
		}
	}
	if _, misses, _ := e.ModelCacheStats(); misses != 1 {
		t.Errorf("concurrent thermal runs built the model %d times, want 1", misses)
	}
}

// The simulate flow is deterministic for a seeded request even though
// replicas fan out across the worker pool: two runs — and a fresh
// engine — produce the identical report.
func TestEngineSimulateFlowDeterministic(t *testing.T) {
	req := NewRequest(FlowSimulate,
		WithBenchmark("Bm2"),
		WithPolicy(ThermalAware),
		WithSimulate(SimulateSpec{Replicas: 8, Seed: 11, MinFactor: 0.7}),
	)
	e := testEngine(t)
	a, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testEngine(t).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Simulate, b.Simulate) {
		t.Errorf("same engine diverges:\n  %+v\n  %+v", a.Simulate, b.Simulate)
	}
	if !reflect.DeepEqual(a.Simulate, c.Simulate) {
		t.Errorf("fresh engine diverges:\n  %+v\n  %+v", a.Simulate, c.Simulate)
	}
	if a.Simulate.Replicas != 8 || a.Simulate.DeadlineMissRate < 0 {
		t.Errorf("report malformed: %+v", a.Simulate)
	}
}

// Closed-loop feedback at the engine level: a trigger below the
// schedule's steady-state peak stretches the realized makespan past the
// unthrottled ("none" controller) run's.
func TestEngineSimulateClosedLoop(t *testing.T) {
	e := testEngine(t)
	free, err := e.Run(context.Background(), NewRequest(FlowSimulate,
		WithBenchmark("Bm1"), WithSimulate(SimulateSpec{Controller: "none"})))
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := e.Run(context.Background(), NewRequest(FlowSimulate,
		WithBenchmark("Bm1"), WithSimulate(SimulateSpec{Controller: "toggle", TriggerC: 60})))
	if err != nil {
		t.Fatal(err)
	}
	if free.Simulate.ThrottleTime.Max != 0 {
		t.Errorf("controller none reported throttle time %+v", free.Simulate.ThrottleTime)
	}
	if !(throttled.Simulate.Makespan.Mean > free.Simulate.Makespan.Mean) {
		t.Errorf("throttled makespan %+v not above unthrottled %+v",
			throttled.Simulate.Makespan, free.Simulate.Makespan)
	}
	if throttled.Simulate.ThrottleTime.Min <= 0 {
		t.Errorf("trigger below peak produced no throttling: %+v", throttled.Simulate.ThrottleTime)
	}
}

func TestEngineSimulateRequestValidation(t *testing.T) {
	e := testEngine(t)
	bad := []Request{
		{Flow: FlowPlatform, Benchmark: "Bm1", Simulate: &SimulateSpec{}}, // simulate knobs on platform
		{Flow: FlowSimulate, Benchmark: "Bm1", Simulate: &SimulateSpec{Controller: "bangbang"}},
		{Flow: FlowSimulate, Benchmark: "Bm1", Simulate: &SimulateSpec{Replicas: -1}},
		{Flow: FlowSimulate, Benchmark: "Bm1", Simulate: &SimulateSpec{MinFactor: 2}},
		{Flow: FlowSimulate, Benchmark: "Bm1", Simulate: &SimulateSpec{DT: -1}},
	}
	for i, req := range bad {
		if _, err := e.Run(context.Background(), req); err == nil {
			t.Errorf("bad simulate request %d accepted: %+v", i, req)
		}
	}
}

// modelKey must key on every Config field: perturbing any one of them
// yields a distinct cache key, and equal inputs yield equal keys.
func TestModelKeyDistinctConfigs(t *testing.T) {
	fp, err := floorplan.Row("pe", 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultThermalConfig()
	k0 := modelKey(fp, base)
	if k0 != modelKey(fp, base) {
		t.Fatal("equal inputs produced different keys")
	}
	rv := reflect.TypeOf(base)
	for i := 0; i < rv.NumField(); i++ {
		cfg := base
		f := reflect.ValueOf(&cfg).Elem().Field(i)
		switch f.Kind() {
		case reflect.String:
			f.SetString(f.String() + "x")
		default:
			f.SetFloat(f.Float()*1.5 + 1)
		}
		if modelKey(fp, cfg) == k0 {
			t.Errorf("perturbing Config.%s did not change the model key", rv.Field(i).Name)
		}
	}
	// "" and the explicit default spelling build identical models and
	// must share one cache entry.
	dense := base
	dense.Solver = hotspot.SolverDense
	if modelKey(fp, dense) != k0 {
		t.Error(`Solver "" and "dense" should share a model key`)
	}
	fp2, err := floorplan.Row("pe", 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if modelKey(fp2, base) == k0 {
		t.Error("distinct floorplans share a model key")
	}
}

func TestSimulateReplicaCap(t *testing.T) {
	e := testEngine(t)
	_, err := e.Run(context.Background(), NewRequest(FlowSimulate,
		WithBenchmark("Bm1"),
		WithSimulate(SimulateSpec{Replicas: MaxSimulateReplicas + 1})))
	if err == nil {
		t.Fatal("over-limit replica count accepted")
	}
}
