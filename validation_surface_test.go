package thermalsched_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"

	"thermalsched"
	"thermalsched/internal/service"
)

// One validation message per surface is the consolidation contract:
// Request.Validate's typed field error is the text the service's 400
// body carries verbatim (plus the machine-readable field name), and
// the text the CLI prints to stderr. These cases cover the redesigned
// flows — each names the request shape, the expected field and the CLI
// flags that reproduce it.
func validationCases() []struct {
	name  string
	req   thermalsched.Request
	field string
	cli   []string
} {
	return []struct {
		name  string
		req   thermalsched.Request
		field string
		cli   []string
	}{
		{
			name:  "unknown flow",
			req:   thermalsched.Request{Flow: "psychic"},
			field: "flow",
			cli:   []string{"-flow", "psychic"},
		},
		{
			name:  "missing input",
			req:   thermalsched.Request{Flow: thermalsched.FlowPlatform, Policy: "thermal"},
			field: "input",
			cli:   []string{"-flow", "platform"},
		},
		{
			name: "stream with offline input",
			req: thermalsched.Request{Flow: thermalsched.FlowStream, Benchmark: "Bm1",
				Stream: &thermalsched.StreamSpec{Seed: 1}},
			field: "input",
			cli:   []string{"-flow", "stream", "-benchmark", "Bm1", "-seed", "1"},
		},
		{
			name: "offline policy on stream",
			req: thermalsched.Request{Flow: thermalsched.FlowStream, Policy: "thermal",
				Stream: &thermalsched.StreamSpec{Seed: 1}},
			field: "policy",
			cli:   []string{"-flow", "stream", "-policy", "thermal", "-seed", "1"},
		},
		{
			name: "online policy on offline flow",
			req: thermalsched.Request{Flow: thermalsched.FlowPlatform,
				Benchmark: "Bm1", Policy: "coolest"},
			field: "policy",
			cli:   []string{"-flow", "platform", "-benchmark", "Bm1", "-policy", "coolest"},
		},
		{
			name: "parallelism on a serial flow",
			req: thermalsched.Request{Flow: thermalsched.FlowPlatform,
				Benchmark: "Bm1", Policy: "thermal", Parallelism: 4},
			field: "parallelism",
			cli:   []string{"-flow", "platform", "-benchmark", "Bm1", "-parallelism", "4"},
		},
	}
}

func TestValidationMessagesSharedAcrossSurfaces(t *testing.T) {
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(engine, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for _, tc := range validationCases() {
		// Canonical message and field from the library surface.
		verr := tc.req.Validate()
		if verr == nil {
			t.Errorf("%s: Validate accepted the request", tc.name)
			continue
		}
		var fe *thermalsched.FieldError
		if !errors.As(verr, &fe) {
			t.Errorf("%s: %v is not a FieldError", tc.name, verr)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: field %q, want %q", tc.name, fe.Field, tc.field)
		}
		if !strings.HasPrefix(verr.Error(), "thermalsched: invalid "+tc.field+":") {
			t.Errorf("%s: message %q does not follow the canonical shape", tc.name, verr)
		}

		// The service 400 body carries the message verbatim plus the
		// field name.
		blob, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: service status %d, want 400", tc.name, resp.StatusCode)
		}
		if body.Error != verr.Error() {
			t.Errorf("%s: service message %q diverges from Validate's %q", tc.name, body.Error, verr)
		}
		if body.Field != tc.field {
			t.Errorf("%s: service field %q, want %q", tc.name, body.Field, tc.field)
		}
	}
}

// The CLI prints the same canonical text on its stderr. Subprocess
// round-trips are slow, so this covers the cases whose flags map
// directly; -short skips it like the other subprocess suites.
func TestValidationMessagesMatchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI subprocess skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, tc := range validationCases() {
		verr := tc.req.Validate()
		if verr == nil {
			t.Fatalf("%s: Validate accepted the request", tc.name)
		}
		out, err := exec.Command("go", append([]string{"run", "./cmd/thermsched"}, tc.cli...)...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: CLI accepted invalid flags %v", tc.name, tc.cli)
			continue
		}
		if !strings.Contains(string(out), verr.Error()) {
			t.Errorf("%s: CLI output does not carry the canonical message\n  want %q\n  got  %s", tc.name, verr, out)
		}
	}
}
