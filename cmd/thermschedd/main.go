// Command thermschedd serves thermal-aware scheduling over HTTP/JSON:
// a thermalsched Engine behind the internal/service router.
//
// Usage:
//
//	thermschedd -addr :8080 -workers 8 -inflight 4
//
// Endpoints:
//
//	POST   /v1/run              {"flow":"platform","benchmark":"Bm1","policy":"thermal"}
//	POST   /v1/batch            [{"flow":"platform","benchmark":"Bm1"}, ...]
//	POST   /v1/jobs             submit a request asynchronously (202 + job snapshot)
//	GET    /v1/jobs/{id}        job status and, once done, the full response
//	GET    /v1/jobs/{id}/events job lifecycle as Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /metrics             Prometheus text-format counters and gauges
//	GET    /healthz
//
// Example:
//
//	curl -s localhost:8080/v1/run -d '{"flow":"platform","benchmark":"Bm1","policy":"thermal"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermalsched"
	"thermalsched/internal/jobs"
	"thermalsched/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		parallelism = flag.Int("parallelism", 0, "co-synthesis search parallelism (0 = per-request / GOMAXPROCS)")
		inflight    = flag.Int("inflight", service.DefaultMaxInFlight, "max requests executing at once")
		maxBatch    = flag.Int("maxbatch", service.DefaultMaxBatch, "max requests per batch call")
		cache       = flag.Int("cache", thermalsched.DefaultModelCacheSize, "thermal-model cache entries (0 disables)")
		journal     = flag.String("journal", "", "async-job journal file (JSONL; empty disables persistence)")
		jobWorkers  = flag.Int("jobworkers", jobs.DefaultWorkers, "async-job evaluation workers")
		queueDepth  = flag.Int("queue", jobs.DefaultQueueDepth, "async-job queue depth before 429s")
		rate        = flag.Float64("rate", 0, "per-client job submissions per second (0 = unlimited)")
		burst       = flag.Float64("burst", 0, "per-client job submission burst (0 = rate)")
	)
	flag.Parse()

	var opts []thermalsched.Option
	if *workers > 0 {
		opts = append(opts, thermalsched.WithWorkers(*workers))
	}
	if *parallelism > 0 {
		opts = append(opts, thermalsched.WithSearchParallelism(*parallelism))
	}
	opts = append(opts, thermalsched.WithModelCacheSize(*cache))
	engine, err := thermalsched.NewEngine(opts...)
	if err != nil {
		fatal(err)
	}
	svc, err := service.New(engine, service.Config{
		MaxInFlight: *inflight,
		MaxBatch:    *maxBatch,
		Jobs: jobs.Config{
			Workers:     *jobWorkers,
			QueueDepth:  *queueDepth,
			JournalPath: *journal,
		},
		RatePerSec: *rate,
		RateBurst:  *burst,
	})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("thermschedd: serving on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		log.Printf("thermschedd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermschedd:", err)
	os.Exit(1)
}
