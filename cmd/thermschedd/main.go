// Command thermschedd serves thermal-aware scheduling over HTTP/JSON:
// a thermalsched Engine behind the internal/service router.
//
// Usage:
//
//	thermschedd -addr :8080 -workers 8 -inflight 4
//
// Endpoints:
//
//	POST /v1/run    {"flow":"platform","benchmark":"Bm1","policy":"thermal"}
//	POST /v1/batch  [{"flow":"platform","benchmark":"Bm1"}, ...]
//	GET  /healthz
//
// Example:
//
//	curl -s localhost:8080/v1/run -d '{"flow":"platform","benchmark":"Bm1","policy":"thermal"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermalsched"
	"thermalsched/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		inflight = flag.Int("inflight", service.DefaultMaxInFlight, "max requests executing at once")
		maxBatch = flag.Int("maxbatch", service.DefaultMaxBatch, "max requests per batch call")
		cache    = flag.Int("cache", thermalsched.DefaultModelCacheSize, "thermal-model cache entries (0 disables)")
	)
	flag.Parse()

	var opts []thermalsched.Option
	if *workers > 0 {
		opts = append(opts, thermalsched.WithWorkers(*workers))
	}
	opts = append(opts, thermalsched.WithModelCacheSize(*cache))
	engine, err := thermalsched.NewEngine(opts...)
	if err != nil {
		fatal(err)
	}
	svc, err := service.New(engine, service.Config{MaxInFlight: *inflight, MaxBatch: *maxBatch})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("thermschedd: serving on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		log.Printf("thermschedd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermschedd:", err)
	os.Exit(1)
}
