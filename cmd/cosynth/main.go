// Command cosynth runs the paper's co-synthesis flow (Fig. 1a): deadline-
// driven PE selection with floorplanning and thermal extraction in the
// loop, then reports the customized architecture and its metrics.
//
// Usage:
//
//	cosynth -benchmark Bm2 -policy thermal
//	cosynth -graph my.tg -policy h3 -flp out.flp
package main

import (
	"flag"
	"fmt"
	"os"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy: baseline, h1, h2, h3, thermal")
		maxPEs    = flag.Int("maxpes", 6, "maximum PEs in the customized architecture")
		fpGens    = flag.Int("fpgens", 30, "GA floorplanner generations per candidate")
		flpOut    = flag.String("flp", "", "write the final floorplan to this .flp file")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
	)
	flag.Parse()

	g, err := loadGraph(*benchmark, *graphFile)
	if err != nil {
		fatal(err)
	}
	policy, err := sched.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	lib, err := techlib.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	res, err := cosynth.RunCoSynthesis(g, lib, cosynth.CoSynthConfig{
		Policy:               policy,
		MaxPEs:               *maxPEs,
		FloorplanGenerations: *fpGens,
	})
	if err != nil {
		fatal(err)
	}

	m := res.Metrics
	fmt.Printf("graph       %s (%d tasks, %d edges, deadline %g)\n",
		g.Name, g.NumTasks(), g.NumEdges(), g.Deadline)
	fmt.Printf("policy      %s\n", policy)
	fmt.Printf("architecture (%d PEs, cost %.0f):\n", len(res.Arch.PEs), m.Cost)
	for _, pe := range res.Arch.PEs {
		t := lib.PEType(pe.Type)
		fmt.Printf("  %-6s %-10s cost %5.0f  area %5.1f mm²\n",
			pe.Name, t.Name, t.Cost, t.Area*1e6)
	}
	feas := "meets deadline"
	if !m.Feasible {
		feas = "MISSES deadline"
	}
	fmt.Printf("makespan    %.1f (%s)\n", m.Makespan, feas)
	fmt.Printf("total pow   %.2f W\n", m.TotalPower)
	fmt.Printf("max temp    %.2f °C\n", m.MaxTemp)
	fmt.Printf("avg temp    %.2f °C\n", m.AvgTemp)
	fmt.Printf("floorplan   %s\n", res.Plan)

	if *flpOut != "" {
		f, err := os.Create(*flpOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Plan.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *gantt {
		fmt.Print(res.Schedule.Gantt())
	}
}

func loadGraph(benchmark, file string) (*taskgraph.Graph, error) {
	switch {
	case benchmark != "" && file != "":
		return nil, fmt.Errorf("use either -benchmark or -graph, not both")
	case benchmark != "":
		return taskgraph.Benchmark(benchmark)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadGraph(f)
	default:
		return nil, fmt.Errorf("need -benchmark or -graph")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosynth:", err)
	os.Exit(1)
}
