// Command benchdiff compares `go test -bench` output against one of
// the repository's checked-in BENCH_*.json baselines and reports
// regressions of the recorded hot paths. It is the nightly benchmark
// workflow's gatekeeper: benchmarks that regress more than the
// tolerance emit GitHub Actions warning annotations (or fail the run
// with -strict).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | tee bench.txt
//	benchdiff -baseline BENCH_2.json bench.txt
//	benchdiff -baseline BENCH_2.json -tolerance 0.10 -strict bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline mirrors the BENCH_*.json schema: benchmark name to the
// recorded operation cost. Entries without an "after" block (notes,
// ablations) are skipped.
type baseline struct {
	Description string                    `json:"description"`
	Benchmarks  map[string]*baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	After *struct {
		NsOp float64 `json:"ns_op"`
	} `json:"after"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSchedulerPolicies/thermal-8   16713   69042 ns/op   15696 B/op   102 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so names match the
// baseline keys.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name → ns/op from bench output. Duplicate names
// (e.g. -count > 1) keep the best run, matching benchstat's
// noise-resistant reading.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// result is one compared benchmark.
type result struct {
	name               string
	baseNs, gotNs      float64
	ratio              float64 // gotNs / baseNs
	regressed, missing bool
}

// compare evaluates the bench results against the baseline's recorded
// hot paths.
func compare(base *baseline, got map[string]float64, tolerance float64) []result {
	var out []result
	for name, entry := range base.Benchmarks {
		if entry == nil || entry.After == nil || entry.After.NsOp <= 0 {
			continue // annotation-only entries carry no comparable number
		}
		r := result{name: name, baseNs: entry.After.NsOp}
		ns, ok := got[name]
		if !ok {
			r.missing = true
		} else {
			r.gotNs = ns
			r.ratio = ns / r.baseNs
			r.regressed = r.ratio > 1+tolerance
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_2.json", "baseline JSON file")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed ns/op growth before a benchmark counts as regressed")
		strict       = flag.Bool("strict", false, "exit non-zero on regressions instead of warning")
	)
	flag.Parse()

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		fatal(fmt.Errorf("benchdiff: parsing %s: %w", *baselinePath, err))
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark lines in input"))
	}

	regressions := 0
	for _, r := range compare(&base, got, *tolerance) {
		switch {
		case r.missing:
			fmt.Printf("::warning::benchdiff: %s is in the baseline but did not run\n", r.name)
		case r.regressed:
			regressions++
			fmt.Printf("::warning::benchdiff: %s regressed %.0f%%: %.0f ns/op vs baseline %.0f ns/op\n",
				r.name, 100*(r.ratio-1), r.gotNs, r.baseNs)
		default:
			fmt.Printf("benchdiff: %s ok: %.0f ns/op vs baseline %.0f ns/op (%.2fx)\n",
				r.name, r.gotNs, r.baseNs, r.ratio)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.0f%% of %s\n",
			regressions, 100**tolerance, *baselinePath)
		if *strict {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
