package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: thermalsched
BenchmarkHotSpotSteadyState-8        	 7654321	       160 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerPolicies/thermal-8 	   16713	     69042 ns/op	   15696 B/op	     102 allocs/op
BenchmarkSchedulerPolicies/baseline-8	   36000	     90000.5 ns/op
PASS
ok  	thermalsched	12.3s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkHotSpotSteadyState":         160,
		"BenchmarkSchedulerPolicies/thermal":  69042,
		"BenchmarkSchedulerPolicies/baseline": 90000.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %g ns/op, want %g", name, got[name], ns)
		}
	}
}

func TestParseBenchKeepsBestOfRepeats(t *testing.T) {
	in := "BenchmarkX-8 10 200 ns/op\nBenchmarkX-8 10 150 ns/op\nBenchmarkX-8 10 180 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 150 {
		t.Errorf("BenchmarkX = %g, want the best run 150", got["BenchmarkX"])
	}
}

func testBaseline(t *testing.T) *baseline {
	t.Helper()
	blob := `{
		"benchmarks": {
			"BenchmarkHotSpotSteadyState": {"after": {"ns_op": 156}},
			"BenchmarkSchedulerPolicies/thermal": {"after": {"ns_op": 69000}},
			"BenchmarkGone": {"after": {"ns_op": 100}},
			"BenchmarkNoteOnly": {"note": "no after block"}
		}
	}`
	var base baseline
	if err := json.Unmarshal([]byte(blob), &base); err != nil {
		t.Fatal(err)
	}
	return &base
}

func TestCompare(t *testing.T) {
	got := map[string]float64{
		"BenchmarkHotSpotSteadyState":        200,   // +28% → regressed at 10%
		"BenchmarkSchedulerPolicies/thermal": 70000, // +1.4% → within tolerance
	}
	results := compare(testBaseline(t), got, 0.10)
	if len(results) != 3 {
		t.Fatalf("compared %d benchmarks, want 3 (note-only entries skipped): %+v", len(results), results)
	}
	byName := map[string]result{}
	for _, r := range results {
		byName[r.name] = r
	}
	if r := byName["BenchmarkHotSpotSteadyState"]; !r.regressed {
		t.Errorf("28%% growth not flagged: %+v", r)
	}
	if r := byName["BenchmarkSchedulerPolicies/thermal"]; r.regressed {
		t.Errorf("1.4%% growth flagged at 10%% tolerance: %+v", r)
	}
	if r := byName["BenchmarkGone"]; !r.missing {
		t.Errorf("absent benchmark not marked missing: %+v", r)
	}
}

// The shipped baseline file must parse and carry comparable hot paths,
// so the nightly workflow cannot silently diff against nothing.
func TestShippedBaselineParses(t *testing.T) {
	results := compare(testBaseline(t), map[string]float64{}, 0.10)
	for _, r := range results {
		if !r.missing {
			t.Errorf("empty input produced non-missing result %+v", r)
		}
	}
}
