// Command thermsched runs one Engine flow on a task graph and reports
// the schedule, power and steady-state temperatures. The default flow
// maps the graph onto the paper's 4-PE platform (Fig. 1b); -flow
// selects co-synthesis, the randomized sweep, or the DTM study.
//
// Usage:
//
//	thermsched -benchmark Bm1 -policy thermal
//	thermsched -graph my.tg -policy h3 -gantt
//	thermsched -flow cosynthesis -benchmark Bm2 -json
//
// With -json the output is the same serializable Response schema that
// cmd/thermschedd serves over HTTP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"thermalsched"
	"thermalsched/internal/taskgraph"
)

func main() {
	var (
		flow      = flag.String("flow", "platform", "flow: platform, cosynthesis, sweep, dtm")
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy: baseline, h1, h2, h3, thermal")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
		tempW     = flag.Float64("tempweight", 0, "override the thermal DC weight (0 = default)")
		seed      = flag.Int64("seed", -1, "run seed (cosynthesis/sweep; negative = default)")
		count     = flag.Int("count", 0, "sweep graph count (0 = default)")
		asJSON    = flag.Bool("json", false, "emit the serializable Response schema as JSON")
	)
	flag.Parse()

	req := thermalsched.NewRequest(thermalsched.FlowKind(*flow))
	req.Policy = *policyStr
	if *gantt {
		req.IncludeGantt = true
	}
	if *tempW > 0 {
		req.TempWeight = tempW
	}
	if *seed >= 0 {
		req.Seed = seed
	}
	if *count > 0 {
		req.SweepCount = *count
	}
	if req.Flow != thermalsched.FlowSweep {
		g, err := loadGraph(*benchmark, *graphFile)
		if err != nil {
			fatal(err)
		}
		if g != nil {
			req.Graph = thermalsched.GraphSpecOf(g)
		} else {
			req.Benchmark = *benchmark
		}
	}

	engine, err := thermalsched.NewEngine()
	if err != nil {
		fatal(err)
	}
	resp, err := engine.Run(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	printHuman(resp)
}

// loadGraph returns a parsed graph for -graph, nil for -benchmark (the
// engine resolves benchmark names itself), or an error.
func loadGraph(benchmark, file string) (*thermalsched.Graph, error) {
	switch {
	case benchmark != "" && file != "":
		return nil, fmt.Errorf("use either -benchmark or -graph, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadGraph(f)
	case benchmark != "":
		return nil, nil
	default:
		return nil, fmt.Errorf("need -benchmark or -graph")
	}
}

func printHuman(resp *thermalsched.Response) {
	fmt.Printf("flow       %s\n", resp.Flow)
	if resp.Graph != "" {
		fmt.Printf("graph      %s\n", resp.Graph)
	}
	if resp.Policy != "" {
		fmt.Printf("policy     %s\n", resp.Policy)
	}
	if m := resp.Metrics; m != nil {
		fmt.Printf("makespan   %.1f (%s)\n", m.Makespan, feasStr(m.Feasible))
		fmt.Printf("total pow  %.2f W\n", m.TotalPower)
		fmt.Printf("max temp   %.2f °C\n", m.MaxTemp)
		fmt.Printf("avg temp   %.2f °C\n", m.AvgTemp)
		if resp.Flow == thermalsched.FlowCoSynthesis {
			fmt.Printf("cost       %.0f\n", m.Cost)
		}
	}
	if len(resp.Architecture) > 0 {
		fmt.Println("architecture:")
		for _, pe := range resp.Architecture {
			fmt.Printf("  %-6s %-10s %5.1f mm²\n", pe.Name, pe.Type, pe.AreaMM2)
		}
	}
	if len(resp.PerPE) > 0 {
		fmt.Println("per-PE:")
		for _, pe := range resp.PerPE {
			fmt.Printf("  %-6s %6.2f W  %7.2f °C\n", pe.Name, pe.PowerW, pe.TempC)
		}
	}
	if resp.Sweep != nil {
		fmt.Print(resp.Sweep)
	}
	if d := resp.DTM; d != nil {
		fmt.Printf("dtm        %s: peak %.2f °C, throttled %.1f%%, slowdown %.1f%% over %d steps\n",
			d.Controller, d.PeakTempC, 100*d.ThrottledFraction, 100*d.Slowdown, d.Steps)
	}
	if resp.Gantt != "" {
		fmt.Print(resp.Gantt)
	}
}

func feasStr(ok bool) string {
	if ok {
		return "meets deadline"
	}
	return "MISSES deadline"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermsched:", err)
	os.Exit(1)
}
