// Command thermsched runs one Engine flow on a task graph and reports
// the schedule, power and steady-state temperatures. The default flow
// maps the graph onto the paper's 4-PE platform (Fig. 1b); -flow
// selects co-synthesis, the randomized sweep, the open-loop DTM study,
// or the closed-loop runtime co-simulation.
//
// Usage:
//
//	thermsched -benchmark Bm1 -policy thermal
//	thermsched -graph my.tg -policy h3 -gantt
//	thermsched -flow cosynthesis -benchmark Bm2 -json
//	thermsched -flow simulate -benchmark Bm3 -replicas 16 -seed 1 -json
//
// With -json the output is the same serializable Response schema that
// cmd/thermschedd serves over HTTP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"thermalsched"
	"thermalsched/internal/taskgraph"
)

func main() {
	var (
		flow      = flag.String("flow", "platform", "flow: platform, cosynthesis, sweep, dtm, simulate")
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy: baseline, h1, h2, h3, thermal")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
		tempW     = flag.Float64("tempweight", 0, "override the thermal DC weight (0 = default)")
		seed      = flag.Int64("seed", -1, "run seed (cosynthesis/sweep/simulate; negative = default)")
		count     = flag.Int("count", 0, "sweep graph count (0 = default)")
		asJSON    = flag.Bool("json", false, "emit the serializable Response schema as JSON")

		// FlowSimulate knobs (closed-loop DTM co-simulation).
		controller = flag.String("controller", "", "simulate controller: toggle, pi, none (default toggle)")
		trigger    = flag.Float64("trigger", 0, "simulate toggle trigger / PI setpoint °C (0 = default)")
		replicas   = flag.Int("replicas", 0, "simulate Monte-Carlo replicas (0 = default 1)")
		minFactor  = flag.Float64("minfactor", 0, "simulate execution-time factor lower bound (0 = default 1)")
		warmStart  = flag.Bool("warmstart", false, "simulate from the steady-state operating point")
	)
	flag.Parse()

	req := thermalsched.NewRequest(thermalsched.FlowKind(*flow))
	req.Policy = *policyStr
	if *gantt {
		req.IncludeGantt = true
	}
	if *tempW > 0 {
		req.TempWeight = tempW
	}
	if *count > 0 {
		req.SweepCount = *count
	}
	if req.Flow == thermalsched.FlowSimulate {
		spec := thermalsched.SimulateSpec{
			Controller: *controller,
			TriggerC:   *trigger,
			SetpointC:  *trigger,
			Replicas:   *replicas,
			MinFactor:  *minFactor,
			WarmStart:  *warmStart,
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		req.Simulate = &spec
	} else if *seed >= 0 {
		req.Seed = seed
	}
	if req.Flow != thermalsched.FlowSweep {
		g, err := loadGraph(*benchmark, *graphFile)
		if err != nil {
			fatal(err)
		}
		if g != nil {
			req.Graph = thermalsched.GraphSpecOf(g)
		} else {
			req.Benchmark = *benchmark
		}
	}

	engine, err := thermalsched.NewEngine()
	if err != nil {
		fatal(err)
	}
	resp, err := engine.Run(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	printHuman(resp)
}

// loadGraph returns a parsed graph for -graph, nil for -benchmark (the
// engine resolves benchmark names itself), or an error.
func loadGraph(benchmark, file string) (*thermalsched.Graph, error) {
	switch {
	case benchmark != "" && file != "":
		return nil, fmt.Errorf("use either -benchmark or -graph, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadGraph(f)
	case benchmark != "":
		return nil, nil
	default:
		return nil, fmt.Errorf("need -benchmark or -graph")
	}
}

func printHuman(resp *thermalsched.Response) {
	fmt.Printf("flow       %s\n", resp.Flow)
	if resp.Graph != "" {
		fmt.Printf("graph      %s\n", resp.Graph)
	}
	if resp.Policy != "" {
		fmt.Printf("policy     %s\n", resp.Policy)
	}
	if m := resp.Metrics; m != nil {
		fmt.Printf("makespan   %.1f (%s)\n", m.Makespan, feasStr(m.Feasible))
		fmt.Printf("total pow  %.2f W\n", m.TotalPower)
		fmt.Printf("max temp   %.2f °C\n", m.MaxTemp)
		fmt.Printf("avg temp   %.2f °C\n", m.AvgTemp)
		if resp.Flow == thermalsched.FlowCoSynthesis {
			fmt.Printf("cost       %.0f\n", m.Cost)
		}
	}
	if len(resp.Architecture) > 0 {
		fmt.Println("architecture:")
		for _, pe := range resp.Architecture {
			fmt.Printf("  %-6s %-10s %5.1f mm²\n", pe.Name, pe.Type, pe.AreaMM2)
		}
	}
	if len(resp.PerPE) > 0 {
		fmt.Println("per-PE:")
		for _, pe := range resp.PerPE {
			fmt.Printf("  %-6s %6.2f W  %7.2f °C\n", pe.Name, pe.PowerW, pe.TempC)
		}
	}
	if resp.Sweep != nil {
		fmt.Print(resp.Sweep)
	}
	if d := resp.DTM; d != nil {
		fmt.Printf("dtm        %s: peak %.2f °C, throttled %.1f%%, slowdown %.1f%% over %d steps\n",
			d.Controller, d.PeakTempC, 100*d.ThrottledFraction, 100*d.Slowdown, d.Steps)
	}
	if s := resp.Simulate; s != nil {
		fmt.Printf("simulate   %s over %d replica(s), static makespan %.1f, deadline %.1f\n",
			s.Controller, s.Replicas, s.StaticMakespan, s.Deadline)
		fmt.Printf("  makespan      %s\n", statsLine(s.Makespan, "%.1f"))
		fmt.Printf("  peak temp °C  %s\n", statsLine(s.PeakTempC, "%.2f"))
		fmt.Printf("  throttle time %s\n", statsLine(s.ThrottleTime, "%.1f"))
		fmt.Printf("  deadline miss %.0f%%\n", 100*s.DeadlineMissRate)
	}
	if resp.Gantt != "" {
		fmt.Print(resp.Gantt)
	}
}

func statsLine(s thermalsched.Stats, f string) string {
	pat := fmt.Sprintf("mean %s  p50 %s  p90 %s  max %s", f, f, f, f)
	return fmt.Sprintf(pat, s.Mean, s.P50, s.P90, s.Max)
}

func feasStr(ok bool) string {
	if ok {
		return "meets deadline"
	}
	return "MISSES deadline"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermsched:", err)
	os.Exit(1)
}
