// Command thermsched runs one ASP policy on a task graph mapped onto the
// paper's 4-PE platform and reports the schedule, power and steady-state
// temperatures (the Fig. 1b flow).
//
// Usage:
//
//	thermsched -benchmark Bm1 -policy thermal
//	thermsched -graph my.tg -policy h3 -gantt
package main

import (
	"flag"
	"fmt"
	"os"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy: baseline, h1, h2, h3, thermal")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
		tempW     = flag.Float64("tempweight", 0, "override the thermal DC weight (0 = default)")
	)
	flag.Parse()

	g, err := loadGraph(*benchmark, *graphFile)
	if err != nil {
		fatal(err)
	}
	policy, err := sched.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	lib, err := techlib.StandardLibrary()
	if err != nil {
		fatal(err)
	}
	cfg := cosynth.PlatformConfig{Policy: policy}
	if *tempW > 0 {
		sc := sched.DefaultConfig(policy)
		sc.TempWeight = *tempW
		cfg.Sched = &sc
	}
	res, err := cosynth.RunPlatform(g, lib, cfg)
	if err != nil {
		fatal(err)
	}

	m := res.Metrics
	fmt.Printf("graph      %s (%d tasks, %d edges, deadline %g)\n",
		g.Name, g.NumTasks(), g.NumEdges(), g.Deadline)
	fmt.Printf("policy     %s\n", policy)
	fmt.Printf("makespan   %.1f (%s)\n", m.Makespan, feasStr(m.Feasible))
	fmt.Printf("total pow  %.2f W\n", m.TotalPower)
	fmt.Printf("max temp   %.2f °C\n", m.MaxTemp)
	fmt.Printf("avg temp   %.2f °C\n", m.AvgTemp)

	pow, err := res.Schedule.PEAveragePower(g.Deadline)
	if err != nil {
		fatal(err)
	}
	temps, err := res.Oracle.Temps(pow)
	if err != nil {
		fatal(err)
	}
	fmt.Println("per-PE:")
	for i, name := range res.Arch.PENames() {
		t, _ := temps.Of(name)
		fmt.Printf("  %-6s %6.2f W  %7.2f °C\n", name, pow[i], t)
	}
	if *gantt {
		fmt.Print(res.Schedule.Gantt())
	}
}

func loadGraph(benchmark, file string) (*taskgraph.Graph, error) {
	switch {
	case benchmark != "" && file != "":
		return nil, fmt.Errorf("use either -benchmark or -graph, not both")
	case benchmark != "":
		return taskgraph.Benchmark(benchmark)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadGraph(f)
	default:
		return nil, fmt.Errorf("need -benchmark or -graph")
	}
}

func feasStr(ok bool) string {
	if ok {
		return "meets deadline"
	}
	return "MISSES deadline"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermsched:", err)
	os.Exit(1)
}
