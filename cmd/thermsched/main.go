// Command thermsched runs one Engine flow on a task graph and reports
// the schedule, power and steady-state temperatures. The default flow
// maps the graph onto the paper's 4-PE platform (Fig. 1b); -flow
// selects co-synthesis, the randomized sweep, the open-loop DTM study,
// the closed-loop runtime co-simulation, synthetic-scenario generation,
// or a multi-scenario policy campaign.
//
// Usage:
//
//	thermsched -benchmark Bm1 -policy thermal
//	thermsched -graph my.tg -policy h3 -gantt
//	thermsched -flow cosynthesis -benchmark Bm2 -json
//	thermsched -flow cosynthesis -benchmark Bm2 -parallelism 4 -json
//	thermsched -flow simulate -benchmark Bm3 -replicas 16 -seed 1 -json
//	thermsched -flow generate -tasks 80 -pes 8 -seed 7 -json
//	thermsched -flow platform -tasks 80 -pes 8 -seed 7
//	thermsched -flow campaign -scenarios 50 -mintasks 20 -maxtasks 200 -seed 1
//
// Graph-consuming flows accept -tasks/-pes/… instead of a benchmark or
// graph file: the run then schedules a generated scenario on its own
// generated platform. With -json the output is the same serializable
// Response schema that cmd/thermschedd serves over HTTP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"thermalsched"
	"thermalsched/internal/taskgraph"
)

func main() {
	var (
		flow      = flag.String("flow", "platform", "flow: platform, cosynthesis, sweep, dtm, simulate, generate, campaign")
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy: baseline, h1, h2, h3, thermal")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
		tempW     = flag.Float64("tempweight", 0, "override the thermal DC weight (0 = default)")
		seed      = flag.Int64("seed", -1, "run seed (0 is a valid seed, honored verbatim; negative = default)")
		count     = flag.Int("count", 0, "sweep graph count (0 = default)")
		parallel  = flag.Int("parallelism", 0, "search parallelism for cosynthesis (0 = engine default GOMAXPROCS, 1 = serial; results are byte-identical at every value)")
		solver    = flag.String("solver", "", "thermal solver backend: dense, sparse, pcg (default dense; all backends agree to ≤1e-6 K)")
		asJSON    = flag.Bool("json", false, "emit the serializable Response schema as JSON")

		// FlowSimulate knobs (closed-loop DTM co-simulation).
		controller = flag.String("controller", "", "simulate controller: toggle, pi, none (default toggle)")
		trigger    = flag.Float64("trigger", 0, "simulate toggle trigger / PI setpoint °C (0 = default)")
		replicas   = flag.Int("replicas", 0, "simulate Monte-Carlo replicas (0 = default 1)")
		minFactor  = flag.Float64("minfactor", 0, "simulate execution-time factor lower bound (0 = default 1)")
		warmStart  = flag.Bool("warmstart", false, "simulate from the steady-state operating point")

		// Synthetic-scenario knobs (-flow generate, or any graph flow
		// with -tasks set).
		tasks      = flag.Int("tasks", 0, "generate a scenario with this many tasks instead of using a benchmark/graph")
		pes        = flag.Int("pes", 0, "generated platform PE count (0 = default 4)")
		shape      = flag.String("shape", "", "generated graph shape: layered, series-parallel (default layered)")
		ccr        = flag.Float64("ccr", 0, "generated communication-to-computation ratio (0 = default 0.1)")
		tightness  = flag.Float64("tightness", 0, "generated deadline tightness factor (0 = default 1.6)")
		branchFrac = flag.Float64("branchfrac", 0, "fraction of fan-out tasks made conditional branches")
		minSpeed   = flag.Float64("minspeed", 0, "generated platform minimum relative PE speed (0 = default 1)")
		maxSpeed   = flag.Float64("maxspeed", 0, "generated platform maximum relative PE speed (0 = default 1)")
		layout     = flag.String("layout", "", "generated floorplan layout: grid, row (default grid)")

		// FlowCampaign knobs.
		scenarios = flag.Int("scenarios", 0, "campaign scenario count (0 = default 8)")
		minTasks  = flag.Int("mintasks", 0, "campaign minimum tasks per scenario (0 = default 20)")
		maxTasks  = flag.Int("maxtasks", 0, "campaign maximum tasks per scenario (0 = default 60)")
		policies  = flag.String("policies", "", "campaign comma-separated policy list (default h3,thermal)")
		coSim     = flag.Bool("cosim", false, "campaign: run every cell through the closed-loop co-simulator")
	)
	flag.Parse()

	scenarioSpec := func() *thermalsched.ScenarioSpec {
		spec := &thermalsched.ScenarioSpec{
			Graph: thermalsched.ScenarioGraphParams{
				Tasks:         *tasks,
				Shape:         *shape,
				CCR:           *ccr,
				Tightness:     *tightness,
				BranchDensity: *branchFrac,
			},
			Platform: thermalsched.ScenarioPlatformParams{
				PEs:      *pes,
				MinSpeed: *minSpeed,
				MaxSpeed: *maxSpeed,
				Layout:   *layout,
			},
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		return spec
	}

	req := thermalsched.NewRequest(thermalsched.FlowKind(*flow))
	req.Policy = *policyStr
	if *gantt {
		req.IncludeGantt = true
	}
	if *tempW > 0 {
		req.TempWeight = tempW
	}
	if *count > 0 {
		req.SweepCount = *count
	}
	if *parallel != 0 {
		// Negative values flow through so Validate rejects them with
		// the same diagnostic the API surfaces.
		req.Parallelism = *parallel
	}
	req.Solver = *solver
	switch req.Flow {
	case thermalsched.FlowSimulate:
		spec := thermalsched.SimulateSpec{
			Controller: *controller,
			TriggerC:   *trigger,
			SetpointC:  *trigger,
			Replicas:   *replicas,
			MinFactor:  *minFactor,
			WarmStart:  *warmStart,
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		req.Simulate = &spec
	case thermalsched.FlowCampaign:
		camp := thermalsched.CampaignSpec{
			Scenarios: *scenarios,
			MinTasks:  *minTasks,
			MaxTasks:  *maxTasks,
		}
		if *seed >= 0 {
			camp.Seed = *seed
		}
		if *policies != "" {
			camp.Policies = strings.Split(*policies, ",")
		}
		if *coSim {
			sim := thermalsched.SimulateSpec{
				Controller: *controller,
				TriggerC:   *trigger,
				SetpointC:  *trigger,
				Replicas:   *replicas,
				MinFactor:  *minFactor,
				WarmStart:  *warmStart,
			}
			if *seed >= 0 {
				sim.Seed = *seed
			}
			camp.Simulate = &sim
		}
		if *tasks > 0 || *pes > 0 || *shape != "" || *layout != "" {
			tpl := scenarioSpec()
			tpl.Seed = 0 // per-scenario seeds come from the campaign master seed
			camp.Template = tpl
		}
		req.Campaign = &camp
	default:
		if *seed >= 0 {
			req.Seed = seed
		}
	}
	switch req.Flow {
	case thermalsched.FlowSweep, thermalsched.FlowCampaign:
		// These flows generate their own inputs.
	case thermalsched.FlowGenerate:
		req.Seed = nil
		req.Scenario = scenarioSpec()
	default:
		if *tasks > 0 {
			req.Seed = nil
			req.Scenario = scenarioSpec()
			break
		}
		g, err := loadGraph(*benchmark, *graphFile)
		if err != nil {
			fatal(err)
		}
		if g != nil {
			req.Graph = thermalsched.GraphSpecOf(g)
		} else {
			req.Benchmark = *benchmark
		}
	}

	engine, err := thermalsched.NewEngine()
	if err != nil {
		fatal(err)
	}
	resp, err := engine.Run(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	printHuman(resp)
}

// loadGraph returns a parsed graph for -graph, nil for -benchmark (the
// engine resolves benchmark names itself), or an error.
func loadGraph(benchmark, file string) (*thermalsched.Graph, error) {
	switch {
	case benchmark != "" && file != "":
		return nil, fmt.Errorf("use either -benchmark or -graph, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadGraph(f)
	case benchmark != "":
		return nil, nil
	default:
		return nil, fmt.Errorf("need -benchmark or -graph")
	}
}

func printHuman(resp *thermalsched.Response) {
	fmt.Printf("flow       %s\n", resp.Flow)
	if resp.Graph != "" {
		fmt.Printf("graph      %s\n", resp.Graph)
	}
	if resp.Policy != "" {
		fmt.Printf("policy     %s\n", resp.Policy)
	}
	if m := resp.Metrics; m != nil {
		fmt.Printf("makespan   %.1f (%s)\n", m.Makespan, feasStr(m.Feasible))
		fmt.Printf("total pow  %.2f W\n", m.TotalPower)
		fmt.Printf("max temp   %.2f °C\n", m.MaxTemp)
		fmt.Printf("avg temp   %.2f °C\n", m.AvgTemp)
		if resp.Flow == thermalsched.FlowCoSynthesis {
			fmt.Printf("cost       %.0f\n", m.Cost)
		}
	}
	if len(resp.Architecture) > 0 {
		fmt.Println("architecture:")
		for _, pe := range resp.Architecture {
			fmt.Printf("  %-6s %-10s %5.1f mm²\n", pe.Name, pe.Type, pe.AreaMM2)
		}
	}
	if len(resp.PerPE) > 0 {
		fmt.Println("per-PE:")
		for _, pe := range resp.PerPE {
			fmt.Printf("  %-6s %6.2f W  %7.2f °C\n", pe.Name, pe.PowerW, pe.TempC)
		}
	}
	if resp.Sweep != nil {
		fmt.Print(resp.Sweep)
	}
	if d := resp.DTM; d != nil {
		fmt.Printf("dtm        %s: peak %.2f °C, throttled %.1f%%, slowdown %.1f%% over %d steps\n",
			d.Controller, d.PeakTempC, 100*d.ThrottledFraction, 100*d.Slowdown, d.Steps)
	}
	if s := resp.Simulate; s != nil {
		fmt.Printf("simulate   %s over %d replica(s), static makespan %.1f, deadline %.1f\n",
			s.Controller, s.Replicas, s.StaticMakespan, s.Deadline)
		fmt.Printf("  makespan      %s\n", statsLine(s.Makespan, "%.1f"))
		fmt.Printf("  peak temp °C  %s\n", statsLine(s.PeakTempC, "%.2f"))
		fmt.Printf("  throttle time %s\n", statsLine(s.ThrottleTime, "%.1f"))
		fmt.Printf("  deadline miss %.0f%%\n", 100*s.DeadlineMissRate)
	}
	if sc := resp.Scenario; sc != nil {
		fmt.Printf("scenario   %s (fingerprint %s)\n", sc.Name, sc.Fingerprint)
		fmt.Printf("  %d tasks, %d edges, depth %d, %d source(s), %d sink(s), %d branch node(s)\n",
			sc.Tasks, sc.Edges, sc.Depth, sc.Sources, sc.Sinks, sc.BranchNodes)
		fmt.Printf("  deadline %g, realized CCR %.3f\n", sc.Deadline, sc.CCR)
		fmt.Printf("  platform: %d PEs, %d task types, %s layout\n", sc.PEs, sc.TaskTypes, sc.Layout)
	}
	if c := resp.Campaign; c != nil {
		fmt.Print(c)
		fmt.Println("rows:")
		for _, row := range c.Rows {
			fmt.Printf("  %-6s %-16s %4d tasks %4d edges %2d PEs |", row.Scenario, row.Shape, row.Tasks, row.Edges, row.PEs)
			for _, cell := range row.Cells {
				if cell.Error != "" {
					fmt.Printf("  %s: ERROR %s", cell.Policy, cell.Error)
					continue
				}
				fmt.Printf("  %s max %.1f °C", cell.Policy, cell.MaxTempC)
			}
			fmt.Println()
		}
	}
	if resp.Gantt != "" {
		fmt.Print(resp.Gantt)
	}
}

func statsLine(s thermalsched.Stats, f string) string {
	pat := fmt.Sprintf("mean %s  p50 %s  p90 %s  max %s", f, f, f, f)
	return fmt.Sprintf(pat, s.Mean, s.P50, s.P90, s.Max)
}

func feasStr(ok bool) string {
	if ok {
		return "meets deadline"
	}
	return "MISSES deadline"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermsched:", err)
	os.Exit(1)
}
