// Command thermsched runs one Engine flow on a task graph and reports
// the schedule, power and steady-state temperatures. The default flow
// maps the graph onto the paper's 4-PE platform (Fig. 1b); -flow
// selects any registered Engine flow — the value set, the per-flow help
// text and the validation rules all come from the same flow registry
// the library and the thermschedd service read.
//
// Usage:
//
//	thermsched -benchmark Bm1 -policy thermal
//	thermsched -graph my.tg -policy h3 -gantt
//	thermsched -flow cosynthesis -benchmark Bm2 -json
//	thermsched -flow cosynthesis -benchmark Bm2 -parallelism 4 -json
//	thermsched -flow simulate -benchmark Bm3 -replicas 16 -seed 1 -json
//	thermsched -flow generate -tasks 80 -pes 8 -seed 7 -json
//	thermsched -flow platform -tasks 80 -pes 8 -seed 7
//	thermsched -flow campaign -scenarios 50 -mintasks 20 -maxtasks 200 -seed 1
//	thermsched -flow stream -seed 3 -policy greedy -replicas 4 -json
//	thermsched -flow campaign -stream -scenarios 8 -seed 1
//	thermsched -flow simulate -benchmark Bm2 -controller admit -warmstart -json
//	thermsched -flow stream -seed 3 -policy admit -replicas 4
//	thermsched -flow campaign -controllers toggle,admit -scenarios 8 -seed 1
//
// Graph-consuming flows accept -tasks/-pes/… instead of a benchmark or
// graph file: the run then schedules a generated scenario on its own
// generated platform. The stream flow generates an online workload
// (periodic sources plus Poisson/bursty aperiodic arrivals) and
// dispatches it with -policy fifo|random|coolest|greedy. With -json the
// output is the same serializable Response schema that cmd/thermschedd
// serves over HTTP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"thermalsched"
	"thermalsched/internal/taskgraph"
)

func main() {
	var (
		flow      = flag.String("flow", "platform", "flow: "+thermalsched.FlowNames())
		benchmark = flag.String("benchmark", "", "paper benchmark (Bm1..Bm4)")
		graphFile = flag.String("graph", "", "task graph file (.tg)")
		policyStr = flag.String("policy", "thermal", "ASP policy (baseline, h1, h2, h3, thermal) or, for -flow stream, an online policy (fifo, random, coolest, greedy, admit, zigzag; default greedy)")
		gantt     = flag.Bool("gantt", false, "print the per-PE timeline")
		tempW     = flag.Float64("tempweight", 0, "override the thermal DC weight (0 = default)")
		seed      = flag.Int64("seed", -1, "run seed (0 is a valid seed, honored verbatim; negative = default)")
		count     = flag.Int("count", 0, "sweep graph count (0 = default)")
		parallel  = flag.Int("parallelism", 0, "search parallelism for cosynthesis (0 = engine default GOMAXPROCS, 1 = serial; results are byte-identical at every value)")
		solver    = flag.String("solver", "", "thermal solver backend: dense, sparse, pcg (default dense; all backends agree to ≤1e-6 K)")
		asJSON    = flag.Bool("json", false, "emit the serializable Response schema as JSON")

		// FlowSimulate knobs (closed-loop DTM co-simulation).
		controller = flag.String("controller", "", "simulate controller: toggle, pi, none, admit, zigzag (default toggle)")
		trigger    = flag.Float64("trigger", 0, "simulate toggle trigger / PI setpoint °C (0 = default)")
		replicas   = flag.Int("replicas", 0, "simulate Monte-Carlo replicas (0 = default 1)")
		minFactor  = flag.Float64("minfactor", 0, "simulate execution-time factor lower bound (0 = default 1)")
		warmStart  = flag.Bool("warmstart", false, "simulate from the steady-state operating point")

		// Thermal-supervisor knobs (simulate and stream flows; 0 = default).
		fairC      = flag.Float64("fairc", 0, "thermal-state ladder fair threshold °C (0 = default 72)")
		seriousC   = flag.Float64("seriousc", 0, "thermal-state ladder serious threshold °C (0 = default 80)")
		criticalC  = flag.Float64("criticalc", 0, "thermal-state ladder critical threshold °C (0 = default 88)")
		serScale   = flag.Float64("seriousscale", 0, "admit controller throttle factor in the serious state (0 = default 0.7)")
		critScale  = flag.Float64("criticalscale", 0, "admit controller throttle factor in the critical state (0 = default 0.4)")
		retryAfter = flag.Float64("retryafter", 0, "admit controller denial hold in loop time units (0 = default 2)")
		coolTime   = flag.Float64("cooltime", 0, "zigzag controller cooling-gap length in loop time units (0 = default 5)")

		// Synthetic-scenario knobs (-flow generate, or any graph flow
		// with -tasks set).
		tasks      = flag.Int("tasks", 0, "generate a scenario with this many tasks instead of using a benchmark/graph")
		pes        = flag.Int("pes", 0, "generated platform PE count (0 = default 4)")
		shape      = flag.String("shape", "", "generated graph shape: layered, series-parallel (default layered)")
		ccr        = flag.Float64("ccr", 0, "generated communication-to-computation ratio (0 = default 0.1)")
		tightness  = flag.Float64("tightness", 0, "generated deadline tightness factor (0 = default 1.6)")
		branchFrac = flag.Float64("branchfrac", 0, "fraction of fan-out tasks made conditional branches")
		minSpeed   = flag.Float64("minspeed", 0, "generated platform minimum relative PE speed (0 = default 1)")
		maxSpeed   = flag.Float64("maxspeed", 0, "generated platform maximum relative PE speed (0 = default 1)")
		layout     = flag.String("layout", "", "generated floorplan layout: grid, row (default grid)")

		// FlowCampaign knobs.
		scenarios = flag.Int("scenarios", 0, "campaign scenario count (0 = default 8)")
		minTasks  = flag.Int("mintasks", 0, "campaign minimum tasks per scenario (0 = default 20)")
		maxTasks  = flag.Int("maxtasks", 0, "campaign maximum tasks per scenario (0 = default 60)")
		policies  = flag.String("policies", "", "campaign comma-separated policy list (default h3,thermal; stream mode fifo,greedy)")
		coSim     = flag.Bool("cosim", false, "campaign: run every cell through the closed-loop co-simulator")
		ctrlDuel  = flag.String("controllers", "", "campaign comma-separated controller duel list (e.g. toggle,admit); implies -cosim with one scheduling policy")

		// FlowStream knobs (-flow stream, or -flow campaign -stream).
		// The generated platform reuses -pes/-minspeed/-maxspeed/-layout,
		// the dispatch reuses -replicas/-minfactor.
		streamMode = flag.Bool("stream", false, "campaign: online stream mode (cells are stream dispatches, policies are online)")
		horizon    = flag.Float64("horizon", 0, "stream arrival horizon in schedule time units (0 = default 600)")
		sources    = flag.Int("sources", 0, "stream periodic source count (0 = default 3)")
		arrRate    = flag.Float64("arrivalrate", 0, "stream aperiodic Poisson arrival rate per time unit (0 = default 0.05)")
		burst      = flag.Float64("burst", 0, "stream mean aperiodic burst size (0 = default 1: no bursts)")
		laxity     = flag.Float64("laxity", 0, "stream aperiodic deadline laxity in mean-WCET multiples (0 = default 4)")
		simSeed    = flag.Int64("simseed", 0, "stream replica-0 dispatch seed (replica i uses simseed+i; verbatim)")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nflows:\n%s", thermalsched.FlowUsage())
	}
	flag.Parse()
	policySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "policy" {
			policySet = true
		}
	})

	scenarioSpec := func() *thermalsched.ScenarioSpec {
		spec := &thermalsched.ScenarioSpec{
			Graph: thermalsched.ScenarioGraphParams{
				Tasks:         *tasks,
				Shape:         *shape,
				CCR:           *ccr,
				Tightness:     *tightness,
				BranchDensity: *branchFrac,
			},
			Platform: thermalsched.ScenarioPlatformParams{
				PEs:      *pes,
				MinSpeed: *minSpeed,
				MaxSpeed: *maxSpeed,
				Layout:   *layout,
			},
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		return spec
	}
	streamSpec := func() *thermalsched.StreamSpec {
		spec := &thermalsched.StreamSpec{
			Arrivals: thermalsched.StreamArrivalParams{
				Horizon:   *horizon,
				Sources:   *sources,
				Rate:      *arrRate,
				BurstMean: *burst,
				Laxity:    *laxity,
			},
			Platform: thermalsched.ScenarioPlatformParams{
				PEs:      *pes,
				MinSpeed: *minSpeed,
				MaxSpeed: *maxSpeed,
				Layout:   *layout,
			},
			MinFactor:     *minFactor,
			SimSeed:       *simSeed,
			Replicas:      *replicas,
			FairC:         *fairC,
			SeriousC:      *seriousC,
			CriticalC:     *criticalC,
			SeriousScale:  *serScale,
			CriticalScale: *critScale,
			RetryAfter:    *retryAfter,
			CoolTime:      *coolTime,
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		return spec
	}
	simulateSpec := func() *thermalsched.SimulateSpec {
		spec := &thermalsched.SimulateSpec{
			Controller:    *controller,
			TriggerC:      *trigger,
			SetpointC:     *trigger,
			Replicas:      *replicas,
			MinFactor:     *minFactor,
			WarmStart:     *warmStart,
			FairC:         *fairC,
			SeriousC:      *seriousC,
			CriticalC:     *criticalC,
			SeriousScale:  *serScale,
			CriticalScale: *critScale,
			RetryAfter:    *retryAfter,
			CoolTime:      *coolTime,
		}
		if *seed >= 0 {
			spec.Seed = *seed
		}
		return spec
	}

	req := thermalsched.NewRequest(thermalsched.FlowKind(*flow))
	req.Policy = *policyStr
	if req.Flow == thermalsched.FlowStream && !policySet {
		// The offline default ("thermal") must not leak into the online
		// policy family; an empty policy means greedy there.
		req.Policy = ""
	}
	if *gantt {
		req.IncludeGantt = true
	}
	if *tempW > 0 {
		req.TempWeight = tempW
	}
	if *count > 0 {
		req.SweepCount = *count
	}
	if *parallel != 0 {
		// Negative values flow through so Validate rejects them with
		// the same diagnostic the API surfaces.
		req.Parallelism = *parallel
	}
	req.Solver = *solver
	switch req.Flow {
	case thermalsched.FlowSimulate:
		req.Simulate = simulateSpec()
	case thermalsched.FlowCampaign:
		camp := thermalsched.CampaignSpec{
			Scenarios: *scenarios,
			MinTasks:  *minTasks,
			MaxTasks:  *maxTasks,
		}
		if *seed >= 0 {
			camp.Seed = *seed
		}
		if *policies != "" {
			camp.Policies = strings.Split(*policies, ",")
		}
		if *ctrlDuel != "" {
			camp.Controllers = strings.Split(*ctrlDuel, ",")
		}
		if *coSim || *ctrlDuel != "" {
			camp.Simulate = simulateSpec()
			// The duel's column axis names the controllers; the shared
			// spec's kind comes from each column, not -controller.
			if *ctrlDuel != "" {
				camp.Simulate.Controller = ""
			}
		}
		if *streamMode {
			st := streamSpec()
			st.Seed = 0 // per-workload seeds come from the campaign master seed
			camp.Stream = st
		} else if *tasks > 0 || *pes > 0 || *shape != "" || *layout != "" {
			tpl := scenarioSpec()
			tpl.Seed = 0 // per-scenario seeds come from the campaign master seed
			camp.Template = tpl
		}
		req.Campaign = &camp
	case thermalsched.FlowStream:
		req.Stream = streamSpec()
	default:
		if *seed >= 0 {
			req.Seed = seed
		}
	}
	switch req.Flow {
	case thermalsched.FlowSweep, thermalsched.FlowCampaign, thermalsched.FlowStream:
		// These flows generate their own inputs; the benchmark/graph
		// knobs still flow through below so Request.Validate rejects
		// them with its canonical extraneous-input message instead of
		// the CLI silently dropping them.
	case thermalsched.FlowGenerate:
		req.Seed = nil
		req.Scenario = scenarioSpec()
	default:
		if *tasks > 0 {
			req.Seed = nil
			req.Scenario = scenarioSpec()
		}
	}
	// Pass both input knobs through for every flow so Request.Validate
	// reports the missing-input, both-set and extraneous-input cases
	// with the same canonical messages the service's 400 bodies carry.
	g, err := loadGraph(*graphFile)
	if err != nil {
		fatal(err)
	}
	if g != nil {
		req.Graph = thermalsched.GraphSpecOf(g)
	}
	req.Benchmark = *benchmark

	engine, err := thermalsched.NewEngine()
	if err != nil {
		fatal(err)
	}
	resp, err := engine.Run(context.Background(), req)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	printHuman(resp)
}

// loadGraph parses the -graph file when one was given; input-arity
// errors (no input, both -benchmark and -graph) are left to
// Request.Validate so the CLI and the service share one message.
func loadGraph(file string) (*thermalsched.Graph, error) {
	if file == "" {
		return nil, nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return taskgraph.ReadGraph(f)
}

func printHuman(resp *thermalsched.Response) {
	fmt.Printf("flow       %s\n", resp.Flow)
	if resp.Graph != "" {
		fmt.Printf("graph      %s\n", resp.Graph)
	}
	if resp.Policy != "" {
		fmt.Printf("policy     %s\n", resp.Policy)
	}
	if m := resp.Metrics; m != nil {
		fmt.Printf("makespan   %.1f (%s)\n", m.Makespan, feasStr(m.Feasible))
		fmt.Printf("total pow  %.2f W\n", m.TotalPower)
		fmt.Printf("max temp   %.2f °C\n", m.MaxTemp)
		fmt.Printf("avg temp   %.2f °C\n", m.AvgTemp)
		if resp.Flow == thermalsched.FlowCoSynthesis {
			fmt.Printf("cost       %.0f\n", m.Cost)
		}
	}
	if len(resp.Architecture) > 0 {
		fmt.Println("architecture:")
		for _, pe := range resp.Architecture {
			fmt.Printf("  %-6s %-10s %5.1f mm²\n", pe.Name, pe.Type, pe.AreaMM2)
		}
	}
	if len(resp.PerPE) > 0 {
		fmt.Println("per-PE:")
		for _, pe := range resp.PerPE {
			fmt.Printf("  %-6s %6.2f W  %7.2f °C\n", pe.Name, pe.PowerW, pe.TempC)
		}
	}
	if resp.Sweep != nil {
		fmt.Print(resp.Sweep)
	}
	if d := resp.DTM; d != nil {
		fmt.Printf("dtm        %s: peak %.2f °C, throttled %.1f%%, slowdown %.1f%% over %d steps\n",
			d.Controller, d.PeakTempC, 100*d.ThrottledFraction, 100*d.Slowdown, d.Steps)
	}
	if s := resp.Simulate; s != nil {
		fmt.Printf("simulate   %s over %d replica(s), static makespan %.1f, deadline %.1f\n",
			s.Controller, s.Replicas, s.StaticMakespan, s.Deadline)
		fmt.Printf("  makespan      %s\n", statsLine(s.Makespan, "%.1f"))
		fmt.Printf("  peak temp °C  %s\n", statsLine(s.PeakTempC, "%.2f"))
		fmt.Printf("  throttle time %s\n", statsLine(s.ThrottleTime, "%.1f"))
		fmt.Printf("  deadline miss %.0f%%\n", 100*s.DeadlineMissRate)
		if s.MeanAdmissionDenials > 0 {
			fmt.Printf("  denials       %.1f per replica\n", s.MeanAdmissionDenials)
		}
	}
	if s := resp.Stream; s != nil {
		fmt.Printf("stream     %s policy over %d replica(s): %d jobs (%d periodic, %d aperiodic) on %d PEs, horizon %g\n",
			s.Policy, s.Replicas, s.Jobs, s.PeriodicJobs, s.AperiodicJobs, s.PEs, s.Horizon)
		fmt.Printf("  makespan      %s\n", statsLine(s.Makespan, "%.1f"))
		fmt.Printf("  peak temp °C  %s\n", statsLine(s.PeakTempC, "%.2f"))
		fmt.Printf("  miss rate     %s\n", statsLine(s.MissRate, "%.3f"))
		fmt.Printf("  mean response %s\n", statsLine(s.MeanResponse, "%.1f"))
		fmt.Printf("  price         %s (clairvoyant bound mean %.1f)\n", statsLine(s.Price, "%.3f"), s.OfflineBound.Mean)
		if s.MeanAdmissionDenials > 0 {
			fmt.Printf("  denials       %.1f per replica\n", s.MeanAdmissionDenials)
		}
	}
	if sc := resp.Scenario; sc != nil {
		fmt.Printf("scenario   %s (fingerprint %s)\n", sc.Name, sc.Fingerprint)
		fmt.Printf("  %d tasks, %d edges, depth %d, %d source(s), %d sink(s), %d branch node(s)\n",
			sc.Tasks, sc.Edges, sc.Depth, sc.Sources, sc.Sinks, sc.BranchNodes)
		fmt.Printf("  deadline %g, realized CCR %.3f\n", sc.Deadline, sc.CCR)
		fmt.Printf("  platform: %d PEs, %d task types, %s layout\n", sc.PEs, sc.TaskTypes, sc.Layout)
	}
	if c := resp.Campaign; c != nil {
		fmt.Print(c)
		fmt.Println("rows:")
		for _, row := range c.Rows {
			fmt.Printf("  %-6s %-16s %4d tasks %4d edges %2d PEs |", row.Scenario, row.Shape, row.Tasks, row.Edges, row.PEs)
			for _, cell := range row.Cells {
				if cell.Error != "" {
					fmt.Printf("  %s: ERROR %s", cell.Policy, cell.Error)
					continue
				}
				fmt.Printf("  %s max %.1f °C", cell.Policy, cell.MaxTempC)
			}
			fmt.Println()
		}
	}
	if resp.Gantt != "" {
		fmt.Print(resp.Gantt)
	}
}

func statsLine(s thermalsched.Stats, f string) string {
	pat := fmt.Sprintf("mean %s  p50 %s  p90 %s  max %s", f, f, f, f)
	return fmt.Sprintf(pat, s.Mean, s.P50, s.P90, s.Max)
}

func feasStr(ok bool) string {
	if ok {
		return "meets deadline"
	}
	return "MISSES deadline"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermsched:", err)
	os.Exit(1)
}
