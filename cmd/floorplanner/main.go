// Command floorplanner runs the thermal-aware GA floorplanner (or the SA
// ablation baseline) on a list of blocks and writes the resulting .flp.
//
// Blocks are given as comma-separated name:area_mm2[:minAspect:maxAspect]
// specs; per-block power (for the thermal objective) as name:watts pairs.
//
// Usage:
//
//	floorplanner -blocks "cpu:16,dsp:9,mem:25" -power "cpu:8,dsp:3" -o chip.flp
//	floorplanner -blocks "a:4,b:4,c:4,d:4" -algo sa -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
)

func main() {
	var (
		blocksSpec = flag.String("blocks", "", "comma-separated name:area_mm2[:minAR:maxAR] block specs")
		powerSpec  = flag.String("power", "", "comma-separated name:watts pairs for the thermal objective")
		algo       = flag.String("algo", "ga", "search algorithm: ga or sa")
		gens       = flag.Int("gens", 60, "GA generations")
		seed       = flag.Int64("seed", 1, "search seed")
		parallel   = flag.Int("parallelism", 1, "concurrent packing evaluations (results are byte-identical at every value)")
		tempWeight = flag.Float64("tempweight", 1.0, "thermal objective weight (0 = area only)")
		out        = flag.String("o", "", "output .flp file (default stdout)")
	)
	flag.Parse()

	blocks, err := parseBlocks(*blocksSpec)
	if err != nil {
		fatal(err)
	}
	power, err := parsePower(*powerSpec)
	if err != nil {
		fatal(err)
	}

	hs := hotspot.DefaultConfig()
	eval := func(fp *floorplan.Floorplan, pw map[string]float64) (float64, error) {
		m, err := hotspot.NewModel(fp, hs)
		if err != nil {
			return 0, err
		}
		t, err := m.SteadyState(pw)
		if err != nil {
			return 0, err
		}
		return t.Max(), nil
	}

	var res *floorplan.Result
	switch *algo {
	case "ga":
		cfg := floorplan.DefaultGAConfig()
		cfg.Generations = *gens
		cfg.Seed = *seed
		cfg.Parallelism = *parallel
		cfg.TempWeight = *tempWeight
		if *tempWeight > 0 && len(power) > 0 {
			cfg.Eval = eval
			cfg.Power = power
		} else {
			cfg.TempWeight = 0
		}
		res, err = floorplan.RunGA(blocks, cfg)
	case "sa":
		cfg := floorplan.DefaultSAConfig()
		cfg.Seed = *seed
		cfg.Parallelism = *parallel
		cfg.TempWeight = *tempWeight
		if *tempWeight > 0 && len(power) > 0 {
			cfg.Eval = eval
			cfg.Power = power
		} else {
			cfg.TempWeight = 0
		}
		res, err = floorplan.RunSA(blocks, cfg)
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want ga or sa)", *algo))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "%s: area %.2f mm² (deadspace %.1f%%), %d packings evaluated\n",
		*algo, res.Area*1e6, 100*res.Plan.Deadspace(), res.Evals)
	if res.PeakTemp == res.PeakTemp { // not NaN
		fmt.Fprintf(os.Stderr, "peak temperature %.2f °C\n", res.PeakTemp)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := res.Plan.Write(w); err != nil {
		fatal(err)
	}
}

func parseBlocks(spec string) ([]floorplan.Block, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("need -blocks")
	}
	var out []floorplan.Block
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 2 && len(parts) != 4 {
			return nil, fmt.Errorf("block spec %q: want name:area_mm2[:minAR:maxAR]", item)
		}
		area, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("block spec %q: bad area: %w", item, err)
		}
		b := floorplan.Block{Name: parts[0], Area: area * 1e-6, MinAspect: 0.5, MaxAspect: 2}
		if len(parts) == 4 {
			lo, err1 := strconv.ParseFloat(parts[2], 64)
			hi, err2 := strconv.ParseFloat(parts[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("block spec %q: bad aspect ratios", item)
			}
			b.MinAspect, b.MaxAspect = lo, hi
		}
		out = append(out, b)
	}
	return out, nil
}

func parsePower(spec string) (map[string]float64, error) {
	out := map[string]float64{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("power spec %q: want name:watts", item)
		}
		w, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("power spec %q: bad watts: %w", item, err)
		}
		out[parts[0]] = w
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floorplanner:", err)
	os.Exit(1)
}
