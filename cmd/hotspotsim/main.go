// Command hotspotsim runs the compact thermal model standalone: steady
// state from a floorplan and per-block powers, or a transient simulation
// driven by a .ptrace file.
//
// Usage:
//
//	hotspotsim -flp chip.flp -power "cpu:8,dsp:3"
//	hotspotsim -flp chip.flp -ptrace run.ptrace -dt 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
)

func main() {
	var (
		flpFile    = flag.String("flp", "", "floorplan file (.flp, HotSpot format)")
		powerSpec  = flag.String("power", "", "steady state: comma-separated name:watts")
		ptraceFile = flag.String("ptrace", "", "transient: power trace file")
		dt         = flag.Float64("dt", 0.01, "transient step in seconds")
		ambient    = flag.Float64("ambient", hotspot.DefaultConfig().AmbientC, "ambient temperature °C")
		solver     = flag.String("solver", "", fmt.Sprintf("steady-state solver backend %v (default dense)", hotspot.SolverNames()))
		heatMap    = flag.Int("map", 0, "render an ASCII heat map this many columns wide (steady state only)")
	)
	flag.Parse()

	if *flpFile == "" {
		fatal(fmt.Errorf("need -flp"))
	}
	f, err := os.Open(*flpFile)
	if err != nil {
		fatal(err)
	}
	fp, err := floorplan.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cfg := hotspot.DefaultConfig()
	cfg.AmbientC = *ambient
	cfg.Solver = *solver
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	model, err := hotspot.NewModel(fp, cfg)
	if err != nil {
		fatal(err)
	}

	switch {
	case *ptraceFile != "":
		runTransient(model, *ptraceFile, *dt)
	default:
		runSteady(model, fp, *powerSpec, *heatMap)
	}
}

func runSteady(model *hotspot.Model, fp *floorplan.Floorplan, powerSpec string, heatMap int) {
	power := map[string]float64{}
	if strings.TrimSpace(powerSpec) != "" {
		for _, item := range strings.Split(powerSpec, ",") {
			parts := strings.Split(strings.TrimSpace(item), ":")
			if len(parts) != 2 {
				fatal(fmt.Errorf("power spec %q: want name:watts", item))
			}
			w, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				fatal(fmt.Errorf("power spec %q: %w", item, err))
			}
			power[parts[0]] = w
		}
	}
	temps, err := model.SteadyState(power)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# steady state: max %.2f °C, avg %.2f °C, spread %.2f °C\n",
		temps.Max(), temps.Avg(), temps.Spread())
	for _, name := range temps.Names() {
		t, _ := temps.Of(name)
		fmt.Printf("%s\t%.3f\n", name, t)
	}
	if heatMap > 0 {
		if err := hotspot.WriteHeatMap(os.Stdout, fp, temps, heatMap); err != nil {
			fatal(err)
		}
	}
}

func runTransient(model *hotspot.Model, ptraceFile string, dt float64) {
	f, err := os.Open(ptraceFile)
	if err != nil {
		fatal(err)
	}
	trace, err := hotspot.ReadPowerTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	samples, err := trace.Reorder(model.BlockNames())
	if err != nil {
		fatal(err)
	}
	tr, err := model.NewTransient(dt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# transient: %d samples, dt %g s\n", len(samples), dt)
	fmt.Printf("# time\tmax\tavg\n")
	for i, s := range samples {
		temps, err := tr.StepVec(s)
		if err != nil {
			fatal(fmt.Errorf("sample %d: %w", i, err))
		}
		fmt.Printf("%.4f\t%.3f\t%.3f\n", tr.Time(), temps.Max(), temps.Avg())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotspotsim:", err)
	os.Exit(1)
}
