// Command taskgen generates TGFF-like random task graphs or emits the
// paper's benchmark graphs, in the repository's .tg format or Graphviz
// DOT.
//
// Usage:
//
//	taskgen -benchmark Bm1 -o bm1.tg
//	taskgen -tasks 30 -edges 40 -deadline 1200 -seed 7 -dot graph.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"thermalsched/internal/taskgraph"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "emit a paper benchmark (Bm1..Bm4) instead of generating")
		tasks     = flag.Int("tasks", 20, "number of tasks")
		edges     = flag.Int("edges", 25, "number of edges")
		deadline  = flag.Float64("deadline", 1000, "completion deadline (time units)")
		types     = flag.Int("types", taskgraph.NumTaskTypes, "number of task types")
		sources   = flag.Int("sources", 1, "number of entry tasks")
		maxData   = flag.Float64("maxdata", 40, "maximum communication volume per edge")
		branch    = flag.Float64("branchfrac", 0, "fraction of fan-out tasks made conditional branches (CTG)")
		seed      = flag.Int64("seed", 1, "generator seed (passed through verbatim; 0 is a valid seed)")
		name      = flag.String("name", "graph", "graph name")
		out       = flag.String("o", "", "output .tg file (default stdout)")
		dot       = flag.String("dot", "", "also write Graphviz DOT to this file")
		stats     = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	var g *taskgraph.Graph
	var err error
	if *benchmark != "" {
		g, err = taskgraph.Benchmark(*benchmark)
	} else {
		g, err = taskgraph.Generate(taskgraph.GenParams{
			Name: *name, Tasks: *tasks, Edges: *edges, Deadline: *deadline,
			Types: *types, Sources: *sources, MaxData: *maxData,
			BranchFraction: *branch, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		fatal(err)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDOT(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		lv, err := g.Levels()
		if err != nil {
			fatal(err)
		}
		depth := 0
		for _, l := range lv {
			if l > depth {
				depth = l
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %d tasks, %d edges, depth %d, %d sources, %d sinks, deadline %g\n",
			g.Name, g.NumTasks(), g.NumEdges(), depth, len(g.Sources()), len(g.Sinks()), g.Deadline)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgen:", err)
	os.Exit(1)
}
