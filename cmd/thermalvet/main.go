// Command thermalvet runs the repository's determinism & serialization
// contract analyzers (internal/lint): mapiter, seedzero, fpfields and
// walltime. It speaks two protocols:
//
//   - Direct:      thermalvet ./...
//     Loads, type-checks and analyzes the packages matching the
//     patterns (via `go list -export`), printing findings and exiting
//     nonzero if there are any. This is the local developer loop.
//
//   - Vet tool:    go vet -vettool=$(which thermalvet) ./...
//     cmd/go invokes the binary once per package with a JSON config
//     file argument (the unitchecker protocol: -V=full for the build
//     cache, -flags for flag discovery, then <unit>.cfg per unit).
//     This is how CI runs it, composing with go vet's own checks,
//     package graph and caching.
//
// The protocol plumbing is hand-rolled here because this module
// carries no third-party dependencies (golang.org/x/tools's
// unitchecker is the reference implementation).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"thermalsched/internal/lint"
	"thermalsched/internal/lint/analysis"
	"thermalsched/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full"):
		printVersion()
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// Flag discovery: thermalvet exposes no tool flags.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	default:
		os.Exit(direct(args))
	}
}

// printVersion implements -V=full: cmd/go fingerprints the tool by
// this line (name, version, and a content hash standing in for a
// build ID) to decide when cached vet results are stale. The format
// replicates x/tools' unitchecker, which in turn replicates
// cmd/internal/objabi.AddVersionFlag.
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// direct loads and analyzes whole package patterns.
func direct(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fatal(err)
	}
	var all []diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "thermalvet: %v\n", e)
		}
		if len(pkg.TypeErrors) > 0 {
			return 1
		}
		all = append(all, analyze(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo)...)
	}
	return report(all)
}

// vetConfig is the unitchecker protocol's per-unit JSON config (the
// subset thermalvet consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit described by a vet config.
func unitcheck(cfgPath string) int {
	blob, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already built
	// for the unit's dependency closure.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var typeErrors []error
	conf := types.Config{
		Importer: load.ImporterWithLookup(fset, lookup),
		Error:    func(err error) { typeErrors = append(typeErrors, err) },
	}
	if v := cfg.GoVersion; v != "" && strings.HasPrefix(v, "go") {
		conf.GoVersion = v
	}
	info := load.NewInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		for _, e := range typeErrors {
			fmt.Fprintf(os.Stderr, "thermalvet: %v\n", e)
		}
		return 1
	}

	diags := analyze(fset, files, pkg, info)
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	return report(diags)
}

// writeVetx records the (empty) fact set for the unit: thermalvet's
// analyzers export no facts, but cmd/go caches the output file and
// requires it to exist.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fatal(err)
	}
	return 0
}

type diagnostic struct {
	pos      token.Position
	analyzer string
	message  string
}

// analyze runs the full suite over one typed package. Diagnostics
// reported at the same position with the same message by different
// analyzers (shared waiver validation) are deduplicated.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []diagnostic {
	var diags []diagnostic
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				key := fmt.Sprintf("%s|%s", pos, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				diags = append(diags, diagnostic{pos: pos, analyzer: a.Name, message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			fatal(fmt.Errorf("analyzer %s: %v", a.Name, err))
		}
	}
	return diags
}

// report prints findings in file order and returns the exit code:
// 0 clean, 2 findings (matching go vet's convention).
func report(diags []diagnostic) int {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.pos, d.message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "thermalvet: %v\n", err)
	os.Exit(1)
}
