// Command tables regenerates the paper's evaluation tables (Tables 1–3)
// in the paper's layout, plus the repository's beyond-the-paper scaling
// study.
//
// Usage:
//
//	tables            # all three tables
//	tables -table 3   # one table
//	tables -fpgens 40 # heavier floorplanning inside co-synthesis
//	tables -scaling   # thermal-aware scheduling from 20 to 500 tasks
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/experiments"
	"thermalsched/internal/hotspot"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (1, 2 or 3; 0 = all)")
		fpGens    = flag.Int("fpgens", 20, "GA floorplanner generations inside co-synthesis")
		sweep     = flag.Int("sweep", 0, "additionally run a randomized robustness sweep of this many graphs")
		sweepSeed = flag.Int64("sweepseed", 7, "seed for the robustness sweep")
		scaling   = flag.Bool("scaling", false, "run only the scaling study (20 to 500 tasks on a generated 8-PE platform)")
		scalePEs  = flag.Int("scalepes", 0, "scaling study PE count (0 = default 8)")
		scaleSeed = flag.Int64("scaleseed", 1, "scaling study seed (0 is a valid seed)")
		solver    = flag.String("solver", "", fmt.Sprintf("scaling-study thermal solver backend %v (default dense)", hotspot.SolverNames()))
	)
	flag.Parse()

	if *scaling {
		hs := hotspot.DefaultConfig()
		hs.Solver = *solver
		if err := hs.Validate(); err != nil {
			fatal(err)
		}
		t, err := experiments.RunScalingTable(context.Background(), nil, *scalePEs, *scaleSeed, cosynth.PlatformConfig{HotSpot: &hs}, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
		return
	}

	s, err := experiments.NewSuite()
	if err != nil {
		fatal(err)
	}
	s.FloorplanGenerations = *fpGens
	defer func() {
		if *sweep > 0 {
			r, err := experiments.RunSweep(s.Lib, *sweep, *sweepSeed)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r)
		}
	}()

	run1 := func() {
		t, err := s.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	run2 := func() {
		t, err := s.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	run3 := func() {
		t, err := s.RunTable3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}

	switch *table {
	case 0:
		run1()
		run2()
		run3()
	case 1:
		run1()
	case 2:
		run2()
	case 3:
		run3()
	default:
		fatal(fmt.Errorf("unknown table %d (want 1, 2 or 3)", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
