package thermalsched

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// fpStreamBase is a stream spec with a non-default value in every
// field, so per-field perturbations are visible against it.
func fpStreamBase() StreamSpec {
	return StreamSpec{
		Name: "base",
		Seed: 7,
		Arrivals: StreamArrivalParams{
			Horizon: 400, Sources: 2, MinPeriod: 50, MaxPeriod: 120,
			Rate: 0.03, BurstMean: 2, BurstGap: 3, Laxity: 5, Types: 6,
		},
		Platform: ScenarioPlatformParams{
			PEs: 5, MinSpeed: 0.7, MaxSpeed: 1.4,
			MeanWork: 40, MeanPower: 5, Noise: 0.2, Layout: "row",
		},
		DT: 2, TimeScale: 0.2, MinFactor: 0.9, SimSeed: 3, Replicas: 2,
	}
}

// Every StreamSpec field — including every nested arrival and platform
// parameter — must move the request-level fingerprint, or coalescing
// would serve one spec's cached response for another.
func TestStreamSpecFingerprintSensitivity(t *testing.T) {
	base, again := fpStreamBase(), fpStreamBase()
	fp := base.fingerprint()
	if fp != again.fingerprint() {
		t.Fatal("equal stream specs produced different fingerprints")
	}

	variants := map[string]func(*StreamSpec){
		"Name":               func(s *StreamSpec) { s.Name = "other" },
		"Seed":               func(s *StreamSpec) { s.Seed = 8 },
		"Arrivals.Horizon":   func(s *StreamSpec) { s.Arrivals.Horizon = 500 },
		"Arrivals.Sources":   func(s *StreamSpec) { s.Arrivals.Sources = 4 },
		"Arrivals.MinPeriod": func(s *StreamSpec) { s.Arrivals.MinPeriod = 55 },
		"Arrivals.MaxPeriod": func(s *StreamSpec) { s.Arrivals.MaxPeriod = 130 },
		"Arrivals.Rate":      func(s *StreamSpec) { s.Arrivals.Rate = 0.04 },
		"Arrivals.BurstMean": func(s *StreamSpec) { s.Arrivals.BurstMean = 3 },
		"Arrivals.BurstGap":  func(s *StreamSpec) { s.Arrivals.BurstGap = 4 },
		"Arrivals.Laxity":    func(s *StreamSpec) { s.Arrivals.Laxity = 6 },
		"Arrivals.Types":     func(s *StreamSpec) { s.Arrivals.Types = 7 },
		"Platform.PEs":       func(s *StreamSpec) { s.Platform.PEs = 6 },
		"Platform.MinSpeed":  func(s *StreamSpec) { s.Platform.MinSpeed = 0.8 },
		"Platform.MaxSpeed":  func(s *StreamSpec) { s.Platform.MaxSpeed = 1.6 },
		"Platform.MeanWork":  func(s *StreamSpec) { s.Platform.MeanWork = 50 },
		"Platform.MeanPower": func(s *StreamSpec) { s.Platform.MeanPower = 6 },
		"Platform.Noise":     func(s *StreamSpec) { s.Platform.Noise = 0.25 },
		"Platform.Layout":    func(s *StreamSpec) { s.Platform.Layout = "grid" },
		"DT":                 func(s *StreamSpec) { s.DT = 3 },
		"TimeScale":          func(s *StreamSpec) { s.TimeScale = 0.3 },
		"MinFactor":          func(s *StreamSpec) { s.MinFactor = 0.8 },
		"SimSeed":            func(s *StreamSpec) { s.SimSeed = 4 },
		"Replicas":           func(s *StreamSpec) { s.Replicas = 3 },
	}
	seen := map[string]string{fp: "base"}
	for name, mut := range variants {
		s := fpStreamBase()
		mut(&s)
		got := s.fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbing %s collides with %s (fingerprint %s)", name, prev, got)
			continue
		}
		seen[got] = name
	}

	// A stream request's fingerprint must cover the spec, and stream
	// presence must be semantic against the spec-less request.
	with := NewRequest(FlowStream, WithStream(fpStreamBase()))
	without := NewRequest(FlowStream)
	if with.Fingerprint() == without.Fingerprint() {
		t.Error("stream spec presence did not move the request fingerprint")
	}
}

// The seed contract: workload seeds are used verbatim, zero included.
// Seed 0 is an ordinary seed — distinct from seed 1, stable across
// calls — and the per-replica dispatch seed (SimSeed + replica index)
// is likewise honored from zero up.
func TestStreamSeedVerbatim(t *testing.T) {
	zeroA, err := GenerateStreamWorkload(StreamSpec{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	zeroB, err := GenerateStreamWorkload(StreamSpec{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	one, err := GenerateStreamWorkload(StreamSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zeroA.Fingerprint != zeroB.Fingerprint || len(zeroA.Jobs) != len(zeroB.Jobs) {
		t.Error("seed 0 is not stable across generations")
	}
	for i := range zeroA.Jobs {
		if zeroA.Jobs[i] != zeroB.Jobs[i] {
			t.Fatalf("seed 0 job %d differs across generations", i)
		}
	}
	if zeroA.Fingerprint == one.Fingerprint {
		t.Error("seed 0 and seed 1 share a workload fingerprint")
	}
	sameTrace := len(zeroA.Jobs) == len(one.Jobs)
	if sameTrace {
		for i := range zeroA.Jobs {
			if zeroA.Jobs[i] != one.Jobs[i] {
				sameTrace = false
				break
			}
		}
	}
	if sameTrace {
		t.Error("seed 0 and seed 1 generated identical arrival traces; zero was rewritten")
	}

	// SimSeed moves realized durations (visible once MinFactor < 1).
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	run := func(simSeed int64) *StreamReport {
		req := NewRequest(FlowStream, WithStream(StreamSpec{
			Seed: 1, MinFactor: 0.5, SimSeed: simSeed,
		}))
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Stream
	}
	if run(0).Makespan.Mean == run(1).Makespan.Mean {
		t.Error("SimSeed 0 and 1 realized identical makespans; the dispatch seed is not honored verbatim")
	}
}

// The stream flow must be byte-identical across parallelism levels:
// replica fan-out order is a scheduling detail, never a result detail.
func TestStreamFlowParallelismByteIdentical(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallelism int) string {
		req := NewRequest(FlowStream, WithStream(StreamSpec{
			Seed: 3, MinFactor: 0.7, Replicas: 4,
		}))
		req.Parallelism = parallelism
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		resp.ElapsedMS = 0
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	serial := run(1)
	if parallel := run(4); parallel != serial {
		t.Errorf("stream response differs between parallelism 1 and 4:\n  p1 %.200s\n  p4 %.200s", serial, parallel)
	}
	hits, _, _ := engine.StreamCacheStats()
	if hits == 0 {
		t.Error("second stream run did not hit the workload cache")
	}
}

// Price of onlineness is Makespan / clairvoyant offline bound — ≥ 1 by
// construction for every policy, every replica.
func TestStreamPriceAtLeastOne(t *testing.T) {
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range StreamPolicies() {
		req := NewRequest(FlowStream, WithStream(StreamSpec{
			Seed: 2, MinFactor: 0.6, Replicas: 3,
		}))
		req.Policy = pol
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		s := resp.Stream
		if s.Price.Min < 1 {
			t.Errorf("%s: price min %g below 1; the clairvoyant bound is not a lower bound", pol, s.Price.Min)
		}
		if s.OfflineBound.Min <= 0 {
			t.Errorf("%s: offline bound min %g not positive", pol, s.OfflineBound.Min)
		}
		if s.Policy != pol {
			t.Errorf("report policy %q, want %q", s.Policy, pol)
		}
	}
}

// The thermal-greedy policy must beat both baselines (FIFO and random)
// on miss rate or peak temperature on at least 3 of these 4 scenario
// families — the paper's claim, restated for the online flow.
func TestStreamGreedyBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-family policy duel skipped in -short mode")
	}
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	families := []struct {
		name string
		spec StreamSpec
	}{
		{"default", StreamSpec{Seed: 1}},
		{"bursty", StreamSpec{Seed: 2, Arrivals: StreamArrivalParams{Rate: 0.08, BurstMean: 3}}},
		{"tight", StreamSpec{Seed: 3, Arrivals: StreamArrivalParams{Laxity: 2}}},
		{"hot", StreamSpec{Seed: 4, Arrivals: StreamArrivalParams{Sources: 4, Rate: 0.12},
			Platform: ScenarioPlatformParams{PEs: 6}}},
	}
	run := func(spec StreamSpec, pol string) *StreamReport {
		req := NewRequest(FlowStream, WithStream(spec))
		req.Policy = pol
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Stream
	}
	wins := 0
	for _, fam := range families {
		greedy := run(fam.spec, StreamPolicyGreedy)
		fifo := run(fam.spec, StreamPolicyFIFO)
		random := run(fam.spec, StreamPolicyRandom)
		missWin := greedy.MissRate.Mean < fifo.MissRate.Mean && greedy.MissRate.Mean < random.MissRate.Mean
		peakWin := greedy.PeakTempC.Mean < fifo.PeakTempC.Mean && greedy.PeakTempC.Mean < random.PeakTempC.Mean
		if missWin || peakWin {
			wins++
		} else {
			t.Logf("%s: greedy did not win (miss %.3f/%.3f/%.3f peak %.2f/%.2f/%.2f)", fam.name,
				greedy.MissRate.Mean, fifo.MissRate.Mean, random.MissRate.Mean,
				greedy.PeakTempC.Mean, fifo.PeakTempC.Mean, random.PeakTempC.Mean)
		}
	}
	if wins < 3 {
		t.Errorf("greedy beat both baselines on only %d/%d families, want at least 3", wins, len(families))
	}
}

// Stream requests flow through the consolidated Validate with typed
// field errors; each invalid shape must name the offending field.
func TestStreamRequestValidation(t *testing.T) {
	cases := []struct {
		name  string
		req   Request
		field string
	}{
		{"missing spec", Request{Flow: FlowStream}, "stream"},
		{"extra input", Request{Flow: FlowStream, Benchmark: "Bm1",
			Stream: &StreamSpec{Seed: 1}}, "input"},
		{"offline policy", Request{Flow: FlowStream, Policy: "thermal",
			Stream: &StreamSpec{Seed: 1}}, "policy"},
		{"negative dt", Request{Flow: FlowStream,
			Stream: &StreamSpec{Seed: 1, DT: -1}}, "stream.dt"},
		{"minFactor", Request{Flow: FlowStream,
			Stream: &StreamSpec{Seed: 1, MinFactor: 1.5}}, "stream.minFactor"},
		{"replicas", Request{Flow: FlowStream,
			Stream: &StreamSpec{Seed: 1, Replicas: MaxSimulateReplicas + 1}}, "stream.replicas"},
		{"bad arrivals", Request{Flow: FlowStream,
			Stream: &StreamSpec{Arrivals: StreamArrivalParams{Rate: -1}}}, "stream"},
		{"stream on offline flow", Request{Flow: FlowPlatform, Benchmark: "Bm1",
			Policy: "thermal", Stream: &StreamSpec{Seed: 1}}, "stream"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid request", tc.name)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}

	// A valid stream request must pass, online policy names included.
	ok := Request{Flow: FlowStream, Policy: StreamPolicyCoolest, Stream: &StreamSpec{Seed: 1}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid stream request rejected: %v", err)
	}
}

// Campaign stream mode: online duels over a generated workload family,
// deterministic, with the greedy policy as the duel reference and the
// price-of-onlineness surfaced per cell.
func TestStreamCampaignMode(t *testing.T) {
	if testing.Short() {
		t.Skip("stream campaign skipped in -short mode")
	}
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(FlowCampaign, WithCampaign(CampaignSpec{
		Scenarios: 3, Seed: 5, Stream: &StreamSpec{MinFactor: 0.8},
	}))
	run := func() (*Response, string) {
		resp, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		resp.ElapsedMS = 0
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(blob)
	}
	resp, first := run()
	if _, again := run(); again != first {
		t.Error("stream campaign is not deterministic across runs")
	}

	rep := resp.Campaign
	if rep == nil || !rep.Streamed {
		t.Fatal("campaign response is not marked streamed")
	}
	if rep.Reference != StreamPolicyGreedy {
		t.Errorf("reference %q, want %q", rep.Reference, StreamPolicyGreedy)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rep.Rows))
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed cells", rep.Failed)
	}
	for _, row := range rep.Rows {
		if row.Shape != "stream" {
			t.Errorf("row %s shape %q, want stream", row.Scenario, row.Shape)
		}
		for _, cell := range row.Cells {
			if cell.Price < 1 {
				t.Errorf("row %s policy %s price %g below 1", row.Scenario, cell.Policy, cell.Price)
			}
		}
	}
	if len(rep.Duels) == 0 {
		t.Fatal("stream campaign produced no duels")
	}
	for _, d := range rep.Duels {
		if d.Compared != 3 {
			t.Errorf("duel vs %s compared %d rows, want 3 (miss-gate must not apply in stream mode)", d.Opponent, d.Compared)
		}
		if d.MissRateWins+d.MissRateTies > d.Compared {
			t.Errorf("duel vs %s miss tallies exceed compared rows", d.Opponent)
		}
	}
}
