package thermalsched

import (
	"testing"
)

// These tests exercise the public facade end to end, exactly as the
// examples and downstream users would.

func TestFacadeQuickstartPath(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Benchmark("Bm1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPlatform(g, lib, ThermalAware)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Feasible {
		t.Errorf("quickstart path infeasible: makespan %v", res.Metrics.Makespan)
	}
	if res.Metrics.MaxTemp <= DefaultThermalConfig().AmbientC {
		t.Errorf("max temp %v not above ambient", res.Metrics.MaxTemp)
	}
}

func TestFacadeCustomGraphAndArch(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := GenerateGraph(GenParams{
		Name: "custom", Tasks: 10, Edges: 12, Deadline: 2000,
		Types: 8, Sources: 1, MaxData: 10, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	arch := Architecture{
		Name: "duo",
		PEs:  []PE{{Name: "a", Type: 0}, {Name: "b", Type: 1}},
	}
	cfg := SchedConfig{Policy: MinTaskEnergy, EnergyWeight: 0.3}
	s, err := AllocateAndSchedule(g, arch, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	prof, err := PowerProfileOf(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.PENames) != 2 {
		t.Error("power profile wrong shape")
	}
}

func TestFacadePolicyParsing(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("policy %v round trip failed", p)
		}
	}
}

func TestFacadeFloorplanAndThermal(t *testing.T) {
	blocks := []FloorplanBlock{
		{Name: "cpu", Area: 16e-6, MinAspect: 0.5, MaxAspect: 2},
		{Name: "dsp", Area: 9e-6, MinAspect: 0.5, MaxAspect: 2},
		{Name: "mem", Area: 25e-6, MinAspect: 0.5, MaxAspect: 2},
	}
	cfg := DefaultGAConfig()
	cfg.Generations = 10
	res, err := FloorplanGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewThermalModel(res.Plan, DefaultThermalConfig())
	if err != nil {
		t.Fatal(err)
	}
	temps, err := model.SteadyState(map[string]float64{"cpu": 8, "dsp": 3})
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := temps.Of("cpu")
	mem, _ := temps.Of("mem")
	if cpu <= mem {
		t.Errorf("powered cpu (%v) should be hotter than idle mem (%v)", cpu, mem)
	}
}

func TestFacadeLeakage(t *testing.T) {
	l := DefaultLeakage()
	if l.At(100) <= l.At(50) {
		t.Error("leakage must grow with temperature")
	}
}

func TestFacadeCoSynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("co-synthesis skipped in -short mode")
	}
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Benchmark("Bm1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCoSynthesisConfig(g, lib, CoSynthConfig{
		Policy: MinTaskEnergy, FloorplanGenerations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Feasible {
		t.Errorf("co-synthesis infeasible: %v", res.Metrics.Makespan)
	}
}

func TestFacadeSimAndDTM(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Benchmark("Bm1")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunPlatform(g, lib, ThermalAware)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := ExecuteSchedule(run.Schedule, SimOptions{MinFactor: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Makespan > run.Schedule.Makespan {
		t.Error("actual makespan exceeds worst case")
	}
	trace, err := exec.Trace(5)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := trace.Reorder(run.Model.BlockNames())
	if err != nil {
		t.Fatal(err)
	}
	toggle, err := NewToggleDTM(88, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDTM(run.Model, toggle, samples, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != len(samples) {
		t.Errorf("DTM ran %d steps for %d samples", res.Steps, len(samples))
	}
	pi, err := NewPIDTM(85, 0.05, 0.002, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDTM(run.Model, pi, samples, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(lib, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graphs != 4 {
		t.Errorf("sweep graphs = %d", res.Graphs)
	}
}

func TestFacadeConditionalGraph(t *testing.T) {
	g, err := GenerateGraph(GenParams{
		Name: "ctg", Tasks: 12, Edges: 16, Deadline: 1000,
		Types: 8, Sources: 1, MaxData: 10, BranchFraction: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasConditionalEdges() {
		t.Fatal("no conditional edges generated")
	}
	probs, err := g.ExecutionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 12 {
		t.Errorf("probabilities length %d", len(probs))
	}
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunPlatform(g, lib, MinTaskEnergy)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := run.Schedule.ExpectedEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if exp >= run.Schedule.TotalEnergy() {
		t.Error("expected energy should be below worst case for a CTG")
	}
	res, err := ExecuteSchedule(run.Schedule, SimOptions{MinFactor: 1, Seed: 1, Conditional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed >= g.NumTasks() {
		t.Log("all branches taken this seed (possible)")
	}
}
