package thermalsched

import (
	"strings"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
)

// FlowKind names one of the Engine's execution flows.
type FlowKind string

// The flows an Engine can run.
const (
	// FlowPlatform is the platform-based design flow (paper Fig. 1b):
	// schedule on the fixed 4-PE platform.
	FlowPlatform FlowKind = "platform"
	// FlowCoSynthesis is the co-synthesis flow (paper Fig. 1a):
	// deadline-driven architecture selection with floorplanning and
	// thermal extraction in the loop.
	FlowCoSynthesis FlowKind = "cosynthesis"
	// FlowSweep is the randomized robustness study: power-aware vs
	// thermal-aware over many generated graphs.
	FlowSweep FlowKind = "sweep"
	// FlowDTM schedules on the platform, replays the schedule in the
	// discrete-event executor, and drives the transient thermal model
	// under a dynamic-thermal-management controller. The power trace is
	// fixed before the controller sees it (open loop): throttling scales
	// power but cannot slow execution down. FlowSimulate is the
	// closed-loop counterpart.
	FlowDTM FlowKind = "dtm"
	// FlowSimulate schedules on the platform and then co-simulates the
	// schedule, the transient thermal model and a DTM controller in
	// lockstep (closed loop): throttling stretches the affected tasks,
	// feeding back into makespan, deadline misses and subsequent power.
	// With Replicas > 1 it fans seeded Monte-Carlo runs across the
	// engine's worker pool and reports percentile statistics.
	FlowSimulate FlowKind = "simulate"
	// FlowGenerate materializes a synthetic scenario (random task graph
	// plus heterogeneous platform) from Request.Scenario and returns
	// its serialized form and summary statistics — the scenario is not
	// scheduled. Any graph-consuming flow can instead carry the same
	// spec to run on the generated workload directly.
	FlowGenerate FlowKind = "generate"
	// FlowCampaign generates a family of scenarios (Request.Campaign)
	// and fans a policy comparison across them on the engine's worker
	// pool, reporting per-scenario rows, per-policy percentiles and
	// win rates — the randomized-sweep study generalized to arbitrary
	// scenario families and policy sets.
	FlowCampaign FlowKind = "campaign"
	// FlowStream generates a seeded online workload (Request.Stream):
	// periodic sources plus a Poisson/bursty aperiodic process, released
	// over simulated time against the live transient thermal model. An
	// online policy (Request.Policy: fifo, random, coolest, greedy)
	// places each job with past knowledge only; the report includes the
	// deadline-miss rate, the thermal envelope, and the
	// price-of-onlineness ratio against a clairvoyant offline bound.
	FlowStream FlowKind = "stream"
)

// TaskSpec is the serializable form of one task-graph node.
type TaskSpec struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Type int    `json:"type"`
}

// EdgeSpec is the serializable form of one task-graph dependency.
type EdgeSpec struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Data float64 `json:"data,omitempty"`
	Prob float64 `json:"prob,omitempty"`
}

// GraphSpec is the JSON-serializable form of a task graph, used to ship
// custom graphs through Request. Use GraphSpecOf/Graph to convert.
type GraphSpec struct {
	Name     string     `json:"name"`
	Deadline float64    `json:"deadline"`
	Tasks    []TaskSpec `json:"tasks"`
	Edges    []EdgeSpec `json:"edges,omitempty"`
}

// GraphSpecOf converts a task graph to its serializable form.
func GraphSpecOf(g *Graph) *GraphSpec {
	spec := &GraphSpec{Name: g.Name, Deadline: g.Deadline}
	for _, t := range g.Tasks() {
		spec.Tasks = append(spec.Tasks, TaskSpec{ID: t.ID, Name: t.Name, Type: t.Type})
	}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, EdgeSpec{From: e.From, To: e.To, Data: e.Data, Prob: e.Prob})
	}
	return spec
}

// Graph materializes and validates the task graph described by the spec.
func (s *GraphSpec) Graph() (*Graph, error) {
	g := taskgraph.NewGraph(s.Name, s.Deadline)
	for _, t := range s.Tasks {
		if err := g.AddTask(taskgraph.Task{ID: t.ID, Name: t.Name, Type: t.Type}); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(taskgraph.Edge{From: e.From, To: e.To, Data: e.Data, Prob: e.Prob}); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DTMSpec parameterizes the FlowDTM run-time study. The zero value uses
// the documented defaults.
type DTMSpec struct {
	// Controller is "toggle" (default) or "pi".
	Controller string `json:"controller,omitempty"`
	// TriggerC, Hysteresis and Throttle parameterize the toggle
	// controller. Defaults: 85 °C trigger, 3 °C hysteresis, 0.4 throttle.
	TriggerC   float64 `json:"triggerC,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	Throttle   float64 `json:"throttle,omitempty"`
	// SetpointC, Kp, Ki and MinScale parameterize the PI controller.
	// Defaults: 85 °C setpoint, Kp 0.05, Ki 0.002, MinScale 0.1.
	SetpointC float64 `json:"setpointC,omitempty"`
	Kp        float64 `json:"kp,omitempty"`
	Ki        float64 `json:"ki,omitempty"`
	MinScale  float64 `json:"minScale,omitempty"`
	// SampleDT is the power-trace sampling interval in schedule time
	// units (default 10); TimeScale converts one schedule time unit to
	// seconds of transient simulation (default 0.1).
	SampleDT  float64 `json:"sampleDT,omitempty"`
	TimeScale float64 `json:"timeScale,omitempty"`
	// Passes loops the schedule's power trace to let the die warm up
	// (default 4).
	Passes int `json:"passes,omitempty"`
	// MinFactor is the executor's execution-time factor lower bound in
	// (0, 1] (default 1: replay the worst case); SimSeed drives the
	// per-task factors.
	MinFactor float64 `json:"minFactor,omitempty"`
	SimSeed   int64   `json:"simSeed,omitempty"`
}

func (s *DTMSpec) withDefaults() DTMSpec {
	out := DTMSpec{}
	if s != nil {
		out = *s
	}
	if out.Controller == "" {
		out.Controller = "toggle"
	}
	if out.TriggerC == 0 {
		out.TriggerC = 85
	}
	if out.Hysteresis == 0 {
		out.Hysteresis = 3
	}
	if out.Throttle == 0 {
		out.Throttle = 0.4
	}
	if out.SetpointC == 0 {
		out.SetpointC = 85
	}
	if out.Kp == 0 {
		out.Kp = 0.05
	}
	if out.Ki == 0 {
		out.Ki = 0.002
	}
	if out.MinScale == 0 {
		out.MinScale = 0.1
	}
	if out.SampleDT == 0 {
		out.SampleDT = 10
	}
	if out.TimeScale == 0 {
		out.TimeScale = 0.1
	}
	if out.Passes == 0 {
		out.Passes = 4
	}
	if out.MinFactor == 0 {
		out.MinFactor = 1
	}
	return out
}

// SimulateSpec parameterizes the FlowSimulate closed-loop co-simulation.
// The zero value uses the documented defaults.
type SimulateSpec struct {
	// Controller selects the thermal supervisor: "toggle" (default) and
	// "pi" are the reactive controllers; "admit" is predictive admission
	// control (task starts are refused when the influence-forecast rise
	// would push the PE's block to the serious state, with graduated
	// throttling as a safety net); "zigzag" forces fixed idle cooling
	// gaps on blocks that reach serious (Chrobak et al., arXiv
	// 0801.4238); "none" disables thermal management — the unthrottled
	// reference run.
	Controller string `json:"controller,omitempty"`
	// TriggerC, Hysteresis and Throttle parameterize the toggle
	// controller. Defaults: 80 °C trigger, 2 °C hysteresis, 0.5 throttle
	// — the trigger sits just below the paper benchmarks' steady-state
	// peaks, so a thermally unbalanced schedule throttles visibly. The
	// admit controller shares Hysteresis as its state-demotion margin.
	TriggerC   float64 `json:"triggerC,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	Throttle   float64 `json:"throttle,omitempty"`
	// SetpointC, Kp, Ki and MinScale parameterize the PI controller.
	// Defaults: 80 °C setpoint, Kp 0.05, Ki 0.002, MinScale 0.1.
	SetpointC float64 `json:"setpointC,omitempty"`
	Kp        float64 `json:"kp,omitempty"`
	Ki        float64 `json:"ki,omitempty"`
	MinScale  float64 `json:"minScale,omitempty"`
	// FairC, SeriousC and CriticalC are the supervisor's thermal-state
	// ladder — the ascending thresholds splitting temperatures into
	// nominal/fair/serious/critical. Defaults: 72/80/88 °C (serious at
	// the historical toggle trigger). Every controller classifies on the
	// ladder; admit and zigzag additionally deny admissions from it.
	FairC     float64 `json:"fairC,omitempty"`
	SeriousC  float64 `json:"seriousC,omitempty"`
	CriticalC float64 `json:"criticalC,omitempty"`
	// SeriousScale and CriticalScale are the admit controller's
	// graduated safety-net throttle factors for blocks that reach the
	// corresponding state despite admission control (defaults 0.7, 0.4).
	SeriousScale  float64 `json:"seriousScale,omitempty"`
	CriticalScale float64 `json:"criticalScale,omitempty"`
	// RetryAfter is the admit controller's admission-hold length in
	// schedule time units: a denied PE refuses further starts for this
	// long before the forecast is consulted again (default 2).
	RetryAfter float64 `json:"retryAfter,omitempty"`
	// CoolTime is the zigzag controller's forced cooling-gap length in
	// schedule time units (default 5), rounded up to whole DT steps.
	CoolTime float64 `json:"coolTime,omitempty"`
	// DT is the co-simulation step in schedule time units (default 1);
	// TimeScale converts one schedule time unit to seconds of transient
	// simulation (default 0.1).
	DT        float64 `json:"dt,omitempty"`
	TimeScale float64 `json:"timeScale,omitempty"`
	// MinFactor is the executor's execution-time factor lower bound in
	// (0, 1] (default 1: replay the worst case); Seed drives the
	// per-task factors and branch draws of replica 0 (replica i uses
	// Seed + i).
	MinFactor float64 `json:"minFactor,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// Conditional enables conditional-task-graph execution: branches
	// fire with their annotated probabilities and skipped tasks draw no
	// power.
	Conditional bool `json:"conditional,omitempty"`
	// WarmStart initializes the thermal state at the schedule's
	// steady-state operating point instead of cold ambient.
	WarmStart bool `json:"warmStart,omitempty"`
	// Replicas is the number of seeded Monte-Carlo runs to fan across
	// the engine's worker pool (default 1, at most
	// MaxSimulateReplicas).
	Replicas int `json:"replicas,omitempty"`
}

// MaxSimulateReplicas caps SimulateSpec.Replicas: each replica is a
// full co-simulation with its own transient state, so an unbounded
// count would let a single service request monopolize the process.
const MaxSimulateReplicas = 4096

func (s *SimulateSpec) withDefaults() SimulateSpec {
	out := SimulateSpec{}
	if s != nil {
		out = *s
	}
	if out.Controller == "" {
		out.Controller = "toggle"
	}
	if out.TriggerC == 0 {
		out.TriggerC = 80
	}
	if out.Hysteresis == 0 {
		out.Hysteresis = 2
	}
	if out.Throttle == 0 {
		out.Throttle = 0.5
	}
	if out.SetpointC == 0 {
		out.SetpointC = 80
	}
	if out.Kp == 0 {
		out.Kp = 0.05
	}
	if out.Ki == 0 {
		out.Ki = 0.002
	}
	if out.MinScale == 0 {
		out.MinScale = 0.1
	}
	if out.FairC == 0 {
		out.FairC = 72
	}
	if out.SeriousC == 0 {
		out.SeriousC = 80
	}
	if out.CriticalC == 0 {
		out.CriticalC = 88
	}
	if out.SeriousScale == 0 {
		out.SeriousScale = 0.7
	}
	if out.CriticalScale == 0 {
		out.CriticalScale = 0.4
	}
	if out.RetryAfter == 0 {
		out.RetryAfter = 2
	}
	if out.CoolTime == 0 {
		out.CoolTime = 5
	}
	if out.DT == 0 {
		out.DT = 1
	}
	if out.TimeScale == 0 {
		out.TimeScale = 0.1
	}
	if out.MinFactor == 0 {
		out.MinFactor = 1
	}
	if out.Replicas == 0 {
		out.Replicas = 1
	}
	return out
}

// ladder lowers the spec's thermal-state thresholds. Call on a
// withDefaults() copy.
func (s SimulateSpec) ladder() Ladder {
	return Ladder{FairC: s.FairC, SeriousC: s.SeriousC, CriticalC: s.CriticalC}
}

// Request is one JSON-serializable unit of work for an Engine. Build it
// literally, decode it from JSON, or assemble it with NewRequest and the
// With* functional options. Zero-valued knobs mean "use the calibrated
// default"; pointer-typed knobs distinguish "unset" from an explicit
// zero (which is why Seed is a *int64 — an explicit zero seed is valid).
type Request struct {
	// Flow selects the execution flow.
	Flow FlowKind `json:"flow"`
	// Benchmark names a paper benchmark ("Bm1" … "Bm4"). Exactly one of
	// Benchmark, Graph or Scenario must be set, except for FlowSweep
	// and FlowCampaign which generate their own inputs.
	Benchmark string `json:"benchmark,omitempty"`
	// Graph carries a custom task graph inline.
	Graph *GraphSpec `json:"graph,omitempty"`
	// Scenario describes a synthetic workload to generate and run: the
	// graph-consuming flows schedule it on its own generated platform
	// (instead of the paper's 4-PE substrate), and FlowGenerate
	// serializes it. Generated scenarios are cached by fingerprint.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Policy is the ASP variant name as accepted by ParsePolicy
	// ("baseline", "h1" … "h3", "thermal"). Empty means "thermal".
	Policy string `json:"policy,omitempty"`

	// BusTimePerUnit overrides the shared-bus communication rate; zero
	// means the experiments' default.
	BusTimePerUnit float64 `json:"busTimePerUnit,omitempty"`
	// TempWeight, PowerWeight, EnergyWeight and ThermalHorizon override
	// the corresponding scheduler calibration knobs; nil keeps the
	// calibrated defaults.
	TempWeight     *float64 `json:"tempWeight,omitempty"`
	PowerWeight    *float64 `json:"powerWeight,omitempty"`
	EnergyWeight   *float64 `json:"energyWeight,omitempty"`
	ThermalHorizon *float64 `json:"thermalHorizon,omitempty"`

	// MaxPEs, CandidateTypes and FloorplanGenerations tune FlowCoSynthesis.
	MaxPEs               int      `json:"maxPEs,omitempty"`
	CandidateTypes       []string `json:"candidateTypes,omitempty"`
	FloorplanGenerations int      `json:"floorplanGenerations,omitempty"`
	// Parallelism overrides the engine's parallelism for this request:
	// the bound on concurrent candidate-architecture and
	// floorplan-packing evaluations of the search-driven cosynthesis
	// flow, and on concurrent Monte-Carlo replicas of the simulate and
	// stream flows (Validate rejects it on other flows, which never
	// consume it). 0 uses the engine's setting (WithSearchParallelism /
	// WithWorkers, default GOMAXPROCS); 1 forces the serial path.
	// Results are byte-identical at every value — only wall-clock
	// changes.
	Parallelism int `json:"parallelism,omitempty"`
	// Seed drives the GA floorplanner (FlowCoSynthesis) or the graph
	// generator (FlowSweep). Nil keeps the historical default (1); an
	// explicit zero is honored as seed 0.
	Seed *int64 `json:"seed,omitempty"`

	// Solver overrides the engine's steady-state thermal solver backend
	// for this request: one of hotspot.SolverNames (dense, the golden
	// reference; sparse; pcg). Empty keeps the engine's setting
	// (WithSolverBackend, default dense). All backends are deterministic
	// and agree to ≤1e-6 K on the paper benchmarks; FlowGenerate never
	// builds a thermal model, so Validate rejects the override there.
	Solver string `json:"solver,omitempty"`

	// SweepCount is the number of random graphs FlowSweep evaluates
	// (default 4).
	SweepCount int `json:"sweepCount,omitempty"`

	// DTM tunes FlowDTM; nil uses the defaults documented on DTMSpec.
	DTM *DTMSpec `json:"dtm,omitempty"`

	// Simulate tunes FlowSimulate; nil uses the defaults documented on
	// SimulateSpec.
	Simulate *SimulateSpec `json:"simulate,omitempty"`

	// Campaign tunes FlowCampaign; nil uses the defaults documented on
	// CampaignSpec.
	Campaign *CampaignSpec `json:"campaign,omitempty"`

	// Stream describes the online workload FlowStream generates and
	// dispatches; nil everywhere else (Validate rejects it on other
	// flows). Generated workloads are cached by fingerprint.
	Stream *StreamSpec `json:"stream,omitempty"`

	// IncludeGantt asks for the schedule's per-PE timeline in
	// Response.Gantt (platform and cosynthesis flows).
	IncludeGantt bool `json:"includeGantt,omitempty"`
}

// RequestOption mutates a Request under construction; see NewRequest.
type RequestOption func(*Request)

// NewRequest assembles a Request for a flow from functional options.
func NewRequest(flow FlowKind, opts ...RequestOption) Request {
	req := Request{Flow: flow}
	for _, o := range opts {
		o(&req)
	}
	return req
}

// WithBenchmark selects a paper benchmark ("Bm1" … "Bm4") as the input.
func WithBenchmark(name string) RequestOption {
	return func(r *Request) { r.Benchmark = name }
}

// WithGraph ships a custom task graph with the request.
func WithGraph(g *Graph) RequestOption {
	return func(r *Request) { r.Graph = GraphSpecOf(g) }
}

// WithGraphSpec ships an already-serialized task graph.
func WithGraphSpec(spec *GraphSpec) RequestOption {
	return func(r *Request) { r.Graph = spec }
}

// WithScenario makes the request run on (or, for FlowGenerate, emit)
// the described synthetic scenario.
func WithScenario(spec ScenarioSpec) RequestOption {
	return func(r *Request) { r.Scenario = &spec }
}

// WithCampaign tunes the FlowCampaign study.
func WithCampaign(spec CampaignSpec) RequestOption {
	return func(r *Request) { r.Campaign = &spec }
}

// WithStream makes the request generate and dispatch the described
// online workload (FlowStream).
func WithStream(spec StreamSpec) RequestOption {
	return func(r *Request) { r.Stream = &spec }
}

// WithPolicy selects the ASP variant.
func WithPolicy(p Policy) RequestOption {
	return func(r *Request) { r.Policy = p.String() }
}

// WithBusTimePerUnit overrides the shared-bus communication rate.
func WithBusTimePerUnit(rate float64) RequestOption {
	return func(r *Request) { r.BusTimePerUnit = rate }
}

// WithTempWeight overrides the thermal-aware ASP's °C-to-time weight.
func WithTempWeight(w float64) RequestOption {
	return func(r *Request) { r.TempWeight = &w }
}

// WithPowerWeight overrides the W-to-time weight of heuristics 1 and 2.
func WithPowerWeight(w float64) RequestOption {
	return func(r *Request) { r.PowerWeight = &w }
}

// WithEnergyWeight overrides heuristic 3's energy-to-time weight.
func WithEnergyWeight(w float64) RequestOption {
	return func(r *Request) { r.EnergyWeight = &w }
}

// WithThermalHorizon overrides the thermal inquiry accumulation window.
func WithThermalHorizon(h float64) RequestOption {
	return func(r *Request) { r.ThermalHorizon = &h }
}

// WithSeed fixes the run's seed. Unlike the legacy config structs, an
// explicit zero is honored rather than silently rewritten to 1.
func WithSeed(seed int64) RequestOption {
	return func(r *Request) { r.Seed = &seed }
}

// WithMaxPEs caps the co-synthesized architecture size.
func WithMaxPEs(n int) RequestOption {
	return func(r *Request) { r.MaxPEs = n }
}

// WithCandidateTypes restricts the PE types co-synthesis may instantiate.
func WithCandidateTypes(names ...string) RequestOption {
	return func(r *Request) { r.CandidateTypes = names }
}

// WithFloorplanGenerations sizes the GA floorplanner effort per
// candidate architecture.
func WithFloorplanGenerations(n int) RequestOption {
	return func(r *Request) { r.FloorplanGenerations = n }
}

// WithParallelism overrides the engine's search parallelism for this
// request (0 = engine default, 1 = serial). Results are byte-identical
// at every value.
func WithParallelism(n int) RequestOption {
	return func(r *Request) { r.Parallelism = n }
}

// WithSolver overrides the engine's thermal solver backend for this
// request (one of hotspot.SolverNames; empty = engine default).
func WithSolver(name string) RequestOption {
	return func(r *Request) { r.Solver = name }
}

// WithSweepCount sets how many random graphs FlowSweep evaluates.
func WithSweepCount(n int) RequestOption {
	return func(r *Request) { r.SweepCount = n }
}

// WithDTM tunes the FlowDTM controller and simulation.
func WithDTM(spec DTMSpec) RequestOption {
	return func(r *Request) { r.DTM = &spec }
}

// WithSimulate tunes the FlowSimulate closed-loop co-simulation.
func WithSimulate(spec SimulateSpec) RequestOption {
	return func(r *Request) { r.Simulate = &spec }
}

// WithReplicas sets FlowSimulate's Monte-Carlo replica count, keeping
// any other simulate settings already on the request.
func WithReplicas(n int) RequestOption {
	return func(r *Request) {
		if r.Simulate == nil {
			r.Simulate = &SimulateSpec{}
		}
		r.Simulate.Replicas = n
	}
}

// WithGantt asks for the schedule's per-PE timeline in the response.
func WithGantt() RequestOption {
	return func(r *Request) { r.IncludeGantt = true }
}

// policy resolves the request's policy name (empty means ThermalAware).
func (r *Request) policy() (Policy, error) {
	if r.Policy == "" {
		return ThermalAware, nil
	}
	return sched.ParsePolicy(r.Policy)
}

// Validate reports the first problem that makes the request unrunnable,
// as a *FieldError naming the offending field. The Engine validates
// every request; services should call this before accepting work so
// malformed requests fail fast with a clear message — the service's 400
// bodies and the CLI's usage errors carry these messages verbatim.
//
// The generic rules (flow existence, policy family, input arity, shared
// knob ranges, cross-flow spec rejection) are driven entirely by the
// flow registry; flow-specific checks run through each registry row's
// validate hook.
func (r *Request) Validate() error {
	if r.Flow == "" {
		return fieldErr("flow", "request missing flow (want one of %v)", FlowKinds())
	}
	fs, ok := flowFor(r.Flow)
	if !ok {
		return fieldErr("flow", "unknown flow %q (want one of %v)", r.Flow, FlowKinds())
	}
	if err := fs.checkPolicy(r); err != nil {
		return err
	}
	inputs := 0
	for _, set := range []bool{r.Benchmark != "", r.Graph != nil, r.Scenario != nil} {
		if set {
			inputs++
		}
	}
	switch fs.input {
	case flowInputGenerated:
		if inputs > 0 {
			return fieldErr("input", "%s requests generate their own inputs; remove benchmark/graph/scenario", r.Flow)
		}
	case flowInputScenario:
		if r.Scenario == nil {
			return fieldErr("scenario", "%s requests need a scenario spec", r.Flow)
		}
		if r.Benchmark != "" || r.Graph != nil {
			return fieldErr("input", "%s requests take only a scenario spec; remove benchmark/graph", r.Flow)
		}
	case flowInputStream:
		if inputs > 0 {
			return fieldErr("input", "%s requests take only a stream spec; remove benchmark/graph/scenario", r.Flow)
		}
	default: // flowInputOne
		switch {
		case inputs == 0:
			return fieldErr("input", "request needs a benchmark name, an inline graph or a scenario spec")
		case inputs > 1:
			return fieldErr("input", "set exactly one of benchmark, graph or scenario")
		}
	}
	if r.Scenario != nil {
		if err := r.Scenario.Validate(); err != nil {
			return fieldErr("scenario", "%v", err)
		}
	}
	if r.Campaign != nil && r.Flow != FlowCampaign {
		return fieldErr("campaign", "campaign parameters on a %q request", r.Flow)
	}
	if r.Campaign != nil {
		if err := r.Campaign.Validate(); err != nil {
			return fieldErr("campaign", "%v", err)
		}
	}
	if r.Stream != nil && r.Flow != FlowStream {
		return fieldErr("stream", "stream parameters on a %q request", r.Flow)
	}
	if r.Benchmark != "" {
		known := taskgraph.BenchmarkNames()
		found := false
		for _, n := range known {
			if n == r.Benchmark {
				found = true
				break
			}
		}
		if !found {
			return fieldErr("benchmark", "unknown benchmark %q (want one of %s)",
				r.Benchmark, strings.Join(known, ", "))
		}
	}
	if r.BusTimePerUnit < 0 {
		return fieldErr("busTimePerUnit", "negative bus rate %g", r.BusTimePerUnit)
	}
	if r.MaxPEs < 0 {
		return fieldErr("maxPEs", "negative MaxPEs %d", r.MaxPEs)
	}
	if r.FloorplanGenerations < 0 {
		return fieldErr("floorplanGenerations", "negative floorplan generations %d", r.FloorplanGenerations)
	}
	if r.Parallelism < 0 {
		return fieldErr("parallelism", "negative parallelism %d", r.Parallelism)
	}
	if r.Parallelism > 0 && !fs.parallelism {
		return fieldErr("parallelism", "parallelism on a %q request (only the cosynthesis, simulate and stream flows consume it)", r.Flow)
	}
	switch r.Solver {
	case "", hotspot.SolverDense, hotspot.SolverSparse, hotspot.SolverPCG:
	default:
		return fieldErr("solver", "unknown solver %q (want one of %v)", r.Solver, hotspot.SolverNames())
	}
	if r.DTM != nil && r.Flow != FlowDTM {
		return fieldErr("dtm", "dtm parameters on a %q request", r.Flow)
	}
	if r.Simulate != nil && r.Flow != FlowSimulate {
		return fieldErr("simulate", "simulate parameters on a %q request", r.Flow)
	}
	if fs.validate != nil {
		return fs.validate(r)
	}
	return nil
}

// schedOverrides reports whether any scheduler knob is set and builds
// the resulting configuration for the policy.
func (r *Request) schedOverrides(p Policy) *SchedConfig {
	if r.TempWeight == nil && r.PowerWeight == nil && r.EnergyWeight == nil && r.ThermalHorizon == nil {
		return nil
	}
	sc := sched.DefaultConfig(p)
	if r.TempWeight != nil {
		sc.TempWeight = *r.TempWeight
	}
	if r.PowerWeight != nil {
		sc.PowerWeight = *r.PowerWeight
	}
	if r.EnergyWeight != nil {
		sc.EnergyWeight = *r.EnergyWeight
	}
	if r.ThermalHorizon != nil {
		sc.ThermalHorizon = *r.ThermalHorizon
	}
	return &sc
}

// platformConfig lowers the request to the platform flow's configuration.
func (r *Request) platformConfig() (cosynth.PlatformConfig, error) {
	p, err := r.policy()
	if err != nil {
		return cosynth.PlatformConfig{}, err
	}
	return cosynth.PlatformConfig{
		Policy:         p,
		Sched:          r.schedOverrides(p),
		BusTimePerUnit: r.BusTimePerUnit,
	}, nil
}

// cosynthConfig lowers the request to the co-synthesis flow's
// configuration.
func (r *Request) cosynthConfig() (cosynth.CoSynthConfig, error) {
	p, err := r.policy()
	if err != nil {
		return cosynth.CoSynthConfig{}, err
	}
	cfg := cosynth.CoSynthConfig{
		Policy:               p,
		Sched:                r.schedOverrides(p),
		CandidateTypes:       r.CandidateTypes,
		MaxPEs:               r.MaxPEs,
		BusTimePerUnit:       r.BusTimePerUnit,
		FloorplanGenerations: r.FloorplanGenerations,
		Parallelism:          r.Parallelism,
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
		cfg.SeedSet = true
	}
	return cfg, nil
}
