// Package linttest runs thermalvet analyzers over fixture packages,
// in the style of golang.org/x/tools/go/analysis/analysistest (which
// this module deliberately does not depend on). Fixtures live under
// testdata/src/<importpath>/ and carry expectations as comments:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment holds one or more quoted regular
// expressions; every diagnostic reported on that line must match one
// of them, every expectation must be matched by some diagnostic, and
// lines without expectations must stay silent. Fixture packages may
// import the standard library (resolved from compiled export data via
// `go list -export`) and sibling fixture packages (type-checked
// recursively from testdata source).
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"thermalsched/internal/lint/analysis"
	"thermalsched/internal/lint/load"
)

// Run applies the analyzer to each fixture package (an import path
// under testdata/src) and checks diagnostics against the fixtures'
// `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	ld := &fixtureLoader{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		cache:   map[string]*fixturePkg{},
	}
	for _, path := range importPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.pkg,
			TypesInfo: pkg.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
			continue
		}
		checkExpectations(t, ld.fset, pkg.files, diags)
	}
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages, resolving imports first
// against testdata source, then against stdlib export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*fixturePkg

	stdOnce sync.Once
	stdErr  error
	std     types.Importer
	exports map[string]string
}

func (ld *fixtureLoader) load(importPath string) (*fixturePkg, error) {
	if pkg, ok := ld.cache[importPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %v", err)
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	ld.cache[importPath] = fp
	return fp, nil
}

// importPkg resolves one import: fixture-local packages from source,
// everything else from stdlib export data.
func (ld *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	ld.stdOnce.Do(func() {
		// The closure of "std" covers anything a fixture could
		// import; one go list call, served from the build cache.
		ld.exports, ld.stdErr = load.ExportData("std")
		ld.std = load.ExportImporter(ld.fset, ld.exports)
	})
	if ld.stdErr != nil {
		return nil, ld.stdErr
	}
	return ld.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe pulls the quoted regexps out of one // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// checkExpectations cross-checks reported diagnostics against the
// fixtures' // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail a
				// directive (`//thermalvet:allow ... // want ...`,
				// one comment token).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				text := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s: // want comment with no quoted pattern", pos)
					continue
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
