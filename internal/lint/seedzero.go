package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"thermalsched/internal/lint/analysis"
)

// SeedZeroAnalyzer flags the `if seed == 0 { seed = ... }` rewrite
// shape on any identifier matching (?i)seed, in every package. Seed
// zero is a valid seed under this repository's contract ("seeds are
// used verbatim; zero honored" — PR 4); code that treats zero as
// "unset" silently reroutes callers who explicitly asked for seed 0
// onto a different RNG stream. That bug shipped twice (PR-1
// CoSynthConfig, PR-4 taskgen audit) before the contract was written
// down. Only the rewrite shape is flagged: validating a seed
// (returning an error, selecting a documented default through a
// presence flag like SeedSet) has no assignment in the guarded body
// and passes. Deliberate rewrites carry
// //thermalvet:allow seedzero(reason).
var SeedZeroAnalyzer = &analysis.Analyzer{
	Name: "seedzero",
	Doc:  "flag `if seed == 0 { seed = ... }`-shaped rewrites that treat seed zero as unset",
	Run:  runSeedZero,
}

func runSeedZero(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		w := fileWaivers(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			seedExpr := seedZeroComparison(ifs.Cond)
			if seedExpr == nil {
				return true
			}
			if !bodyRewrites(ifs.Body, seedExpr) {
				return true
			}
			if w.waivedAt(pass.Fset, ifs.Pos(), pass.Analyzer.Name) {
				return true
			}
			pass.Reportf(ifs.Pos(),
				"seed-zero rewrite: %s == 0 is treated as unset and reassigned; seed zero is a valid seed (use a presence flag, or waive with //thermalvet:allow seedzero(reason))",
				types.ExprString(seedExpr))
			return true
		})
	}
	return nil
}

// seedZeroComparison returns the seed-ish operand of an `x == 0`
// (or `0 == x`) comparison anywhere inside cond, or nil.
func seedZeroComparison(cond ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op.String() != "==" {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			if isZeroLit(pair[1]) && isSeedName(pair[0]) {
				found = pair[0]
				return false
			}
		}
		return true
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isSeedName reports whether the expression names a seed: a plain
// identifier or a field selection whose final name contains "seed"
// case-insensitively.
func isSeedName(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "seed")
	case *ast.StarExpr:
		return isSeedName(x.X)
	}
	return false
}

// bodyRewrites reports whether the guarded body assigns to the
// compared seed expression (by syntactic identity) — the shape that
// turns "seed is zero" into "pretend a different seed was given".
func bodyRewrites(body *ast.BlockStmt, seed ast.Expr) bool {
	want := types.ExprString(ast.Unparen(seed))
	rewrites := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if types.ExprString(ast.Unparen(lhs)) == want {
					rewrites = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if types.ExprString(ast.Unparen(s.X)) == want {
				rewrites = true
				return false
			}
		}
		return true
	})
	return rewrites
}
