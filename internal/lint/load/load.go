// Package load turns `go list` package patterns into type-checked
// packages for the thermalvet analyzers. It deliberately avoids
// golang.org/x/tools/go/packages (the module carries no third-party
// dependencies): `go list -export -json -deps` supplies source file
// lists for the target packages and compiled export data for every
// dependency, and the standard library's gc importer reads that
// export data through a lookup function. Only the target packages'
// sources are parsed and type-checked, so loading stays fast even
// though the dependency closure includes the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds type-checker soft failures. Analysis still
	// runs on packages with errors (matching go vet), but drivers
	// may want to surface them.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks the packages matching the
// given `go list` patterns (e.g. "./...").
func Packages(patterns ...string) ([]*Package, error) {
	listed, err := golist(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportData maps every package in the dependency closure of the
// patterns to its compiled export-data file. The fixture harness uses
// it to resolve standard-library imports without parsing GOROOT
// sources.
func ExportData(patterns ...string) (map[string]string, error) {
	listed, err := golist(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// golist shells out to the go tool. -export builds (or reuses from
// the build cache) export data for every package in the dependency
// closure; -deps walks the closure so imports of the targets resolve.
func golist(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiled export data files (the values of the exports map,
// as produced by `go list -export`). The standard gc importer parses
// the export data; it caches packages internally, so one importer
// should be shared across all packages of a load.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return ImporterWithLookup(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// ImporterWithLookup returns a types.Importer that reads gc export
// data through an arbitrary lookup function — the vet-tool protocol
// hands thermalvet its own import-path → export-file mapping.
func ImporterWithLookup(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrors []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrors = append(typeErrors, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypeErrors: typeErrors,
	}, nil
}

// NewInfo allocates the types.Info map set the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
