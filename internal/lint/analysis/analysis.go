// Package analysis is a dependency-free re-implementation of the
// subset of golang.org/x/tools/go/analysis that the thermalvet suite
// needs: an Analyzer owns a Run function that inspects one typed
// package through a Pass and reports Diagnostics. The module
// deliberately carries no third-party dependencies, so instead of
// importing x/tools we mirror its API shape — analyzers written
// against this package port to the upstream framework by changing one
// import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //thermalvet:allow waiver comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: first sentence is the
	// summary shown in usage listings.
	Doc string

	// Run applies the analyzer to one package. It reports findings
	// via pass.Report and returns an error only for internal
	// failures, not for findings.
	Run func(pass *Pass) error
}

// Pass presents one typed package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the check being run, so shared helpers can key
	// waiver lookups on its name.
	Analyzer *Analyzer

	// Fset maps token positions to file locations.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's facts about the syntax.
	TypesInfo *types.Info

	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf is a convenience wrapper around Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}
