package lint

import (
	"testing"

	"thermalsched/internal/lint/linttest"
)

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata", MapIterAnalyzer,
		"thermalsched/internal/hotspot", // core: triggering and idiomatic fixtures
		"thermalsched/internal/jobs",    // exempt tier: identical shapes, no findings
	)
}

func TestWallTime(t *testing.T) {
	linttest.Run(t, "testdata", WallTimeAnalyzer,
		"thermalsched/internal/sim",  // core
		"thermalsched/internal/jobs", // exempt tier
	)
}

func TestSeedZero(t *testing.T) {
	linttest.Run(t, "testdata", SeedZeroAnalyzer, "seedfix")
}

func TestFpFields(t *testing.T) {
	linttest.Run(t, "testdata", FpFieldsAnalyzer, "fpfix")
}

// The core-package predicate is the scoping contract of mapiter and
// walltime; pin its edges.
func TestIsCorePackage(t *testing.T) {
	cases := map[string]bool{
		"thermalsched":                          true, // root: Engine, fingerprints
		"thermalsched [thermalsched.test]":      true, // vet test variant
		"thermalsched/internal/hotspot":         true,
		"thermalsched/internal/search":          true,
		"thermalsched/internal/jobs":            false, // wall-clock by design
		"thermalsched/internal/service":         false,
		"thermalsched/internal/linalg":          false, // order-free numeric kernels
		"thermalsched/internal/lint":            false,
		"thermalsched/cmd/thermsched":           false,
		"thermalsched/internal/hotspot/nothing": false,
		"othermodule/internal/hotspot":          false,
	}
	for path, want := range cases {
		if got := isCorePackage(path); got != want {
			t.Errorf("isCorePackage(%q) = %t, want %t", path, got, want)
		}
	}
}

func TestAnalyzersStable(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"mapiter", "seedzero", "fpfields", "walltime"} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}
