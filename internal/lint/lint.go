// Package lint is the thermalvet analyzer suite: custom static checks
// that turn this repository's determinism and serialization contracts
// — enforced until now only by after-the-fact regression tests — into
// compile-time properties. Four analyzers:
//
//   - mapiter: no `for range` over a map in the deterministic core
//     unless the keys are collected and sorted, or the site carries a
//     waiver. Map iteration order is randomized per run, and float
//     accumulation in map order is last-ulp-visible (the PR-4
//     hotspot.NewModel bug class).
//   - seedzero: no `if seed == 0 { seed = ... }`-shaped rewrites.
//     Seed zero is a valid seed; treating it as "unset" silently
//     changes results for callers who asked for it (the PR-1/PR-4
//     bug class).
//   - fpfields: every field-by-field serializer registered with a
//     `//thermalvet:serializes T` comment must reference all exported
//     fields of T or name the deliberately-skipped ones in a
//     `skip(...)` list. Replaces scattered reflect.NumField pins and
//     reports *which* field drifted.
//   - walltime: no time.Now/time.Since and no global math/rand in the
//     deterministic core. Wall-clock and process-global RNG state are
//     the two ambient inputs that break cross-run byte-identity.
//
// Findings at sites that are deliberate carry an inline waiver:
//
//	//thermalvet:allow <analyzer>(<reason>)
//
// on the flagged line or the line above. The reason is mandatory —
// a waiver without one is itself a finding.
package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"thermalsched/internal/lint/analysis"
)

// Analyzers returns the full thermalvet suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapIterAnalyzer,
		SeedZeroAnalyzer,
		FpFieldsAnalyzer,
		WallTimeAnalyzer,
	}
}

// corePackages names the deterministic core: the packages whose
// outputs are covered by the byte-identity contract (cross-surface,
// cross-parallelism, cross-restart). The jobs/service tier is exempt:
// it deals in wall-clock timestamps and client-facing rate limits by
// design.
var corePackages = map[string]bool{
	"hotspot":     true,
	"sched":       true,
	"floorplan":   true,
	"cosynth":     true,
	"sim":         true,
	"runtime":     true,
	"scenario":    true,
	"taskgraph":   true,
	"experiments": true,
	"search":      true,
	"stream":      true,
	"coloop":      true,
}

// modulePath is the import-path prefix of this repository.
const modulePath = "thermalsched"

// isCorePackage reports whether the import path belongs to the
// deterministic core. Vet test variants ("pkg [pkg.test]") resolve
// like their base package.
func isCorePackage(importPath string) bool {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	if importPath == modulePath {
		return true // root package: Engine, fingerprints, flows
	}
	rest, ok := strings.CutPrefix(importPath, modulePath+"/internal/")
	if !ok {
		return false
	}
	return corePackages[rest]
}

// isTestFile reports whether pos sits in a _test.go file. The
// determinism contracts govern production code; test files measure
// wall-clock and iterate maps for assertions freely.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// waiverRe matches one waiver directive:
//
//	//thermalvet:allow mapiter(accumulation is order-independent)
//
// The optional trailing "// want ..." clause exists so linttest
// fixtures can attach expectations to directive lines; it is inert in
// real code.
var waiverRe = regexp.MustCompile(`^//thermalvet:allow\s+([a-z]+)\(([^)]*)\)\s*(?:// want .*)?$`)

// waivers indexes one file's //thermalvet:allow directives by line.
type waivers map[int][]waiver

type waiver struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// fileWaivers collects the waiver directives of one file. Malformed
// waivers (an empty reason) are reported immediately: a waiver is an
// auditable exemption, and "because" is not a justification.
func fileWaivers(pass *analysis.Pass, f *ast.File) waivers {
	w := waivers{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := waiverRe.FindStringSubmatch(c.Text)
			if m == nil {
				if strings.HasPrefix(c.Text, "//thermalvet:allow") {
					pass.Reportf(c.Pos(), "malformed thermalvet waiver: want //thermalvet:allow <analyzer>(<reason>)")
				}
				continue
			}
			name, reason := m[1], strings.TrimSpace(m[2])
			if reason == "" {
				pass.Reportf(c.Pos(), "thermalvet waiver for %s is missing its justification", name)
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			w[line] = append(w[line], waiver{analyzer: name, reason: reason, pos: c.Pos()})
		}
	}
	return w
}

// waivedAt reports whether a finding of the named analyzer at pos is
// waived: a directive on the same line or the line immediately above.
func (w waivers) waivedAt(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, wv := range w[l] {
			if wv.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
