package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"thermalsched/internal/lint/analysis"
)

// WallTimeAnalyzer forbids the two ambient nondeterminism sources in
// the deterministic core: wall-clock reads (time.Now, time.Since,
// time.Until) and the process-global math/rand state (package-level
// functions of math/rand and math/rand/v2, whose stream is shared
// across goroutines and seeded per process). Seeded *rand.Rand
// instances and rand.New/NewSource constructors are fine — that is
// exactly the sanctioned pattern. The jobs/service tier is exempt
// (timestamps and rate limits are wall-clock by design), as are test
// files. Observability sites that deliberately measure elapsed time
// (the elapsedMs response stamp, documented as excluded from
// byte-identity) carry //thermalvet:allow walltime(reason).
var WallTimeAnalyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Until and global math/rand in the deterministic core",
	Run:  runWallTime,
}

func runWallTime(pass *analysis.Pass) error {
	if !isCorePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		w := fileWaivers(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			bad := ""
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					bad = "wall-clock read"
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
					!strings.HasPrefix(fn.Name(), "New") {
					bad = "process-global RNG"
				}
			}
			if bad == "" {
				return true
			}
			if w.waivedAt(pass.Fset, sel.Pos(), pass.Analyzer.Name) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s %s.%s in the deterministic core breaks cross-run byte-identity; thread a seeded source or waive with //thermalvet:allow walltime(reason)",
				bad, fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}
