package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"thermalsched/internal/lint/analysis"
)

// FpFieldsAnalyzer checks field-by-field serializers against the
// structs they serialize. The repository's cache keys and coalescing
// fingerprints (Request.Fingerprint, the Engine's modelKey,
// scenario.Spec.Fingerprint) serialize every field explicitly — a
// reflective dump would destabilize keys on pointer fields — which
// means a newly added struct field is silently *absent* from the key
// until someone remembers to add it, and two requests differing only
// in that field wrongly coalesce. Until now four scattered
// reflect.NumField count pins guarded this; they fire on any count
// change without saying what drifted. fpfields replaces them: a
// serializer declares what it covers with doc-comment registrations
//
//	//thermalvet:serializes T
//	//thermalvet:serializes pkg.T skip(FieldA, FieldB)
//
// and the analyzer verifies the function body references every
// exported field of T, naming each missing field. Deliberately
// excluded fields are named in skip(...) — and a skip list drifts
// too: skipping a field that no longer exists, or one the body does
// reference, is reported.
var FpFieldsAnalyzer = &analysis.Analyzer{
	Name: "fpfields",
	Doc:  "check //thermalvet:serializes-registered serializers reference every exported field of their struct",
	Run:  runFpFields,
}

// serializesRe matches one registration:
//
//	//thermalvet:serializes Request
//	//thermalvet:serializes hotspot.Config skip(Name)
//
// The optional trailing "// want ..." clause exists so linttest
// fixtures can attach expectations to registration lines; it is inert
// in real code.
var serializesRe = regexp.MustCompile(`^//thermalvet:serializes\s+([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)\s*(?:skip\(([^)]*)\)\s*)?(?:// want .*)?$`)

func runFpFields(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := serializesRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//thermalvet:serializes") {
						pass.Reportf(c.Pos(), "malformed registration: want //thermalvet:serializes T [skip(F1, F2)]")
					}
					continue
				}
				checkSerializer(pass, f, fd, c, m[1], splitSkips(m[2]))
			}
		}
	}
	return nil
}

func splitSkips(s string) []string {
	var skips []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			skips = append(skips, part)
		}
	}
	return skips
}

// checkSerializer verifies one registration on one function.
func checkSerializer(pass *analysis.Pass, f *ast.File, fd *ast.FuncDecl, c *ast.Comment, typeName string, skips []string) {
	st, label, err := resolveStruct(pass, f, typeName)
	if err != nil {
		pass.Reportf(c.Pos(), "//thermalvet:serializes %s: %v", typeName, err)
		return
	}

	fields := map[*types.Var]bool{} // exported field -> referenced in body
	byName := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		if fld := st.Field(i); fld.Exported() {
			fields[fld] = false
			byName[fld.Name()] = fld
		}
	}

	// Mark every field of T the function body selects, whether off
	// the receiver, a parameter, or a derived local (e.g. the
	// withDefaults() copy a normalizing serializer hashes).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if fld, ok := selection.Obj().(*types.Var); ok {
			if _, tracked := fields[fld]; tracked {
				fields[fld] = true
			}
		}
		return true
	})

	skipped := map[*types.Var]bool{}
	for _, name := range skips {
		fld, ok := byName[name]
		if !ok {
			pass.Reportf(c.Pos(), "serializer %s skips %s.%s, but %s has no such exported field — the skip list drifted",
				fd.Name.Name, label, name, label)
			continue
		}
		if fields[fld] {
			pass.Reportf(c.Pos(), "serializer %s skips %s.%s but its body references it — drop the skip or the reference",
				fd.Name.Name, label, name)
		}
		skipped[fld] = true
	}

	var missing []string
	for fld, referenced := range fields {
		if !referenced && !skipped[fld] {
			missing = append(missing, fld.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(c.Pos(), "serializer %s does not reference %s.%s; serialize it or name it in skip(...)",
			fd.Name.Name, label, name)
	}
}

// resolveStruct resolves "T" in the pass's package scope, or "pkg.T"
// through the file's imports, to the underlying struct type.
func resolveStruct(pass *analysis.Pass, f *ast.File, name string) (*types.Struct, string, error) {
	scope := pass.Pkg.Scope()
	label := name
	if pkgPart, typePart, qualified := strings.Cut(name, "."); qualified {
		pkg := importedPackage(pass, f, pkgPart)
		if pkg == nil {
			return nil, "", fmt.Errorf("package %q is not imported by this file", pkgPart)
		}
		scope = pkg.Scope()
		name = typePart
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, "", fmt.Errorf("type not found")
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, "", fmt.Errorf("%s is not a type", label)
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, "", fmt.Errorf("%s is not a struct type", label)
	}
	return st, label, nil
}

// importedPackage resolves a local package name (alias-aware) through
// the file's import declarations.
func importedPackage(pass *analysis.Pass, f *ast.File, localName string) *types.Package {
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		var imported *types.Package
		for _, p := range pass.Pkg.Imports() {
			if p.Path() == path {
				imported = p
				break
			}
		}
		if imported == nil {
			continue
		}
		name := imported.Name()
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name == localName {
			return imported
		}
	}
	return nil
}
