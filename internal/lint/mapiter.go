package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"thermalsched/internal/lint/analysis"
)

// MapIterAnalyzer flags `for range` over a map inside the
// deterministic core. Go randomizes map iteration order per run, and
// order-dependent work in the loop body (float accumulation, first-hit
// selection, appends that feed a tie-break) is exactly how the PR-4
// hotspot.NewModel cross-build byte-identity bug happened. Two shapes
// are accepted without a waiver:
//
//   - the collect-then-sort idiom: the loop body only appends the key
//     (or value) to slice variables, and every one of those slices is
//     passed to a sort.* / slices.Sort* call later in the same
//     enclosing block — order-dependence is erased before use;
//   - an explicit //thermalvet:allow mapiter(reason) waiver on the
//     statement or the line above, for loops that are genuinely
//     order-independent (pure counting, draining, symmetric max).
var MapIterAnalyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag range-over-map in the deterministic core unless keys are sorted or the site is waived",
	Run:  runMapIter,
}

func runMapIter(pass *analysis.Pass) error {
	if !isCorePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		w := fileWaivers(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if w.waivedAt(pass.Fset, rng.Pos(), pass.Analyzer.Name) {
				return true
			}
			if isSortedCollector(pass, f, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s in the deterministic core: iteration order is randomized; collect+sort the keys or waive with //thermalvet:allow mapiter(reason)",
				types.ExprString(rng.X))
			return true
		})
	}
	return nil
}

// isSortedCollector recognizes the canonical deterministic idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys) // or sort.Slice, slices.Sort, ...
//
// The loop body must consist solely of self-appends to slice
// variables, and each collected variable must reach a sort call in a
// statement after the loop within the innermost enclosing statement
// list. Anything fancier needs an explicit waiver.
func isSortedCollector(pass *analysis.Pass, f *ast.File, rng *ast.RangeStmt) bool {
	collected := map[*types.Var]bool{}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if first, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[first] != obj {
			return false
		}
		collected[obj] = true
	}
	if len(collected) == 0 {
		return false
	}
	after := statementsAfter(f, rng)
	for obj := range collected {
		if !sortedIn(pass, after, obj) {
			return false
		}
	}
	return true
}

// statementsAfter returns the statements following stmt in its
// innermost enclosing statement list (block, case or comm clause).
func statementsAfter(f *ast.File, stmt ast.Stmt) []ast.Stmt {
	var after []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if s == stmt {
				after = list[i+1:]
				return false
			}
		}
		return true
	})
	return after
}

// isSortFunc reports whether fn is one of the stdlib sorters whose
// first argument is the slice being ordered.
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// sortedIn reports whether any of the statements (or their nested
// statements) passes obj to a sort.*/slices.Sort* call.
func sortedIn(pass *analysis.Pass, stmts []ast.Stmt, obj *types.Var) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isSortFunc(fn) {
				return true
			}
			arg, ok := call.Args[0].(*ast.Ident)
			if ok && pass.TypesInfo.Uses[arg] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
