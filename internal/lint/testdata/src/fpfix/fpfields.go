// Fixtures for the fpfields analyzer, mirroring the shapes of the
// real serializers: Request.Fingerprint (receiver fields plus a
// deliberate Parallelism skip), modelKey (cross-package struct), and
// a normalizing serializer hashing a withDefaults() copy.
package fpfix

import (
	"fmt"
	"hash/fnv"

	"fpext"
)

type Request struct {
	Flow        string
	Seed        int64
	Parallelism int
	Gantt       bool
}

// A complete serializer with a deliberate, declared skip: silent.
//
//thermalvet:serializes Request skip(Parallelism)
func (r *Request) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%t|", r.Flow, r.Seed, r.Gantt)
	return fmt.Sprintf("%016x", h.Sum64())
}

type Dropped struct {
	Flow string
	Seed int64
}

// Deliberately dropping a field from the serialization names the
// field — the acceptance-criterion case.
//
//thermalvet:serializes Dropped // want `serializer dropped does not reference Dropped.Seed`
func dropped(d Dropped) string {
	return fmt.Sprintf("%s|", d.Flow)
}

// Cross-package registration, complete with skip: silent. Unexported
// fields of the target are outside the contract.
//
//thermalvet:serializes fpext.Config skip(Name)
func configKey(c fpext.Config) string {
	return fmt.Sprintf("%g|%g|", c.Alpha, c.Beta)
}

// Cross-package drift is reported with the qualified label.
//
//thermalvet:serializes fpext.Config // want `serializer configKeyMissing does not reference fpext.Config.Name`
func configKeyMissing(c fpext.Config) string {
	return fmt.Sprintf("%g|%g|", c.Alpha, c.Beta)
}

// Skipping a field that no longer exists is drift in the other
// direction.
//
//thermalvet:serializes Request skip(Bogus, Parallelism) // want `skips Request.Bogus, but Request has no such exported field`
func bogusSkip(r Request) string {
	return fmt.Sprintf("%s|%d|%t|", r.Flow, r.Seed, r.Gantt)
}

// Skipping a field the body actually references is a contradiction.
//
//thermalvet:serializes Request skip(Flow, Parallelism) // want `skips Request.Flow but its body references it`
func contradictorySkip(r Request) string {
	return fmt.Sprintf("%s|%d|%t|", r.Flow, r.Seed, r.Gantt)
}

type spec struct {
	Controller string
	TriggerC   float64
}

func (s spec) withDefaults() spec {
	if s.Controller == "" {
		s.Controller = "toggle"
	}
	return s
}

// Fields reached through a normalized copy (the withDefaults pattern
// the real fingerprints use) count as referenced.
//
//thermalvet:serializes spec
func specKey(s spec) string {
	d := s.withDefaults()
	return fmt.Sprintf("%s|%g|", d.Controller, d.TriggerC)
}

// Unknown type names are reported, not ignored.
//
//thermalvet:serializes NoSuchType // want `type not found`
func unknownType() string { return "" }

// A registration that does not parse is reported.
//
//thermalvet:serializes // want `malformed registration`
func malformed() string { return "" }
