// Fixtures for the seedzero analyzer. The analyzer runs in every
// package: the rewrite bug class has shipped from cmd/ and internal/
// alike.
package seedfix

import "errors"

// The canonical bug: an explicit seed 0 is silently rerouted.
func rewrite(seed int64) int64 {
	if seed == 0 { // want `seed-zero rewrite: seed == 0 is treated as unset`
		seed = 1
	}
	return seed
}

type Config struct {
	Seed    int64
	SimSeed int64
	SeedSet bool
}

// Field selections count too.
func rewriteField(c *Config) {
	if c.Seed == 0 { // want `seed-zero rewrite: c.Seed == 0 is treated as unset`
		c.Seed = 42
	}
}

// Reversed operand order and compound conditions still match.
func reversed(c *Config, n int64) {
	if n > 3 && 0 == c.SimSeed { // want `seed-zero rewrite: c.SimSeed == 0 is treated as unset`
		c.SimSeed = n
	}
}

// Validating without rewriting is fine: zero is rejected, not
// silently replaced.
func validate(seed int64) error {
	if seed == 0 {
		return errors.New("seed must be nonzero")
	}
	return nil
}

// A presence flag is the sanctioned pattern: the zero test guards a
// default only when the caller set nothing, and the assignment
// targets the flag's companion elsewhere, not the compared seed.
func defaulted(c *Config) int64 {
	if !c.SeedSet {
		return 1
	}
	return c.Seed
}

// Identifiers that are not seed-ish never match.
func otherZero(count int) int {
	if count == 0 {
		count = 10
	}
	return count
}

// An explicit waiver with a justification silences the site.
func waivedRewrite(seed int64) int64 {
	//thermalvet:allow seedzero(documented legacy CLI default; see README seeding contract)
	if seed == 0 {
		seed = 1
	}
	return seed
}
