// Fixtures proving mapiter and walltime are scoped to the
// deterministic core: the jobs tier ranges over maps and reads the
// wall clock by design, and none of it is flagged.
package jobs

import (
	"math/rand"
	"time"
)

func snapshotStates(jobs map[string]int) int {
	n := 0
	for _, st := range jobs {
		n += st
	}
	return n
}

func stamp() int64 {
	return time.Now().UnixMilli()
}

func jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second)))
}
