// Fixtures for the mapiter analyzer inside a deterministic-core
// package path.
package hotspot

import (
	"slices"
	"sort"
)

// Accumulating floats in map order is the PR-4 bug class: flagged.
func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map m in the deterministic core`
		total += v
	}
	return total
}

// The collect-then-sort idiom erases iteration order: silent.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// slices.Sort counts as sorting too.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Collecting without sorting leaks map order into the result: flagged.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m in the deterministic core`
		keys = append(keys, k)
	}
	return keys
}

// A waiver with a reason silences the site.
func waived(m map[string]int) int {
	n := 0
	//thermalvet:allow mapiter(pure counting is order-independent)
	for range m {
		n++
	}
	return n
}

// A waiver without a justification is itself a finding, and does not
// silence the site.
func badWaiver(m map[string]int) int {
	n := 0
	//thermalvet:allow mapiter() // want `missing its justification`
	for range m { // want `range over map m in the deterministic core`
		n++
	}
	return n
}

// Ranging over slices is always fine.
func sliceSum(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}
