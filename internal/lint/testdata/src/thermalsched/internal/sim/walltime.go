// Fixtures for the walltime analyzer inside a deterministic-core
// package path.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now in the deterministic core`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since in the deterministic core`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `wall-clock read time.Until in the deterministic core`
}

// An explicit waiver for a documented observability site.
func waivedElapsed(start time.Time) float64 {
	//thermalvet:allow walltime(elapsed-ms stamp is observability only, excluded from byte-identity)
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func draw() float64 {
	return rand.Float64() // want `process-global RNG rand.Float64 in the deterministic core`
}

func drawV2() int {
	return randv2.IntN(4) // want `process-global RNG rand.IntN in the deterministic core`
}

// Seeded instances are the sanctioned pattern: constructors and
// methods on *rand.Rand are silent.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Deterministic time arithmetic is fine; only clock reads are
// ambient.
func scale(d time.Duration) time.Duration {
	return d * 2
}
