// Package fpext provides a cross-package struct for fpfields
// fixtures, standing in for hotspot.Config behind the Engine's
// modelKey.
package fpext

type Config struct {
	Alpha float64
	Beta  float64
	Name  string

	internalScratch int // unexported: outside the contract
}

// Keep the unexported field "used" so the fixture compiles cleanly.
func (c *Config) touch() { c.internalScratch++ }

var _ = (*Config).touch
