package floorplan

import (
	"fmt"
	"math"
	"sort"

	"thermalsched/internal/geom"
)

// A slicing floorplan is encoded as a normalized Polish expression: a
// postfix sequence of operands (block indices) and the cut operators
// OpH / OpV. "ab|" places a and b side by side (vertical cut); "ab-"
// stacks b on top of a (horizontal cut). Sizing uses Stockmeyer shape
// curves: every subtree carries the set of non-dominated (w, h)
// realizations, merged bottom-up.

// Gene is one element of a Polish expression: a non-negative block index
// or one of the operator constants.
type Gene int

// Operator genes. Values ≥ 0 are block indices.
const (
	OpH Gene = -1 // horizontal cut: top/bottom stack, heights add
	OpV Gene = -2 // vertical cut: left/right, widths add
)

// IsOperator reports whether g is a cut operator.
func (g Gene) IsOperator() bool { return g == OpH || g == OpV }

// Expression is a Polish (postfix) expression over n blocks:
// n operand genes and n-1 operator genes obeying the ballot property
// (every prefix has more operands than operators).
type Expression []Gene

// ValidExpression checks that e is a structurally valid Polish expression
// over exactly n blocks, each appearing once.
func ValidExpression(e Expression, n int) error {
	if len(e) != 2*n-1 {
		return fmt.Errorf("floorplan: expression length %d, want %d for %d blocks", len(e), 2*n-1, n)
	}
	seen := make([]bool, n)
	operands, operators := 0, 0
	for i, g := range e {
		if g.IsOperator() {
			operators++
			if operators >= operands {
				return fmt.Errorf("floorplan: ballot property violated at position %d", i)
			}
		} else {
			if int(g) < 0 || int(g) >= n {
				return fmt.Errorf("floorplan: operand %d out of range [0,%d)", int(g), n)
			}
			if seen[g] {
				return fmt.Errorf("floorplan: operand %d repeated", int(g))
			}
			seen[g] = true
			operands++
		}
	}
	if operands != n {
		return fmt.Errorf("floorplan: %d operands, want %d", operands, n)
	}
	return nil
}

// InitialExpression returns the canonical chain expression
// b0 b1 op b2 op ... alternating cut directions, a reasonable seed for
// search.
func InitialExpression(n int) Expression {
	if n == 1 {
		return Expression{0}
	}
	e := make(Expression, 0, 2*n-1)
	e = append(e, 0, 1)
	e = append(e, OpV)
	for i := 2; i < n; i++ {
		e = append(e, Gene(i))
		if i%2 == 0 {
			e = append(e, OpH)
		} else {
			e = append(e, OpV)
		}
	}
	return e
}

// shape is one feasible (w, h) realization of a subtree. For leaves,
// choice records which discrete block shape was used; for internal nodes,
// li/ri record the child shape indices that produced this realization.
type shape struct {
	w, h   float64
	li, ri int // indices into the children's shape lists (internal nodes)
	choice int // leaf only: index into the block's candidate list
}

// shapesPerBlock controls how many discrete aspect ratios are sampled per
// block between MinAspect and MaxAspect.
const shapesPerBlock = 6

// maxCurve caps a subtree's shape-curve length; longer lists are pruned
// to the non-dominated subset and subsampled.
const maxCurve = 24

// blockShapes enumerates candidate (w, h) realizations for a block.
func blockShapes(b Block) []shape {
	k := shapesPerBlock
	if b.MaxAspect-b.MinAspect < 1e-12 {
		k = 1
	}
	out := make([]shape, 0, k)
	for i := 0; i < k; i++ {
		ar := b.MinAspect
		if k > 1 {
			ar = b.MinAspect + (b.MaxAspect-b.MinAspect)*float64(i)/float64(k-1)
		}
		h := math.Sqrt(b.Area * ar)
		w := b.Area / h
		out = append(out, shape{w: w, h: h, choice: i})
	}
	return out
}

// prune keeps only non-dominated shapes (no other shape with both
// smaller-or-equal w and h) and caps the list length.
func prune(ss []shape) []shape {
	if len(ss) <= 1 {
		return ss
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].w != ss[j].w {
			return ss[i].w < ss[j].w
		}
		return ss[i].h < ss[j].h
	})
	out := ss[:0]
	bestH := math.Inf(1)
	for _, s := range ss {
		if s.h < bestH-1e-15 {
			out = append(out, s)
			bestH = s.h
		}
	}
	if len(out) > maxCurve {
		// Subsample evenly, always keeping the extremes.
		sub := make([]shape, 0, maxCurve)
		for i := 0; i < maxCurve; i++ {
			sub = append(sub, out[i*(len(out)-1)/(maxCurve-1)])
		}
		out = sub
	}
	res := make([]shape, len(out))
	copy(res, out)
	return res
}

// node is a realized slicing-tree node.
type node struct {
	op          Gene // OpH, OpV, or operand (leaf)
	left, right *node
	shapes      []shape
}

// buildTree parses the postfix expression into a tree and computes shape
// curves bottom-up. blocks[i] corresponds to operand gene i.
func buildTree(e Expression, blocks []Block) (*node, error) {
	if err := ValidExpression(e, len(blocks)); err != nil {
		return nil, err
	}
	stack := make([]*node, 0, len(blocks))
	for _, g := range e {
		if !g.IsOperator() {
			stack = append(stack, &node{op: g, shapes: blockShapes(blocks[g])})
			continue
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		n := &node{op: g, left: l, right: r}
		n.shapes = combine(g, l.shapes, r.shapes)
		stack = append(stack, n)
	}
	return stack[0], nil
}

// combine merges two children's shape curves under an operator.
// Vertical cut: widths add, heights max. Horizontal cut: heights add,
// widths max.
func combine(op Gene, ls, rs []shape) []shape {
	out := make([]shape, 0, len(ls)*len(rs))
	for li, l := range ls {
		for ri, r := range rs {
			var s shape
			if op == OpV {
				s = shape{w: l.w + r.w, h: math.Max(l.h, r.h)}
			} else {
				s = shape{w: math.Max(l.w, r.w), h: l.h + r.h}
			}
			s.li, s.ri = li, ri
			out = append(out, s)
		}
	}
	return prune(out)
}

// realize assigns concrete rectangles: the subtree rooted at n takes the
// region with lower-left (x, y) using its shape si, writing block
// positions into the floorplan under construction.
func realize(n *node, si int, x, y float64, blocks []Block, fp *Floorplan) error {
	s := n.shapes[si]
	if !n.op.IsOperator() {
		b := blocks[n.op]
		return fp.AddBlock(b.Name, geom.NewRect(x, y, s.w, s.h))
	}
	l := n.left.shapes[s.li]
	if n.op == OpV {
		if err := realize(n.left, s.li, x, y, blocks, fp); err != nil {
			return err
		}
		return realize(n.right, s.ri, x+l.w, y, blocks, fp)
	}
	if err := realize(n.left, s.li, x, y, blocks, fp); err != nil {
		return err
	}
	return realize(n.right, s.ri, x, y+l.h, blocks, fp)
}

// Pack converts a Polish expression into a concrete floorplan, choosing
// the root shape that minimizes bounding-box area. It returns the plan
// and its bounding-box area.
func Pack(e Expression, blocks []Block) (*Floorplan, float64, error) {
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, 0, err
		}
	}
	root, err := buildTree(e, blocks)
	if err != nil {
		return nil, 0, err
	}
	best, bestArea := 0, math.Inf(1)
	for i, s := range root.shapes {
		if a := s.w * s.h; a < bestArea {
			best, bestArea = i, a
		}
	}
	fp := New()
	if err := realize(root, best, 0, 0, blocks, fp); err != nil {
		return nil, 0, err
	}
	return fp, bestArea, nil
}
