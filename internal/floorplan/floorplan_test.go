package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"thermalsched/internal/geom"
)

func TestBlockValidate(t *testing.T) {
	good := Block{Name: "pe0", Area: 1e-6, MinAspect: 0.5, MaxAspect: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
	bad := []Block{
		{Name: "", Area: 1, MinAspect: 1, MaxAspect: 1},
		{Name: "x", Area: 0, MinAspect: 1, MaxAspect: 1},
		{Name: "x", Area: -1, MinAspect: 1, MaxAspect: 1},
		{Name: "x", Area: math.Inf(1), MinAspect: 1, MaxAspect: 1},
		{Name: "x", Area: 1, MinAspect: 0, MaxAspect: 1},
		{Name: "x", Area: 1, MinAspect: 2, MaxAspect: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad block %d accepted: %+v", i, b)
		}
	}
}

func TestAddBlockAndAccessors(t *testing.T) {
	fp := New()
	if err := fp.AddBlock("a", geom.NewRect(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fp.AddBlock("b", geom.NewRect(1, 0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d", fp.NumBlocks())
	}
	if got := fp.Names(); got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
	r, ok := fp.Rect("b")
	if !ok || r.W != 2 {
		t.Errorf("Rect(b) = %v, %v", r, ok)
	}
	if _, ok := fp.Rect("zz"); ok {
		t.Error("Rect of missing block should report !ok")
	}
	// Error cases.
	if err := fp.AddBlock("a", geom.NewRect(5, 5, 1, 1)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := fp.AddBlock("", geom.NewRect(5, 5, 1, 1)); err == nil {
		t.Error("empty name accepted")
	}
	if err := fp.AddBlock("c", geom.NewRect(0, 0, -1, 1)); err == nil {
		t.Error("invalid rect accepted")
	}
}

func TestZeroValueFloorplanUsable(t *testing.T) {
	var fp Floorplan
	if err := fp.AddBlock("a", geom.NewRect(0, 0, 1, 1)); err != nil {
		t.Fatalf("zero-value floorplan should accept blocks: %v", err)
	}
}

func TestAreaDeadspaceBoundingBox(t *testing.T) {
	fp := New()
	mustAdd(t, fp, "a", geom.NewRect(0, 0, 1, 1))
	mustAdd(t, fp, "b", geom.NewRect(1, 0, 1, 2))
	bb := fp.BoundingBox()
	if bb.W != 2 || bb.H != 2 {
		t.Errorf("BoundingBox = %v", bb)
	}
	if fp.Area() != 4 {
		t.Errorf("Area = %v", fp.Area())
	}
	if fp.BlockArea() != 3 {
		t.Errorf("BlockArea = %v", fp.BlockArea())
	}
	if got := fp.Deadspace(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Deadspace = %v, want 0.25", got)
	}
}

func TestValidate(t *testing.T) {
	fp := New()
	if err := fp.Validate(); err == nil {
		t.Error("empty floorplan should fail Validate")
	}
	mustAdd(t, fp, "a", geom.NewRect(0, 0, 1, 1))
	mustAdd(t, fp, "b", geom.NewRect(2, 0, 1, 1))
	if err := fp.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	mustAdd(t, fp, "c", geom.NewRect(0.5, 0.5, 1, 1)) // overlaps a
	err := fp.Validate()
	if err == nil {
		t.Fatal("overlapping plan accepted")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Errorf("error should mention overlap: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	fp := New()
	mustAdd(t, fp, "a", geom.NewRect(0, 0, 1, 1))
	c := fp.Clone()
	mustAdd(t, c, "b", geom.NewRect(2, 0, 1, 1))
	if fp.NumBlocks() != 1 || c.NumBlocks() != 2 {
		t.Error("Clone must be independent of the original")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fp := New()
	mustAdd(t, fp, "cpu0", geom.NewRect(0, 0, 0.004, 0.004))
	mustAdd(t, fp, "cpu1", geom.NewRect(0.004, 0, 0.004, 0.004))
	mustAdd(t, fp, "mem", geom.NewRect(0, 0.004, 0.008, 0.002))
	var buf bytes.Buffer
	if err := fp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != 3 {
		t.Fatalf("round trip lost blocks: %d", got.NumBlocks())
	}
	for _, name := range fp.Names() {
		want, _ := fp.Rect(name)
		have, ok := got.Rect(name)
		if !ok {
			t.Fatalf("block %q missing after round trip", name)
		}
		if math.Abs(want.X-have.X) > 1e-12 || math.Abs(want.W-have.W) > 1e-12 {
			t.Errorf("block %q rect changed: %v vs %v", name, want, have)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"comment only", "# nothing\n"},
		{"bad field count", "a 1 2 3\n"},
		{"bad number", "a 1 2 3 x\n"},
		{"zero width", "a 0 1 0 0\n"},
		{"duplicate", "a 1 1 0 0\na 1 1 2 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Errorf("Read(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestAdjacency(t *testing.T) {
	fp := New()
	mustAdd(t, fp, "a", geom.NewRect(0, 0, 1, 1))
	mustAdd(t, fp, "b", geom.NewRect(1, 0, 1, 1)) // abuts a
	mustAdd(t, fp, "c", geom.NewRect(5, 5, 1, 1)) // isolated
	adj := fp.Adjacency(geom.Eps)
	if l := adj[0][1]; math.Abs(l-1) > 1e-12 {
		t.Errorf("shared edge a-b = %v, want 1", l)
	}
	if _, ok := adj[0][2]; ok {
		t.Error("a and c should not be adjacent")
	}
}

func TestStringAndSortedNames(t *testing.T) {
	fp := New()
	mustAdd(t, fp, "z", geom.NewRect(0, 0, 0.001, 0.001))
	mustAdd(t, fp, "a", geom.NewRect(0.001, 0, 0.001, 0.001))
	if s := fp.String(); !strings.Contains(s, "2 blocks") {
		t.Errorf("String = %q", s)
	}
	names := fp.SortedNames()
	if names[0] != "a" || names[1] != "z" {
		t.Errorf("SortedNames = %v", names)
	}
}

func mustAdd(t *testing.T, fp *Floorplan, name string, r geom.Rect) {
	t.Helper()
	if err := fp.AddBlock(name, r); err != nil {
		t.Fatal(err)
	}
}

func TestRowOfAndGridOfKeepBlocksCoupled(t *testing.T) {
	// Heterogeneous areas (a generated 0.6–2.0 speed spread): every
	// block must share a lateral edge with at least one neighbour, or
	// the thermal model degenerates to isolated blocks.
	names := []string{"pe0", "pe1", "pe2", "pe3", "pe4", "pe5"}
	areas := []float64{9.6e-6, 12e-6, 16e-6, 21e-6, 26e-6, 32e-6}
	for _, tc := range []struct {
		layout string
		build  func() (*Floorplan, error)
	}{
		{"row", func() (*Floorplan, error) { return RowOf(names, areas) }},
		{"grid", func() (*Floorplan, error) { return GridOf(names, areas) }},
	} {
		fp, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.layout, err)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("%s: invalid floorplan: %v", tc.layout, err)
		}
		deg := make([]int, len(names))
		for i, row := range fp.Adjacency(geom.Eps) {
			for j := range row {
				deg[i]++
				deg[j]++
			}
		}
		for i, d := range deg {
			if d == 0 {
				t.Errorf("%s: block %s has no abutting neighbour (no lateral coupling)", tc.layout, names[i])
			}
		}
	}
}

func TestGridOfMatchesUniformGrid(t *testing.T) {
	// With uniform areas the packed grid must reproduce Grid's layout.
	area := 16e-6
	uniform, err := Grid("pe", 4, area)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := GridOf([]string{"pe0", "pe1", "pe2", "pe3"}, []float64{area, area, area, area})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range uniform.Blocks() {
		r, ok := packed.Rect(b.Name)
		if !ok || r != b.Rect {
			t.Errorf("block %s: packed %v, uniform %v", b.Name, r, b.Rect)
		}
	}
}

func TestRowGridOfErrors(t *testing.T) {
	if _, err := RowOf(nil, nil); err == nil {
		t.Error("empty RowOf succeeded")
	}
	if _, err := GridOf([]string{"a", "b"}, []float64{1}); err == nil {
		t.Error("mismatched GridOf lengths succeeded")
	}
	if _, err := RowOf([]string{"a"}, []float64{-1}); err == nil {
		t.Error("negative area succeeded")
	}
}
