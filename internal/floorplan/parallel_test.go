package floorplan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
)

// planText renders a floorplan for byte-level comparison.
func planText(t *testing.T, fp *Floorplan) string {
	t.Helper()
	var b strings.Builder
	if err := fp.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// resultKey captures everything observable about a search result,
// including the memo accounting, for byte-identity comparisons.
func resultKey(t *testing.T, r *Result) string {
	t.Helper()
	return fmt.Sprintf("cost=%.17g area=%.17g peak=%.17g evals=%d hits=%d plan=%q",
		r.Cost, r.Area, r.PeakTemp, r.Evals, r.MemoHits, planText(t, r.Plan))
}

// The property the parallel search backbone guarantees: for every
// parallelism level, seed, population size and objective, the GA
// returns a byte-identical Result (plan geometry, cost, and memo
// accounting) to the serial search.
func TestRunGAParallelMatchesSerial(t *testing.T) {
	levels := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, n := range []int{5, 8} {
		blocks := flexBlocks(n, 1e-6)
		for _, seed := range []int64{0, 1, 42} {
			for _, popSize := range []int{6, 20} {
				for _, thermal := range []bool{false, true} {
					base := DefaultGAConfig()
					base.PopulationSize = popSize
					base.Generations = 8
					base.Seed = seed
					if thermal {
						base.Eval = tallPenaltyEval
						base.Power = map[string]float64{}
					} else {
						base.TempWeight = 0
					}
					serialCfg := base
					serialCfg.Parallelism = 1
					serial, err := RunGA(blocks, serialCfg)
					if err != nil {
						t.Fatal(err)
					}
					want := resultKey(t, serial)
					for _, p := range levels {
						cfg := base
						cfg.Parallelism = p
						got, err := RunGA(blocks, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if gotKey := resultKey(t, got); gotKey != want {
							t.Errorf("n=%d seed=%d pop=%d thermal=%v P=%d diverged:\n got %s\nwant %s",
								n, seed, popSize, thermal, p, gotKey, want)
						}
					}
				}
			}
		}
	}
}

// The same property for the annealer: the speculative-batch trajectory
// is a function of the seed alone, never of the parallelism level.
func TestRunSAParallelMatchesSerial(t *testing.T) {
	levels := []int{2, 4, runtime.GOMAXPROCS(0)}
	blocks := flexBlocks(6, 1e-6)
	for _, seed := range []int64{0, 3, 11} {
		for _, thermal := range []bool{false, true} {
			base := DefaultSAConfig()
			base.Seed = seed
			if thermal {
				base.Eval = tallPenaltyEval
				base.Power = map[string]float64{}
			} else {
				base.TempWeight = 0
			}
			serialCfg := base
			serialCfg.Parallelism = 1
			serial, err := RunSA(blocks, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			want := resultKey(t, serial)
			for _, p := range levels {
				cfg := base
				cfg.Parallelism = p
				got, err := RunSA(blocks, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if gotKey := resultKey(t, got); gotKey != want {
					t.Errorf("seed=%d thermal=%v P=%d diverged:\n got %s\nwant %s",
						seed, thermal, p, gotKey, want)
				}
			}
		}
	}
}

// Under the thermal objective the seed expression must be packed and
// solved exactly once — its evaluation both sets the temperature scale
// and scores it — and every solve must be counted in Result.Evals:
// the number of Eval calls equals Evals exactly, and Evals + MemoHits
// accounts for every candidate the search scored.
func TestRunGASeedEvaluatedOnceAndEvalsCounted(t *testing.T) {
	blocks := flexBlocks(5, 1e-6)
	calls := 0
	cfg := DefaultGAConfig()
	cfg.PopulationSize = 10
	cfg.Generations = 6
	cfg.Eval = func(fp *Floorplan, pw map[string]float64) (float64, error) {
		calls++
		return tallPenaltyEval(fp, pw)
	}
	cfg.Power = map[string]float64{}
	res, err := RunGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evals {
		t.Errorf("thermal evaluator ran %d times but Evals = %d (seed double-evaluated or memo miscounted)",
			calls, res.Evals)
	}
	// Scored candidates: the seed, PopulationSize-1 initial mutants, and
	// PopulationSize-Elitism children per generation.
	scored := 1 + (cfg.PopulationSize - 1) + cfg.Generations*(cfg.PopulationSize-cfg.Elitism)
	if res.Evals+res.MemoHits != scored {
		t.Errorf("Evals (%d) + MemoHits (%d) = %d, want %d scored candidates",
			res.Evals, res.MemoHits, res.Evals+res.MemoHits, scored)
	}
	if res.MemoHits == 0 {
		t.Error("a converging 6-generation GA revisited no genome; memo appears dead")
	}
}

// The annealer shares the single-seed-evaluation contract.
func TestRunSASeedEvaluatedOnceAndEvalsCounted(t *testing.T) {
	blocks := flexBlocks(4, 1e-6)
	calls := 0
	cfg := DefaultSAConfig()
	cfg.MovesPerT = 10
	cfg.MinTemp = 0.2
	cfg.Eval = func(fp *Floorplan, pw map[string]float64) (float64, error) {
		calls++
		return tallPenaltyEval(fp, pw)
	}
	cfg.Power = map[string]float64{}
	res, err := RunSA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evals {
		t.Errorf("thermal evaluator ran %d times but Evals = %d", calls, res.Evals)
	}
}

func TestRunSACtxCancellation(t *testing.T) {
	blocks := flexBlocks(6, 1e-6)
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	cfg := DefaultSAConfig()
	cfg.Eval = func(fp *Floorplan, pw map[string]float64) (float64, error) {
		evals++
		if evals == 5 {
			cancel()
		}
		return tallPenaltyEval(fp, pw)
	}
	cfg.Power = map[string]float64{}
	_, err := RunSACtx(ctx, blocks, cfg)
	if err == nil {
		t.Fatal("cancelled SA returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if evals > 50 {
		t.Errorf("SA kept evaluating (%d evals) after cancellation", evals)
	}
}

func TestRunGACtxCancellationParallel(t *testing.T) {
	blocks := flexBlocks(6, 1e-6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultGAConfig()
	cfg.Parallelism = 4
	cfg.Eval = tallPenaltyEval
	cfg.Power = map[string]float64{}
	if _, err := RunGACtx(ctx, blocks, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel GA with cancelled ctx returned %v, want context.Canceled", err)
	}
}

// A thermal evaluator failure must surface identically from serial and
// parallel runs (the lowest-index failing candidate wins).
func TestRunGAParallelErrorDeterministic(t *testing.T) {
	blocks := flexBlocks(5, 1e-6)
	boom := func(fp *Floorplan, _ map[string]float64) (float64, error) {
		bb := fp.BoundingBox()
		if bb.H/bb.W > 1.5 {
			return 0, fmt.Errorf("aspect %g too tall", bb.H/bb.W)
		}
		return 40, nil
	}
	run := func(p int) error {
		cfg := DefaultGAConfig()
		cfg.Generations = 10
		cfg.Parallelism = p
		cfg.Eval = boom
		cfg.Power = map[string]float64{}
		_, err := RunGA(blocks, cfg)
		return err
	}
	serial := run(1)
	if serial == nil {
		t.Skip("workload never triggered the failing evaluator")
	}
	for _, p := range []int{2, 4} {
		if parallel := run(p); parallel == nil || parallel.Error() != serial.Error() {
			t.Errorf("P=%d error %v, serial error %v", p, parallel, serial)
		}
	}
}

// Elitism carries individuals across generations without re-scoring;
// the memo additionally answers re-drawn duplicates. Sanity-check that
// the memo never changes what the search returns even when it is the
// only difference (disabled-memo comparison is impossible from the
// public API, so spot-check invariants instead).
func TestRunGAMemoAccountingInvariants(t *testing.T) {
	blocks := flexBlocks(7, 1e-6)
	cfg := DefaultGAConfig()
	cfg.Generations = 15
	res, err := RunGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals <= 0 || res.MemoHits < 0 {
		t.Fatalf("nonsensical accounting: %+v", res)
	}
	scored := 1 + (cfg.PopulationSize - 1) + cfg.Generations*(cfg.PopulationSize-cfg.Elitism)
	if res.Evals+res.MemoHits != scored {
		t.Errorf("Evals+MemoHits = %d, want %d", res.Evals+res.MemoHits, scored)
	}
	if math.IsNaN(res.Cost) {
		t.Error("cost is NaN")
	}
}
