package floorplan

import (
	"fmt"
	"math"

	"thermalsched/internal/geom"
)

// Grid builds the fixed platform floorplan the paper's platform-based
// experiments use: count identical square PEs of the given area (m²)
// arranged in a near-square grid with no spacing (abutting blocks,
// so lateral heat flow couples neighbours). Block names are name0,
// name1, ... in row-major order.
func Grid(prefix string, count int, blockArea float64) (*Floorplan, error) {
	if count <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs at least one block, got %d", count)
	}
	if !(blockArea > 0) {
		return nil, fmt.Errorf("floorplan: grid block area must be positive, got %g", blockArea)
	}
	side := math.Sqrt(blockArea)
	cols := int(math.Ceil(math.Sqrt(float64(count))))
	fp := New()
	for i := 0; i < count; i++ {
		r, c := i/cols, i%cols
		name := fmt.Sprintf("%s%d", prefix, i)
		rect := geom.NewRect(float64(c)*side, float64(r)*side, side, side)
		if err := fp.AddBlock(name, rect); err != nil {
			return nil, err
		}
	}
	return fp, nil
}

// Row builds a single-row floorplan of identical square blocks, a
// degenerate layout used in tests and as a worst-case thermal
// configuration (maximum mutual heating along a line).
func Row(prefix string, count int, blockArea float64) (*Floorplan, error) {
	if count <= 0 {
		return nil, fmt.Errorf("floorplan: row needs at least one block, got %d", count)
	}
	if !(blockArea > 0) {
		return nil, fmt.Errorf("floorplan: row block area must be positive, got %g", blockArea)
	}
	side := math.Sqrt(blockArea)
	fp := New()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := fp.AddBlock(name, geom.NewRect(float64(i)*side, 0, side, side)); err != nil {
			return nil, err
		}
	}
	return fp, nil
}
