package floorplan

import (
	"fmt"
	"math"

	"thermalsched/internal/geom"
)

// Grid builds the fixed platform floorplan the paper's platform-based
// experiments use: count identical square PEs of the given area (m²)
// arranged in a near-square grid with no spacing (abutting blocks,
// so lateral heat flow couples neighbours). Block names are name0,
// name1, ... in row-major order.
func Grid(prefix string, count int, blockArea float64) (*Floorplan, error) {
	if count <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs at least one block, got %d", count)
	}
	if !(blockArea > 0) {
		return nil, fmt.Errorf("floorplan: grid block area must be positive, got %g", blockArea)
	}
	side := math.Sqrt(blockArea)
	cols := int(math.Ceil(math.Sqrt(float64(count))))
	fp := New()
	for i := 0; i < count; i++ {
		r, c := i/cols, i%cols
		name := fmt.Sprintf("%s%d", prefix, i)
		rect := geom.NewRect(float64(c)*side, float64(r)*side, side, side)
		if err := fp.AddBlock(name, rect); err != nil {
			return nil, err
		}
	}
	return fp, nil
}

// Row builds a single-row floorplan of identical square blocks, a
// degenerate layout used in tests and as a worst-case thermal
// configuration (maximum mutual heating along a line).
func Row(prefix string, count int, blockArea float64) (*Floorplan, error) {
	if count <= 0 {
		return nil, fmt.Errorf("floorplan: row needs at least one block, got %d", count)
	}
	if !(blockArea > 0) {
		return nil, fmt.Errorf("floorplan: row block area must be positive, got %g", blockArea)
	}
	side := math.Sqrt(blockArea)
	fp := New()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := fp.AddBlock(name, geom.NewRect(float64(i)*side, 0, side, side)); err != nil {
			return nil, err
		}
	}
	return fp, nil
}

// checkNamedAreas validates the parallel names/areas slices shared by
// RowOf and GridOf.
func checkNamedAreas(kind string, names []string, areas []float64) error {
	if len(names) == 0 {
		return fmt.Errorf("floorplan: %s needs at least one block", kind)
	}
	if len(names) != len(areas) {
		return fmt.Errorf("floorplan: %s got %d names but %d areas", kind, len(names), len(areas))
	}
	for i, a := range areas {
		if !(a > 0) || math.IsInf(a, 0) {
			return fmt.Errorf("floorplan: %s block %q has invalid area %g", kind, names[i], a)
		}
	}
	return nil
}

// RowOf builds a single-row floorplan of square blocks with per-block
// areas — the heterogeneous counterpart of Row, used for generated
// platforms whose PEs differ in die size. Blocks abut along x so
// neighbours stay thermally coupled.
func RowOf(names []string, areas []float64) (*Floorplan, error) {
	if err := checkNamedAreas("row", names, areas); err != nil {
		return nil, err
	}
	fp := New()
	x := 0.0
	for i, name := range names {
		side := math.Sqrt(areas[i])
		if err := fp.AddBlock(name, geom.NewRect(x, 0, side, side)); err != nil {
			return nil, err
		}
		x += side
	}
	return fp, nil
}

// GridOf builds a near-square grid of square blocks with per-block
// areas, packed row by row: blocks in a row abut horizontally (sharing
// a lateral edge, so neighbours stay thermally coupled even when their
// sides differ) and each row starts where the tallest block of the
// previous row ends, so the tallest blocks couple across rows too. A
// fixed-pitch cell grid would leave differently-sized blocks floating
// with no shared edges at all — and a thermal model with zero lateral
// conductance.
func GridOf(names []string, areas []float64) (*Floorplan, error) {
	if err := checkNamedAreas("grid", names, areas); err != nil {
		return nil, err
	}
	cols := int(math.Ceil(math.Sqrt(float64(len(names)))))
	fp := New()
	x, rowY, rowMaxH := 0.0, 0.0, 0.0
	for i, name := range names {
		if i > 0 && i%cols == 0 {
			rowY += rowMaxH
			x, rowMaxH = 0, 0
		}
		side := math.Sqrt(areas[i])
		if err := fp.AddBlock(name, geom.NewRect(x, rowY, side, side)); err != nil {
			return nil, err
		}
		x += side
		if side > rowMaxH {
			rowMaxH = side
		}
	}
	return fp, nil
}
