package floorplan

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"thermalsched/internal/search"
)

// memoSize bounds the per-run expression-fingerprint memo. A search
// touches PopulationSize × Generations (GA) or MovesPerT × sweeps (SA)
// candidates, most of them revisited once populations converge; the cap
// keeps a degenerate long run from holding every packing ever built.
const memoSize = 4096

// evaluator is the scoring half of the generate/evaluate split shared
// by RunGACtx and RunSACtx. Candidates are packed and thermally solved
// by pure functions of the expression, so batches can be evaluated
// concurrently over a bounded pool and merged in submission order —
// results are byte-identical at every parallelism level. A memo keyed
// by expression fingerprint skips the re-pack/re-solve for genomes
// revisited via elitism and convergent populations; all memo traffic
// happens serially on the caller's goroutine, so hit/miss accounting
// (and therefore Result.Evals) is deterministic too.
type evaluator struct {
	name      string // "GA" or "SA", for error messages
	blocks    []Block
	areaW     float64
	tempW     float64
	eval      Evaluator
	power     map[string]float64
	thermal   bool
	blockArea float64
	tempScale float64
	pool      *search.Pool
	memo      *search.LRU[individual]
	evals     int // packings actually evaluated (memo misses)
	memoHits  int // candidates answered from the memo
}

// searchPool resolves a config's pool: an explicitly shared pool wins
// (the co-synthesis fan-out passes its own so nested searches never
// oversubscribe), otherwise one is sized from Parallelism.
func searchPool(shared *search.Pool, parallelism int) *search.Pool {
	if shared != nil {
		return shared
	}
	return search.NewPool(parallelism)
}

func newEvaluator(name string, blocks []Block, areaW, tempW float64, eval Evaluator, power map[string]float64, pool *search.Pool) *evaluator {
	var blockArea float64
	for _, b := range blocks {
		blockArea += b.Area
	}
	return &evaluator{
		name:      name,
		blocks:    blocks,
		areaW:     areaW,
		tempW:     tempW,
		eval:      eval,
		power:     power,
		thermal:   eval != nil && tempW > 0,
		blockArea: blockArea,
		tempScale: 1,
		pool:      pool,
		memo:      search.NewLRU[individual](memoSize),
	}
}

// fingerprint serializes an expression into a compact memo key.
func fingerprint(e Expression) string {
	b := make([]byte, 0, 2*len(e))
	for _, g := range e {
		b = binary.AppendVarint(b, int64(g))
	}
	return string(b)
}

// score packs and (under the thermal objective) solves one expression.
// It checks ctx first — a packing evaluation is the search's unit of
// cancellable work — and is safe for concurrent use: everything it
// touches on the evaluator is read-only during a batch.
func (h *evaluator) score(ctx context.Context, e Expression) (individual, error) {
	if err := ctx.Err(); err != nil {
		return individual{}, fmt.Errorf("floorplan: %s cancelled after %d evaluations: %w", h.name, h.evals, err)
	}
	plan, area, err := Pack(e, h.blocks)
	if err != nil {
		return individual{}, err
	}
	ind := individual{expr: e, plan: plan, area: area, peak: math.NaN()}
	cost := h.areaW * area / h.blockArea
	if h.thermal {
		peak, err := h.eval(plan, h.power)
		if err != nil {
			return individual{}, fmt.Errorf("floorplan: thermal evaluation: %w", err)
		}
		ind.peak = peak
		cost += h.tempW * peak / h.tempScale
	}
	ind.cost = cost
	return ind, nil
}

// scoreSeed evaluates the search's seed expression exactly once: the
// same packing and thermal solve both set the temperature-normalization
// scale and score the individual (the serial path used to pay for the
// scale-setting solve twice, and never counted it in Result.Evals).
func (h *evaluator) scoreSeed(ctx context.Context, e Expression) (individual, error) {
	if err := ctx.Err(); err != nil {
		return individual{}, fmt.Errorf("floorplan: %s cancelled after %d evaluations: %w", h.name, h.evals, err)
	}
	plan, area, err := Pack(e, h.blocks)
	if err != nil {
		return individual{}, err
	}
	h.evals++
	ind := individual{expr: e, plan: plan, area: area, peak: math.NaN()}
	cost := h.areaW * area / h.blockArea
	if h.thermal {
		peak, err := h.eval(plan, h.power)
		if err != nil {
			return individual{}, fmt.Errorf("floorplan: thermal evaluation: %w", err)
		}
		ind.peak = peak
		if peak > 0 {
			h.tempScale = peak
		}
		cost += h.tempW * peak / h.tempScale
	}
	ind.cost = cost
	h.memo.Put(fingerprint(e), ind)
	return ind, nil
}

// scoreBatch scores a batch of candidates drawn serially by the caller.
// Memo lookups, duplicate folding and memo inserts run serially in
// submission order (deterministic memo state and counters); only the
// unique memo misses are evaluated, concurrently when the pool allows.
func (h *evaluator) scoreBatch(ctx context.Context, exprs []Expression) ([]individual, error) {
	out := make([]individual, len(exprs))
	type job struct {
		key  string
		expr Expression
		res  individual
	}
	var jobs []job
	jobOf := make(map[string]int, len(exprs))
	assign := make([]int, len(exprs))
	for i, e := range exprs {
		key := fingerprint(e)
		if ind, ok := h.memo.Get(key); ok {
			h.memoHits++
			out[i] = ind
			assign[i] = -1
			continue
		}
		if j, ok := jobOf[key]; ok {
			// Duplicate within the batch: one evaluation serves both.
			h.memoHits++
			assign[i] = j
			continue
		}
		jobOf[key] = len(jobs)
		assign[i] = len(jobs)
		jobs = append(jobs, job{key: key, expr: e})
		h.evals++
	}
	err := h.pool.Map(len(jobs), func(j int) error {
		ind, err := h.score(ctx, jobs[j].expr)
		if err != nil {
			return err
		}
		jobs[j].res = ind
		return nil
	})
	if err != nil {
		return nil, err
	}
	for j := range jobs {
		h.memo.Put(jobs[j].key, jobs[j].res)
	}
	for i := range exprs {
		if assign[i] >= 0 {
			out[i] = jobs[assign[i]].res
		}
	}
	return out, nil
}
