package floorplan

import (
	"fmt"
	"math"
	"math/rand"
)

// SAConfig parameterizes the simulated-annealing floorplanner, the
// ablation baseline against the GA (experiment A1 in DESIGN.md).
type SAConfig struct {
	InitialTemp float64 // annealing temperature (dimensionless cost units)
	CoolingRate float64 // geometric cooling factor per sweep, e.g. 0.95
	MovesPerT   int     // proposed moves per temperature level
	MinTemp     float64 // stop when temperature falls below this

	AreaWeight float64
	TempWeight float64
	Eval       Evaluator
	Power      map[string]float64

	Seed int64
}

// DefaultSAConfig returns annealing parameters comparable in evaluation
// budget to DefaultGAConfig.
func DefaultSAConfig() SAConfig {
	return SAConfig{
		InitialTemp: 1.0,
		CoolingRate: 0.92,
		MovesPerT:   40,
		MinTemp:     1e-3,
		AreaWeight:  1.0,
		TempWeight:  1.0,
		Seed:        1,
	}
}

// RunSA searches for a slicing floorplan with simulated annealing over
// the same move set the GA mutates with.
func RunSA(blocks []Block, cfg SAConfig) (*Result, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks to place")
	}
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.CoolingRate <= 0 || cfg.CoolingRate >= 1 {
		return nil, fmt.Errorf("floorplan: cooling rate %g out of (0,1)", cfg.CoolingRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	thermal := cfg.Eval != nil && cfg.TempWeight > 0
	var blockArea float64
	for _, b := range blocks {
		blockArea += b.Area
	}
	tempScale := 1.0
	evals := 0

	score := func(e Expression) (float64, *Floorplan, float64, float64, error) {
		plan, area, err := Pack(e, blocks)
		if err != nil {
			return 0, nil, 0, 0, err
		}
		evals++
		cost := cfg.AreaWeight * area / blockArea
		peak := math.NaN()
		if thermal {
			peak, err = cfg.Eval(plan, cfg.Power)
			if err != nil {
				return 0, nil, 0, 0, fmt.Errorf("floorplan: thermal evaluation: %w", err)
			}
			cost += cfg.TempWeight * peak / tempScale
		}
		return cost, plan, area, peak, nil
	}

	cur := InitialExpression(len(blocks))
	if thermal {
		plan, _, err := Pack(cur, blocks)
		if err != nil {
			return nil, err
		}
		p, err := cfg.Eval(plan, cfg.Power)
		if err != nil {
			return nil, fmt.Errorf("floorplan: thermal evaluation: %w", err)
		}
		if p > 0 {
			tempScale = p
		}
	}
	curCost, curPlan, curArea, curPeak, err := score(cur)
	if err != nil {
		return nil, err
	}
	best := &Result{Plan: curPlan, Area: curArea, PeakTemp: curPeak, Cost: curCost}

	for temp := cfg.InitialTemp; temp > cfg.MinTemp; temp *= cfg.CoolingRate {
		for m := 0; m < cfg.MovesPerT; m++ {
			cand := mutateExpr(cloneExpr(cur), len(blocks), rng, 1)
			candCost, candPlan, candArea, candPeak, err := score(cand)
			if err != nil {
				return nil, err
			}
			d := candCost - curCost
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cur, curCost = cand, candCost
				if candCost < best.Cost {
					best = &Result{Plan: candPlan, Area: candArea, PeakTemp: candPeak, Cost: candCost}
				}
			}
		}
	}
	best.Evals = evals
	return best, nil
}
