package floorplan

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"thermalsched/internal/search"
)

// SAConfig parameterizes the simulated-annealing floorplanner, the
// ablation baseline against the GA (experiment A1 in DESIGN.md).
type SAConfig struct {
	InitialTemp float64 // annealing temperature (dimensionless cost units)
	CoolingRate float64 // geometric cooling factor per sweep, e.g. 0.95
	MovesPerT   int     // proposed moves per temperature level
	MinTemp     float64 // stop when temperature falls below this

	AreaWeight float64
	TempWeight float64
	Eval       Evaluator
	Power      map[string]float64

	Seed int64

	// Parallelism bounds concurrent packing/thermal evaluations.
	// Proposals are drawn serially in speculative batches (see
	// saSpecBatch), evaluated concurrently, and accepted in submission
	// order, so the Result is byte-identical for every value. 0 and 1
	// both mean serial.
	Parallelism int
	// Pool shares an enclosing search's token pool; when set it takes
	// precedence over Parallelism.
	Pool *search.Pool
}

// saSpecBatch is the speculative-proposal batch size: each batch's
// genomes and acceptance uniforms are drawn serially from the current
// state, evaluated concurrently, and scanned in order; the first
// accepted move commits and discards the rest of the batch (their
// proposals were speculated from the superseded state). The size is a
// fixed constant — never the parallelism level — so the annealing
// trajectory is identical at every parallelism setting. Rejection
// dominates once the temperature drops, so little speculation is
// wasted where the search spends most of its budget; discarded
// packings stay in the memo and often pay for themselves later.
const saSpecBatch = 8

// DefaultSAConfig returns annealing parameters comparable in evaluation
// budget to DefaultGAConfig.
func DefaultSAConfig() SAConfig {
	return SAConfig{
		InitialTemp: 1.0,
		CoolingRate: 0.92,
		MovesPerT:   40,
		MinTemp:     1e-3,
		AreaWeight:  1.0,
		TempWeight:  1.0,
		Seed:        1,
	}
}

// RunSA searches for a slicing floorplan with simulated annealing over
// the same move set the GA mutates with.
func RunSA(blocks []Block, cfg SAConfig) (*Result, error) {
	return RunSACtx(context.Background(), blocks, cfg)
}

// RunSACtx is RunSA with the same per-evaluation cancellation contract
// as RunGACtx: ctx is checked before every packing evaluation (the
// unit of work — a Stockmeyer pack plus, under a thermal objective, a
// full model build and solve) and a ctx-wrapping error is returned
// promptly after cancellation.
func RunSACtx(ctx context.Context, blocks []Block, cfg SAConfig) (*Result, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks to place")
	}
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.CoolingRate <= 0 || cfg.CoolingRate >= 1 {
		return nil, fmt.Errorf("floorplan: cooling rate %g out of (0,1)", cfg.CoolingRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := newEvaluator("SA", blocks, cfg.AreaWeight, cfg.TempWeight, cfg.Eval, cfg.Power,
		searchPool(cfg.Pool, cfg.Parallelism))

	// Seed state: one packing+solve both establishes the temperature
	// scale and scores it.
	cur := InitialExpression(len(blocks))
	curInd, err := h.scoreSeed(ctx, cur)
	if err != nil {
		return nil, err
	}
	curCost := curInd.cost
	best := &Result{Plan: curInd.plan, Area: curInd.area, PeakTemp: curInd.peak, Cost: curInd.cost}

	cands := make([]Expression, 0, saSpecBatch)
	uniforms := make([]float64, 0, saSpecBatch)
	for temp := cfg.InitialTemp; temp > cfg.MinTemp; temp *= cfg.CoolingRate {
		for m := 0; m < cfg.MovesPerT; {
			n := saSpecBatch
			if left := cfg.MovesPerT - m; n > left {
				n = left
			}
			// Draw the whole batch — genomes and acceptance uniforms —
			// serially from the current state before evaluating anything.
			cands, uniforms = cands[:0], uniforms[:0]
			for k := 0; k < n; k++ {
				cands = append(cands, mutateExpr(cloneExpr(cur), len(blocks), rng, 1))
				uniforms = append(uniforms, rng.Float64())
			}
			inds, err := h.scoreBatch(ctx, cands)
			if err != nil {
				return nil, err
			}
			m += n
			for k := range inds {
				d := inds[k].cost - curCost
				if d <= 0 || uniforms[k] < math.Exp(-d/temp) {
					cur, curCost = inds[k].expr, inds[k].cost
					if inds[k].cost < best.Cost {
						best = &Result{Plan: inds[k].plan, Area: inds[k].area, PeakTemp: inds[k].peak, Cost: inds[k].cost}
					}
					// The rest of the batch was speculated from the
					// superseded state; discard it.
					break
				}
			}
		}
	}
	best.Evals = h.evals
	best.MemoHits = h.memoHits
	return best, nil
}
