package floorplan

import (
	"math"
	"testing"
)

// areaEval is a fake thermal evaluator that penalizes tall bounding boxes,
// so tests can verify the thermal term steers the search without pulling
// in the real thermal model.
func tallPenaltyEval(fp *Floorplan, _ map[string]float64) (float64, error) {
	bb := fp.BoundingBox()
	return 40 + 10*bb.H/bb.W, nil
}

func TestRunGAFindsTightPacking(t *testing.T) {
	blocks := flexBlocks(6, 1e-6)
	cfg := DefaultGAConfig()
	cfg.Generations = 40
	res, err := RunGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("GA produced invalid plan: %v", err)
	}
	if res.Plan.NumBlocks() != 6 {
		t.Fatalf("plan has %d blocks, want 6", res.Plan.NumBlocks())
	}
	if ds := res.Plan.Deadspace(); ds > 0.25 {
		t.Errorf("GA deadspace = %.1f%%, want < 25%%", 100*ds)
	}
	if res.Evals == 0 {
		t.Error("Evals not counted")
	}
	if !math.IsNaN(res.PeakTemp) {
		t.Error("PeakTemp should be NaN without an evaluator")
	}
}

func TestRunGADeterministicForSeed(t *testing.T) {
	blocks := flexBlocks(5, 1e-6)
	cfg := DefaultGAConfig()
	cfg.Generations = 10
	a, err := RunGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGA(blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Area != b.Area {
		t.Errorf("same seed gave different results: %v vs %v", a.Cost, b.Cost)
	}
}

func TestRunGAThermalObjectiveSteersSearch(t *testing.T) {
	blocks := flexBlocks(6, 1e-6)
	areaOnly := DefaultGAConfig()
	areaOnly.Generations = 30
	areaOnly.TempWeight = 0

	thermal := DefaultGAConfig()
	thermal.Generations = 30
	thermal.Eval = tallPenaltyEval
	thermal.TempWeight = 5
	thermal.Power = map[string]float64{}

	resA, err := RunGA(blocks, areaOnly)
	if err != nil {
		t.Fatal(err)
	}
	resT, err := RunGA(blocks, thermal)
	if err != nil {
		t.Fatal(err)
	}
	// The thermal run must actually evaluate temperatures.
	if math.IsNaN(resT.PeakTemp) {
		t.Fatal("thermal GA did not record peak temperature")
	}
	// The thermally-steered plan should be no taller (relative to width)
	// than the area-only plan, since the evaluator punishes tall boxes.
	arA := resA.Plan.BoundingBox().H / resA.Plan.BoundingBox().W
	arT := resT.Plan.BoundingBox().H / resT.Plan.BoundingBox().W
	if arT > arA+0.5 {
		t.Errorf("thermal objective ignored: aspect %v (thermal) vs %v (area only)", arT, arA)
	}
}

func TestRunGAErrors(t *testing.T) {
	if _, err := RunGA(nil, DefaultGAConfig()); err == nil {
		t.Error("empty block list accepted")
	}
	cfg := DefaultGAConfig()
	cfg.PopulationSize = 1
	if _, err := RunGA(flexBlocks(3, 1e-6), cfg); err == nil {
		t.Error("tiny population accepted")
	}
	if _, err := RunGA([]Block{{Name: "x", Area: -1, MinAspect: 1, MaxAspect: 1}}, DefaultGAConfig()); err == nil {
		t.Error("invalid block accepted")
	}
}

func TestRunGASingleBlock(t *testing.T) {
	res, err := RunGA(flexBlocks(1, 1e-6), DefaultGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.NumBlocks() != 1 {
		t.Error("single-block GA failed")
	}
}

func TestRunSAFindsTightPacking(t *testing.T) {
	blocks := flexBlocks(6, 1e-6)
	res, err := RunSA(blocks, DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("SA produced invalid plan: %v", err)
	}
	if ds := res.Plan.Deadspace(); ds > 0.3 {
		t.Errorf("SA deadspace = %.1f%%, want < 30%%", 100*ds)
	}
}

func TestRunSADeterministicForSeed(t *testing.T) {
	blocks := flexBlocks(4, 1e-6)
	a, err := RunSA(blocks, DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSA(blocks, DefaultSAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("same seed gave different SA results: %v vs %v", a.Cost, b.Cost)
	}
}

func TestRunSAErrors(t *testing.T) {
	if _, err := RunSA(nil, DefaultSAConfig()); err == nil {
		t.Error("empty block list accepted")
	}
	cfg := DefaultSAConfig()
	cfg.CoolingRate = 1.5
	if _, err := RunSA(flexBlocks(3, 1e-6), cfg); err == nil {
		t.Error("bad cooling rate accepted")
	}
}

func TestRunSAWithThermalEvaluator(t *testing.T) {
	cfg := DefaultSAConfig()
	cfg.Eval = tallPenaltyEval
	cfg.Power = map[string]float64{}
	res, err := RunSA(flexBlocks(4, 1e-6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PeakTemp) {
		t.Error("SA with evaluator should record peak temperature")
	}
}

func TestGrid(t *testing.T) {
	fp, err := Grid("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", fp.NumBlocks())
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2x2 grid of 4mm squares → 8mm square bounding box, zero deadspace.
	bb := fp.BoundingBox()
	if math.Abs(bb.W-0.008) > 1e-9 || math.Abs(bb.H-0.008) > 1e-9 {
		t.Errorf("bounding box = %v", bb)
	}
	if fp.Deadspace() > 1e-9 {
		t.Errorf("grid deadspace = %v", fp.Deadspace())
	}
	// pe0 and pe1 must abut for lateral heat flow.
	adj := fp.Adjacency(1e-9)
	if adj[0][1] == 0 {
		t.Error("pe0 and pe1 should be adjacent")
	}
}

func TestGridNonSquareCount(t *testing.T) {
	fp, err := Grid("pe", 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 3 || fp.Validate() != nil {
		t.Error("3-block grid invalid")
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid("pe", 0, 1e-6); err == nil {
		t.Error("zero-count grid accepted")
	}
	if _, err := Grid("pe", 4, 0); err == nil {
		t.Error("zero-area grid accepted")
	}
}

func TestRow(t *testing.T) {
	fp, err := Row("pe", 3, 4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	bb := fp.BoundingBox()
	if math.Abs(bb.W-0.006) > 1e-9 || math.Abs(bb.H-0.002) > 1e-9 {
		t.Errorf("row bounding box = %v", bb)
	}
	if _, err := Row("pe", -1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Row("pe", 2, -1); err == nil {
		t.Error("negative area accepted")
	}
}
