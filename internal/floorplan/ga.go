package floorplan

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"thermalsched/internal/search"
)

// Evaluator scores a candidate floorplan for thermal quality. The
// co-synthesis layer wires this to the HotSpot-style model: given the
// plan and a per-block power map (watts), return the peak steady-state
// temperature. A nil Evaluator makes the search purely area-driven.
type Evaluator func(fp *Floorplan, power map[string]float64) (peakTemp float64, err error)

// GAConfig parameterizes the genetic-algorithm floorplanner.
// The zero value is not usable; start from DefaultGAConfig.
type GAConfig struct {
	PopulationSize int
	Generations    int
	CrossoverRate  float64
	MutationRate   float64
	TournamentK    int // tournament selection size
	Elitism        int // how many best individuals survive unchanged

	// AreaWeight and TempWeight combine the normalized objectives into
	// one fitness value. Thermal evaluation is skipped when TempWeight
	// is 0 or Eval is nil.
	AreaWeight float64
	TempWeight float64

	Eval Evaluator
	// Power gives per-block dissipation (W) for the Evaluator.
	Power map[string]float64

	Seed int64

	// Parallelism bounds concurrent packing/thermal evaluations. Each
	// generation's candidates are drawn serially from the seeded RNG
	// (the stream is byte-identical to the serial search), evaluated
	// concurrently, and merged in submission order, so the Result is
	// byte-identical for every value. 0 and 1 both mean serial.
	Parallelism int
	// Pool shares an enclosing search's token pool (the co-synthesis
	// architecture fan-out passes its own) so nested searches never
	// oversubscribe. When set it takes precedence over Parallelism.
	Pool *search.Pool
}

// DefaultGAConfig returns the configuration used throughout the
// reproduction: a modest population sized for floorplans of 2–30 blocks.
func DefaultGAConfig() GAConfig {
	return GAConfig{
		PopulationSize: 40,
		Generations:    60,
		CrossoverRate:  0.8,
		MutationRate:   0.3,
		TournamentK:    3,
		Elitism:        2,
		AreaWeight:     1.0,
		TempWeight:     1.0,
		Seed:           1,
	}
}

// Result is the outcome of a floorplanning run.
type Result struct {
	Plan     *Floorplan
	Area     float64 // bounding-box area, m²
	PeakTemp float64 // °C; NaN when no thermal evaluation was requested
	Cost     float64 // final combined fitness (lower is better)
	Evals    int     // packings actually evaluated (memo misses)
	// MemoHits counts candidates answered from the expression-
	// fingerprint memo instead of a fresh pack+solve; Evals + MemoHits
	// is the number of candidates the search scored. Both are
	// deterministic for a seed, at every parallelism level.
	MemoHits int
}

type individual struct {
	expr Expression
	cost float64
	plan *Floorplan
	area float64
	peak float64
}

// RunGA searches for a slicing floorplan of blocks minimizing the
// weighted area/temperature objective.
func RunGA(blocks []Block, cfg GAConfig) (*Result, error) {
	return RunGACtx(context.Background(), blocks, cfg)
}

// RunGACtx is RunGA with cancellation: the search checks ctx before
// every packing evaluation (the unit of work — a Stockmeyer pack plus,
// under a thermal objective, a full model build and solve) and returns
// a ctx-wrapping error promptly after cancellation.
//
// The search is split into serial candidate generation and (optionally
// concurrent) evaluation: each generation's genomes are drawn from the
// seeded RNG up front, scored over cfg.Parallelism workers through a
// memoizing evaluator, and merged in submission order — the Result is
// byte-identical for every parallelism level.
func RunGACtx(ctx context.Context, blocks []Block, cfg GAConfig) (*Result, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks to place")
	}
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.PopulationSize < 2 {
		return nil, fmt.Errorf("floorplan: population size %d too small", cfg.PopulationSize)
	}
	if cfg.TournamentK < 1 {
		cfg.TournamentK = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Normalization scales so area and temperature contribute comparably:
	// area relative to the sum of block areas, temperature relative to the
	// seed plan's peak (set by scoreSeed).
	h := newEvaluator("GA", blocks, cfg.AreaWeight, cfg.TempWeight, cfg.Eval, cfg.Power,
		searchPool(cfg.Pool, cfg.Parallelism))

	// Seed individual: one packing+solve both establishes the
	// temperature scale and scores it.
	seedExpr := InitialExpression(len(blocks))
	first, err := h.scoreSeed(ctx, seedExpr)
	if err != nil {
		return nil, err
	}

	// Initial population: the seed plus random mutations of it, drawn
	// serially and scored as one batch.
	mutants := make([]Expression, 0, cfg.PopulationSize-1)
	for len(mutants) < cfg.PopulationSize-1 {
		mutants = append(mutants, mutateExpr(cloneExpr(seedExpr), len(blocks), rng, 1+rng.Intn(4)))
	}
	scored, err := h.scoreBatch(ctx, mutants)
	if err != nil {
		return nil, err
	}
	pop := make([]individual, 0, cfg.PopulationSize)
	pop = append(pop, first)
	pop = append(pop, scored...)

	best := bestOf(pop)
	for gen := 0; gen < cfg.Generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].cost < pop[j].cost })
		next := make([]individual, 0, cfg.PopulationSize)
		for i := 0; i < cfg.Elitism && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		// Selection and variation read only the sorted population's
		// costs, all known before the generation starts, so every
		// child genome is drawn before any child is evaluated.
		children := make([]Expression, 0, cfg.PopulationSize-len(next))
		for len(next)+len(children) < cfg.PopulationSize {
			a := tournament(pop, cfg.TournamentK, rng)
			var child Expression
			if rng.Float64() < cfg.CrossoverRate {
				b := tournament(pop, cfg.TournamentK, rng)
				child = crossover(a.expr, b.expr, len(blocks), rng)
			} else {
				child = cloneExpr(a.expr)
			}
			if rng.Float64() < cfg.MutationRate {
				child = mutateExpr(child, len(blocks), rng, 1+rng.Intn(3))
			}
			children = append(children, child)
		}
		scored, err := h.scoreBatch(ctx, children)
		if err != nil {
			return nil, err
		}
		pop = append(next, scored...)
		if b := bestOf(pop); b.cost < best.cost {
			best = b
		}
	}
	return &Result{
		Plan:     best.plan,
		Area:     best.area,
		PeakTemp: best.peak,
		Cost:     best.cost,
		Evals:    h.evals,
		MemoHits: h.memoHits,
	}, nil
}

func bestOf(pop []individual) individual {
	b := pop[0]
	for _, ind := range pop[1:] {
		if ind.cost < b.cost {
			b = ind
		}
	}
	return b
}

func tournament(pop []individual, k int, rng *rand.Rand) individual {
	b := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.cost < b.cost {
			b = c
		}
	}
	return b
}

func cloneExpr(e Expression) Expression {
	c := make(Expression, len(e))
	copy(c, e)
	return c
}

// mutateExpr applies n random Wong-Liu style moves, keeping the
// expression valid:
//
//	M1: swap two operands.
//	M2: complement a cut operator (H <-> V).
//	M3: swap an adjacent operand/operator pair when the ballot property
//	    allows it.
func mutateExpr(e Expression, nBlocks int, rng *rand.Rand, n int) Expression {
	if len(e) < 3 {
		return e // a single block admits no moves
	}
	for k := 0; k < n; k++ {
		switch rng.Intn(3) {
		case 0:
			i, j := randOperand(e, rng), randOperand(e, rng)
			e[i], e[j] = e[j], e[i]
		case 1:
			i := randOperator(e, rng)
			if i >= 0 {
				if e[i] == OpH {
					e[i] = OpV
				} else {
					e[i] = OpH
				}
			}
		case 2:
			// Try a few random adjacent swaps until one preserves validity.
			for try := 0; try < 8; try++ {
				i := rng.Intn(len(e) - 1)
				if e[i].IsOperator() == e[i+1].IsOperator() {
					continue
				}
				e[i], e[i+1] = e[i+1], e[i]
				if ValidExpression(e, nBlocks) == nil {
					break
				}
				e[i], e[i+1] = e[i+1], e[i] // undo
			}
		}
	}
	return e
}

func randOperand(e Expression, rng *rand.Rand) int {
	for {
		i := rng.Intn(len(e))
		if !e[i].IsOperator() {
			return i
		}
	}
}

func randOperator(e Expression, rng *rand.Rand) int {
	if len(e) < 2 {
		return -1
	}
	for try := 0; try < 4*len(e); try++ {
		i := rng.Intn(len(e))
		if e[i].IsOperator() {
			return i
		}
	}
	return -1
}

// crossover builds a child taking the operand order from parent a where
// possible and the operator/operand skeleton (the positions of operators
// and their directions) from parent b. The result is always a valid
// expression: operator positions satisfy the ballot property because they
// are copied from a valid parent, and operands are a permutation by
// construction.
func crossover(a, b Expression, nBlocks int, rng *rand.Rand) Expression {
	// Operand order: order-preserving merge — take a random prefix of a's
	// operand sequence, then the remaining operands in b's order.
	aOps := operandOrder(a)
	bOps := operandOrder(b)
	cut := rng.Intn(len(aOps) + 1)
	used := make([]bool, nBlocks)
	merged := make([]Gene, 0, len(aOps))
	for _, g := range aOps[:cut] {
		merged = append(merged, g)
		used[g] = true
	}
	for _, g := range bOps {
		if !used[g] {
			merged = append(merged, g)
			used[g] = true
		}
	}
	// Skeleton from b: replace operands in order with the merged sequence.
	child := make(Expression, len(b))
	k := 0
	for i, g := range b {
		if g.IsOperator() {
			child[i] = g
		} else {
			child[i] = merged[k]
			k++
		}
	}
	return child
}

func operandOrder(e Expression) []Gene {
	out := make([]Gene, 0, (len(e)+1)/2)
	for _, g := range e {
		if !g.IsOperator() {
			out = append(out, g)
		}
	}
	return out
}
