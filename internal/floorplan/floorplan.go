// Package floorplan provides the floorplanning substrate of the
// reproduction: block/floorplan types with HotSpot-style .flp
// serialization, a slicing-tree representation with Stockmeyer
// shape-curve sizing, a thermal-aware genetic-algorithm floorplanner
// (after Hung et al., ISQED 2005, reference [3] of the paper), a
// simulated-annealing floorplanner used as an ablation baseline, and a
// grid builder for the fixed platform architecture.
//
// The package is deliberately independent of the thermal model: thermal
// objectives enter through the Evaluator callback, which the co-synthesis
// layer wires to the HotSpot-style solver. This keeps the dependency
// arrow pointing one way (hotspot imports floorplan, never the reverse).
package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"thermalsched/internal/geom"
)

// Block describes an unplaced rectangular module: a name, a required
// silicon area in m², and the range of aspect ratios (height/width) the
// module may assume.
type Block struct {
	Name      string
	Area      float64 // m²
	MinAspect float64 // minimum height/width, e.g. 0.5
	MaxAspect float64 // maximum height/width, e.g. 2.0
}

// Validate reports the first problem with the block definition.
func (b Block) Validate() error {
	switch {
	case b.Name == "":
		return fmt.Errorf("floorplan: block has empty name")
	case !(b.Area > 0) || math.IsInf(b.Area, 0):
		return fmt.Errorf("floorplan: block %q has invalid area %g", b.Name, b.Area)
	case !(b.MinAspect > 0) || b.MaxAspect < b.MinAspect:
		return fmt.Errorf("floorplan: block %q has invalid aspect range [%g, %g]",
			b.Name, b.MinAspect, b.MaxAspect)
	}
	return nil
}

// Placed is a named, positioned rectangle in a floorplan.
type Placed struct {
	Name string
	Rect geom.Rect
}

// Floorplan is a set of placed, named, non-overlapping blocks.
// The zero value is an empty floorplan ready for AddBlock.
type Floorplan struct {
	blocks []Placed
	index  map[string]int
}

// New returns an empty floorplan.
func New() *Floorplan {
	return &Floorplan{index: make(map[string]int)}
}

// AddBlock appends a placed block. It rejects duplicate names and
// degenerate rectangles but does not check overlap (use Validate once the
// plan is complete; packing algorithms add blocks in bulk).
func (f *Floorplan) AddBlock(name string, r geom.Rect) error {
	if name == "" {
		return fmt.Errorf("floorplan: empty block name")
	}
	if !r.Valid() {
		return fmt.Errorf("floorplan: block %q has invalid rect %v", name, r)
	}
	if f.index == nil {
		f.index = make(map[string]int)
	}
	if _, dup := f.index[name]; dup {
		return fmt.Errorf("floorplan: duplicate block name %q", name)
	}
	f.index[name] = len(f.blocks)
	f.blocks = append(f.blocks, Placed{Name: name, Rect: r})
	return nil
}

// NumBlocks returns the number of blocks.
func (f *Floorplan) NumBlocks() int { return len(f.blocks) }

// Blocks returns the placed blocks in insertion order. The returned slice
// is a copy; mutating it does not affect the floorplan.
func (f *Floorplan) Blocks() []Placed {
	out := make([]Placed, len(f.blocks))
	copy(out, f.blocks)
	return out
}

// Names returns the block names in insertion order.
func (f *Floorplan) Names() []string {
	out := make([]string, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = b.Name
	}
	return out
}

// Rect returns the rectangle of the named block.
func (f *Floorplan) Rect(name string) (geom.Rect, bool) {
	i, ok := f.index[name]
	if !ok {
		return geom.Rect{}, false
	}
	return f.blocks[i].Rect, true
}

// BoundingBox returns the bounding box of all blocks.
func (f *Floorplan) BoundingBox() geom.Rect {
	rs := make([]geom.Rect, len(f.blocks))
	for i, b := range f.blocks {
		rs[i] = b.Rect
	}
	return geom.BoundingBox(rs)
}

// Area returns the bounding-box area, the usual packing objective.
func (f *Floorplan) Area() float64 { return f.BoundingBox().Area() }

// BlockArea returns the sum of the block areas (the lower bound on Area).
func (f *Floorplan) BlockArea() float64 {
	var s float64
	for _, b := range f.blocks {
		s += b.Rect.Area()
	}
	return s
}

// Deadspace returns the fraction of the bounding box not covered by
// blocks, in [0, 1).
func (f *Floorplan) Deadspace() float64 {
	a := f.Area()
	if a == 0 {
		return 0
	}
	return 1 - f.BlockArea()/a
}

// Validate checks that the floorplan has at least one block, no duplicate
// or invalid rectangles, and no overlapping pair.
func (f *Floorplan) Validate() error {
	if len(f.blocks) == 0 {
		return fmt.Errorf("floorplan: empty")
	}
	rs := make([]geom.Rect, len(f.blocks))
	for i, b := range f.blocks {
		if !b.Rect.Valid() {
			return fmt.Errorf("floorplan: block %q has invalid rect %v", b.Name, b.Rect)
		}
		rs[i] = b.Rect
	}
	if i, j, bad := geom.AnyOverlap(rs); bad {
		return fmt.Errorf("floorplan: blocks %q and %q overlap",
			f.blocks[i].Name, f.blocks[j].Name)
	}
	return nil
}

// Clone returns a deep copy.
func (f *Floorplan) Clone() *Floorplan {
	c := New()
	for _, b := range f.blocks {
		// AddBlock cannot fail: the source plan already passed those checks.
		if err := c.AddBlock(b.Name, b.Rect); err != nil {
			panic("floorplan: Clone: " + err.Error())
		}
	}
	return c
}

// Write serializes the floorplan in HotSpot .flp format:
//
//	<name> <width> <height> <left-x> <bottom-y>
//
// one block per line, '#' comments, all units metres.
func (f *Floorplan) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# floorplan: %d blocks, bbox %.6g x %.6g m\n",
		len(f.blocks), f.BoundingBox().W, f.BoundingBox().H)
	fmt.Fprintf(bw, "# <name> <width> <height> <left-x> <bottom-y>\n")
	for _, b := range f.blocks {
		fmt.Fprintf(bw, "%s\t%.9g\t%.9g\t%.9g\t%.9g\n",
			b.Name, b.Rect.W, b.Rect.H, b.Rect.X, b.Rect.Y)
	}
	return bw.Flush()
}

// Read parses a floorplan in HotSpot .flp format (see Write).
func Read(r io.Reader) (*Floorplan, error) {
	f := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("floorplan: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i, s := range fields[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d: bad number %q: %w", lineNo, s, err)
			}
			vals[i] = v
		}
		if err := f.AddBlock(fields[0], geom.NewRect(vals[2], vals[3], vals[0], vals[1])); err != nil {
			return nil, fmt.Errorf("floorplan: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: read: %w", err)
	}
	if len(f.blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks in input")
	}
	return f, nil
}

// String renders a short human-readable summary.
func (f *Floorplan) String() string {
	var b strings.Builder
	bb := f.BoundingBox()
	fmt.Fprintf(&b, "Floorplan{%d blocks, %.3g x %.3g mm, deadspace %.1f%%}",
		len(f.blocks), bb.W*1e3, bb.H*1e3, 100*f.Deadspace())
	return b.String()
}

// Adjacency returns, for every pair of abutting blocks, the shared edge
// length. The result maps i -> j -> length for i < j, using block indices
// in insertion order. The thermal network builder consumes this.
func (f *Floorplan) Adjacency(tol float64) map[int]map[int]float64 {
	adj := make(map[int]map[int]float64)
	for i := 0; i < len(f.blocks); i++ {
		for j := i + 1; j < len(f.blocks); j++ {
			l, _ := geom.SharedEdge(f.blocks[i].Rect, f.blocks[j].Rect, tol)
			if l <= 0 {
				continue
			}
			if adj[i] == nil {
				adj[i] = make(map[int]float64)
			}
			adj[i][j] = l
		}
	}
	return adj
}

// SortedNames returns the block names sorted alphabetically (useful for
// deterministic reporting).
func (f *Floorplan) SortedNames() []string {
	names := f.Names()
	sort.Strings(names)
	return names
}
