package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func squareBlocks(n int, area float64) []Block {
	bs := make([]Block, n)
	for i := range bs {
		bs[i] = Block{Name: string(rune('a' + i)), Area: area, MinAspect: 1, MaxAspect: 1}
	}
	return bs
}

func flexBlocks(n int, area float64) []Block {
	bs := make([]Block, n)
	for i := range bs {
		bs[i] = Block{Name: string(rune('a' + i)), Area: area, MinAspect: 0.5, MaxAspect: 2}
	}
	return bs
}

func TestValidExpression(t *testing.T) {
	cases := []struct {
		name string
		e    Expression
		n    int
		ok   bool
	}{
		{"single", Expression{0}, 1, true},
		{"pair", Expression{0, 1, OpV}, 2, true},
		{"chain", Expression{0, 1, OpV, 2, OpH}, 3, true},
		{"balanced", Expression{0, 1, OpV, 2, 3, OpH, OpV}, 4, true},
		{"wrong length", Expression{0, 1}, 2, false},
		{"ballot violation", Expression{0, OpV, 1}, 2, false},
		{"repeat operand", Expression{0, 0, OpV}, 2, false},
		{"out of range", Expression{0, 5, OpV}, 2, false},
		{"leading operator", Expression{OpH, 0, 1}, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidExpression(tc.e, tc.n)
			if (err == nil) != tc.ok {
				t.Errorf("ValidExpression(%v, %d) err = %v, want ok=%v", tc.e, tc.n, err, tc.ok)
			}
		})
	}
}

func TestInitialExpressionValid(t *testing.T) {
	for n := 1; n <= 20; n++ {
		if err := ValidExpression(InitialExpression(n), n); err != nil {
			t.Errorf("InitialExpression(%d) invalid: %v", n, err)
		}
	}
}

func TestPackTwoBlocksVertical(t *testing.T) {
	blocks := squareBlocks(2, 1.0)
	fp, area, err := Pack(Expression{0, 1, OpV}, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-2) > 1e-9 {
		t.Errorf("area = %v, want 2", area)
	}
	ra, _ := fp.Rect("a")
	rb, _ := fp.Rect("b")
	if math.Abs(rb.X-ra.MaxX()) > 1e-9 {
		t.Errorf("vertical cut should place b to the right of a: %v %v", ra, rb)
	}
	if err := fp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPackTwoBlocksHorizontal(t *testing.T) {
	blocks := squareBlocks(2, 1.0)
	fp, _, err := Pack(Expression{0, 1, OpH}, blocks)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := fp.Rect("a")
	rb, _ := fp.Rect("b")
	if math.Abs(rb.Y-ra.MaxY()) > 1e-9 {
		t.Errorf("horizontal cut should stack b on a: %v %v", ra, rb)
	}
}

func TestPackFourSquareGridLikeArea(t *testing.T) {
	// (a|b) stacked on (c|d) should give a 2x2 arrangement of unit squares.
	blocks := squareBlocks(4, 1.0)
	e := Expression{0, 1, OpV, 2, 3, OpV, OpH}
	fp, area, err := Pack(e, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-4) > 1e-9 {
		t.Errorf("area = %v, want 4 (perfect packing)", area)
	}
	if err := fp.Validate(); err != nil {
		t.Error(err)
	}
	if ds := fp.Deadspace(); ds > 1e-9 {
		t.Errorf("deadspace = %v, want 0", ds)
	}
}

func TestPackFlexibleBlocksBeatsRigidChain(t *testing.T) {
	// With flexible aspect ratios, a chain of 3 blocks can fill better
	// than with rigid unit squares.
	rigid, _, err := Pack(InitialExpression(3), squareBlocks(3, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	flex, _, err := Pack(InitialExpression(3), flexBlocks(3, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if flex.Area() > rigid.Area()+1e-9 {
		t.Errorf("flexible packing (%v) should not be worse than rigid (%v)",
			flex.Area(), rigid.Area())
	}
}

func TestPackPreservesBlockAreas(t *testing.T) {
	blocks := flexBlocks(5, 2.5e-6)
	fp, _, err := Pack(InitialExpression(5), blocks)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		r, ok := fp.Rect(b.Name)
		if !ok {
			t.Fatalf("block %q missing", b.Name)
		}
		if math.Abs(r.Area()-b.Area) > 1e-12 {
			t.Errorf("block %q area %v, want %v", b.Name, r.Area(), b.Area)
		}
		ar := r.AspectRatio()
		if ar < b.MinAspect-1e-9 || ar > b.MaxAspect+1e-9 {
			t.Errorf("block %q aspect %v outside [%v, %v]", b.Name, ar, b.MinAspect, b.MaxAspect)
		}
	}
}

func TestPackRejectsBadInput(t *testing.T) {
	if _, _, err := Pack(Expression{0}, []Block{{Name: "x", Area: -1, MinAspect: 1, MaxAspect: 1}}); err == nil {
		t.Error("negative area accepted")
	}
	if _, _, err := Pack(Expression{0, OpV}, squareBlocks(2, 1)); err == nil {
		t.Error("invalid expression accepted")
	}
}

func TestPackSingleBlock(t *testing.T) {
	fp, area, err := Pack(Expression{0}, squareBlocks(1, 4.0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-4) > 1e-9 {
		t.Errorf("area = %v", area)
	}
	if fp.NumBlocks() != 1 {
		t.Error("single block plan wrong")
	}
}

// Property: any valid random expression packs into a valid (overlap-free)
// floorplan containing every block with its exact area, and the bounding
// box area is at least the sum of block areas.
func TestPackRandomExpressionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		blocks := flexBlocks(n, 1e-6*(0.5+rng.Float64()))
		e := randomExpression(n, rng)
		if err := ValidExpression(e, n); err != nil {
			return false
		}
		fp, area, err := Pack(e, blocks)
		if err != nil {
			return false
		}
		if fp.Validate() != nil || fp.NumBlocks() != n {
			return false
		}
		var blockArea float64
		for _, b := range blocks {
			blockArea += b.Area
		}
		return area >= blockArea-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomExpression builds a valid random Polish expression by stack
// simulation: at each step, emit an operand if any remain, or an operator
// if the stack allows; choose randomly when both are possible.
func randomExpression(n int, rng *rand.Rand) Expression {
	perm := rng.Perm(n)
	e := make(Expression, 0, 2*n-1)
	next, stack := 0, 0
	for len(e) < 2*n-1 {
		canOperand := next < n
		canOperator := stack >= 2
		var emitOperand bool
		switch {
		case canOperand && canOperator:
			emitOperand = rng.Intn(2) == 0
		case canOperand:
			emitOperand = true
		default:
			emitOperand = false
		}
		if emitOperand {
			e = append(e, Gene(perm[next]))
			next++
			stack++
		} else {
			if rng.Intn(2) == 0 {
				e = append(e, OpH)
			} else {
				e = append(e, OpV)
			}
			stack--
		}
	}
	return e
}

// Property: mutation preserves expression validity.
func TestMutatePreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		e := randomExpression(n, rng)
		for k := 0; k < 10; k++ {
			e = mutateExpr(e, n, rng, 1)
			if ValidExpression(e, n) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: crossover of two valid parents yields a valid child.
func TestCrossoverPreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomExpression(n, rng)
		b := randomExpression(n, rng)
		c := crossover(a, b, n, rng)
		return ValidExpression(c, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
