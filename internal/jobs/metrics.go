package jobs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics are the job tier's monotonic counters. All fields are
// atomic; read them through Snapshot.
type Metrics struct {
	// Submitted counts accepted submissions (including coalesced and
	// stored-result hits); Evaluations the Engine runs actually
	// started — Submitted − Evaluations is the work coalescing saved.
	Submitted   atomic.Uint64
	Evaluations atomic.Uint64
	// CoalesceInflight counts submissions attached to a running or
	// queued identical evaluation; CoalesceStored submissions served
	// from a stored (completed or journal-replayed) result.
	CoalesceInflight atomic.Uint64
	CoalesceStored   atomic.Uint64
	// Completed/Failed/Cancelled count per-job terminal transitions.
	Completed atomic.Uint64
	Failed    atomic.Uint64
	Cancelled atomic.Uint64
	// RejectedQueue counts submissions refused by the queue-depth cap;
	// RejectedRate submissions refused by the per-client rate limit
	// (incremented by the service layer).
	RejectedQueue atomic.Uint64
	RejectedRate  atomic.Uint64
	// Replayed counts journal records restored at startup;
	// JournalErrors append failures (results stay served from memory).
	Replayed      atomic.Uint64
	JournalErrors atomic.Uint64
}

// MetricsSnapshot is a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a transaction).
type MetricsSnapshot struct {
	Submitted, Evaluations           uint64
	CoalesceInflight, CoalesceStored uint64
	Completed, Failed, Cancelled     uint64
	RejectedQueue, RejectedRate      uint64
	Replayed, JournalErrors          uint64
}

// Snapshot reads every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Submitted:        m.Submitted.Load(),
		Evaluations:      m.Evaluations.Load(),
		CoalesceInflight: m.CoalesceInflight.Load(),
		CoalesceStored:   m.CoalesceStored.Load(),
		Completed:        m.Completed.Load(),
		Failed:           m.Failed.Load(),
		Cancelled:        m.Cancelled.Load(),
		RejectedQueue:    m.RejectedQueue.Load(),
		RejectedRate:     m.RejectedRate.Load(),
		Replayed:         m.Replayed.Load(),
		JournalErrors:    m.JournalErrors.Load(),
	}
}

// Metrics returns the manager's counter set. The service layer
// increments RejectedRate through it.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// PromWriter emits the Prometheus text exposition format (text/plain;
// version=0.0.4): a # HELP / # TYPE header per family followed by
// samples, optionally labelled. It is a minimal hand-rolled writer —
// the container bakes in no Prometheus client library, and the text
// format is small enough to pin with a parser test.
type PromWriter struct {
	W io.Writer
}

// Family writes the HELP/TYPE header for a metric family. typ is
// "counter" or "gauge".
func (p *PromWriter) Family(name, typ, help string) {
	fmt.Fprintf(p.W, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one unlabelled sample.
func (p *PromWriter) Sample(name string, value float64) {
	fmt.Fprintf(p.W, "%s %g\n", name, value)
}

// LabelledSample writes one sample with label pairs (label, value,
// label, value, …). Label values are escaped per the exposition
// format.
func (p *PromWriter) LabelledSample(name string, value float64, pairs ...string) {
	fmt.Fprintf(p.W, "%s{", name)
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			fmt.Fprint(p.W, ",")
		}
		fmt.Fprintf(p.W, "%s=%q", pairs[i], pairs[i+1])
	}
	fmt.Fprintf(p.W, "} %g\n", value)
}
