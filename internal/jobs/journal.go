package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"thermalsched"
)

// record is one journal line: a terminal evaluation in the shared
// Request/Response wire schema, plus the job-tier envelope. The
// format is append-only JSON lines so a crashed process loses at most
// the final partial line, which replay skips.
type record struct {
	V           int                    `json:"v"`
	ID          string                 `json:"id"`
	Fingerprint string                 `json:"fingerprint"`
	Flow        thermalsched.FlowKind  `json:"flow"`
	State       State                  `json:"state"`
	SubmittedAt int64                  `json:"submittedAt"`
	StartedAt   int64                  `json:"startedAt,omitempty"`
	FinishedAt  int64                  `json:"finishedAt,omitempty"`
	Request     *thermalsched.Request  `json:"request,omitempty"`
	Response    *thermalsched.Response `json:"response,omitempty"`
	Error       string                 `json:"error,omitempty"`
}

// journal is the append-only on-disk store. Appends are serialized by
// a mutex; replay happens once, before the manager goes concurrent.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal opens (creating if needed) the journal and replays its
// records. Unparseable lines — a torn final write, or records from an
// incompatible version — are skipped, not fatal: the journal is a
// cache of completed work, and losing an entry only costs one
// re-evaluation.
func openJournal(path string) (*journal, []record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	var records []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20) // campaign responses are large
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.V != 1 {
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: reading journal: %w", err)
	}
	// Position at the end for appends (the scanner consumed the file).
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: seeking journal: %w", err)
	}
	// Heal a torn final write: without a trailing newline the next
	// append would glue onto the partial line and both records would be
	// skipped on the following replay — losing an acknowledged append.
	// A separator newline turns the torn fragment into one skippable
	// garbage line and keeps every later record intact.
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobs: inspecting journal tail: %w", err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("jobs: healing journal tail: %w", err)
			}
		}
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, records, nil
}

// append writes one record and flushes it so a crash after append
// loses nothing already acknowledged.
func (j *journal) append(rec record) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("jobs: appending journal record: %w", err)
	}
	return j.w.Flush()
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
