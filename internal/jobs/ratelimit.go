package jobs

import (
	"sync"
	"time"
)

// RateLimiter is a per-client token bucket: each client key accrues
// Rate tokens per second up to Burst, and one submission consumes one
// token. A zero-rate limiter admits everything. Stale buckets are
// evicted lazily so an open service cannot accumulate unbounded
// per-client state.
type RateLimiter struct {
	rate  float64 // tokens per second; 0 disables limiting
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds per-client state; when exceeded the stalest
// buckets are dropped (a dropped client restarts with a full burst,
// which only ever errs in the client's favor).
const maxBuckets = 4096

// NewRateLimiter builds a limiter admitting rate submissions per
// second with the given burst per client. rate 0 disables limiting;
// burst 0 defaults to max(1, rate).
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &RateLimiter{rate: rate, burst: burst, now: time.Now, buckets: make(map[string]*bucket)}
}

// Allow reports whether the client may submit now, consuming a token
// when it may.
func (l *RateLimiter) Allow(client string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops buckets that have been idle long enough to be
// full again — forgetting them is lossless.
func (l *RateLimiter) evictLocked(now time.Time) {
	for k, b := range l.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
