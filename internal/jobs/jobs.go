// Package jobs is the async job tier layered on a thermalsched Engine:
// submit-then-poll semantics for long-running evaluations, so a
// campaign no longer holds an HTTP connection open for its whole
// runtime. A Manager owns
//
//   - a store of jobs and completed results (in memory, with an
//     optional append-only JSONL journal so completed results survive
//     restart),
//   - a bounded dispatcher (queue-depth cap for backpressure, a fixed
//     worker pool draining it), and
//   - request coalescing keyed on Request.Fingerprint(): identical
//     in-flight requests attach to one Engine evaluation and share its
//     Response, and identical completed (or journal-replayed) requests
//     are served from the stored result without re-evaluation.
//
// internal/service exposes it as POST/GET/DELETE /v1/jobs plus an SSE
// event stream and Prometheus-text /metrics; this package is
// HTTP-free.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"thermalsched"
)

// State is a job's lifecycle position. Transitions are monotonic:
// queued → running → one of {done, failed, cancelled}; coalesced and
// journal-served jobs can be born directly in a later state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every job state, in lifecycle order.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Job is the client-visible snapshot of one submitted request. The
// embedded Response is shared with coalesced siblings and is treated
// as immutable once set.
type Job struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	// Flow echoes the request's flow for listing without the payload.
	Flow thermalsched.FlowKind `json:"flow"`
	// Coalesced marks a job that attached to another job's in-flight
	// evaluation; FromJournal one served from a stored result (journal
	// replay or an earlier completed evaluation) without running.
	Coalesced   bool `json:"coalesced,omitempty"`
	FromJournal bool `json:"fromJournal,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt are wall-clock millis since the
	// Unix epoch (zero when the phase has not happened).
	SubmittedAt int64 `json:"submittedAt"`
	StartedAt   int64 `json:"startedAt,omitempty"`
	FinishedAt  int64 `json:"finishedAt,omitempty"`
	// Response is set when State is done; Error when failed.
	Response *thermalsched.Response `json:"response,omitempty"`
	Error    string                 `json:"error,omitempty"`
}

// Event is one job lifecycle notification, streamed over SSE.
type Event struct {
	JobID string `json:"id"`
	State State  `json:"state"`
	// Error carries the failure cause on failed events.
	Error string `json:"error,omitempty"`
}

// Evaluator is the slice of thermalsched.Engine the dispatcher
// consumes; tests substitute counting or failing fakes.
type Evaluator interface {
	Run(ctx context.Context, req thermalsched.Request) (*thermalsched.Response, error)
}

// Config tunes a Manager. The zero value uses the defaults.
type Config struct {
	// Workers is the number of evaluations running concurrently
	// (default DefaultWorkers). The Engine parallelizes internally, so
	// a small number keeps the process responsive without
	// oversubscription.
	Workers int
	// QueueDepth caps the number of evaluations queued but not yet
	// running (default DefaultQueueDepth); Submit returns ErrQueueFull
	// beyond it — the service maps that to HTTP 429.
	QueueDepth int
	// MaxJobs caps retained terminal jobs (default DefaultMaxJobs);
	// the oldest are evicted first, together with their stored results
	// when no retained job shares the fingerprint.
	MaxJobs int
	// JournalPath enables the append-only on-disk journal: completed
	// evaluations are appended as JSON lines and replayed on Open, so
	// results survive restart. Empty disables persistence.
	JournalPath string
	// now is a test hook for timestamps.
	now func() time.Time
}

// Defaults for Config's zero values.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 256
	DefaultMaxJobs    = 4096
)

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	if c.Workers < 0 || c.QueueDepth < 0 || c.MaxJobs < 0 {
		return fmt.Errorf("jobs: negative limits (workers %d, queue %d, maxJobs %d)",
			c.Workers, c.QueueDepth, c.MaxJobs)
	}
	return nil
}

// Submission errors the service maps to HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the dispatcher's queue is
	// at capacity (backpressure; HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrUnknownJob reports a job ID the store does not hold (HTTP 404).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrClosed rejects operations on a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
)

// job is the internal mutable record behind a Job snapshot.
type job struct {
	id          string
	fp          string
	flow        thermalsched.FlowKind
	state       State
	coalesced   bool
	fromJournal bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	resp        *thermalsched.Response
	err         string
	eval        *evaluation
	subs        map[chan Event]struct{}
}

// evaluation is one Engine run shared by every job coalesced onto it.
type evaluation struct {
	fp     string
	req    thermalsched.Request
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []*job // attached, in submission order
	live   int    // attached jobs not yet cancelled
}

// Manager is the async job tier. Construct with Open, feed it
// validated requests with Submit, and Close it on shutdown. Safe for
// concurrent use.
type Manager struct {
	eval    Evaluator
	cfg     Config
	metrics *Metrics
	idNonce string

	mu       sync.Mutex
	jobs     map[string]*job
	terminal []string // terminal job IDs in completion order, for eviction
	inflight map[string]*evaluation
	results  map[string]*thermalsched.Response // fingerprint → completed response
	queue    chan *evaluation
	depth    int // evaluations queued but not yet picked up
	busy     int // workers currently evaluating
	seq      uint64
	closed   bool

	journal *journal
	wg      sync.WaitGroup
	base    context.Context
	stop    context.CancelFunc
}

// Open builds a Manager, replays the journal (when configured) into
// the result store, and starts the worker pool.
func Open(eval Evaluator, cfg Config) (*Manager, error) {
	if eval == nil {
		return nil, fmt.Errorf("jobs: nil evaluator")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("jobs: reading id entropy: %w", err)
	}
	base, stop := context.WithCancel(context.Background())
	m := &Manager{
		eval:     eval,
		cfg:      cfg,
		metrics:  &Metrics{},
		idNonce:  hex.EncodeToString(nonce[:]),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*evaluation),
		results:  make(map[string]*thermalsched.Response),
		queue:    make(chan *evaluation, cfg.QueueDepth),
		base:     base,
		stop:     stop,
	}
	if cfg.JournalPath != "" {
		jn, records, err := openJournal(cfg.JournalPath)
		if err != nil {
			stop()
			return nil, err
		}
		m.journal = jn
		for _, rec := range records {
			m.replay(rec)
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// replay restores one journal record into the store: the job is
// retained in its terminal state and done results feed the coalescing
// index so identical future requests skip evaluation.
func (m *Manager) replay(rec record) {
	if rec.ID == "" || m.jobs[rec.ID] != nil {
		return
	}
	j := &job{
		id:          rec.ID,
		fp:          rec.Fingerprint,
		flow:        rec.Flow,
		state:       rec.State,
		fromJournal: true,
		submitted:   time.UnixMilli(rec.SubmittedAt),
		started:     time.UnixMilli(rec.StartedAt),
		finished:    time.UnixMilli(rec.FinishedAt),
		resp:        rec.Response,
		err:         rec.Error,
	}
	if !j.state.Terminal() {
		return // a live state in the journal is a corrupt record
	}
	m.jobs[j.id] = j
	m.terminal = append(m.terminal, j.id)
	if j.state == StateDone && j.resp != nil && j.fp != "" {
		m.results[j.fp] = j.resp
	}
	m.metrics.Replayed.Add(1)
	m.evictLocked()
}

// newID mints a process-unique job ID. The nonce keeps IDs from
// colliding with journal-replayed jobs of earlier processes.
func (m *Manager) newID() string {
	m.seq++
	return fmt.Sprintf("j-%s-%d", m.idNonce, m.seq)
}

// Submit accepts one validated request: it computes the coalescing
// fingerprint, attaches to an identical stored result or in-flight
// evaluation when one exists, and otherwise enqueues a fresh
// evaluation. It returns the job's initial snapshot immediately.
func (m *Manager) Submit(req thermalsched.Request) (Job, error) {
	fp := req.Fingerprint()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrClosed
	}

	// A stored result (journal replay or earlier completed evaluation)
	// serves the job without running anything.
	if resp, ok := m.results[fp]; ok {
		j := &job{
			id: m.newID(), fp: fp, flow: req.Flow,
			state: StateDone, fromJournal: true,
			submitted: m.cfg.now(), finished: m.cfg.now(),
			resp: resp,
		}
		m.jobs[j.id] = j
		m.terminal = append(m.terminal, j.id)
		m.metrics.Submitted.Add(1)
		m.metrics.CoalesceStored.Add(1)
		m.evictLocked()
		return j.snapshot(), nil
	}

	// An identical in-flight evaluation: attach and share its Response.
	if ev, ok := m.inflight[fp]; ok {
		j := &job{
			id: m.newID(), fp: fp, flow: req.Flow,
			state: StateQueued, coalesced: true,
			submitted: m.cfg.now(), eval: ev,
		}
		// Jobs attaching after the evaluation started are already
		// running from the client's point of view.
		if len(ev.jobs) > 0 && ev.jobs[0].state == StateRunning {
			j.state = StateRunning
			j.started = ev.jobs[0].started
		}
		ev.jobs = append(ev.jobs, j)
		ev.live++
		m.jobs[j.id] = j
		m.metrics.Submitted.Add(1)
		m.metrics.CoalesceInflight.Add(1)
		return j.snapshot(), nil
	}

	// Fresh evaluation: reject when the queue is at capacity.
	if m.depth >= m.cfg.QueueDepth {
		m.metrics.RejectedQueue.Add(1)
		return Job{}, fmt.Errorf("%w: %d evaluations queued (cap %d)", ErrQueueFull, m.depth, m.cfg.QueueDepth)
	}
	ctx, cancel := context.WithCancel(m.base)
	ev := &evaluation{fp: fp, req: req, ctx: ctx, cancel: cancel}
	j := &job{
		id: m.newID(), fp: fp, flow: req.Flow,
		state: StateQueued, submitted: m.cfg.now(), eval: ev,
	}
	ev.jobs = []*job{j}
	ev.live = 1
	m.jobs[j.id] = j
	m.inflight[fp] = ev
	m.depth++
	m.metrics.Submitted.Add(1)
	m.queue <- ev // cannot block: depth ≤ QueueDepth == cap(queue)
	return j.snapshot(), nil
}

// Get returns the current snapshot of a job.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// Cancel cancels a job. Cancelling is idempotent: a terminal job is
// returned unchanged. The underlying evaluation is only aborted when
// its last live (non-cancelled) attached job cancels — coalesced
// siblings keep it running.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		return j.snapshot(), nil
	}
	ev := j.eval
	m.finishLocked(j, StateCancelled, nil, "")
	m.metrics.Cancelled.Add(1)
	if ev != nil {
		ev.live--
		if ev.live <= 0 {
			// Last waiter gone: abort the evaluation and free the
			// fingerprint so an identical later submission starts fresh.
			ev.cancel()
			if m.inflight[ev.fp] == ev {
				delete(m.inflight, ev.fp)
			}
		}
	}
	return j.snapshot(), nil
}

// Subscribe registers for a job's lifecycle events. The current state
// is delivered as the first event; the channel closes after the
// terminal event (immediately for already-terminal jobs). The returned
// cancel function releases the subscription.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	// Buffer every state a job can traverse plus slack; sends are
	// non-blocking so a stalled reader can never wedge the dispatcher.
	ch := make(chan Event, 8)
	ch <- j.event()
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// Close stops accepting submissions, aborts queued and running
// evaluations, and waits for the workers to exit. The journal is
// closed last so in-flight completions still persist.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.stop() // cancels every evaluation context
	m.wg.Wait()
	if m.journal != nil {
		return m.journal.Close()
	}
	return nil
}

// worker drains the queue, running one evaluation at a time.
func (m *Manager) worker() {
	defer m.wg.Done()
	for ev := range m.queue {
		m.run(ev)
	}
}

// run executes one evaluation and fans its outcome to every attached
// job.
func (m *Manager) run(ev *evaluation) {
	m.mu.Lock()
	m.depth--
	if ev.ctx.Err() != nil || ev.live <= 0 {
		// Every waiter cancelled while queued; nothing to run.
		if m.inflight[ev.fp] == ev {
			delete(m.inflight, ev.fp)
		}
		m.mu.Unlock()
		return
	}
	m.busy++
	now := m.cfg.now()
	for _, j := range ev.jobs {
		if j.state == StateQueued {
			j.state = StateRunning
			j.started = now
			j.notifyLocked()
		}
	}
	m.mu.Unlock()

	m.metrics.Evaluations.Add(1)
	resp, err := m.eval.Run(ev.ctx, ev.req)

	m.mu.Lock()
	m.busy--
	if m.inflight[ev.fp] == ev {
		delete(m.inflight, ev.fp)
	}
	switch {
	case err == nil:
		m.results[ev.fp] = resp
		for _, j := range ev.jobs {
			if !j.state.Terminal() {
				m.finishLocked(j, StateDone, resp, "")
				m.metrics.Completed.Add(1)
			}
		}
		m.journalLocked(ev, resp, "")
	case ev.ctx.Err() != nil:
		// Aborted by cancellation (or shutdown): jobs were already
		// marked cancelled by Cancel; sweep up any shutdown leftovers.
		for _, j := range ev.jobs {
			if !j.state.Terminal() {
				m.finishLocked(j, StateCancelled, nil, "")
				m.metrics.Cancelled.Add(1)
			}
		}
	default:
		for _, j := range ev.jobs {
			if !j.state.Terminal() {
				m.finishLocked(j, StateFailed, nil, err.Error())
				m.metrics.Failed.Add(1)
			}
		}
		m.journalLocked(ev, nil, err.Error())
	}
	m.evictLocked()
	m.mu.Unlock()
}

// journalLocked appends the evaluation's terminal record (once, under
// the primary job) to the on-disk journal.
func (m *Manager) journalLocked(ev *evaluation, resp *thermalsched.Response, errMsg string) {
	if m.journal == nil || len(ev.jobs) == 0 {
		return
	}
	j := ev.jobs[0]
	state := StateDone
	if errMsg != "" {
		state = StateFailed
	}
	rec := record{
		V: 1, ID: j.id, Fingerprint: ev.fp, Flow: ev.req.Flow, State: state,
		SubmittedAt: j.submitted.UnixMilli(), StartedAt: j.started.UnixMilli(),
		FinishedAt: j.finished.UnixMilli(),
		Request:    &ev.req, Response: resp, Error: errMsg,
	}
	if err := m.journal.append(rec); err != nil {
		m.metrics.JournalErrors.Add(1)
	}
}

// finishLocked moves a job to a terminal state, notifies subscribers
// and closes their channels. Callers hold m.mu.
func (m *Manager) finishLocked(j *job, state State, resp *thermalsched.Response, errMsg string) {
	j.state = state
	j.resp = resp
	j.err = errMsg
	j.finished = m.cfg.now()
	m.terminal = append(m.terminal, j.id)
	j.notifyLocked()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap,
// together with stored results no retained job still references.
func (m *Manager) evictLocked() {
	for len(m.terminal) > m.cfg.MaxJobs {
		id := m.terminal[0]
		m.terminal = m.terminal[1:]
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		delete(m.jobs, id)
		if j.state == StateDone {
			// Keep the result while any retained job shares the
			// fingerprint; otherwise the stored response leaks forever.
			shared := false
			for _, other := range m.jobs {
				if other.fp == j.fp && other.state == StateDone {
					shared = true
					break
				}
			}
			if !shared {
				delete(m.results, j.fp)
			}
		}
	}
}

// notifyLocked pushes the job's current state to subscribers without
// blocking; a full (stalled) subscriber misses intermediate events but
// always receives the terminal one via the channel close + final Get.
func (j *job) notifyLocked() {
	ev := j.event()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (j *job) event() Event {
	return Event{JobID: j.id, State: j.state, Error: j.err}
}

// snapshot copies the job into its client-visible form.
func (j *job) snapshot() Job {
	s := Job{
		ID: j.id, Fingerprint: j.fp, State: j.state, Flow: j.flow,
		Coalesced: j.coalesced, FromJournal: j.fromJournal,
		SubmittedAt: j.submitted.UnixMilli(),
		Response:    j.resp, Error: j.err,
	}
	if !j.started.IsZero() {
		s.StartedAt = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		s.FinishedAt = j.finished.UnixMilli()
	}
	return s
}

// Stats is a point-in-time dispatcher snapshot for /metrics.
type Stats struct {
	QueueDepth int
	QueueCap   int
	Workers    int
	Busy       int
	ByState    map[State]int
	Counters   MetricsSnapshot
}

// Stats captures the dispatcher and store state plus the monotonic
// counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	by := make(map[State]int, 5)
	for _, j := range m.jobs {
		by[j.state]++
	}
	return Stats{
		QueueDepth: m.depth,
		QueueCap:   m.cfg.QueueDepth,
		Workers:    m.cfg.Workers,
		Busy:       m.busy,
		ByState:    by,
		Counters:   m.metrics.Snapshot(),
	}
}
