package jobs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"thermalsched"
)

// fuzzRecordLine renders one well-formed v1 journal line for corpus
// seeding: replay must always recover it, whatever precedes it.
func fuzzRecordLine(id string) []byte {
	rec := record{
		V:           1,
		ID:          id,
		Fingerprint: "00000000deadbeef",
		Flow:        thermalsched.FlowPlatform,
		State:       StateDone,
		SubmittedAt: 1700000000,
		FinishedAt:  1700000001,
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return append(blob, '\n')
}

// FuzzJournalReplay feeds arbitrary bytes to the journal replay path.
// The contract under test is the one openJournal documents: replay
// never panics, never fails on corrupt *content* (only on I/O errors),
// skips what it cannot parse, and — the durability property — a valid
// record appended after any prefix garbage survives a reopen.
func FuzzJournalReplay(f *testing.F) {
	valid := fuzzRecordLine("seed")
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                             // torn final write
	f.Add(append(append([]byte{}, valid...), valid[:7]...)) // good line + torn tail
	f.Add([]byte("{\"v\":2,\"id\":\"future\"}\n"))          // incompatible version
	f.Add([]byte("not json at all\n\x00\xff\n{\"v\":1}\n")) // garbage + minimal v1
	f.Fuzz(func(t *testing.T, data []byte) {
		if bytes.ContainsRune(data, '\n') && len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		path := filepath.Join(t.TempDir(), "jobs.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, replayed, err := openJournal(path)
		if err != nil {
			// Only I/O-level failures may error; corrupt content must
			// be skipped. A plain byte slice cannot cause I/O errors
			// below the 64MB scanner cap, so any error here is a bug.
			t.Fatalf("openJournal rejected content: %v", err)
		}
		for _, rec := range replayed {
			if rec.V != 1 {
				t.Errorf("replay surfaced a record with version %d", rec.V)
			}
		}
		// Durability: append a fresh terminal record after whatever the
		// fuzzer wrote, reopen, and the record must come back.
		fresh := record{
			V: 1, ID: "fuzz-live", Fingerprint: "feedface00000000",
			Flow: thermalsched.FlowSweep, State: StateDone, SubmittedAt: 42,
		}
		if err := j.append(fresh); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		j2, replayed2, err := openJournal(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer j2.Close()
		if len(replayed2) < len(replayed)+1 {
			t.Fatalf("reopen lost records: %d before append, %d after", len(replayed), len(replayed2))
		}
		last := replayed2[len(replayed2)-1]
		if last.ID != fresh.ID || last.Fingerprint != fresh.Fingerprint || last.State != fresh.State {
			t.Errorf("appended record did not survive reopen: got %+v", last)
		}
	})
}
