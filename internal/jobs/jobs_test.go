package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermalsched"
)

// fakeEval is a controllable evaluator: it counts runs, can block
// until released, and can fail.
type fakeEval struct {
	runs    atomic.Uint64
	block   chan struct{} // non-nil: Run waits for close (or ctx)
	started chan struct{} // non-nil: Run signals entry
	err     error
}

func (f *fakeEval) Run(ctx context.Context, req thermalsched.Request) (*thermalsched.Response, error) {
	f.runs.Add(1)
	if f.started != nil {
		select {
		case f.started <- struct{}{}:
		default:
		}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return &thermalsched.Response{Flow: req.Flow, Graph: req.Benchmark, Policy: req.Policy}, nil
}

func openTest(t *testing.T, eval Evaluator, cfg Config) *Manager {
	t.Helper()
	m, err := Open(eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func req(bench string) thermalsched.Request {
	return thermalsched.NewRequest(thermalsched.FlowPlatform, thermalsched.WithBenchmark(bench))
}

// waitState polls a job until it reaches the wanted state.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s waiting for %s (err %q)", id, j.State, want, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return Job{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	f := &fakeEval{}
	m := openTest(t, f, Config{})
	j, err := m.Submit(req("Bm1"))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued && j.State != StateRunning {
		t.Fatalf("fresh job in state %s", j.State)
	}
	if j.Fingerprint == "" || j.ID == "" {
		t.Fatalf("job missing identity: %+v", j)
	}
	done := waitState(t, m, j.ID, StateDone)
	if done.Response == nil || done.Response.Graph != "Bm1" {
		t.Fatalf("done job missing response: %+v", done)
	}
	if done.FinishedAt == 0 || done.SubmittedAt == 0 {
		t.Errorf("timestamps missing: %+v", done)
	}
	if got := f.runs.Load(); got != 1 {
		t.Errorf("evaluator ran %d times, want 1", got)
	}
}

// Two identical submissions while the first is in flight must share
// one evaluation and one Response pointer-for-pointer.
func TestCoalesceInflight(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1})
	a, err := m.Submit(req("Bm1"))
	if err != nil {
		t.Fatal(err)
	}
	<-f.started // evaluation is running
	b, err := m.Submit(req("Bm1"))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Coalesced {
		t.Fatalf("identical in-flight submission not coalesced: %+v", b)
	}
	if b.State != StateRunning {
		t.Errorf("coalesced-onto-running job in state %s", b.State)
	}
	close(f.block)
	ja := waitState(t, m, a.ID, StateDone)
	jb := waitState(t, m, b.ID, StateDone)
	if ja.Response != jb.Response {
		t.Error("coalesced jobs do not share one Response")
	}
	if got := f.runs.Load(); got != 1 {
		t.Errorf("coalesced pair paid %d evaluations, want 1", got)
	}
	s := m.Stats()
	if s.Counters.CoalesceInflight != 1 || s.Counters.Evaluations != 1 || s.Counters.Submitted != 2 {
		t.Errorf("counters wrong: %+v", s.Counters)
	}
}

// A submission identical to a completed job is served from the stored
// result without re-evaluating.
func TestCoalesceStoredResult(t *testing.T) {
	f := &fakeEval{}
	m := openTest(t, f, Config{})
	a, _ := m.Submit(req("Bm1"))
	waitState(t, m, a.ID, StateDone)
	b, err := m.Submit(req("Bm1"))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateDone || !b.FromJournal {
		t.Fatalf("stored-result hit not served immediately: %+v", b)
	}
	if got := f.runs.Load(); got != 1 {
		t.Errorf("repeat submission re-evaluated (%d runs)", got)
	}
	if s := m.Stats(); s.Counters.CoalesceStored != 1 {
		t.Errorf("stored-coalesce counter %d, want 1", s.Counters.CoalesceStored)
	}
}

// Requests differing only in Parallelism share a fingerprint and so
// coalesce (their responses are byte-identical by contract).
func TestCoalesceNormalizesParallelism(t *testing.T) {
	f := &fakeEval{}
	m := openTest(t, f, Config{})
	a, _ := m.Submit(thermalsched.NewRequest(thermalsched.FlowCoSynthesis,
		thermalsched.WithBenchmark("Bm1"), thermalsched.WithParallelism(1)))
	waitState(t, m, a.ID, StateDone)
	b, err := m.Submit(thermalsched.NewRequest(thermalsched.FlowCoSynthesis,
		thermalsched.WithBenchmark("Bm1"), thermalsched.WithParallelism(4)))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateDone {
		t.Fatalf("parallelism variant not coalesced: %+v", b)
	}
	if got := f.runs.Load(); got != 1 {
		t.Errorf("parallelism variant re-evaluated (%d runs)", got)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1, QueueDepth: 1})
	defer close(f.block)
	if _, err := m.Submit(req("Bm1")); err != nil {
		t.Fatal(err)
	}
	<-f.started // worker busy; queue empty
	if _, err := m.Submit(req("Bm2")); err != nil {
		t.Fatal(err) // fills the queue
	}
	_, err := m.Submit(req("Bm3"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit returned %v, want ErrQueueFull", err)
	}
	if s := m.Stats(); s.Counters.RejectedQueue != 1 {
		t.Errorf("rejected-queue counter %d, want 1", s.Counters.RejectedQueue)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1})
	defer close(f.block)
	a, _ := m.Submit(req("Bm1"))
	<-f.started
	b, _ := m.Submit(req("Bm2")) // sits in the queue
	got, err := m.Cancel(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("cancelled job in state %s", got.State)
	}
	// Idempotent: cancelling again returns the terminal snapshot.
	again, err := m.Cancel(b.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}
	// The queued evaluation must be skipped, not run.
	_ = a
	if runs := f.runs.Load(); runs != 1 {
		t.Errorf("cancelled queued evaluation still ran (%d runs)", runs)
	}
	// A fresh identical submission starts a new evaluation (the
	// cancelled fingerprint no longer coalesces).
	c, err := m.Submit(req("Bm2"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Coalesced {
		t.Error("submission coalesced onto a fully-cancelled evaluation")
	}
}

// Cancelling one coalesced sibling must not abort the shared
// evaluation; the survivor still completes.
func TestCancelCoalescedSiblingKeepsEvaluation(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1})
	a, _ := m.Submit(req("Bm1"))
	<-f.started
	b, _ := m.Submit(req("Bm1"))
	if !b.Coalesced {
		t.Fatal("second submission did not coalesce")
	}
	if _, err := m.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	close(f.block)
	ja := waitState(t, m, a.ID, StateDone)
	if ja.Response == nil {
		t.Fatal("surviving sibling lost its response")
	}
	jb, _ := m.Get(b.ID)
	if jb.State != StateCancelled {
		t.Errorf("cancelled sibling in state %s", jb.State)
	}
}

// Cancelling the last live job aborts the running evaluation through
// the context the Engine threads into every hot loop.
func TestCancelRunningJobAbortsEvaluation(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1})
	a, _ := m.Submit(req("Bm1"))
	<-f.started
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(a.ID)
	if j.State != StateCancelled {
		t.Fatalf("cancelled running job in state %s", j.State)
	}
	// The evaluator must observe ctx cancellation and return without
	// anyone releasing the block; the worker is then free for new
	// work (which no longer blocks).
	close(f.block)
	b, _ := m.Submit(req("Bm2"))
	waitState(t, m, b.ID, StateDone)
}

func TestFailedEvaluation(t *testing.T) {
	f := &fakeEval{err: errors.New("boom")}
	m := openTest(t, f, Config{})
	a, _ := m.Submit(req("Bm1"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := m.Get(a.ID)
		if j.State == StateFailed {
			if j.Error != "boom" {
				t.Errorf("failure cause %q", j.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Failures are not served from the result store: a retry runs.
	b, _ := m.Submit(req("Bm1"))
	if b.State == StateFailed {
		t.Error("failed result served from store; failures must re-evaluate")
	}
}

func TestUnknownJob(t *testing.T) {
	m := openTest(t, &fakeEval{}, Config{})
	if _, err := m.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Get unknown: %v", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel unknown: %v", err)
	}
	if _, _, err := m.Subscribe("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Subscribe unknown: %v", err)
	}
}

// Subscribers see the lifecycle: current state first, then
// transitions, then channel close at terminal.
func TestSubscribeStreamsLifecycle(t *testing.T) {
	f := &fakeEval{block: make(chan struct{}), started: make(chan struct{}, 1)}
	m := openTest(t, f, Config{Workers: 1})
	a, _ := m.Submit(req("Bm1"))
	ch, cancel, err := m.Subscribe(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	<-f.started
	close(f.block)
	var states []State
	for ev := range ch {
		states = append(states, ev.State)
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("lifecycle stream %v does not end in done", states)
	}
	// A subscription to a terminal job delivers one snapshot event and
	// closes immediately.
	ch2, cancel2, err := m.Subscribe(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	ev, ok := <-ch2
	if !ok || ev.State != StateDone {
		t.Fatalf("terminal subscription got %+v ok=%t", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal subscription not closed after snapshot")
	}
}

// Hammer the manager from many goroutines; run under -race in CI.
func TestConcurrentSubmitGetCancel(t *testing.T) {
	f := &fakeEval{}
	m := openTest(t, f, Config{Workers: 4, QueueDepth: 1024})
	var wg sync.WaitGroup
	benches := []string{"Bm1", "Bm2", "Bm3", "Bm4"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j, err := m.Submit(req(benches[(g+i)%len(benches)]))
				if err != nil {
					continue
				}
				if i%7 == 0 {
					m.Cancel(j.ID)
				} else {
					m.Get(j.ID)
				}
			}
		}(g)
	}
	wg.Wait()
	s := m.Stats()
	if s.Counters.Submitted != 400 {
		t.Errorf("submitted %d, want 400", s.Counters.Submitted)
	}
	// 4 distinct fingerprints: coalescing must have collapsed almost
	// everything — far fewer evaluations than submissions.
	if s.Counters.Evaluations > 100 {
		t.Errorf("%d evaluations for 400 submissions of 4 distinct requests", s.Counters.Evaluations)
	}
}

// Terminal jobs beyond MaxJobs are evicted oldest-first, and results
// referenced by no retained job go with them.
func TestEviction(t *testing.T) {
	f := &fakeEval{}
	m := openTest(t, f, Config{Workers: 1, MaxJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := m.Submit(thermalsched.NewRequest(thermalsched.FlowPlatform,
			thermalsched.WithBenchmark("Bm1"),
			thermalsched.WithSweepCount(i+1))) // distinct fingerprints
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, j.ID, StateDone)
		ids = append(ids, j.ID)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Error("oldest terminal job not evicted")
	}
	if _, err := m.Get(ids[3]); err != nil {
		t.Error("newest terminal job evicted")
	}
}

func TestClosedManagerRejectsSubmit(t *testing.T) {
	m, err := Open(&fakeEval{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(req("Bm1")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Workers: -1}).Validate(); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Open(nil, Config{}); err == nil {
		t.Error("nil evaluator accepted")
	}
}

// The journal round trip: results written by one manager are served by
// the next without re-evaluation.
func TestJournalSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	f1 := &fakeEval{}
	m1, err := Open(f1, Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m1.Submit(req("Bm1"))
	waitState(t, m1, a.ID, StateDone)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := &fakeEval{}
	m2, err := Open(f2, Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if s := m2.Stats(); s.Counters.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1", s.Counters.Replayed)
	}
	// The replayed job is still visible by its original ID.
	if _, err := m2.Get(a.ID); err != nil {
		t.Errorf("replayed job lost: %v", err)
	}
	b, err := m2.Submit(req("Bm1"))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateDone || !b.FromJournal {
		t.Fatalf("journaled result not served: %+v", b)
	}
	if f2.runs.Load() != 0 {
		t.Errorf("journaled request re-evaluated (%d runs)", f2.runs.Load())
	}
}

// A torn final line (crash mid-append) must not poison replay.
func TestJournalSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	m1, err := Open(&fakeEval{}, Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m1.Submit(req("Bm1"))
	waitState(t, m1, a.ID, StateDone)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write.
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(fh, `{"v":1,"id":"torn","finger`)
	fh.Close()

	m2, err := Open(&fakeEval{}, Config{JournalPath: path})
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer m2.Close()
	if s := m2.Stats(); s.Counters.Replayed != 1 {
		t.Errorf("replayed %d records, want 1 (torn line skipped)", s.Counters.Replayed)
	}
}

func TestRateLimiter(t *testing.T) {
	l := NewRateLimiter(1, 2)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("burst of 2 rejected")
	}
	if l.Allow("a") {
		t.Fatal("third immediate submission admitted past burst")
	}
	if !l.Allow("b") {
		t.Fatal("distinct client throttled by a's bucket")
	}
	now = now.Add(1500 * time.Millisecond)
	if !l.Allow("a") {
		t.Fatal("token not replenished after 1.5s at 1/s")
	}
	if l.Allow("a") {
		t.Fatal("replenishment over-credited")
	}
	var nilLimiter *RateLimiter
	if !nilLimiter.Allow("x") || !NewRateLimiter(0, 0).Allow("x") {
		t.Fatal("disabled limiter rejected a submission")
	}
}
