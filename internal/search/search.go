// Package search is the deterministic parallel search backbone shared
// by the floorplanner's GA/SA and the co-synthesis architecture loops.
//
// The contract every user of this package follows is *generate
// serially, evaluate concurrently, merge in submission order*: all
// randomness (candidate genomes, acceptance uniforms, neighborhood
// enumeration) is drawn on the caller's goroutine before any evaluation
// starts, evaluations are pure functions of their candidate, and
// results land in submission-indexed slots. Under that contract the
// outcome of a search is byte-identical for every parallelism level,
// including fully serial execution.
package search

import (
	"container/list"
	"sync"
)

// Pool is a bounded token pool for concurrent candidate evaluation. A
// nil *Pool runs everything inline on the caller's goroutine (the
// serial path — byte-identical results, no goroutines). Pools are
// shared down the stack (engine → co-synthesis → floorplan GA) so
// nested fan-outs never oversubscribe: acquisition is non-blocking and
// a job that finds the pool saturated simply runs inline, which also
// makes nested Map calls deadlock-free by construction.
type Pool struct {
	tokens chan struct{}
}

// NewPool sizes a pool for the given total parallelism: one slot is
// the caller's own goroutine, so the pool holds parallelism-1 tokens.
// Parallelism ≤ 1 returns nil — the serial pool.
func NewPool(parallelism int) *Pool {
	if parallelism <= 1 {
		return nil
	}
	return &Pool{tokens: make(chan struct{}, parallelism-1)}
}

// Parallel reports whether the pool can run jobs concurrently.
func (p *Pool) Parallel() bool { return p != nil }

// Saturated reports whether every token is currently held, i.e. a Map
// call issued now would run entirely inline. The answer is a racy
// snapshot — tokens come and go concurrently — so callers may use it
// only as a scheduling hint (e.g. to prefer an early-exit serial scan
// over speculative fan-out), never for correctness.
func (p *Pool) Saturated() bool {
	return p == nil || len(p.tokens) == cap(p.tokens)
}

// Map runs fn(0), …, fn(n-1), spreading jobs across the pool's tokens
// plus the caller's goroutine. fn must write its result into a
// submission-indexed slot; when the pool is parallel fn must be safe
// for concurrent invocation. Map returns the lowest-index error —
// serial and parallel runs therefore report the same error, regardless
// of scheduling (the serial path stops at the first failure, the
// parallel path finishes in-flight jobs first).
func (p *Pool) Map(n int, fn func(i int) error) error {
	if p == nil {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.tokens }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LRU is a mutex-guarded least-recently-used cache from string keys to
// values, with hit/miss counters — the memo behind the floorplanner's
// expression-fingerprint cache. For deterministic eviction (and so
// deterministic hit/miss accounting across parallelism levels), do the
// Get/Put calls of one search serially; the lock only guards against
// accidental concurrent use.
type LRU[V any] struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU builds a cache bounded to capacity entries; capacity ≤ 0
// disables caching (every Get misses, Put is a no-op).
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts or refreshes a key, evicting the least recently used
// entry when the cache is over capacity.
func (c *LRU[V]) Put(key string, v V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = v
		return
	}
	c.byKey[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry[V]).key)
	}
}

// Stats reports the cache's hit/miss counters and current size.
func (c *LRU[V]) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Cap returns the cache's configured capacity (≤ 0 means disabled).
func (c *LRU[V]) Cap() int { return c.cap }
