package search

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewPoolSerialIsNil(t *testing.T) {
	for _, p := range []int{-1, 0, 1} {
		if NewPool(p) != nil {
			t.Errorf("NewPool(%d) should be the nil serial pool", p)
		}
	}
	if NewPool(4) == nil {
		t.Error("NewPool(4) should be parallel")
	}
	if (*Pool)(nil).Parallel() {
		t.Error("nil pool reports Parallel")
	}
	if !NewPool(2).Parallel() {
		t.Error("2-way pool does not report Parallel")
	}
}

func TestMapRunsEveryJobOnce(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		p := NewPool(par)
		const n = 100
		counts := make([]int32, n)
		if err := p.Map(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("par %d: job %d ran %d times", par, i, c)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad map[int]bool) func(i int) error {
		return func(i int) error {
			if bad[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		}
	}
	bad := map[int]bool{7: true, 3: true, 19: true}
	var serial, parallel error
	serial = (*Pool)(nil).Map(32, errAt(bad))
	for trial := 0; trial < 20; trial++ {
		parallel = NewPool(4).Map(32, errAt(bad))
		if parallel == nil || serial == nil || parallel.Error() != serial.Error() {
			t.Fatalf("error selection not deterministic: serial %v, parallel %v", serial, parallel)
		}
	}
	if serial.Error() != "job 3 failed" {
		t.Errorf("lowest-index error not returned: %v", serial)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const par = 3
	p := NewPool(par)
	var cur, peak int32
	var mu sync.Mutex
	err := p.Map(64, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > par {
		t.Errorf("observed %d concurrent jobs, pool allows %d", peak, par)
	}
}

// Nested Map calls on one shared pool must not deadlock: acquisition is
// non-blocking, so inner jobs run inline when the outer fan-out holds
// every token.
func TestMapNestedSharedPoolNoDeadlock(t *testing.T) {
	p := NewPool(2)
	var ran int32
	err := p.Map(8, func(i int) error {
		return p.Map(8, func(j int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 64 {
		t.Errorf("nested maps ran %d inner jobs, want 64", ran)
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU[int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (least recently used after the a touch)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	hits, misses, size := c.Stats()
	if hits != 2 || misses != 2 || size != 2 {
		t.Errorf("stats = %d hits, %d misses, %d entries", hits, misses, size)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("refreshed value = %d, want 10", v)
	}
	if _, _, size := c.Stats(); size != 1 {
		t.Errorf("size = %d after duplicate Put", size)
	}
}

func TestLRUZeroCapacityDisabled(t *testing.T) {
	c := NewLRU[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}
