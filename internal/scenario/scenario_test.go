package scenario

import (
	"math"
	"strings"
	"testing"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
)

// serialize renders a scenario's graph and library in their canonical
// text forms — the byte-identity witness the determinism tests compare.
func serialize(t *testing.T, s *Scenario) string {
	t.Helper()
	var tg, lib strings.Builder
	if err := s.Graph.Write(&tg); err != nil {
		t.Fatal(err)
	}
	if err := s.Lib.Write(&lib); err != nil {
		t.Fatal(err)
	}
	return tg.String() + "\n===\n" + lib.String()
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 42,
		Graph: GraphParams{
			Tasks: 40, CCR: 0.2, BranchDensity: 0.3,
		},
		Platform: PlatformParams{PEs: 6, MinSpeed: 0.6, MaxSpeed: 2.0},
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := serialize(t, a), serialize(t, b); sa != sb {
		t.Errorf("same spec generated different scenarios:\n%s\n---\n%s", sa, sb)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}

	// A different seed must change the workload.
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(t, a) == serialize(t, c) {
		t.Error("different seeds generated identical scenarios")
	}
	if a.Fingerprint == c.Fingerprint {
		t.Error("different seeds share a fingerprint")
	}
}

// Seed zero is a valid seed: it must be honored verbatim (deterministic
// and distinct from seed 1), never rewritten — the scenario-level
// counterpart of the CoSynthConfig.SeedSet regression tests.
func TestGenerateSeedZeroHonored(t *testing.T) {
	zero := Spec{Seed: 0, Graph: GraphParams{Tasks: 25}}
	a, err := Generate(zero)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(zero)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(t, a) != serialize(t, b) {
		t.Error("seed 0 is not deterministic")
	}
	one, err := Generate(Spec{Seed: 1, Graph: GraphParams{Tasks: 25}})
	if err != nil {
		t.Fatal(err)
	}
	if serialize(t, a) == serialize(t, one) {
		t.Error("seed 0 produced the same scenario as seed 1 (seed rewritten?)")
	}
}

func TestNormalizationInvariance(t *testing.T) {
	// A zero field and its explicit default are the same scenario.
	implicit := Spec{Seed: 7}
	explicit := Spec{
		Name: "scenario",
		Seed: 7,
		Graph: GraphParams{
			Shape: ShapeLayered, Tasks: 20, MaxFanOut: 4, MaxFanIn: 3,
			CCR: 0.1, Tightness: 1.6, Types: 8,
		},
		Platform: PlatformParams{
			PEs: 4, MinSpeed: 1, MaxSpeed: 1, MeanWork: 100, MeanPower: 6,
			Noise: 0.35, Layout: LayoutGrid,
		},
	}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Errorf("fingerprint differs between zero spec and explicit defaults")
	}
	a, err := Generate(implicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(t, a) != serialize(t, b) {
		t.Error("zero spec and explicit defaults generated different scenarios")
	}
}

// Every fingerprint-relevant field change must move the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Seed: 3}
	variants := map[string]Spec{
		"name":      {Name: "x", Seed: 3},
		"seed":      {Seed: 4},
		"shape":     {Seed: 3, Graph: GraphParams{Shape: ShapeSeriesParallel}},
		"tasks":     {Seed: 3, Graph: GraphParams{Tasks: 21}},
		"fanout":    {Seed: 3, Graph: GraphParams{MaxFanOut: 5}},
		"fanin":     {Seed: 3, Graph: GraphParams{MaxFanIn: 2}},
		"ccr":       {Seed: 3, Graph: GraphParams{CCR: 0.5}},
		"tightness": {Seed: 3, Graph: GraphParams{Tightness: 2}},
		"branch":    {Seed: 3, Graph: GraphParams{BranchDensity: 0.5}},
		"types":     {Seed: 3, Graph: GraphParams{Types: 4}},
		"pes":       {Seed: 3, Platform: PlatformParams{PEs: 8}},
		"minspeed":  {Seed: 3, Platform: PlatformParams{MinSpeed: 0.5}},
		"maxspeed":  {Seed: 3, Platform: PlatformParams{MaxSpeed: 2}},
		"work":      {Seed: 3, Platform: PlatformParams{MeanWork: 50}},
		"power":     {Seed: 3, Platform: PlatformParams{MeanPower: 3}},
		"noise":     {Seed: 3, Platform: PlatformParams{Noise: 0.1}},
		"layout":    {Seed: 3, Platform: PlatformParams{Layout: LayoutRow}},
	}
	fp := base.Fingerprint()
	for name, v := range variants {
		if v.Fingerprint() == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestLayeredShapeStructure(t *testing.T) {
	spec := Spec{
		Seed:  11,
		Graph: GraphParams{Tasks: 60, MaxFanOut: 3, MaxFanIn: 2},
	}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph
	if g.NumTasks() != 60 {
		t.Fatalf("got %d tasks, want 60", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	for id := 0; id < g.NumTasks(); id++ {
		if in := g.InDegree(id); in > 2 {
			t.Errorf("task %d has fan-in %d > MaxFanIn 2", id, in)
		}
	}
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Depth < 2 {
		t.Errorf("layered graph depth %d, want >= 2", sum.Depth)
	}
}

func TestSeriesParallelShapeStructure(t *testing.T) {
	spec := Spec{
		Seed:  13,
		Graph: GraphParams{Shape: ShapeSeriesParallel, Tasks: 50, MaxFanOut: 4},
	}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Errorf("series-parallel graph sources %v, want [0]", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != g.NumTasks()-1 {
		t.Errorf("series-parallel graph sinks %v, want [%d]", snk, g.NumTasks()-1)
	}
}

func TestCCRCalibration(t *testing.T) {
	for _, ccr := range []float64{0.05, 0.5, 2.0} {
		s, err := Generate(Spec{
			Seed:  17,
			Graph: GraphParams{Tasks: 120, CCR: ccr},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.Summarize()
		if err != nil {
			t.Fatal(err)
		}
		// The volume draw is uniform in [0.5, 1.5]×mean, so the sample
		// mean should land well within ±35% of the target at 100+ edges.
		if sum.CCR < 0.65*ccr || sum.CCR > 1.35*ccr {
			t.Errorf("target CCR %g realized as %g", ccr, sum.CCR)
		}
	}
}

func TestDeadlineTightnessMonotonic(t *testing.T) {
	deadline := func(tight float64) float64 {
		s, err := Generate(Spec{
			Seed:  19,
			Graph: GraphParams{Tasks: 40, Tightness: tight},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Graph.Deadline
	}
	loose, tight := deadline(2.5), deadline(1.1)
	if !(loose > tight) {
		t.Errorf("tightness 2.5 deadline %g not greater than tightness 1.1 deadline %g", loose, tight)
	}
	if ratio := loose / tight; math.Abs(ratio-2.5/1.1) > 0.05*ratio {
		t.Errorf("deadline ratio %g far from tightness ratio %g", ratio, 2.5/1.1)
	}
}

func TestBranchDensityMarksConditionals(t *testing.T) {
	s, err := Generate(Spec{
		Seed:  23,
		Graph: GraphParams{Tasks: 80, BranchDensity: 1, MaxFanOut: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.BranchNodes == 0 {
		t.Fatal("BranchDensity 1 marked no branch nodes")
	}
	// Every branch node's out-edge probabilities must sum to at most 1
	// (the floor-rounding rule) and nearly 1.
	g := s.Graph
	for id := 0; id < g.NumTasks(); id++ {
		succ := g.Successors(id)
		total, conditional := 0.0, false
		for _, e := range succ {
			if e.Prob > 0 && e.Prob < 1 {
				conditional = true
			}
			p := e.Prob
			if p == 0 {
				p = 1
			}
			total += p
		}
		if !conditional {
			continue
		}
		if total > 1 || total < 0.99 {
			t.Errorf("branch node %d probabilities sum to %g", id, total)
		}
	}
}

// A generated scenario must run end to end through the platform flow on
// its own heterogeneous platform, and a default-tightness deadline must
// be comfortably met.
func TestScenarioSchedulesOnGeneratedPlatform(t *testing.T) {
	s, err := Generate(Spec{
		Seed: 29,
		Graph: GraphParams{
			Tasks: 50, CCR: 0.2,
		},
		Platform: PlatformParams{PEs: 6, MinSpeed: 0.6, MaxSpeed: 2.0, Layout: LayoutGrid},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []sched.Policy{sched.MinTaskEnergy, sched.ThermalAware} {
		res, err := cosynth.RunPlatform(s.Graph, s.Lib, cosynth.PlatformConfig{
			Policy:   policy,
			Platform: &cosynth.PlatformDesc{TypeNames: s.PETypeNames, Layout: s.Layout},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !res.Metrics.Feasible {
			t.Errorf("%v: generated scenario missed its deadline (makespan %g, deadline %g)",
				policy, res.Metrics.Makespan, s.Graph.Deadline)
		}
		if res.Metrics.MaxTemp < 30 || res.Metrics.MaxTemp > 150 {
			t.Errorf("%v: implausible max temperature %g", policy, res.Metrics.MaxTemp)
		}
		if len(res.Arch.PEs) != 6 {
			t.Errorf("%v: architecture has %d PEs, want 6", policy, len(res.Arch.PEs))
		}
	}
}

// The CCR calibration assumes the flow layer's default bus rate; keep
// the duplicated constant pinned to the real one.
func TestBusRateMatchesCosynth(t *testing.T) {
	if defaultBusTimePerUnit != cosynth.DefaultBusTimePerUnit {
		t.Errorf("defaultBusTimePerUnit %g != cosynth.DefaultBusTimePerUnit %g",
			defaultBusTimePerUnit, cosynth.DefaultBusTimePerUnit)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Graph: GraphParams{Shape: "ring"}},
		{Graph: GraphParams{Tasks: -1}},
		{Graph: GraphParams{Tasks: MaxTasks + 1}},
		{Graph: GraphParams{CCR: -0.1}},
		{Graph: GraphParams{Tightness: -1}},
		{Graph: GraphParams{BranchDensity: 1.5}},
		{Platform: PlatformParams{PEs: MaxPEs + 1}},
		{Platform: PlatformParams{MinSpeed: 2, MaxSpeed: 1}},
		{Platform: PlatformParams{Noise: 1}},
		{Platform: PlatformParams{Layout: "torus"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}
