package scenario

import (
	"fmt"

	"thermalsched/internal/techlib"
)

// generatePlatform builds the scenario's technology library: one PE
// type per platform instance (so every instance carries its own
// WCET/WCPC jitter, like the paper's "four identical PEs"), with
// nominal speeds evenly spaced across [MinSpeed, MaxSpeed] plus a small
// seeded jitter. Cost grows as speed² and die area linearly with speed,
// so faster cores are more expensive and have higher power density —
// the trade-off space the thermal-aware scheduler navigates.
func generatePlatform(seed int64, taskTypes int, p PlatformParams) (*techlib.Library, []string, error) {
	rng := rngFor(seed ^ platformSeedSalt)
	specs := make([]techlib.PESpec, p.PEs)
	names := make([]string, p.PEs)
	for i := range specs {
		speed := p.MinSpeed
		if p.PEs > 1 {
			speed += (p.MaxSpeed - p.MinSpeed) * float64(i) / float64(p.PEs-1)
		} else {
			speed = (p.MinSpeed + p.MaxSpeed) / 2
		}
		if p.MaxSpeed > p.MinSpeed {
			// ±5% jitter keeps nominally equal-speed tiers from being
			// bit-identical, clamped inside the requested spread.
			speed *= 1 + 0.05*(2*rng.Float64()-1)
			if speed < p.MinSpeed {
				speed = p.MinSpeed
			}
			if speed > p.MaxSpeed {
				speed = p.MaxSpeed
			}
		}
		names[i] = fmt.Sprintf("gpe%d", i)
		specs[i] = techlib.PESpec{
			Name:     names[i],
			Speed:    speed,
			Cost:     80 * speed * speed,
			Area:     16e-6 * speed,
			Coverage: 1.0, // full coverage keeps every generated graph schedulable
		}
	}
	lib, err := techlib.Generate(techlib.GenParams{
		NumTaskTypes: taskTypes,
		MeanWork:     p.MeanWork,
		MeanPower:    p.MeanPower,
		Noise:        p.Noise,
		Seed:         seed ^ platformSeedSalt,
	}, specs)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: platform library: %w", err)
	}
	return lib, names, nil
}
