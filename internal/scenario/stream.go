package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"thermalsched/internal/techlib"
)

// ArrivalParams parameterizes the arrival process of a stream scenario:
// a set of strictly periodic sources plus an aperiodic Poisson process
// with optional bursts. Zero values mean the documented defaults.
type ArrivalParams struct {
	// Horizon is the arrival window in schedule time units: no job
	// arrives at or after it (default 600). Execution may run past the
	// horizon; only arrivals stop.
	Horizon float64 `json:"horizon,omitempty"`
	// Sources is the number of periodic sources (default 3). Each
	// source draws a period uniformly from [MinPeriod, MaxPeriod], a
	// phase uniformly from [0, period) and a fixed task type, then
	// releases one job per period with an implicit deadline (the next
	// release).
	Sources int `json:"sources,omitempty"`
	// MinPeriod and MaxPeriod bound the periodic sources' periods
	// (defaults 60 and 150 schedule time units).
	MinPeriod float64 `json:"minPeriod,omitempty"`
	MaxPeriod float64 `json:"maxPeriod,omitempty"`
	// Rate is the aperiodic Poisson arrival rate in bursts per schedule
	// time unit (default 0.05). Zero with Sources > 0 disables the
	// aperiodic stream entirely.
	Rate float64 `json:"rate,omitempty"`
	// BurstMean is the mean geometric burst size: every Poisson arrival
	// brings followers with probability 1-1/BurstMean each (default 1 —
	// no bursts). Followers land BurstGap apart.
	BurstMean float64 `json:"burstMean,omitempty"`
	// BurstGap is the spacing between jobs of one burst (default 2).
	BurstGap float64 `json:"burstGap,omitempty"`
	// Laxity scales aperiodic deadlines: an aperiodic job's relative
	// deadline is Laxity × its type's mean WCET (default 4; smaller is
	// tighter).
	Laxity float64 `json:"laxity,omitempty"`
	// Types is the number of distinct task types jobs draw from
	// (default 8, the standard library's universe).
	Types int `json:"types,omitempty"`
}

// StreamSpec is the JSON-serializable description of one stream
// scenario: the arrival process plus the platform it runs on. Like
// Spec, it is pure data — the same normalized StreamSpec always
// generates the same workload, keyed by Fingerprint — and the seed
// contract is identical: Seed is used verbatim, zero included.
type StreamSpec struct {
	// Name names the generated workload (default "stream").
	Name string `json:"name,omitempty"`
	// Seed drives every random draw of the generation. It is used
	// verbatim: zero is a valid seed and is never rewritten.
	Seed     int64          `json:"seed"`
	Arrivals ArrivalParams  `json:"arrivals"`
	Platform PlatformParams `json:"platform"`
}

// StreamJob is one released job of a stream workload. Jobs are
// independent (no precedence): the online scheduling literature's
// aperiodic-task model, where each arrival is a complete unit of work
// with its own deadline.
type StreamJob struct {
	// ID indexes the job in arrival order (ties broken by generation
	// order: periodic sources first, then the aperiodic stream).
	ID int `json:"id"`
	// Source is the periodic source index, or -1 for aperiodic jobs.
	Source int `json:"source"`
	// Type is the technology-library task type.
	Type int `json:"type"`
	// Arrival and Deadline are absolute schedule times. The dispatcher
	// may not act on the job before Arrival; finishing after Deadline
	// is a deadline miss.
	Arrival  float64 `json:"arrival"`
	Deadline float64 `json:"deadline"`
}

// StreamWorkload is one generated stream scenario: the realized arrival
// trace plus the library and platform description the stream flow needs
// to instantiate it — the streaming counterpart of Scenario.
type StreamWorkload struct {
	// Spec is the normalized spec the workload was generated from.
	Spec StreamSpec
	// Fingerprint is Spec.Fingerprint(), precomputed.
	Fingerprint string
	// Jobs is the arrival trace, sorted by (Arrival, generation order)
	// with IDs assigned after the sort.
	Jobs []StreamJob
	// Periodic and Aperiodic count the jobs of each class.
	Periodic, Aperiodic int
	// Lib is the generated technology library (one PE type per platform
	// instance, full coverage).
	Lib *techlib.Library
	// PETypeNames lists the library type of each PE instance.
	PETypeNames []string
	// Layout is the floorplan arrangement (LayoutGrid or LayoutRow).
	Layout string
}

// Stream generation limits: like MaxTasks/MaxPEs these guard the
// service tier from a single spec monopolizing the process. Validate
// rejects specs whose *expected* job count exceeds MaxStreamJobs/2;
// generation additionally hard-truncates the (random-length) aperiodic
// stream at MaxStreamJobs, deterministically.
const (
	MaxStreamJobs    = 20000
	MaxStreamHorizon = 1e6
)

// arrivalSeedSalt decorrelates the arrival generator's seed stream from
// the platform generator's (which uses platformSeedSalt), so the same
// seed draws independent arrival and platform randomness.
const arrivalSeedSalt int64 = 0x6a09e667f3bcc908

// Normalized returns the stream spec with every defaulted field filled
// in. Fingerprints and generation both operate on the normalized form.
func (s StreamSpec) Normalized() StreamSpec {
	if s.Name == "" {
		s.Name = "stream"
	}
	a := &s.Arrivals
	if a.Horizon == 0 {
		a.Horizon = 600
	}
	if a.Sources == 0 {
		a.Sources = 3
	}
	if a.MinPeriod == 0 {
		a.MinPeriod = 60
	}
	if a.MaxPeriod == 0 {
		a.MaxPeriod = 150
	}
	if a.Rate == 0 {
		a.Rate = 0.05
	}
	if a.BurstMean == 0 {
		a.BurstMean = 1
	}
	if a.BurstGap == 0 {
		a.BurstGap = 2
	}
	if a.Laxity == 0 {
		a.Laxity = 4
	}
	if a.Types == 0 {
		a.Types = 8
	}
	p := &s.Platform
	if p.PEs == 0 {
		p.PEs = 4
	}
	if p.MinSpeed == 0 {
		p.MinSpeed = 1
	}
	if p.MaxSpeed == 0 {
		p.MaxSpeed = 1
	}
	// Stream defaults aim for moderate load (~0.6 utilization on the
	// default 4-PE platform): with the default arrival process, mean
	// work 30 leaves slack for the online policies to differentiate
	// instead of uniformly drowning in an overload.
	if p.MeanWork == 0 {
		p.MeanWork = 30
	}
	if p.MeanPower == 0 {
		p.MeanPower = 6
	}
	if p.Noise == 0 {
		p.Noise = 0.35
	}
	if p.Layout == "" {
		p.Layout = LayoutGrid
	}
	return s
}

// Validate reports the first problem that makes the normalized stream
// spec ungeneratable.
func (s StreamSpec) Validate() error {
	n := s.Normalized()
	a, p := n.Arrivals, n.Platform
	switch {
	case !(a.Horizon > 0) || a.Horizon > MaxStreamHorizon:
		return fmt.Errorf("scenario: stream horizon %g out of (0, %g]", a.Horizon, float64(MaxStreamHorizon))
	case a.Sources < 0:
		return fmt.Errorf("scenario: negative periodic source count %d", a.Sources)
	case !(a.MinPeriod > 0) || a.MaxPeriod < a.MinPeriod:
		return fmt.Errorf("scenario: stream period range [%g, %g] invalid", a.MinPeriod, a.MaxPeriod)
	case a.Rate < 0:
		return fmt.Errorf("scenario: negative aperiodic rate %g", a.Rate)
	case a.Sources == 0 && a.Rate == 0:
		return fmt.Errorf("scenario: stream spec has no arrival process (zero sources and zero rate)")
	case a.BurstMean < 1:
		return fmt.Errorf("scenario: burst mean %g must be at least 1", a.BurstMean)
	case !(a.BurstGap > 0):
		return fmt.Errorf("scenario: burst gap %g must be positive", a.BurstGap)
	case !(a.Laxity > 0):
		return fmt.Errorf("scenario: laxity %g must be positive", a.Laxity)
	case a.Types < 1:
		return fmt.Errorf("scenario: stream task types %d must be at least 1", a.Types)
	}
	expected := float64(a.Sources)*(a.Horizon/a.MinPeriod+1) + a.Rate*a.Horizon*a.BurstMean
	if expected > MaxStreamJobs/2 {
		return fmt.Errorf("scenario: stream spec expects ~%.0f jobs, over the %d cap", expected, MaxStreamJobs/2)
	}
	switch {
	case p.PEs < 1 || p.PEs > MaxPEs:
		return fmt.Errorf("scenario: PEs %d out of [1, %d]", p.PEs, MaxPEs)
	case !(p.MinSpeed > 0) || p.MaxSpeed < p.MinSpeed:
		return fmt.Errorf("scenario: speed spread [%g, %g] invalid", p.MinSpeed, p.MaxSpeed)
	case !(p.MeanWork > 0) || !(p.MeanPower > 0):
		return fmt.Errorf("scenario: mean work/power must be positive (%g, %g)", p.MeanWork, p.MeanPower)
	case p.Noise < 0 || p.Noise >= 1:
		return fmt.Errorf("scenario: noise %g out of [0, 1)", p.Noise)
	}
	switch p.Layout {
	case LayoutGrid, LayoutRow:
	default:
		return fmt.Errorf("scenario: unknown layout %q (want %s or %s)", p.Layout, LayoutGrid, LayoutRow)
	}
	return nil
}

// Fingerprint returns a stable hex digest of the normalized stream
// spec, serialized field by field like Spec.Fingerprint. The thermalvet
// fpfields analyzer checks the registrations below statically.
//
//thermalvet:serializes StreamSpec
//thermalvet:serializes ArrivalParams
func (s StreamSpec) Fingerprint() string {
	n := s.Normalized()
	h := fnv.New64a()
	fmt.Fprintf(h, "stream/v1|%s|%d|", n.Name, n.Seed)
	a := n.Arrivals
	fmt.Fprintf(h, "%g|%d|%g|%g|%g|%g|%g|%g|%d|", a.Horizon, a.Sources, a.MinPeriod,
		a.MaxPeriod, a.Rate, a.BurstMean, a.BurstGap, a.Laxity, a.Types)
	p := n.Platform
	fmt.Fprintf(h, "%d|%g|%g|%g|%g|%g|%s", p.PEs, p.MinSpeed, p.MaxSpeed,
		p.MeanWork, p.MeanPower, p.Noise, p.Layout)
	return fmt.Sprintf("%016x", h.Sum64())
}

// GenerateStream builds the stream workload described by the spec. The
// same spec (after normalization) always returns an identical workload:
// the arrival trace, library and platform are all drawn from the spec's
// seed, verbatim.
func GenerateStream(spec StreamSpec) (*StreamWorkload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Normalized()
	lib, typeNames, err := generatePlatform(n.Seed, n.Arrivals.Types, n.Platform)
	if err != nil {
		return nil, err
	}
	a := n.Arrivals
	rng := rngFor(n.Seed ^ arrivalSeedSalt)

	var jobs []StreamJob
	periodic := 0
	// Periodic sources: one fixed task type each, implicit deadlines.
	for src := 0; src < a.Sources; src++ {
		period := a.MinPeriod + rng.Float64()*(a.MaxPeriod-a.MinPeriod)
		phase := rng.Float64() * period
		typ := rng.Intn(a.Types)
		for t := phase; t < a.Horizon; t += period {
			jobs = append(jobs, StreamJob{Source: src, Type: typ, Arrival: t, Deadline: t + period})
			periodic++
		}
	}
	// Aperiodic stream: Poisson burst arrivals, geometric burst sizes,
	// laxity-scaled deadlines. Draws happen in a fixed order (gap, then
	// per-job type, then the burst-continuation coin) so the trace is a
	// pure function of the seed.
	if a.Rate > 0 {
		cont := 0.0
		if a.BurstMean > 1 {
			cont = 1 - 1/a.BurstMean
		}
		t := 0.0
		for len(jobs) < MaxStreamJobs {
			t += rng.ExpFloat64() / a.Rate
			if t >= a.Horizon {
				break
			}
			for k := 0; len(jobs) < MaxStreamJobs; k++ {
				at := t + float64(k)*a.BurstGap
				if at >= a.Horizon {
					break
				}
				typ := rng.Intn(a.Types)
				mean, err := lib.MeanWCET(typ)
				if err != nil {
					return nil, fmt.Errorf("scenario: stream deadline: %w", err)
				}
				jobs = append(jobs, StreamJob{Source: -1, Type: typ, Arrival: at, Deadline: at + a.Laxity*mean})
				if cont == 0 || rng.Float64() >= cont {
					break
				}
			}
		}
	}

	// Arrival order with generation order as the (stable) tie-break,
	// then IDs in final order: downstream consumers can treat job ID as
	// the canonical deterministic ordering.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	for i := range jobs {
		jobs[i].ID = i
		// Guard against float drift producing a deadline before the
		// arrival (cannot happen with the validated parameter ranges,
		// but a malformed deadline would poison miss accounting).
		if jobs[i].Deadline < jobs[i].Arrival {
			jobs[i].Deadline = jobs[i].Arrival
		}
	}
	if math.IsNaN(a.Horizon) || len(jobs) == 0 {
		return nil, fmt.Errorf("scenario: stream spec generated no jobs over horizon %g", a.Horizon)
	}
	return &StreamWorkload{
		Spec:        n,
		Fingerprint: spec.Fingerprint(),
		Jobs:        jobs,
		Periodic:    periodic,
		Aperiodic:   len(jobs) - periodic,
		Lib:         lib,
		PETypeNames: typeNames,
		Layout:      n.Platform.Layout,
	}, nil
}
