package scenario

import (
	"strings"
	"testing"
)

// The generator contract: the same spec always yields the identical
// workload — trace, fingerprint, library and platform included.
func TestGenerateStreamDeterministic(t *testing.T) {
	spec := StreamSpec{Seed: 11, Arrivals: ArrivalParams{Rate: 0.07, BurstMean: 2}}
	a, err := GenerateStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("fingerprints differ across generations")
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across generations", i)
		}
	}
	if len(a.PETypeNames) != len(b.PETypeNames) {
		t.Fatal("platforms differ across generations")
	}
	for i := range a.PETypeNames {
		if a.PETypeNames[i] != b.PETypeNames[i] {
			t.Fatalf("PE %d type differs across generations", i)
		}
	}
}

// Structural invariants the dispatcher relies on: arrivals sorted,
// IDs dense in arrival order, deadlines never before arrivals, class
// counts consistent, and every job runnable somewhere in the library.
func TestGenerateStreamTraceInvariants(t *testing.T) {
	wl, err := GenerateStream(StreamSpec{Seed: 4, Arrivals: ArrivalParams{BurstMean: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	if wl.Periodic+wl.Aperiodic != len(wl.Jobs) {
		t.Errorf("class counts %d+%d do not sum to %d jobs", wl.Periodic, wl.Aperiodic, len(wl.Jobs))
	}
	if wl.Periodic == 0 || wl.Aperiodic == 0 {
		t.Errorf("degenerate mix: %d periodic, %d aperiodic", wl.Periodic, wl.Aperiodic)
	}
	horizon := wl.Spec.Arrivals.Horizon
	for i, j := range wl.Jobs {
		if j.ID != i {
			t.Fatalf("job at index %d carries ID %d", i, j.ID)
		}
		if i > 0 && j.Arrival < wl.Jobs[i-1].Arrival {
			t.Fatalf("job %d arrives before its predecessor", i)
		}
		if j.Arrival < 0 || j.Arrival >= horizon {
			t.Errorf("job %d arrival %g outside [0, %g)", i, j.Arrival, horizon)
		}
		if j.Deadline < j.Arrival {
			t.Errorf("job %d deadline %g before arrival %g", i, j.Deadline, j.Arrival)
		}
		if j.Type < 0 || j.Type >= wl.Spec.Arrivals.Types {
			t.Errorf("job %d type %d outside the %d-type universe", i, j.Type, wl.Spec.Arrivals.Types)
		}
		if _, err := wl.Lib.MeanWCET(j.Type); err != nil {
			t.Errorf("job %d type %d not covered by the library: %v", i, j.Type, err)
		}
	}
	if len(wl.PETypeNames) != wl.Spec.Platform.PEs {
		t.Errorf("%d PE type names for a %d-PE platform", len(wl.PETypeNames), wl.Spec.Platform.PEs)
	}
}

// Seeds are verbatim: zero is an ordinary seed, distinct from one.
func TestGenerateStreamSeedZeroHonored(t *testing.T) {
	zero, err := GenerateStream(StreamSpec{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	one, err := GenerateStream(StreamSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Fingerprint == one.Fingerprint {
		t.Error("seeds 0 and 1 share a fingerprint")
	}
	same := len(zero.Jobs) == len(one.Jobs)
	if same {
		for i := range zero.Jobs {
			if zero.Jobs[i] != one.Jobs[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 0 and 1 generated identical traces; zero was rewritten")
	}
}

// Validate rejects each malformed parameter with a message naming it.
func TestStreamSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec StreamSpec
		want string
	}{
		{"horizon", StreamSpec{Arrivals: ArrivalParams{Horizon: -5}}, "horizon"},
		{"sources", StreamSpec{Arrivals: ArrivalParams{Sources: -1}}, "source count"},
		{"periods", StreamSpec{Arrivals: ArrivalParams{MinPeriod: 100, MaxPeriod: 50}}, "period range"},
		{"rate", StreamSpec{Arrivals: ArrivalParams{Rate: -0.1}}, "rate"},
		{"burst mean", StreamSpec{Arrivals: ArrivalParams{BurstMean: 0.5}}, "burst mean"},
		{"burst gap", StreamSpec{Arrivals: ArrivalParams{BurstGap: -1}}, "burst gap"},
		{"laxity", StreamSpec{Arrivals: ArrivalParams{Laxity: -2}}, "laxity"},
		{"types", StreamSpec{Arrivals: ArrivalParams{Types: -3}}, "task types"},
		{"job cap", StreamSpec{Arrivals: ArrivalParams{Horizon: 900000, Rate: 1}}, "cap"},
		{"pes", StreamSpec{Platform: PlatformParams{PEs: -2}}, "PEs"},
		{"speeds", StreamSpec{Platform: PlatformParams{MinSpeed: 2, MaxSpeed: 1}}, "speed spread"},
		{"noise", StreamSpec{Platform: PlatformParams{Noise: 1.5}}, "noise"},
		{"layout", StreamSpec{Platform: PlatformParams{Layout: "spiral"}}, "layout"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := (StreamSpec{}).Validate(); err != nil {
		t.Errorf("zero spec (all defaults) rejected: %v", err)
	}
}

// Every defaulted field must land in the normalized form, and
// normalization must be idempotent (fingerprints depend on it).
func TestStreamSpecNormalizedIdempotent(t *testing.T) {
	n := (StreamSpec{}).Normalized()
	if n.Name == "" || n.Arrivals.Horizon == 0 || n.Arrivals.Sources == 0 ||
		n.Arrivals.MinPeriod == 0 || n.Arrivals.MaxPeriod == 0 || n.Arrivals.Rate == 0 ||
		n.Arrivals.BurstMean == 0 || n.Arrivals.BurstGap == 0 || n.Arrivals.Laxity == 0 ||
		n.Arrivals.Types == 0 || n.Platform.PEs == 0 || n.Platform.MinSpeed == 0 ||
		n.Platform.MaxSpeed == 0 || n.Platform.MeanWork == 0 || n.Platform.MeanPower == 0 ||
		n.Platform.Noise == 0 || n.Platform.Layout == "" {
		t.Fatalf("normalization left a zero field: %+v", n)
	}
	if n != n.Normalized() {
		t.Error("Normalized is not idempotent")
	}
	if n.Fingerprint() != (StreamSpec{}).Fingerprint() {
		t.Error("normalization moved the fingerprint")
	}
}
