package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// defaultBusTimePerUnit mirrors cosynth.DefaultBusTimePerUnit: the bus
// rate the CCR calibration assumes. Duplicated here (and pinned by a
// test against the cosynth constant) so the generator does not depend
// on the flow layer.
const defaultBusTimePerUnit = 0.05

// edge is a graph edge under construction, before it is committed to a
// taskgraph.Graph.
type edge struct {
	from, to int
	data     float64
	prob     float64
}

// generateGraph builds the scenario's task graph: structure per the
// requested shape, communication volumes calibrated to the CCR target,
// conditional branches per BranchDensity, and a deadline derived from
// the platform-aware schedule-length lower bound times Tightness.
func generateGraph(spec Spec, lib *techlib.Library) (*taskgraph.Graph, error) {
	g := spec.Graph
	rng := rngFor(spec.Seed)

	var edges []edge
	var err error
	switch g.Shape {
	case ShapeLayered:
		edges, err = layeredEdges(g, rng)
	case ShapeSeriesParallel:
		edges, err = seriesParallelEdges(g, rng)
	default: // unreachable after Validate
		err = fmt.Errorf("scenario: unknown shape %q", g.Shape)
	}
	if err != nil {
		return nil, err
	}

	types := make([]int, g.Tasks)
	for i := range types {
		types[i] = rng.Intn(g.Types)
	}

	// CCR calibration: mean transfer time = CCR × mean execution time,
	// so mean data volume = CCR × meanWCET / busRate. Volumes are drawn
	// uniformly in [0.5, 1.5] × mean (floor 1, the .tg format's minimum
	// meaningful volume).
	meanWCET := meanLibraryWCET(lib, types)
	meanData := g.CCR * meanWCET / defaultBusTimePerUnit
	for i := range edges {
		d := meanData * (0.5 + rng.Float64())
		if d < 1 {
			d = 1
		}
		edges[i].data = math.Round(d)
	}

	if g.BranchDensity > 0 {
		markBranchEdges(edges, g.Tasks, g.BranchDensity, rng)
	}

	// Deadline: Tightness × max(critical path, work bound). Built on a
	// throwaway graph first because the critical path needs the final
	// structure and volumes.
	tg := taskgraph.NewGraph(spec.Name, 1) // placeholder deadline, fixed below
	for i := 0; i < g.Tasks; i++ {
		if err := tg.AddTask(taskgraph.Task{ID: i, Name: fmt.Sprintf("t%d", i), Type: types[i]}); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := tg.AddEdge(taskgraph.Edge{From: e.from, To: e.to, Data: e.data, Prob: e.prob}); err != nil {
			return nil, err
		}
	}
	lb, err := lowerBound(tg, lib, spec.Platform.PEs)
	if err != nil {
		return nil, err
	}
	tg.Deadline = math.Round(g.Tightness * lb)
	if err := tg.Validate(); err != nil {
		return nil, err
	}
	return tg, nil
}

// meanLibraryWCET is the average mean-WCET over the tasks' realized
// type mix — the computation scale the CCR target is measured against.
func meanLibraryWCET(lib *techlib.Library, types []int) float64 {
	var sum float64
	n := 0
	for _, t := range types {
		if w, err := lib.MeanWCET(t); err == nil {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// lowerBound estimates the schedule length floor: the critical path
// (mean WCETs plus bus transfer times) or the aggregate work spread
// over the platform's PEs, whichever is larger.
func lowerBound(g *taskgraph.Graph, lib *techlib.Library, pes int) (float64, error) {
	weight := func(t taskgraph.Task) float64 {
		w, err := lib.MeanWCET(t.Type)
		if err != nil {
			return 0
		}
		return w
	}
	cp, err := g.CriticalPathLength(weight, func(e taskgraph.Edge) float64 {
		return e.Data * defaultBusTimePerUnit
	})
	if err != nil {
		return 0, err
	}
	var work float64
	for _, t := range g.Tasks() {
		work += weight(t)
	}
	if bound := work / float64(pes); bound > cp {
		return bound, nil
	}
	return cp, nil
}

// layeredEdges builds the layered (TGFF-style) structure: tasks are
// binned into ranks, every non-source task draws 1..MaxFanIn parents
// from earlier ranks (biased to the previous one), and parents are
// chosen under the MaxFanOut cap while any candidate has headroom.
func layeredEdges(g GraphParams, rng *rand.Rand) ([]edge, error) {
	n := g.Tasks
	if n == 1 {
		return nil, nil
	}
	// Rank count ~ sqrt(n): deep enough for real precedence, wide
	// enough for parallelism. At least 2 ranks so an edge exists.
	layers := int(math.Round(math.Sqrt(float64(n))))
	if layers < 2 {
		layers = 2
	}
	if layers > n {
		layers = n
	}
	// Sizes: one task per rank guaranteed, the rest distributed
	// uniformly.
	sizes := make([]int, layers)
	for i := range sizes {
		sizes[i] = 1
	}
	for extra := n - layers; extra > 0; extra-- {
		sizes[rng.Intn(layers)]++
	}
	// Task IDs in rank order, so every edge runs from a lower ID to a
	// higher one (acyclic by construction).
	start := make([]int, layers+1)
	for i, s := range sizes {
		start[i+1] = start[i] + s
	}

	outDeg := make([]int, n)
	var edges []edge
	pick := func(lo, hi int) int { // a parent in [lo, hi) under the fan-out cap
		// Prefer candidates with fan-out headroom; fall back to any
		// candidate (the caps are targets, not hard guarantees, when a
		// rank is too small to satisfy them).
		for attempt := 0; attempt < 4*(hi-lo); attempt++ {
			p := lo + rng.Intn(hi-lo)
			if outDeg[p] < g.MaxFanOut {
				return p
			}
		}
		return lo + rng.Intn(hi-lo)
	}
	hasEdge := make(map[[2]int]bool)
	add := func(from, to int) {
		key := [2]int{from, to}
		if hasEdge[key] {
			return
		}
		hasEdge[key] = true
		outDeg[from]++
		edges = append(edges, edge{from: from, to: to})
	}
	for l := 1; l < layers; l++ {
		for id := start[l]; id < start[l+1]; id++ {
			fanIn := 1 + rng.Intn(g.MaxFanIn)
			for k := 0; k < fanIn; k++ {
				lo, hi := start[l-1], start[l]
				if k > 0 && l > 1 && rng.Float64() < 0.2 {
					// Occasional deeper edge, TGFF-style skip-level
					// dependency.
					deep := rng.Intn(l - 1)
					lo, hi = start[deep], start[deep+1]
				}
				add(pick(lo, hi), id)
			}
		}
	}
	return edges, nil
}

// seriesParallelEdges builds a recursive series-parallel graph over the
// contiguous ID range [0, n): every sub-range has a unique source (its
// lowest ID) and unique sink (its highest), composed either in series
// or as a fork-join with up to MaxFanOut parallel branches.
func seriesParallelEdges(g GraphParams, rng *rand.Rand) ([]edge, error) {
	var edges []edge
	add := func(from, to int) { edges = append(edges, edge{from: from, to: to}) }
	var build func(lo, hi int)
	build = func(lo, hi int) {
		n := hi - lo + 1
		if n <= 3 {
			for i := lo; i < hi; i++ {
				add(i, i+1)
			}
			return
		}
		if g.MaxFanOut < 2 || rng.Float64() < 0.4 {
			// Series: [lo, mid] then [mid+1, hi], joined by one edge.
			mid := lo + 1 + rng.Intn(n-2)
			build(lo, mid)
			build(mid+1, hi)
			add(mid, mid+1)
			return
		}
		// Parallel: lo forks into k branches over the interior IDs,
		// all joining at hi.
		interior := n - 2
		k := 2 + rng.Intn(g.MaxFanOut-1)
		if k > interior {
			k = interior
		}
		// Split the interior into k contiguous segments.
		cut := lo + 1
		for b := 0; b < k; b++ {
			remaining := hi - cut // interior IDs left, exclusive of hi
			segLen := remaining - (k - 1 - b)
			if b < k-1 && segLen > 1 {
				segLen = 1 + rng.Intn(segLen)
			}
			segHi := cut + segLen - 1
			build(cut, segHi)
			add(lo, cut)
			add(segHi, hi)
			cut = segHi + 1
		}
	}
	if g.Tasks > 1 {
		build(0, g.Tasks-1)
	}
	return edges, nil
}

// markBranchEdges converts a fraction of the multi-successor tasks into
// conditional branch nodes: their out-edges get probabilities drawn
// from a Dirichlet-like split summing to 1 (each branch at least 5%),
// rounded down so float noise cannot push the sum past 1 — the same
// rule the sweep generator's markBranches applies.
func markBranchEdges(edges []edge, tasks int, density float64, rng *rand.Rand) {
	succ := make([][]int, tasks) // edge indices per source task
	for i, e := range edges {
		succ[e.from] = append(succ[e.from], i)
	}
	for id := 0; id < tasks; id++ {
		out := succ[id]
		if len(out) < 2 || rng.Float64() >= density {
			continue
		}
		weights := make([]float64, len(out))
		var sum float64
		for i := range weights {
			weights[i] = 0.05 + rng.Float64()
			sum += weights[i]
		}
		for i, ei := range out {
			edges[ei].prob = math.Floor(weights[i]/sum*1e6) / 1e6
		}
	}
}
