// Package scenario is the synthetic-workload subsystem: deterministic,
// seeded generators for random DAG task graphs (layered and
// series-parallel shapes with parameterized fan-in/out, communication-
// to-computation ratio, deadline tightness and conditional-branch
// density) and heterogeneous platforms (PE count, speed/power spread,
// row or grid floorplan), emitting exactly the structs the repository's
// parsers produce (taskgraph.Graph, techlib.Library). Every scenario
// carries a stable Fingerprint so caches and golden tests can key on
// generated inputs the same way they key on the paper benchmarks.
//
// The seed contract is strict: a Spec's Seed is used verbatim — zero is
// an ordinary seed, never rewritten — and the same normalized Spec
// always generates byte-identical graph and library serializations.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Shapes accepted by GraphParams.Shape.
const (
	// ShapeLayered builds the graph layer by layer: tasks are binned
	// into ranks and draw parents from earlier ranks under the fan-in/
	// fan-out caps (the TGFF-style default).
	ShapeLayered = "layered"
	// ShapeSeriesParallel builds a recursive series-parallel graph with
	// a single source and sink — fork/join parallel sections composed in
	// series, the classic structured-workload family.
	ShapeSeriesParallel = "series-parallel"
)

// Layouts accepted by PlatformParams.Layout.
const (
	// LayoutGrid places the PEs in a near-square grid (the default for
	// generated platforms; scales past the paper's 4-PE row).
	LayoutGrid = "grid"
	// LayoutRow places the PEs in a single row, the paper platform's
	// worst-case lateral-coupling arrangement.
	LayoutRow = "row"
)

// GraphParams parameterizes the task-graph half of a scenario. Zero
// values mean the documented defaults (an explicit zero is meaningful
// only for BranchDensity, whose zero really does mean "unconditional").
type GraphParams struct {
	// Shape is ShapeLayered (default) or ShapeSeriesParallel.
	Shape string `json:"shape,omitempty"`
	// Tasks is the node count (default 20).
	Tasks int `json:"tasks,omitempty"`
	// MaxFanOut caps a task's successor count (default 4).
	MaxFanOut int `json:"maxFanOut,omitempty"`
	// MaxFanIn caps a task's predecessor count (default 3; layered
	// shape only — series-parallel joins have structural fan-in).
	MaxFanIn int `json:"maxFanIn,omitempty"`
	// CCR is the target communication-to-computation ratio: mean edge
	// transfer time over mean task execution time at the default bus
	// rate (default 0.1, matching the paper benchmarks' light traffic).
	CCR float64 `json:"ccr,omitempty"`
	// Tightness scales the deadline: deadline = Tightness × LB where LB
	// is the schedule-length lower bound (critical path vs. total work
	// over the platform's aggregate speed, whichever is larger).
	// Default 1.6; smaller is tighter.
	Tightness float64 `json:"tightness,omitempty"`
	// BranchDensity is the fraction of multi-successor tasks converted
	// into conditional branch nodes whose out-edges carry mutually
	// exclusive probabilities summing to 1 (default 0).
	BranchDensity float64 `json:"branchDensity,omitempty"`
	// Types is the number of distinct task types (default 8, the
	// standard library's universe).
	Types int `json:"types,omitempty"`
}

// PlatformParams parameterizes the platform half of a scenario: the
// generated technology library and floorplan arrangement.
type PlatformParams struct {
	// PEs is the processing-element count (default 4, the paper's
	// platform size).
	PEs int `json:"pes,omitempty"`
	// MinSpeed and MaxSpeed bound the relative-speed spread: PE i's
	// nominal speed is evenly spaced in [MinSpeed, MaxSpeed] with a
	// small seeded jitter. Power grows as speed² (the library
	// generator's voltage-scaling rule), so the spread is also a power
	// spread. Defaults 1.0/1.0 — a homogeneous platform.
	MinSpeed float64 `json:"minSpeed,omitempty"`
	MaxSpeed float64 `json:"maxSpeed,omitempty"`
	// MeanWork and MeanPower calibrate the library (defaults 100 time
	// units and 6 W on a speed-1 PE, the standard library's scale).
	MeanWork  float64 `json:"meanWork,omitempty"`
	MeanPower float64 `json:"meanPower,omitempty"`
	// Noise is the per-(task, PE) WCET/WCPC jitter (default 0.35).
	Noise float64 `json:"noise,omitempty"`
	// Layout is LayoutGrid (default) or LayoutRow.
	Layout string `json:"layout,omitempty"`
}

// Spec is the JSON-serializable description of one synthetic scenario.
// Specs are pure data: the same normalized Spec always generates the
// same scenario, keyed by Fingerprint.
type Spec struct {
	// Name names the generated graph (default "scenario").
	Name string `json:"name,omitempty"`
	// Seed drives every random draw of the generation. It is used
	// verbatim: zero is a valid seed and is never rewritten.
	Seed     int64          `json:"seed"`
	Graph    GraphParams    `json:"graph"`
	Platform PlatformParams `json:"platform"`
}

// Generation limits: a Spec arrives over the wire (the service's
// generate/campaign flows), so sizes are capped to keep one request
// from monopolizing the process.
const (
	MaxTasks = 5000
	MaxPEs   = 64
)

// Normalized returns the spec with every defaulted field filled in.
// Fingerprints and generation both operate on the normalized form, so
// a zero field and its explicit default are the same scenario.
func (s Spec) Normalized() Spec {
	if s.Name == "" {
		s.Name = "scenario"
	}
	g := &s.Graph
	if g.Shape == "" {
		g.Shape = ShapeLayered
	}
	if g.Tasks == 0 {
		g.Tasks = 20
	}
	if g.MaxFanOut == 0 {
		g.MaxFanOut = 4
	}
	if g.MaxFanIn == 0 {
		g.MaxFanIn = 3
	}
	if g.CCR == 0 {
		g.CCR = 0.1
	}
	if g.Tightness == 0 {
		g.Tightness = 1.6
	}
	if g.Types == 0 {
		g.Types = 8
	}
	p := &s.Platform
	if p.PEs == 0 {
		p.PEs = 4
	}
	if p.MinSpeed == 0 {
		p.MinSpeed = 1
	}
	if p.MaxSpeed == 0 {
		p.MaxSpeed = 1
	}
	if p.MeanWork == 0 {
		p.MeanWork = 100
	}
	if p.MeanPower == 0 {
		p.MeanPower = 6
	}
	if p.Noise == 0 {
		p.Noise = 0.35
	}
	if p.Layout == "" {
		p.Layout = LayoutGrid
	}
	return s
}

// Validate reports the first problem that makes the normalized spec
// ungeneratable.
func (s Spec) Validate() error {
	n := s.Normalized()
	g, p := n.Graph, n.Platform
	switch g.Shape {
	case ShapeLayered, ShapeSeriesParallel:
	default:
		return fmt.Errorf("scenario: unknown graph shape %q (want %s or %s)",
			g.Shape, ShapeLayered, ShapeSeriesParallel)
	}
	switch {
	case g.Tasks < 1 || g.Tasks > MaxTasks:
		return fmt.Errorf("scenario: tasks %d out of [1, %d]", g.Tasks, MaxTasks)
	case g.MaxFanOut < 1:
		return fmt.Errorf("scenario: MaxFanOut %d must be at least 1", g.MaxFanOut)
	case g.MaxFanIn < 1:
		return fmt.Errorf("scenario: MaxFanIn %d must be at least 1", g.MaxFanIn)
	case g.CCR < 0:
		return fmt.Errorf("scenario: negative CCR %g", g.CCR)
	case !(g.Tightness > 0):
		return fmt.Errorf("scenario: tightness %g must be positive", g.Tightness)
	case g.BranchDensity < 0 || g.BranchDensity > 1:
		return fmt.Errorf("scenario: branch density %g out of [0, 1]", g.BranchDensity)
	case g.Types < 1:
		return fmt.Errorf("scenario: task types %d must be at least 1", g.Types)
	}
	switch {
	case p.PEs < 1 || p.PEs > MaxPEs:
		return fmt.Errorf("scenario: PEs %d out of [1, %d]", p.PEs, MaxPEs)
	case !(p.MinSpeed > 0) || p.MaxSpeed < p.MinSpeed:
		return fmt.Errorf("scenario: speed spread [%g, %g] invalid", p.MinSpeed, p.MaxSpeed)
	case !(p.MeanWork > 0) || !(p.MeanPower > 0):
		return fmt.Errorf("scenario: mean work/power must be positive (%g, %g)", p.MeanWork, p.MeanPower)
	case p.Noise < 0 || p.Noise >= 1:
		return fmt.Errorf("scenario: noise %g out of [0, 1)", p.Noise)
	}
	switch p.Layout {
	case LayoutGrid, LayoutRow:
	default:
		return fmt.Errorf("scenario: unknown layout %q (want %s or %s)", p.Layout, LayoutGrid, LayoutRow)
	}
	return nil
}

// Fingerprint returns a stable hex digest of the normalized spec. Two
// specs with equal fingerprints generate identical scenarios, so model
// caches, scenario caches and golden tests can key on it. Fields are
// serialized explicitly, field by field, for the same reason the
// Engine's modelKey is: a reflective dump would silently destabilize
// the key if the Spec ever gained pointer fields. The thermalvet
// fpfields analyzer checks the registrations below statically: a
// field missing from this serialization fails the lint job by name.
//
//thermalvet:serializes Spec
//thermalvet:serializes GraphParams
//thermalvet:serializes PlatformParams
func (s Spec) Fingerprint() string {
	n := s.Normalized()
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|%s|%d|", n.Name, n.Seed)
	g := n.Graph
	fmt.Fprintf(h, "%s|%d|%d|%d|%g|%g|%g|%d|", g.Shape, g.Tasks, g.MaxFanOut, g.MaxFanIn,
		g.CCR, g.Tightness, g.BranchDensity, g.Types)
	p := n.Platform
	fmt.Fprintf(h, "%d|%g|%g|%g|%g|%g|%s", p.PEs, p.MinSpeed, p.MaxSpeed,
		p.MeanWork, p.MeanPower, p.Noise, p.Layout)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Scenario is one generated workload: the task graph, the technology
// library backing the generated platform, and the platform description
// the platform flow needs to instantiate it. The structs are exactly
// what the .tg/.lib parsers produce, so a serialized scenario can be
// fed back through every existing input path.
type Scenario struct {
	// Spec is the normalized spec the scenario was generated from.
	Spec Spec
	// Fingerprint is Spec.Fingerprint(), precomputed.
	Fingerprint string
	// Graph is the generated task graph.
	Graph *taskgraph.Graph
	// Lib is the generated technology library: one PE type per platform
	// instance (per-instance WCET/WCPC jitter, like the paper platform).
	Lib *techlib.Library
	// PETypeNames lists the library type of each PE instance in
	// platform order.
	PETypeNames []string
	// Layout is the floorplan arrangement (LayoutGrid or LayoutRow).
	Layout string
}

// platformSeedSalt decorrelates the platform generator's seed stream
// from the graph generator's, so two scenarios differing only in seed
// get independent graph and platform draws.
const platformSeedSalt int64 = 0x5851f42d4c957f2d

// Generate builds the scenario described by the spec. The same spec
// (after normalization) always returns an identical scenario.
func Generate(spec Spec) (*Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Normalized()
	lib, typeNames, err := generatePlatform(n.Seed, n.Graph.Types, n.Platform)
	if err != nil {
		return nil, err
	}
	g, err := generateGraph(n, lib)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Spec:        n,
		Fingerprint: spec.Fingerprint(),
		Graph:       g,
		Lib:         lib,
		PETypeNames: typeNames,
		Layout:      n.Platform.Layout,
	}, nil
}

// Summary reports the realized properties of a generated scenario —
// the numbers a TGFF-style reporting line carries plus the realized
// CCR the generator calibrated for.
type Summary struct {
	Tasks       int     `json:"tasks"`
	Edges       int     `json:"edges"`
	Depth       int     `json:"depth"`
	Sources     int     `json:"sources"`
	Sinks       int     `json:"sinks"`
	BranchNodes int     `json:"branchNodes"`
	Deadline    float64 `json:"deadline"`
	CCR         float64 `json:"ccr"`
	PEs         int     `json:"pes"`
	TaskTypes   int     `json:"taskTypes"`
	Layout      string  `json:"layout"`
}

// Summarize computes the scenario's summary statistics.
func (s *Scenario) Summarize() (Summary, error) {
	lv, err := s.Graph.Levels()
	if err != nil {
		return Summary{}, err
	}
	depth := 0
	for _, l := range lv {
		if l > depth {
			depth = l
		}
	}
	sum := Summary{
		Tasks:     s.Graph.NumTasks(),
		Edges:     s.Graph.NumEdges(),
		Depth:     depth,
		Sources:   len(s.Graph.Sources()),
		Sinks:     len(s.Graph.Sinks()),
		Deadline:  s.Graph.Deadline,
		PEs:       len(s.PETypeNames),
		TaskTypes: s.Lib.NumTaskTypes(),
		Layout:    s.Layout,
	}
	// Branch nodes: tasks whose out-edges carry explicit probabilities.
	for id := 0; id < s.Graph.NumTasks(); id++ {
		for _, e := range s.Graph.Successors(id) {
			if e.Prob > 0 && e.Prob < 1 {
				sum.BranchNodes++
				break
			}
		}
	}
	sum.CCR = realizedCCR(s.Graph, s.Lib)
	return sum, nil
}

// realizedCCR is the generated graph's actual communication-to-
// computation ratio: mean edge transfer time over mean task execution
// time at the default bus rate.
func realizedCCR(g *taskgraph.Graph, lib *techlib.Library) float64 {
	var comp float64
	for _, t := range g.Tasks() {
		w, err := lib.MeanWCET(t.Type)
		if err != nil {
			return 0
		}
		comp += w
	}
	comp /= float64(g.NumTasks())
	if g.NumEdges() == 0 || comp == 0 {
		return 0
	}
	var comm float64
	for _, e := range g.Edges() {
		comm += e.Data * defaultBusTimePerUnit
	}
	comm /= float64(g.NumEdges())
	return comm / comp
}

// rngFor returns the deterministic random stream for one half of the
// generation.
func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
