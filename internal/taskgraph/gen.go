package taskgraph

import (
	"fmt"
	"math"
	"math/rand"
)

// GenParams parameterizes the TGFF-like random task-graph generator.
// The paper's benchmarks are identified only by task count, edge count
// and deadline ("Bm1/19/19/790"), the standard TGFF reporting style, so
// the generator targets exact task/edge counts under a fixed seed.
type GenParams struct {
	Name     string
	Tasks    int
	Edges    int     // must be in [Tasks - Sources, Tasks*(Tasks-1)/2]
	Deadline float64 // time units (the same units the technology library's WCETs use)
	Types    int     // number of distinct task types (≥1)
	Sources  int     // number of entry tasks (≥1)
	MaxData  float64 // communication volumes are uniform in [1, MaxData]
	// BranchFraction, when positive, makes the generated graph a
	// conditional task graph (Xie & Wolf style): this fraction of the
	// tasks with two or more successors become branch nodes whose
	// outgoing edges carry mutually exclusive probabilities summing
	// to 1. Zero keeps every edge unconditional.
	BranchFraction float64
	Seed           int64
}

// Validate reports the first inconsistent parameter.
func (p GenParams) Validate() error {
	switch {
	case p.Tasks < 1:
		return fmt.Errorf("taskgraph: generator needs at least one task, got %d", p.Tasks)
	case p.Types < 1:
		return fmt.Errorf("taskgraph: generator needs at least one task type, got %d", p.Types)
	case p.Sources < 1 || p.Sources > p.Tasks:
		return fmt.Errorf("taskgraph: sources %d out of [1, %d]", p.Sources, p.Tasks)
	case !(p.Deadline > 0):
		return fmt.Errorf("taskgraph: deadline must be positive, got %g", p.Deadline)
	case p.MaxData < 1:
		return fmt.Errorf("taskgraph: MaxData must be >= 1, got %g", p.MaxData)
	case p.BranchFraction < 0 || p.BranchFraction > 1:
		return fmt.Errorf("taskgraph: BranchFraction %g out of [0, 1]", p.BranchFraction)
	}
	minEdges := p.Tasks - p.Sources
	maxEdges := p.Tasks * (p.Tasks - 1) / 2
	if p.Edges < minEdges || p.Edges > maxEdges {
		return fmt.Errorf("taskgraph: edges %d out of [%d, %d] for %d tasks with %d sources",
			p.Edges, minEdges, maxEdges, p.Tasks, p.Sources)
	}
	return nil
}

// Generate builds a random DAG with exactly p.Tasks tasks and p.Edges
// edges. Construction is layered, TGFF-style: tasks are created in ID
// order and every task beyond the first p.Sources draws one parent among
// the earlier tasks (guaranteeing a connected precedence structure and
// acyclicity by construction), then extra forward edges are added until
// the edge budget is spent. The same params always generate the same
// graph.
func Generate(p GenParams) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := NewGraph(p.Name, p.Deadline)
	for i := 0; i < p.Tasks; i++ {
		t := Task{ID: i, Name: fmt.Sprintf("t%d", i), Type: rng.Intn(p.Types)}
		if err := g.AddTask(t); err != nil {
			return nil, err
		}
	}
	data := func() float64 { return 1 + rng.Float64()*(p.MaxData-1) }

	// Spanning structure: each non-source task gets one parent among
	// earlier tasks, biased towards recent tasks so the graph has depth
	// rather than a star shape.
	for i := p.Sources; i < p.Tasks; i++ {
		lo := 0
		if i > 8 {
			lo = i - 8 - rng.Intn(i-8+1) // window into the recent past, occasionally deeper
		}
		parent := lo + rng.Intn(i-lo)
		if err := g.AddEdge(Edge{From: parent, To: i, Data: data()}); err != nil {
			return nil, err
		}
	}

	// Extra forward edges (from lower ID to higher ID keeps it acyclic).
	need := p.Edges - g.NumEdges()
	for attempts := 0; need > 0; attempts++ {
		if attempts > 1000*p.Edges {
			return nil, fmt.Errorf("taskgraph: could not place %d extra edges (graph too dense)", need)
		}
		from := rng.Intn(p.Tasks - 1)
		to := from + 1 + rng.Intn(p.Tasks-from-1)
		if err := g.AddEdge(Edge{From: from, To: to, Data: data()}); err != nil {
			continue // duplicate; retry
		}
		need--
	}

	if p.BranchFraction > 0 {
		markBranches(g, p.BranchFraction, rng)
	}
	return g, nil
}

// markBranches converts a fraction of the multi-successor tasks into
// conditional branch nodes: their outgoing edges get probabilities drawn
// from a Dirichlet-like split summing to 1.
func markBranches(g *Graph, fraction float64, rng *rand.Rand) {
	for id := 0; id < g.NumTasks(); id++ {
		succ := g.Successors(id)
		if len(succ) < 2 || rng.Float64() >= fraction {
			continue
		}
		// Random split of 1 over the successors (each branch ≥ 5%).
		weights := make([]float64, len(succ))
		var sum float64
		for i := range weights {
			weights[i] = 0.05 + rng.Float64()
			sum += weights[i]
		}
		for i, e := range succ {
			prob := weights[i] / sum
			// Round to avoid sums drifting past 1 under float noise.
			prob = math.Floor(prob*1e6) / 1e6
			g.setEdgeProb(e.From, e.To, prob)
		}
	}
}
