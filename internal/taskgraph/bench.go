package taskgraph

import "fmt"

// The paper evaluates four synthetic benchmarks described as
// name/tasks/edges/deadline. The graphs themselves were never published,
// so we regenerate them with fixed seeds (see DESIGN.md §2). The task
// type universe is shared with techlib.StandardTypes.

// NumTaskTypes is the number of distinct task types the benchmark
// generator draws from; the technology library must cover all of them.
const NumTaskTypes = 8

// benchSpec pins down one paper benchmark.
type benchSpec struct {
	name     string
	tasks    int
	edges    int
	deadline float64
	seed     int64
}

var benchSpecs = []benchSpec{
	{"Bm1", 19, 19, 790, 190_700},
	{"Bm2", 35, 40, 1500, 354_015},
	{"Bm3", 39, 43, 1650, 394_316},
	{"Bm4", 51, 60, 2000, 516_020},
}

// Benchmarks returns the paper's four benchmark graphs
// (Bm1/19/19/790, Bm2/35/40/1500, Bm3/39/43/1650, Bm4/51/60/2000).
func Benchmarks() ([]*Graph, error) {
	out := make([]*Graph, 0, len(benchSpecs))
	for _, s := range benchSpecs {
		g, err := Benchmark(s.name)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// Benchmark returns one paper benchmark by name ("Bm1" … "Bm4").
func Benchmark(name string) (*Graph, error) {
	for _, s := range benchSpecs {
		if s.name != name {
			continue
		}
		g, err := Generate(GenParams{
			Name:     s.name,
			Tasks:    s.tasks,
			Edges:    s.edges,
			Deadline: s.deadline,
			Types:    NumTaskTypes,
			Sources:  1,
			MaxData:  40,
			Seed:     s.seed,
		})
		if err != nil {
			return nil, fmt.Errorf("taskgraph: building %s: %w", s.name, err)
		}
		return g, nil
	}
	return nil, fmt.Errorf("taskgraph: unknown benchmark %q (want Bm1..Bm4)", name)
}

// BenchmarkNames lists the available paper benchmarks in order.
func BenchmarkNames() []string {
	out := make([]string, len(benchSpecs))
	for i, s := range benchSpecs {
		out[i] = s.name
	}
	return out
}
