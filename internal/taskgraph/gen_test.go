package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateExactCounts(t *testing.T) {
	p := GenParams{Name: "g", Tasks: 20, Edges: 25, Deadline: 500, Types: 4, Sources: 2, MaxData: 10, Seed: 42}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 20 || g.NumEdges() != 25 {
		t.Errorf("size = %d/%d, want 20/25", g.NumTasks(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Sources()); got != 2 {
		t.Errorf("sources = %d, want 2", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Name: "g", Tasks: 15, Edges: 18, Deadline: 100, Types: 3, Sources: 1, MaxData: 5, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("edge counts differ")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	for i := range a.Tasks() {
		if a.Task(i) != b.Task(i) {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestGenerateSeedChangesGraph(t *testing.T) {
	p := GenParams{Name: "g", Tasks: 15, Edges: 18, Deadline: 100, Types: 3, Sources: 1, MaxData: 5, Seed: 7}
	a, _ := Generate(p)
	p.Seed = 8
	b, _ := Generate(p)
	same := true
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical edge lists")
	}
}

func TestGenerateParamValidation(t *testing.T) {
	base := GenParams{Name: "g", Tasks: 10, Edges: 12, Deadline: 100, Types: 2, Sources: 1, MaxData: 5, Seed: 1}
	mutations := []func(*GenParams){
		func(p *GenParams) { p.Tasks = 0 },
		func(p *GenParams) { p.Types = 0 },
		func(p *GenParams) { p.Sources = 0 },
		func(p *GenParams) { p.Sources = 11 },
		func(p *GenParams) { p.Deadline = 0 },
		func(p *GenParams) { p.MaxData = 0.5 },
		func(p *GenParams) { p.Edges = 3 },  // below Tasks - Sources
		func(p *GenParams) { p.Edges = 99 }, // above n(n-1)/2
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

func TestGenerateSingleTask(t *testing.T) {
	g, err := Generate(GenParams{Name: "one", Tasks: 1, Edges: 0, Deadline: 10, Types: 1, Sources: 1, MaxData: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 1 || g.NumEdges() != 0 {
		t.Error("single-task graph wrong")
	}
}

// Property: generated graphs are valid DAGs with exact counts, all types
// in range, and every non-source task reachable (in-degree >= 1).
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		sources := 1 + rng.Intn(min(3, n))
		minE := n - sources
		maxE := n * (n - 1) / 2
		e := minE + rng.Intn(maxE-minE+1)
		g, err := Generate(GenParams{
			Name: "p", Tasks: n, Edges: e, Deadline: 100,
			Types: 1 + rng.Intn(8), Sources: sources, MaxData: 10, Seed: seed,
		})
		if err != nil {
			return false
		}
		if g.NumTasks() != n || g.NumEdges() != e || g.Validate() != nil {
			return false
		}
		nSources := 0
		for id := 0; id < n; id++ {
			if g.InDegree(id) == 0 {
				nSources++
			}
		}
		return nSources <= sources
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBenchmarksMatchPaperSpecs(t *testing.T) {
	want := []struct {
		name     string
		tasks    int
		edges    int
		deadline float64
	}{
		{"Bm1", 19, 19, 790},
		{"Bm2", 35, 40, 1500},
		{"Bm3", 39, 43, 1650},
		{"Bm4", 51, 60, 2000},
	}
	graphs, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 4 {
		t.Fatalf("got %d benchmarks", len(graphs))
	}
	for i, w := range want {
		g := graphs[i]
		if g.Name != w.name || g.NumTasks() != w.tasks || g.NumEdges() != w.edges || g.Deadline != w.deadline {
			t.Errorf("%s = %d/%d/%g, want %d/%d/%g",
				g.Name, g.NumTasks(), g.NumEdges(), g.Deadline, w.tasks, w.edges, w.deadline)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.name, err)
		}
		// All task types must fit the shared type universe.
		for _, task := range g.Tasks() {
			if task.Type < 0 || task.Type >= NumTaskTypes {
				t.Errorf("%s task %d type %d outside [0,%d)", w.name, task.ID, task.Type, NumTaskTypes)
			}
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	g, err := Benchmark("Bm2")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 35 {
		t.Errorf("Bm2 tasks = %d", g.NumTasks())
	}
	if _, err := Benchmark("Bm9"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	names := BenchmarkNames()
	if len(names) != 4 || names[0] != "Bm1" {
		t.Errorf("BenchmarkNames = %v", names)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Seed zero is a valid seed and must be honored verbatim — the
// generator-level counterpart of the CoSynthConfig.SeedSet regression:
// no code path may rewrite an explicit zero to a "default" seed.
// (Audited for PR 4: Generate passes p.Seed straight to rand.NewSource,
// and cmd/taskgen passes its -seed flag straight to Generate.)
func TestGenerateSeedZeroHonored(t *testing.T) {
	p := GenParams{Name: "g", Tasks: 15, Edges: 18, Deadline: 100, Types: 3, Sources: 1, MaxData: 5, Seed: 0}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(a, b) {
		t.Error("seed 0 is not deterministic")
	}
	p.Seed = 1
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if sameGraph(a, c) {
		t.Error("seed 0 generated the same graph as seed 1 (seed rewritten?)")
	}
}

// sameGraph compares two graphs structurally (tasks, edges, deadline).
func sameGraph(a, b *Graph) bool {
	if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() || a.Deadline != b.Deadline {
		return false
	}
	for i, ta := range a.Tasks() {
		if ta != b.Task(i) {
			return false
		}
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
