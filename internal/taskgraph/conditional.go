package taskgraph

import (
	"fmt"
	"math"
)

// Conditional task graphs. The ASP the paper builds on (Xie & Wolf,
// DATE 2001) schedules *conditional* task graphs: some edges fire only
// when their branch condition holds at run time. This file adds the
// standard CTG probability model on top of Graph:
//
//   - every edge carries Prob, the probability that control flows down
//     the edge given its source executed (1 = unconditional);
//   - a task executes if any incoming edge fires; sibling conditional
//     edges out of a branch node are mutually exclusive, so execution
//     probabilities combine additively along joins (capped at 1).
//
// Scheduling remains worst-case (every branch is reserved a slot, the
// conservative treatment); the probabilities feed expected-value power
// and temperature analysis (sched.ExpectedPEAveragePower) and the
// Bernoulli branch realization of the discrete-event executor
// (sim.Options.Conditional). Xie & Wolf's mutual-exclusion slot sharing
// is documented out of scope in DESIGN.md.

// effectiveProb returns the edge's firing probability, treating the
// zero value as 1 so plain (unconditional) graphs need no annotation.
func (e Edge) effectiveProb() float64 {
	if e.Prob == 0 {
		return 1
	}
	return e.Prob
}

// IsConditional reports whether the edge fires with probability < 1.
func (e Edge) IsConditional() bool { return e.Prob != 0 && e.Prob < 1 }

// ValidateProbabilities checks the CTG annotation: every edge
// probability lies in (0, 1], and for every branch node the outgoing
// probabilities do not exceed 1 in total when any of them is
// conditional (mutually exclusive branches).
func (g *Graph) ValidateProbabilities() error {
	for _, e := range g.edges {
		p := e.effectiveProb()
		if !(p > 0 && p <= 1) || math.IsNaN(p) {
			return fmt.Errorf("taskgraph: edge %d->%d has invalid probability %g", e.From, e.To, e.Prob)
		}
	}
	for id := range g.tasks {
		var sum float64
		conditional := false
		for _, e := range g.Successors(id) {
			sum += e.effectiveProb()
			if e.IsConditional() {
				conditional = true
			}
		}
		if conditional && sum > 1+1e-9 {
			return fmt.Errorf("taskgraph: branch task %d has outgoing probabilities summing to %g > 1", id, sum)
		}
	}
	return nil
}

// HasConditionalEdges reports whether any edge is conditional.
func (g *Graph) HasConditionalEdges() bool {
	for _, e := range g.edges {
		if e.IsConditional() {
			return true
		}
	}
	return false
}

// ExecutionProbabilities returns, per task, the probability that the
// task executes at run time: sources execute with probability 1; a
// non-source task's probability is the sum over incoming edges of
// P(source) × P(edge), capped at 1 (incoming conditional edges of a
// join belong to mutually exclusive branches in a well-formed CTG).
func (g *Graph) ExecutionProbabilities() ([]float64, error) {
	if err := g.ValidateProbabilities(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	probs := make([]float64, len(g.tasks))
	for _, id := range order {
		if len(g.pred[id]) == 0 {
			probs[id] = 1
			continue
		}
		var p float64
		for _, ei := range g.pred[id] {
			e := g.edges[ei]
			p += probs[e.From] * e.effectiveProb()
		}
		if p > 1 {
			p = 1
		}
		probs[id] = p
	}
	return probs, nil
}
