// Package taskgraph provides the task-graph substrate: directed acyclic
// graphs of tasks with communication edges and a completion deadline, a
// seeded TGFF-like generator, the paper's four benchmark graphs, static
// criticality (longest path to the end of the graph, the list-scheduling
// priority the paper's ASP starts from), and text/DOT serialization.
package taskgraph

import (
	"fmt"
	"math"
)

// Task is one node of a task graph. Type selects a row of the technology
// library (which task types run how fast / how hot on which PE types).
type Task struct {
	ID   int
	Name string
	Type int
}

// Edge is a data dependency: To may start only after From completes and
// its Data units have been transferred (on-chip transfers between
// distinct PEs take time proportional to Data). Prob is the conditional
// task-graph annotation: the probability that control flows down this
// edge given From executed; the zero value means 1 (unconditional). See
// conditional.go.
type Edge struct {
	From, To int
	Data     float64
	Prob     float64
}

// Graph is a task graph with a deadline. Construct with NewGraph and
// AddTask/AddEdge, or use Generate / the Bm* constructors.
type Graph struct {
	Name     string
	Deadline float64
	tasks    []Task
	edges    []Edge
	succ     [][]int // successor edge indices per task
	pred     [][]int // predecessor edge indices per task
}

// NewGraph returns an empty graph with the given name and deadline.
func NewGraph(name string, deadline float64) *Graph {
	return &Graph{Name: name, Deadline: deadline}
}

// AddTask appends a task; IDs must be assigned densely in order
// (0, 1, 2, ...), which keeps every per-task lookup a slice index.
func (g *Graph) AddTask(t Task) error {
	if t.ID != len(g.tasks) {
		return fmt.Errorf("taskgraph: task ID %d out of order, want %d", t.ID, len(g.tasks))
	}
	if t.Name == "" {
		return fmt.Errorf("taskgraph: task %d has empty name", t.ID)
	}
	if t.Type < 0 {
		return fmt.Errorf("taskgraph: task %d has negative type %d", t.ID, t.Type)
	}
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return nil
}

// AddEdge appends a dependency edge. Both endpoints must exist, self
// loops and duplicate edges are rejected; cycle detection happens in
// Validate (cheaper once, after construction).
func (g *Graph) AddEdge(e Edge) error {
	if e.From < 0 || e.From >= len(g.tasks) || e.To < 0 || e.To >= len(g.tasks) {
		return fmt.Errorf("taskgraph: edge %d->%d references missing task", e.From, e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("taskgraph: self loop on task %d", e.From)
	}
	if e.Data < 0 || math.IsNaN(e.Data) {
		return fmt.Errorf("taskgraph: edge %d->%d has invalid data %g", e.From, e.To, e.Data)
	}
	if e.Prob < 0 || e.Prob > 1 || math.IsNaN(e.Prob) {
		return fmt.Errorf("taskgraph: edge %d->%d has invalid probability %g", e.From, e.To, e.Prob)
	}
	for _, ei := range g.succ[e.From] {
		if g.edges[ei].To == e.To {
			return fmt.Errorf("taskgraph: duplicate edge %d->%d", e.From, e.To)
		}
	}
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.succ[e.From] = append(g.succ[e.From], idx)
	g.pred[e.To] = append(g.pred[e.To], idx)
	return nil
}

// NumTasks returns the task count.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) Task { return g.tasks[id] }

// Tasks returns a copy of the task list.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Successors returns the edges leaving task id.
func (g *Graph) Successors(id int) []Edge {
	out := make([]Edge, 0, len(g.succ[id]))
	for _, ei := range g.succ[id] {
		out = append(out, g.edges[ei])
	}
	return out
}

// Predecessors returns the edges entering task id.
func (g *Graph) Predecessors(id int) []Edge {
	out := make([]Edge, 0, len(g.pred[id]))
	for _, ei := range g.pred[id] {
		out = append(out, g.edges[ei])
	}
	return out
}

// InDegree returns the number of predecessors of task id.
func (g *Graph) InDegree(id int) int { return len(g.pred[id]) }

// OutDegree returns the number of successors of task id.
func (g *Graph) OutDegree(id int) int { return len(g.succ[id]) }

// Sources returns the IDs of tasks with no predecessors.
func (g *Graph) Sources() []int {
	var out []int
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Sinks returns the IDs of tasks with no successors.
func (g *Graph) Sinks() []int {
	var out []int
	for id := range g.tasks {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoOrder returns a topological ordering of the task IDs (Kahn's
// algorithm), or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.tasks))
	for id := range g.tasks {
		indeg[id] = len(g.pred[id])
	}
	queue := make([]int, 0, len(g.tasks))
	for id := range g.tasks {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(g.tasks))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ei := range g.succ[id] {
			to := g.edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("taskgraph: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Validate checks structural sanity: non-empty, positive deadline,
// acyclic.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return fmt.Errorf("taskgraph: graph %q has no tasks", g.Name)
	}
	if !(g.Deadline > 0) {
		return fmt.Errorf("taskgraph: graph %q has non-positive deadline %g", g.Name, g.Deadline)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// StaticCriticality computes the paper's SC value for every task: the
// longest path from the task to any sink, where each task contributes
// weight(task) and each traversed edge contributes edgeWeight(edge).
// Pass the mean WCET as weight (as list schedulers conventionally do)
// and zero edge weight to match the paper's definition.
func (g *Graph) StaticCriticality(weight func(Task) float64, edgeWeight func(Edge) float64) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	sc := make([]float64, len(g.tasks))
	// Walk in reverse topological order: every successor is finalized
	// before its predecessors.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, ei := range g.succ[id] {
			e := g.edges[ei]
			v := sc[e.To]
			if edgeWeight != nil {
				v += edgeWeight(e)
			}
			if v > best {
				best = v
			}
		}
		sc[id] = best + weight(g.tasks[id])
	}
	return sc, nil
}

// CriticalPathLength returns the maximum StaticCriticality value — the
// schedule length lower bound on infinitely many PEs.
func (g *Graph) CriticalPathLength(weight func(Task) float64, edgeWeight func(Edge) float64) (float64, error) {
	sc, err := g.StaticCriticality(weight, edgeWeight)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, v := range sc {
		if v > best {
			best = v
		}
	}
	return best, nil
}

// Levels assigns each task its depth (longest hop count from a source),
// useful for reporting and layout.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(g.tasks))
	for _, id := range order {
		for _, ei := range g.pred[id] {
			from := g.edges[ei].From
			if lv[from]+1 > lv[id] {
				lv[id] = lv[from] + 1
			}
		}
	}
	return lv, nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{%s: %d tasks, %d edges, deadline %g}",
		g.Name, len(g.tasks), len(g.edges), g.Deadline)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name, g.Deadline)
	for _, t := range g.tasks {
		if err := c.AddTask(t); err != nil {
			panic("taskgraph: Clone: " + err.Error())
		}
	}
	for _, e := range g.edges {
		if err := c.AddEdge(e); err != nil {
			panic("taskgraph: Clone: " + err.Error())
		}
	}
	return c
}

// setEdgeProb updates the probability of an existing edge (used by the
// conditional-graph generator).
func (g *Graph) setEdgeProb(from, to int, prob float64) {
	for _, ei := range g.succ[from] {
		if g.edges[ei].To == to {
			g.edges[ei].Prob = prob
			return
		}
	}
}
