package taskgraph

import (
	"strings"
	"testing"
)

// FuzzReadGraph feeds arbitrary text to the .tg parser. Two contracts:
// ReadGraph never panics (it must return an error for anything it
// cannot accept — the service tier parses untrusted uploads), and any
// graph it does accept serializes canonically: Write→ReadGraph→Write
// is byte-stable, the fixed point the byte-identity determinism tests
// build on.
func FuzzReadGraph(f *testing.F) {
	f.Add("graph g\ndeadline 10\ntask 0 a 1\ntask 1 b 2\nedge 0 1 5\n")
	f.Add("# comment\ngraph cond\ndeadline 3.5\ntask 0 x 1\ntask 1 y 1\ntask 2 z 1\nedge 0 1 2 0.5\nedge 0 2 2 0.5\n")
	f.Add("graph late\ntask 0 a 1\ndeadline 7\n") // directives out of order
	f.Add("task 0 a 1\n")                         // graph directive missing entirely
	f.Add("graph g\ndeadline NaN\ntask 0 a 1\n")
	f.Add("edge 0 0 1e309\n")
	f.Add("graph g\ndeadline 1\ntask 0 a 1\ntask 0 a 1\n") // duplicate task
	f.Fuzz(func(t *testing.T, text string) {
		g, err := ReadGraph(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; panicking or accepting junk is not
		}
		if g.Name == "" {
			// A stream with no graph directive parses with an empty
			// name, which Write cannot represent ("graph " is not
			// re-parseable). Canonical form requires a name.
			return
		}
		var first strings.Builder
		if err := g.Write(&first); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := ReadGraph(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, first.String())
		}
		var second strings.Builder
		if err := g2.Write(&second); err != nil {
			t.Fatalf("re-writing canonical form: %v", err)
		}
		if first.String() != second.String() {
			t.Errorf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
		}
	})
}
