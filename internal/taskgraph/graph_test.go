package taskgraph

import (
	"math"
	"strings"
	"testing"
)

// diamond builds the four-task diamond t0 -> {t1, t2} -> t3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("diamond", 100)
	for i := 0; i < 4; i++ {
		if err := g.AddTask(Task{ID: i, Name: "t" + string(rune('0'+i)), Type: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{
		{From: 0, To: 1, Data: 5},
		{From: 0, To: 2, Data: 3},
		{From: 1, To: 3, Data: 2},
		{From: 2, To: 3, Data: 4},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddTaskValidation(t *testing.T) {
	g := NewGraph("g", 10)
	if err := g.AddTask(Task{ID: 1, Name: "x", Type: 0}); err == nil {
		t.Error("out-of-order ID accepted")
	}
	if err := g.AddTask(Task{ID: 0, Name: "", Type: 0}); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.AddTask(Task{ID: 0, Name: "x", Type: -1}); err == nil {
		t.Error("negative type accepted")
	}
	if err := g.AddTask(Task{ID: 0, Name: "x", Type: 0}); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph("g", 10)
	for i := 0; i < 3; i++ {
		if err := g.AddTask(Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(Edge{From: 0, To: 5, Data: 1}); err == nil {
		t.Error("edge to missing task accepted")
	}
	if err := g.AddEdge(Edge{From: 1, To: 1, Data: 1}); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(Edge{From: 0, To: 1, Data: -1}); err == nil {
		t.Error("negative data accepted")
	}
	if err := g.AddEdge(Edge{From: 0, To: 1, Data: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{From: 0, To: 1, Data: 2}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestDegreesAndNeighbours(t *testing.T) {
	g := diamond(t)
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatalf("size = %d/%d", g.NumTasks(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Error("t0 degrees wrong")
	}
	if g.InDegree(3) != 2 || g.OutDegree(3) != 0 {
		t.Error("t3 degrees wrong")
	}
	succ := g.Successors(0)
	if len(succ) != 2 || succ[0].To != 1 || succ[1].To != 2 {
		t.Errorf("Successors(0) = %v", succ)
	}
	pred := g.Predecessors(3)
	if len(pred) != 2 {
		t.Errorf("Predecessors(3) = %v", pred)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Sinks = %v", got)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := NewGraph("cyc", 10)
	for i := 0; i < 3; i++ {
		if err := g.AddTask(Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(e Edge) {
		t.Helper()
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(Edge{From: 0, To: 1, Data: 1})
	mustEdge(Edge{From: 1, To: 2, Data: 1})
	mustEdge(Edge{From: 2, To: 0, Data: 1})
	if err := g.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestValidateOtherErrors(t *testing.T) {
	if err := NewGraph("empty", 10).Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	g := NewGraph("nodl", 0)
	if err := g.AddTask(Task{ID: 0, Name: "t", Type: 0}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestStaticCriticality(t *testing.T) {
	g := diamond(t)
	// Unit weights, zero edge weight: SC(t3)=1, SC(t1)=SC(t2)=2, SC(t0)=3.
	sc, err := g.StaticCriticality(func(Task) float64 { return 1 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 2, 1}
	for i, w := range want {
		if math.Abs(sc[i]-w) > 1e-12 {
			t.Errorf("SC[%d] = %v, want %v", i, sc[i], w)
		}
	}
}

func TestStaticCriticalityWithEdgeWeights(t *testing.T) {
	g := diamond(t)
	// Weight 1 per task plus the edge data as path cost:
	// SC(t3)=1; SC(t1)=1+2+1=4; SC(t2)=1+4+1=6; SC(t0)=1+max(5+4, 3+6)=10.
	sc, err := g.StaticCriticality(
		func(Task) float64 { return 1 },
		func(e Edge) float64 { return e.Data },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 4, 6, 1}
	for i, w := range want {
		if math.Abs(sc[i]-w) > 1e-12 {
			t.Errorf("SC[%d] = %v, want %v", i, sc[i], w)
		}
	}
	cp, err := g.CriticalPathLength(func(Task) float64 { return 1 }, func(e Edge) float64 { return e.Data })
	if err != nil {
		t.Fatal(err)
	}
	if cp != 10 {
		t.Errorf("critical path = %v, want 10", cp)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lv, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if lv[i] != w {
			t.Errorf("level[%d] = %d, want %d", i, lv[i], w)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if err := c.AddTask(Task{ID: 4, Name: "t4", Type: 0}); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 4 || c.NumTasks() != 5 {
		t.Error("Clone not independent")
	}
}

func TestStringer(t *testing.T) {
	if s := diamond(t).String(); !strings.Contains(s, "4 tasks") {
		t.Errorf("String = %q", s)
	}
}
