package taskgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestGraphWriteReadRoundTrip(t *testing.T) {
	g, err := Benchmark("Bm1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || got.Deadline != g.Deadline {
		t.Errorf("header changed: %s/%g", got.Name, got.Deadline)
	}
	if got.NumTasks() != g.NumTasks() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d", got.NumTasks(), got.NumEdges())
	}
	for i := range g.Tasks() {
		if g.Task(i) != got.Task(i) {
			t.Errorf("task %d changed", i)
		}
	}
	ge, he := g.Edges(), got.Edges()
	for i := range ge {
		if ge[i] != he[i] {
			t.Errorf("edge %d changed: %v vs %v", i, ge[i], he[i])
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"unknown directive", "flurb 1\n"},
		{"graph arity", "graph a b\n"},
		{"deadline arity", "deadline\n"},
		{"bad deadline", "deadline xyz\n"},
		{"task arity", "task 0 t0\n"},
		{"bad task id", "task x t0 0\n"},
		{"edge arity", "edge 0 1\n"},
		{"bad edge num", "graph g\ndeadline 5\ntask 0 a 0\ntask 1 b 0\nedge 0 x 1\n"},
		{"edge missing task", "graph g\ndeadline 5\ntask 0 a 0\nedge 0 3 1\n"},
		{"no deadline", "graph g\ntask 0 a 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadGraph(%q) succeeded", tc.in)
			}
		})
	}
}

func TestReadGraphHeaderAfterTasks(t *testing.T) {
	// Directives may appear in any order; late graph/deadline lines update
	// the already-created graph.
	in := "task 0 a 0\ngraph late\ndeadline 9\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "late" || g.Deadline != 9 {
		t.Errorf("got %s/%g", g.Name, g.Deadline)
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "0 -> 1", "2 -> 3", "type 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
