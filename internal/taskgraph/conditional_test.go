package taskgraph

import (
	"bytes"
	"math"
	"testing"
)

// branchGraph builds a CTG: t0 branches to t1 (p=0.7) or t2 (p=0.3),
// both joining at t3; t4 hangs unconditionally off t1.
//
//	    t0
//	0.7/  \0.3
//	  t1   t2
//	 /  \  /
//	t4   t3
func branchGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("ctg", 100)
	for i := 0; i < 5; i++ {
		if err := g.AddTask(Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{
		{From: 0, To: 1, Data: 1, Prob: 0.7},
		{From: 0, To: 2, Data: 1, Prob: 0.3},
		{From: 1, To: 3, Data: 1},
		{From: 2, To: 3, Data: 1},
		{From: 1, To: 4, Data: 1},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestEdgeProbabilitySemantics(t *testing.T) {
	if (Edge{}).IsConditional() {
		t.Error("zero-value edge should be unconditional")
	}
	if (Edge{Prob: 1}).IsConditional() {
		t.Error("Prob 1 should be unconditional")
	}
	if !(Edge{Prob: 0.5}).IsConditional() {
		t.Error("Prob 0.5 should be conditional")
	}
}

func TestAddEdgeRejectsBadProb(t *testing.T) {
	g := NewGraph("g", 10)
	for i := 0; i < 2; i++ {
		if err := g.AddTask(Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []float64{-0.1, 1.5, math.NaN()} {
		if err := g.AddEdge(Edge{From: 0, To: 1, Data: 1, Prob: p}); err == nil {
			t.Errorf("probability %v accepted", p)
		}
	}
}

func TestValidateProbabilities(t *testing.T) {
	g := branchGraph(t)
	if err := g.ValidateProbabilities(); err != nil {
		t.Errorf("valid CTG rejected: %v", err)
	}
	// Branch probabilities summing past 1 must be rejected.
	bad := NewGraph("bad", 100)
	for i := 0; i < 3; i++ {
		if err := bad.AddTask(Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bad.AddEdge(Edge{From: 0, To: 1, Data: 1, Prob: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddEdge(Edge{From: 0, To: 2, Data: 1, Prob: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := bad.ValidateProbabilities(); err == nil {
		t.Error("branch probabilities summing to 1.6 accepted")
	}
}

func TestHasConditionalEdges(t *testing.T) {
	if !branchGraph(t).HasConditionalEdges() {
		t.Error("CTG not recognized")
	}
	g := diamond(t)
	if g.HasConditionalEdges() {
		t.Error("plain graph misclassified as CTG")
	}
}

func TestExecutionProbabilities(t *testing.T) {
	g := branchGraph(t)
	p, err := g.ExecutionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.7, 0.3, 1.0, 0.7} // t3 joins 0.7+0.3
	for i, w := range want {
		if math.Abs(p[i]-w) > 1e-12 {
			t.Errorf("P(t%d) = %v, want %v", i, p[i], w)
		}
	}
}

func TestExecutionProbabilitiesUnconditional(t *testing.T) {
	g := diamond(t)
	p, err := g.ExecutionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if v != 1 {
			t.Errorf("P(t%d) = %v, want 1", i, v)
		}
	}
}

func TestExecutionProbabilitiesCapAtOne(t *testing.T) {
	// Two unconditional in-edges: sum would be 2, must cap at 1.
	g := diamond(t)
	p, err := g.ExecutionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if p[3] != 1 {
		t.Errorf("join probability %v, want capped 1", p[3])
	}
}

func TestConditionalGraphRoundTrip(t *testing.T) {
	g := branchGraph(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ge, he := g.Edges(), got.Edges()
	for i := range ge {
		if ge[i] != he[i] {
			t.Errorf("edge %d changed: %+v vs %+v", i, ge[i], he[i])
		}
	}
	if !got.HasConditionalEdges() {
		t.Error("probability lost in round trip")
	}
}

func TestGenerateConditional(t *testing.T) {
	g, err := Generate(GenParams{
		Name: "ctg", Tasks: 30, Edges: 45, Deadline: 1000,
		Types: 4, Sources: 1, MaxData: 10, BranchFraction: 1.0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasConditionalEdges() {
		t.Fatal("BranchFraction 1.0 produced no conditional edges")
	}
	if err := g.ValidateProbabilities(); err != nil {
		t.Fatalf("generated CTG invalid: %v", err)
	}
	probs, err := g.ExecutionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	for _, p := range probs {
		if p <= 0 || p > 1 {
			t.Fatalf("execution probability %v out of (0,1]", p)
		}
		if p < 1 {
			below++
		}
	}
	if below == 0 {
		t.Error("no task has execution probability below 1")
	}
}

func TestGenerateConditionalZeroFractionUnchanged(t *testing.T) {
	g, err := Generate(GenParams{
		Name: "plain", Tasks: 20, Edges: 30, Deadline: 1000,
		Types: 4, Sources: 1, MaxData: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasConditionalEdges() {
		t.Error("zero BranchFraction produced conditional edges")
	}
}

func TestGenerateBranchFractionValidation(t *testing.T) {
	_, err := Generate(GenParams{
		Name: "bad", Tasks: 5, Edges: 6, Deadline: 10,
		Types: 1, Sources: 1, MaxData: 2, BranchFraction: 1.5, Seed: 1,
	})
	if err == nil {
		t.Error("BranchFraction 1.5 accepted")
	}
}
