package taskgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the graph in the repository's .tg text format:
//
//	graph <name>
//	deadline <float>
//	task <id> <name> <type>
//	edge <from> <to> <data>
//
// '#' starts a comment. The format is line-oriented and diff-friendly.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# task graph: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	fmt.Fprintf(bw, "graph %s\n", g.Name)
	fmt.Fprintf(bw, "deadline %g\n", g.Deadline)
	for _, t := range g.tasks {
		fmt.Fprintf(bw, "task %d %s %d\n", t.ID, t.Name, t.Type)
	}
	for _, e := range g.edges {
		if e.IsConditional() {
			fmt.Fprintf(bw, "edge %d %d %g %g\n", e.From, e.To, e.Data, e.Prob)
		} else {
			fmt.Fprintf(bw, "edge %d %d %g\n", e.From, e.To, e.Data)
		}
	}
	return bw.Flush()
}

// ReadGraph parses a .tg stream (see Write).
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	name := ""
	deadline := 0.0
	lineNo := 0
	ensure := func() *Graph {
		if g == nil {
			g = NewGraph(name, deadline)
		}
		return g
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("taskgraph: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, bad("graph wants 1 argument")
			}
			name = fields[1]
			if g != nil {
				g.Name = name
			}
		case "deadline":
			if len(fields) != 2 {
				return nil, bad("deadline wants 1 argument")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, bad("bad deadline")
			}
			deadline = v
			if g != nil {
				g.Deadline = v
			}
		case "task":
			if len(fields) != 4 {
				return nil, bad("task wants 3 arguments")
			}
			id, err1 := strconv.Atoi(fields[1])
			typ, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, bad("bad task numbers")
			}
			if err := ensure().AddTask(Task{ID: id, Name: fields[2], Type: typ}); err != nil {
				return nil, fmt.Errorf("taskgraph: line %d: %w", lineNo, err)
			}
		case "edge":
			if len(fields) != 4 && len(fields) != 5 {
				return nil, bad("edge wants 3 or 4 arguments")
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			data, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, bad("bad edge numbers")
			}
			prob := 0.0
			if len(fields) == 5 {
				p, err := strconv.ParseFloat(fields[4], 64)
				if err != nil {
					return nil, bad("bad edge probability")
				}
				prob = p
			}
			if err := ensure().AddEdge(Edge{From: from, To: to, Data: data, Prob: prob}); err != nil {
				return nil, fmt.Errorf("taskgraph: line %d: %w", lineNo, err)
			}
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taskgraph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("taskgraph: empty input")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteDOT emits the graph in Graphviz DOT syntax for visualization.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", g.Name)
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		fmt.Fprintf(bw, "  %d [label=\"%s\\ntype %d\"];\n", t.ID, t.Name, t.Type)
	}
	for _, e := range g.edges {
		fmt.Fprintf(bw, "  %d -> %d [label=\"%g\"];\n", e.From, e.To, e.Data)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
