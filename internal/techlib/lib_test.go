package techlib

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func twoPELib(t *testing.T) *Library {
	t.Helper()
	lib, err := NewLibrary(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddPEType(
		PEType{Name: "slow", Cost: 10, Area: 1e-6, IdlePower: 0.1},
		[]Entry{{WCET: 100, WCPC: 2}, {WCET: 200, WCPC: 3}},
		nil,
	); err != nil {
		t.Fatal(err)
	}
	if err := lib.AddPEType(
		PEType{Name: "fast", Cost: 50, Area: 2e-6, IdlePower: 0.2},
		[]Entry{{WCET: 50, WCPC: 8}, {}},
		[]bool{true, false},
	); err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestPETypeValidate(t *testing.T) {
	good := PEType{Name: "x", Cost: 1, Area: 1, IdlePower: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("valid PE rejected: %v", err)
	}
	bad := []PEType{
		{Name: "", Cost: 1, Area: 1},
		{Name: "x", Cost: 0, Area: 1},
		{Name: "x", Cost: 1, Area: 0},
		{Name: "x", Cost: 1, Area: 1, IdlePower: -1},
		{Name: "x", Cost: 1, Area: 1, IdlePower: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad PE %d accepted: %+v", i, p)
		}
	}
}

func TestEntry(t *testing.T) {
	e := Entry{WCET: 10, WCPC: 3}
	if e.Energy() != 30 {
		t.Errorf("Energy = %v", e.Energy())
	}
	if !e.Valid() {
		t.Error("valid entry rejected")
	}
	for _, bad := range []Entry{
		{},
		{WCET: 10},
		{WCPC: 3},
		{WCET: -1, WCPC: 3},
		{WCET: math.Inf(1), WCPC: 3},
		{WCET: 10, WCPC: math.NaN()},
	} {
		if bad.Valid() {
			t.Errorf("invalid entry accepted: %+v", bad)
		}
	}
}

func TestLibraryBasics(t *testing.T) {
	lib := twoPELib(t)
	if lib.NumTaskTypes() != 2 || lib.NumPETypes() != 2 {
		t.Fatalf("dims = %d/%d", lib.NumTaskTypes(), lib.NumPETypes())
	}
	if lib.PEType(1).Name != "fast" {
		t.Error("PEType(1) wrong")
	}
	if got := lib.PETypes(); len(got) != 2 {
		t.Error("PETypes length wrong")
	}
	i, ok := lib.PETypeIndex("slow")
	if !ok || i != 0 {
		t.Error("PETypeIndex(slow) wrong")
	}
	if _, ok := lib.PETypeIndex("missing"); ok {
		t.Error("PETypeIndex(missing) should be !ok")
	}
}

func TestLookup(t *testing.T) {
	lib := twoPELib(t)
	e, ok := lib.Lookup(0, 1)
	if !ok || e.WCET != 200 {
		t.Errorf("Lookup(0,1) = %+v, %v", e, ok)
	}
	if _, ok := lib.Lookup(1, 1); ok {
		t.Error("non-runnable pair reported runnable")
	}
	if _, ok := lib.Lookup(-1, 0); ok {
		t.Error("negative PE index accepted")
	}
	if _, ok := lib.Lookup(0, 9); ok {
		t.Error("out-of-range task type accepted")
	}
}

func TestMeanWCET(t *testing.T) {
	lib := twoPELib(t)
	m, err := lib.MeanWCET(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-75) > 1e-12 { // (100+50)/2
		t.Errorf("MeanWCET(0) = %v, want 75", m)
	}
	m, err = lib.MeanWCET(1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 200 { // only the slow PE runs type 1
		t.Errorf("MeanWCET(1) = %v, want 200", m)
	}
}

func TestAddPETypeValidation(t *testing.T) {
	lib, _ := NewLibrary(2)
	entries := []Entry{{WCET: 1, WCPC: 1}, {WCET: 1, WCPC: 1}}
	if err := lib.AddPEType(PEType{Name: "a", Cost: 1, Area: 1}, entries, nil); err != nil {
		t.Fatal(err)
	}
	if err := lib.AddPEType(PEType{Name: "a", Cost: 1, Area: 1}, entries, nil); err == nil {
		t.Error("duplicate PE type accepted")
	}
	if err := lib.AddPEType(PEType{Name: "b", Cost: 1, Area: 1}, entries[:1], nil); err == nil {
		t.Error("short entries accepted")
	}
	if err := lib.AddPEType(PEType{Name: "b", Cost: 1, Area: 1}, entries, []bool{true}); err == nil {
		t.Error("short runnable accepted")
	}
	if err := lib.AddPEType(PEType{Name: "b", Cost: 1, Area: 1},
		[]Entry{{}, {WCET: 1, WCPC: 1}}, nil); err == nil {
		t.Error("invalid runnable entry accepted")
	}
	if err := lib.AddPEType(PEType{Name: ""}, entries, nil); err == nil {
		t.Error("invalid PE accepted")
	}
}

func TestLibraryValidate(t *testing.T) {
	empty, _ := NewLibrary(1)
	if err := empty.Validate(); err == nil {
		t.Error("empty library accepted")
	}
	// Task type 1 not runnable anywhere.
	lib, _ := NewLibrary(2)
	if err := lib.AddPEType(PEType{Name: "a", Cost: 1, Area: 1},
		[]Entry{{WCET: 1, WCPC: 1}, {}}, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := lib.Validate(); err == nil {
		t.Error("uncoverable task type accepted")
	}
	if err := twoPELib(t).Validate(); err != nil {
		t.Errorf("valid library rejected: %v", err)
	}
	if _, err := NewLibrary(0); err == nil {
		t.Error("zero task types accepted")
	}
}

func TestGenerateSpeedPowerTradeoff(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	slow, _ := lib.PETypeIndex("pe-slow")
	fast, _ := lib.PETypeIndex("pe-fast")
	fasterCount, hotterCount, n := 0, 0, 0
	for tt := 0; tt < lib.NumTaskTypes(); tt++ {
		es, ok1 := lib.Lookup(slow, tt)
		ef, ok2 := lib.Lookup(fast, tt)
		if !ok1 || !ok2 {
			continue
		}
		n++
		if ef.WCET < es.WCET {
			fasterCount++
		}
		if ef.WCPC > es.WCPC {
			hotterCount++
		}
	}
	if n == 0 {
		t.Fatal("no comparable task types")
	}
	if fasterCount != n {
		t.Errorf("fast PE slower than slow PE on %d/%d types", n-fasterCount, n)
	}
	if hotterCount != n {
		t.Errorf("fast PE cooler than slow PE on %d/%d types", n-hotterCount, n)
	}
}

func TestGenerateEnergyGrowsWithSpeed(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := lib.PETypeIndex("pe-slow")
	fast, _ := lib.PETypeIndex("pe-fast")
	worse := 0
	n := 0
	for tt := 0; tt < lib.NumTaskTypes(); tt++ {
		es, ok1 := lib.Lookup(slow, tt)
		ef, ok2 := lib.Lookup(fast, tt)
		if !ok1 || !ok2 {
			continue
		}
		n++
		if ef.Energy() > es.Energy() {
			worse++
		}
	}
	// Energy ∝ speed (modulo ±15% noise), so the fast PE should cost
	// more energy on nearly every task type.
	if worse < n-1 {
		t.Errorf("fast PE more energy-hungry on only %d/%d types", worse, n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < a.NumPETypes(); pe++ {
		for tt := 0; tt < a.NumTaskTypes(); tt++ {
			ea, oka := a.Lookup(pe, tt)
			eb, okb := b.Lookup(pe, tt)
			if oka != okb || ea != eb {
				t.Fatalf("library not deterministic at (%d,%d)", pe, tt)
			}
		}
	}
}

func TestGenerateParamValidation(t *testing.T) {
	specs := StandardSpecs()
	bad := []GenParams{
		{NumTaskTypes: 0, MeanWork: 1, MeanPower: 1},
		{NumTaskTypes: 1, MeanWork: 0, MeanPower: 1},
		{NumTaskTypes: 1, MeanWork: 1, MeanPower: 0},
		{NumTaskTypes: 1, MeanWork: 1, MeanPower: 1, Noise: 1.5},
	}
	for i, p := range bad {
		if _, err := Generate(p, specs); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	good := GenParams{NumTaskTypes: 2, MeanWork: 10, MeanPower: 1}
	if _, err := Generate(good, nil); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := Generate(good, []PESpec{{Name: "x", Speed: 0, Cost: 1, Area: 1}}); err == nil {
		t.Error("zero-speed spec accepted")
	}
}

func TestPlatformPETypeExists(t *testing.T) {
	lib, err := StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.PETypeIndex(PlatformPEType); !ok {
		t.Errorf("platform PE type %q missing from standard library", PlatformPEType)
	}
}

func TestLibraryWriteReadRoundTrip(t *testing.T) {
	lib := twoPELib(t)
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTaskTypes() != 2 || got.NumPETypes() != 2 {
		t.Fatalf("dims changed: %d/%d", got.NumTaskTypes(), got.NumPETypes())
	}
	for pe := 0; pe < 2; pe++ {
		if got.PEType(pe) != lib.PEType(pe) {
			t.Errorf("PE %d changed: %+v vs %+v", pe, got.PEType(pe), lib.PEType(pe))
		}
		for tt := 0; tt < 2; tt++ {
			ea, oka := lib.Lookup(pe, tt)
			eb, okb := got.Lookup(pe, tt)
			if oka != okb || ea != eb {
				t.Errorf("entry (%d,%d) changed", pe, tt)
			}
		}
	}
}

func TestReadLibraryErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"entry before header", "entry a 0 1 1\n"},
		{"petype before header", "petype a 1 1 0\n"},
		{"bad tasktypes", "tasktypes x\n"},
		{"zero tasktypes", "tasktypes 0\n"},
		{"petype arity", "tasktypes 1\npetype a 1\n"},
		{"bad petype num", "tasktypes 1\npetype a x 1 0\n"},
		{"dup petype", "tasktypes 1\npetype a 1 1 0\npetype a 1 1 0\n"},
		{"entry unknown pe", "tasktypes 1\npetype a 1 1 0\nentry b 0 1 1\n"},
		{"entry bad type", "tasktypes 1\npetype a 1 1 0\nentry a 5 1 1\n"},
		{"entry bad nums", "tasktypes 1\npetype a 1 1 0\nentry a 0 x 1\n"},
		{"unknown directive", "tasktypes 1\nwat\n"},
		{"uncovered type", "tasktypes 2\npetype a 1 1 0\nentry a 0 1 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadLibrary(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadLibrary(%q) succeeded", tc.in)
			}
		})
	}
}
