// Package techlib implements the technology library of the paper's ASP:
// for every (task type, PE type) pair it stores the worst-case execution
// time (WCET) and worst-case power consumption (WCPC), plus the cost and
// die area of each PE type for co-synthesis and floorplanning.
//
// The paper's library is unpublished; StandardLibrary regenerates a
// deterministic library with the property every power-aware heuristic
// depends on: faster PE types burn disproportionately more power
// (power ≈ speed², so energy ≈ speed), giving the scheduler a real
// speed/power/heat trade-off to navigate.
package techlib

import (
	"fmt"
	"math"
)

// PEType describes one processing-element type available to co-synthesis.
type PEType struct {
	Name string
	// Cost is the co-synthesis price of instantiating this PE (abstract
	// dollars; the co-synthesis loop minimizes it subject to the deadline).
	Cost float64
	// Area is the die area in m² used by the floorplanner and thermal model.
	Area float64
	// IdlePower is the PE's idle dissipation in W (leaks even when no
	// task runs; the power profile accounts for it).
	IdlePower float64
}

// Validate reports the first implausible field.
func (p PEType) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("techlib: PE type with empty name")
	case !(p.Cost > 0):
		return fmt.Errorf("techlib: PE type %q has non-positive cost %g", p.Name, p.Cost)
	case !(p.Area > 0):
		return fmt.Errorf("techlib: PE type %q has non-positive area %g", p.Name, p.Area)
	case p.IdlePower < 0 || math.IsNaN(p.IdlePower):
		return fmt.Errorf("techlib: PE type %q has invalid idle power %g", p.Name, p.IdlePower)
	}
	return nil
}

// Entry is the library record for one (task type, PE type) pair.
type Entry struct {
	WCET float64 // worst-case execution time, scheduler time units
	WCPC float64 // worst-case power consumption while executing, W
}

// Energy returns the worst-case energy of one execution, WCET × WCPC.
func (e Entry) Energy() float64 { return e.WCET * e.WCPC }

// Valid reports whether the entry denotes a runnable mapping.
func (e Entry) Valid() bool {
	return e.WCET > 0 && !math.IsInf(e.WCET, 0) && e.WCPC > 0 && !math.IsInf(e.WCPC, 0) &&
		!math.IsNaN(e.WCET) && !math.IsNaN(e.WCPC)
}

// Library maps (task type, PE type) to Entry. Not every task type needs
// to be runnable on every PE type (ASICs in particular).
type Library struct {
	peTypes   []PEType
	numTTypes int
	// entries[peType][taskType]; ok[peType][taskType] marks runnable pairs.
	entries [][]Entry
	ok      [][]bool
}

// NewLibrary creates a library for numTaskTypes task types.
func NewLibrary(numTaskTypes int) (*Library, error) {
	if numTaskTypes < 1 {
		return nil, fmt.Errorf("techlib: need at least one task type, got %d", numTaskTypes)
	}
	return &Library{numTTypes: numTaskTypes}, nil
}

// NumTaskTypes returns the number of task types the library covers.
func (l *Library) NumTaskTypes() int { return l.numTTypes }

// NumPETypes returns the number of registered PE types.
func (l *Library) NumPETypes() int { return len(l.peTypes) }

// PEType returns the PE type with the given index.
func (l *Library) PEType(i int) PEType { return l.peTypes[i] }

// PETypes returns a copy of the registered PE types.
func (l *Library) PETypes() []PEType {
	out := make([]PEType, len(l.peTypes))
	copy(out, l.peTypes)
	return out
}

// PETypeIndex finds a PE type by name.
func (l *Library) PETypeIndex(name string) (int, bool) {
	for i, p := range l.peTypes {
		if p.Name == name {
			return i, true
		}
	}
	return 0, false
}

// AddPEType registers a PE type with its per-task-type entries. entries
// must have one element per task type; pass runnable=false positions as
// zero entries with the corresponding runnable flag false. A nil runnable
// slice marks every entry runnable.
func (l *Library) AddPEType(pe PEType, entries []Entry, runnable []bool) error {
	if err := pe.Validate(); err != nil {
		return err
	}
	if _, dup := l.PETypeIndex(pe.Name); dup {
		return fmt.Errorf("techlib: duplicate PE type %q", pe.Name)
	}
	if len(entries) != l.numTTypes {
		return fmt.Errorf("techlib: PE type %q has %d entries, want %d", pe.Name, len(entries), l.numTTypes)
	}
	if runnable == nil {
		runnable = make([]bool, l.numTTypes)
		for i := range runnable {
			runnable[i] = true
		}
	}
	if len(runnable) != l.numTTypes {
		return fmt.Errorf("techlib: PE type %q has %d runnable flags, want %d", pe.Name, len(runnable), l.numTTypes)
	}
	for t, e := range entries {
		if runnable[t] && !e.Valid() {
			return fmt.Errorf("techlib: PE type %q task type %d has invalid entry %+v", pe.Name, t, e)
		}
	}
	l.peTypes = append(l.peTypes, pe)
	es := make([]Entry, l.numTTypes)
	copy(es, entries)
	rs := make([]bool, l.numTTypes)
	copy(rs, runnable)
	l.entries = append(l.entries, es)
	l.ok = append(l.ok, rs)
	return nil
}

// Lookup returns the entry for running a task of type taskType on PE
// type peType, and whether that mapping is runnable.
func (l *Library) Lookup(peType, taskType int) (Entry, bool) {
	if peType < 0 || peType >= len(l.peTypes) || taskType < 0 || taskType >= l.numTTypes {
		return Entry{}, false
	}
	if !l.ok[peType][taskType] {
		return Entry{}, false
	}
	return l.entries[peType][taskType], true
}

// MeanWCET returns the average WCET of taskType over all PE types that
// can run it — the node weight used for static criticality.
func (l *Library) MeanWCET(taskType int) (float64, error) {
	var sum float64
	n := 0
	for pe := range l.peTypes {
		if e, ok := l.Lookup(pe, taskType); ok {
			sum += e.WCET
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("techlib: task type %d runnable on no PE type", taskType)
	}
	return sum / float64(n), nil
}

// Validate checks that every task type is runnable on at least one PE
// type, so any task graph over this type universe can be scheduled.
func (l *Library) Validate() error {
	if len(l.peTypes) == 0 {
		return fmt.Errorf("techlib: no PE types registered")
	}
	for t := 0; t < l.numTTypes; t++ {
		if _, err := l.MeanWCET(t); err != nil {
			return err
		}
	}
	return nil
}
