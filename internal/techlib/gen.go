package techlib

import (
	"fmt"
	"math/rand"
)

// GenParams parameterizes the library generator. Speeds are relative to
// a nominal PE (speed 1.0): WCET(i,j) = work_i / speed_j × noise, and
// power grows superlinearly with speed, WCPC(i,j) = power_i × speed_j^2
// × noise, so energy per task grows roughly linearly with speed. The
// exponent 2 follows the classic frequency/voltage-scaling argument the
// paper's power heuristics presuppose.
type GenParams struct {
	NumTaskTypes int
	// MeanWork is the average task work in scheduler time units on the
	// nominal (speed 1.0) PE; per-type work is uniform in [0.5, 1.5]×mean.
	MeanWork float64
	// MeanPower is the average execution power of a task on the nominal
	// PE, in W; per-type power is uniform in [0.5, 1.5]×mean.
	MeanPower float64
	// Noise is the relative jitter applied per (task, PE) pair, e.g. 0.15
	// for ±15%.
	Noise float64
	Seed  int64
}

// PESpec describes one PE type for the generator.
type PESpec struct {
	Name  string
	Speed float64 // relative performance; 1.0 = nominal
	Cost  float64
	Area  float64 // m²
	// Coverage is the fraction of task types this PE can run (specialized
	// PEs cover less). 1.0 = runs everything. The first registered PE
	// type is forced to full coverage so every graph stays schedulable.
	Coverage float64
}

// Generate builds a deterministic library from PE specs.
func Generate(p GenParams, specs []PESpec) (*Library, error) {
	if p.NumTaskTypes < 1 {
		return nil, fmt.Errorf("techlib: NumTaskTypes %d", p.NumTaskTypes)
	}
	if !(p.MeanWork > 0) || !(p.MeanPower > 0) {
		return nil, fmt.Errorf("techlib: mean work/power must be positive (%g, %g)", p.MeanWork, p.MeanPower)
	}
	if p.Noise < 0 || p.Noise >= 1 {
		return nil, fmt.Errorf("techlib: noise %g out of [0,1)", p.Noise)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("techlib: no PE specs")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	lib, err := NewLibrary(p.NumTaskTypes)
	if err != nil {
		return nil, err
	}

	work := make([]float64, p.NumTaskTypes)
	power := make([]float64, p.NumTaskTypes)
	for t := range work {
		work[t] = p.MeanWork * (0.5 + rng.Float64())
		power[t] = p.MeanPower * (0.5 + rng.Float64())
	}
	jitter := func() float64 { return 1 + p.Noise*(2*rng.Float64()-1) }

	for si, s := range specs {
		if !(s.Speed > 0) {
			return nil, fmt.Errorf("techlib: PE spec %q has non-positive speed", s.Name)
		}
		entries := make([]Entry, p.NumTaskTypes)
		runnable := make([]bool, p.NumTaskTypes)
		for t := 0; t < p.NumTaskTypes; t++ {
			covered := si == 0 || s.Coverage >= 1 || rng.Float64() < s.Coverage
			runnable[t] = covered
			if covered {
				entries[t] = Entry{
					WCET: work[t] / s.Speed * jitter(),
					WCPC: power[t] * s.Speed * s.Speed * jitter(),
				}
			}
		}
		pe := PEType{Name: s.Name, Cost: s.Cost, Area: s.Area, IdlePower: 0.1 * s.Speed}
		if err := lib.AddPEType(pe, entries, runnable); err != nil {
			return nil, err
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

// CoSynthesisSpecs returns the heterogeneous PE palette the co-synthesis
// loop selects from: a slow/cheap core, the nominal core, a fast/hot
// core, and a very fast, expensive core with partial coverage
// (ASIC-like).
func CoSynthesisSpecs() []PESpec {
	return []PESpec{
		{Name: "pe-slow", Speed: 0.6, Cost: 40, Area: 9e-6, Coverage: 1.0},
		{Name: "pe-med", Speed: 1.0, Cost: 80, Area: 16e-6, Coverage: 1.0},
		{Name: "pe-fast", Speed: 1.6, Cost: 160, Area: 25e-6, Coverage: 1.0},
		{Name: "pe-turbo", Speed: 2.2, Cost: 300, Area: 36e-6, Coverage: 0.75},
	}
}

// PlatformSpecs returns the paper's "four identical PEs": same nominal
// speed, cost and area, but each instance gets its own library row, so
// the per-(task, PE) jitter of Generate produces TGFF-style tables in
// which the same task has slightly different WCET/WCPC on each instance.
// That per-instance variation is what lets the power heuristics reduce
// total power even on the homogeneous platform (paper Table 1, right).
func PlatformSpecs() []PESpec {
	out := make([]PESpec, 0, 4)
	for _, n := range PlatformPETypeNames() {
		out = append(out, PESpec{Name: n, Speed: 1.0, Cost: 80, Area: 16e-6, Coverage: 1.0})
	}
	return out
}

// PlatformPETypeNames lists the four platform PE type names in instance
// order.
func PlatformPETypeNames() []string {
	return []string{"pe-med0", "pe-med1", "pe-med2", "pe-med3"}
}

// StandardSpecs returns the full PE palette: the co-synthesis types plus
// the four platform instances.
func StandardSpecs() []PESpec {
	return append(CoSynthesisSpecs(), PlatformSpecs()...)
}

// StandardLibrary returns the deterministic library shared by the
// experiments: 8 task types (matching taskgraph.NumTaskTypes), work
// calibrated so the paper benchmarks are schedulable within their
// deadlines on a 4-PE platform, power calibrated so total benchmark
// power lands in the paper's 6–45 W band.
func StandardLibrary() (*Library, error) {
	return Generate(GenParams{
		NumTaskTypes: 8,
		MeanWork:     100,
		MeanPower:    6.0,
		Noise:        0.35,
		Seed:         2005, // DATE 2005
	}, StandardSpecs())
}

// PlatformPEType is the nominal core type name (used by tests and as the
// co-synthesis seed PE).
const PlatformPEType = "pe-med"
