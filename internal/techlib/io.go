package techlib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the library in the repository's .lib text format:
//
//	tasktypes <n>
//	petype <name> <cost> <area> <idlepower>
//	entry <peName> <taskType> <wcet> <wcpc>
//
// Only runnable entries are emitted; absence means not runnable.
func (l *Library) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# technology library: %d PE types x %d task types\n",
		len(l.peTypes), l.numTTypes)
	fmt.Fprintf(bw, "tasktypes %d\n", l.numTTypes)
	for _, pe := range l.peTypes {
		fmt.Fprintf(bw, "petype %s %g %g %g\n", pe.Name, pe.Cost, pe.Area, pe.IdlePower)
	}
	for pi, pe := range l.peTypes {
		for t := 0; t < l.numTTypes; t++ {
			if e, ok := l.Lookup(pi, t); ok {
				fmt.Fprintf(bw, "entry %s %d %.9g %.9g\n", pe.Name, t, e.WCET, e.WCPC)
			}
		}
	}
	return bw.Flush()
}

// ReadLibrary parses a .lib stream (see Write).
func ReadLibrary(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	var lib *Library
	lineNo := 0
	// Entries are buffered until all petype lines are seen, then applied;
	// the format allows them interleaved, so stage everything.
	type staged struct {
		pe      PEType
		entries []Entry
		run     []bool
	}
	var stages []staged
	stageIndex := map[string]int{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("techlib: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "tasktypes":
			if len(fields) != 2 {
				return nil, bad("tasktypes wants 1 argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, bad("bad tasktypes count")
			}
			lib, err = NewLibrary(n)
			if err != nil {
				return nil, fmt.Errorf("techlib: line %d: %w", lineNo, err)
			}
		case "petype":
			if lib == nil {
				return nil, bad("petype before tasktypes")
			}
			if len(fields) != 5 {
				return nil, bad("petype wants 4 arguments")
			}
			vals := make([]float64, 3)
			for i, s := range fields[2:] {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, bad("bad petype number")
				}
				vals[i] = v
			}
			name := fields[1]
			if _, dup := stageIndex[name]; dup {
				return nil, bad("duplicate petype")
			}
			stageIndex[name] = len(stages)
			stages = append(stages, staged{
				pe:      PEType{Name: name, Cost: vals[0], Area: vals[1], IdlePower: vals[2]},
				entries: make([]Entry, lib.NumTaskTypes()),
				run:     make([]bool, lib.NumTaskTypes()),
			})
		case "entry":
			if lib == nil {
				return nil, bad("entry before tasktypes")
			}
			if len(fields) != 5 {
				return nil, bad("entry wants 4 arguments")
			}
			si, ok := stageIndex[fields[1]]
			if !ok {
				return nil, bad("entry for unknown petype")
			}
			tt, err := strconv.Atoi(fields[2])
			if err != nil || tt < 0 || tt >= lib.NumTaskTypes() {
				return nil, bad("bad entry task type")
			}
			wcet, err1 := strconv.ParseFloat(fields[3], 64)
			wcpc, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, bad("bad entry numbers")
			}
			stages[si].entries[tt] = Entry{WCET: wcet, WCPC: wcpc}
			stages[si].run[tt] = true
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("techlib: read: %w", err)
	}
	if lib == nil {
		return nil, fmt.Errorf("techlib: missing tasktypes header")
	}
	for _, st := range stages {
		if err := lib.AddPEType(st.pe, st.entries, st.run); err != nil {
			return nil, err
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}
