package techlib

import (
	"strings"
	"testing"
)

func genParams(seed int64) GenParams {
	return GenParams{NumTaskTypes: 4, MeanWork: 100, MeanPower: 6, Noise: 0.2, Seed: seed}
}

func libText(t *testing.T, p GenParams) string {
	t.Helper()
	lib, err := Generate(p, CoSynthesisSpecs())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := lib.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// Seed zero is a valid seed and must be honored verbatim — the
// library-generator counterpart of the CoSynthConfig.SeedSet
// regression: no code path may rewrite an explicit zero to a "default"
// seed. (Audited for PR 4: Generate passes p.Seed straight to
// rand.NewSource.)
func TestGenerateSeedZeroHonored(t *testing.T) {
	zeroA := libText(t, genParams(0))
	zeroB := libText(t, genParams(0))
	if zeroA != zeroB {
		t.Error("seed 0 is not deterministic")
	}
	if one := libText(t, genParams(1)); zeroA == one {
		t.Error("seed 0 generated the same library as seed 1 (seed rewritten?)")
	}
}

func TestGenerateSeedChangesLibrary(t *testing.T) {
	if libText(t, genParams(7)) == libText(t, genParams(8)) {
		t.Error("different seeds generated identical libraries")
	}
}
