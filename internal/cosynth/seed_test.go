package cosynth

import (
	"fmt"
	"testing"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/techlib"
)

// Regression for the seed-zero bug: withDefaults used to rewrite an
// explicit Seed of 0 to 1 unconditionally, making seed 0 unusable.
func TestCoSynthSeedZeroHonored(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	implicit := CoSynthConfig{}
	c, err := implicit.withDefaults(lib)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 1 {
		t.Errorf("unset seed should default to 1, got %d", c.Seed)
	}
	explicit := CoSynthConfig{Seed: 0, SeedSet: true}
	c, err = explicit.withDefaults(lib)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 0 {
		t.Errorf("explicit zero seed rewritten to %d", c.Seed)
	}
}

// Seed 0 and seed 1 must be able to produce different floorplans — the
// point of making zero expressible. The GA is deterministic per seed,
// so two runs differing only in seed exercising distinct random streams
// should find distinct layouts for a heterogeneous block set.
func TestSeedZeroAndOneProduceDifferentFloorplans(t *testing.T) {
	var blocks []floorplan.Block
	for i, area := range []float64{16e-6, 9e-6, 25e-6, 4e-6, 12e-6, 20e-6} {
		blocks = append(blocks, floorplan.Block{
			Name: fmt.Sprintf("b%d", i), Area: area, MinAspect: 0.5, MaxAspect: 2,
		})
	}
	plan := func(seed int64) string {
		cfg := floorplan.DefaultGAConfig()
		cfg.Generations = 8
		cfg.Seed = seed
		res, err := floorplan.RunGA(blocks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for _, b := range res.Plan.Blocks() {
			out += fmt.Sprintf("%s:%g,%g,%g,%g;", b.Name, b.Rect.X, b.Rect.Y, b.Rect.W, b.Rect.H)
		}
		return out
	}
	p0, p1 := plan(0), plan(1)
	if p0 == p1 {
		t.Errorf("seeds 0 and 1 produced identical floorplans:\n%s", p0)
	}
	if again := plan(0); again != p0 {
		t.Errorf("seed 0 not deterministic:\n%s\nvs\n%s", p0, again)
	}
}
