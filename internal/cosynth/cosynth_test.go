package cosynth

import (
	"math"
	"testing"

	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func stdLib(t testing.TB) *techlib.Library {
	t.Helper()
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func bm(t testing.TB, name string) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunPlatformBaseline(t *testing.T) {
	res, err := RunPlatform(bm(t, "Bm1"), stdLib(t), PlatformConfig{Policy: sched.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if !res.Metrics.Feasible {
		t.Errorf("Bm1 baseline infeasible on platform: makespan %v", res.Metrics.Makespan)
	}
	if res.Metrics.TotalPower < 5 || res.Metrics.TotalPower > 45 {
		t.Errorf("total power %v outside the paper's band", res.Metrics.TotalPower)
	}
	if res.Metrics.MaxTemp < res.Metrics.AvgTemp {
		t.Error("max temp below avg temp")
	}
	if len(res.Arch.PEs) != 4 {
		t.Errorf("platform has %d PEs", len(res.Arch.PEs))
	}
	if res.Plan.NumBlocks() != 4 {
		t.Error("platform floorplan wrong")
	}
}

func TestRunPlatformAllPolicies(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	for _, p := range sched.Policies() {
		res, err := RunPlatform(g, lib, PlatformConfig{Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Metrics.Feasible {
			t.Errorf("%v: infeasible (makespan %v)", p, res.Metrics.Makespan)
		}
	}
}

func TestRunPlatformThermalBeatsBaselineTemps(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm3")
	base, err := RunPlatform(g, lib, PlatformConfig{Policy: sched.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	therm, err := RunPlatform(g, lib, PlatformConfig{Policy: sched.ThermalAware})
	if err != nil {
		t.Fatal(err)
	}
	if therm.Metrics.MaxTemp >= base.Metrics.MaxTemp {
		t.Errorf("thermal max %v should beat baseline max %v",
			therm.Metrics.MaxTemp, base.Metrics.MaxTemp)
	}
	if therm.Metrics.AvgTemp >= base.Metrics.AvgTemp {
		t.Errorf("thermal avg %v should beat baseline avg %v",
			therm.Metrics.AvgTemp, base.Metrics.AvgTemp)
	}
}

func TestRunPlatformCustomHotSpotConfig(t *testing.T) {
	hs := hotspot.DefaultConfig()
	hs.AmbientC = 25
	res, err := RunPlatform(bm(t, "Bm1"), stdLib(t), PlatformConfig{
		Policy: sched.Baseline, HotSpot: &hs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 20 °C cooler ambient shifts temperatures down.
	if res.Metrics.MaxTemp > 100 {
		t.Errorf("max temp %v with 25 °C ambient seems unshifted", res.Metrics.MaxTemp)
	}
}

func TestRunCoSynthesisMeetsDeadline(t *testing.T) {
	lib := stdLib(t)
	for _, name := range []string{"Bm1", "Bm2"} {
		g := bm(t, name)
		res, err := RunCoSynthesis(g, lib, CoSynthConfig{
			Policy: sched.MinTaskEnergy, FloorplanGenerations: 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if !res.Metrics.Feasible {
			t.Errorf("%s: co-synthesis missed deadline (makespan %v)", name, res.Metrics.Makespan)
		}
		if res.Metrics.Cost <= 0 {
			t.Errorf("%s: cost %v", name, res.Metrics.Cost)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("%s: invalid floorplan: %v", name, err)
		}
		if res.Plan.NumBlocks() != len(res.Arch.PEs) {
			t.Errorf("%s: floorplan/arch mismatch", name)
		}
	}
}

func TestRunCoSynthesisThermalFlow(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	res, err := RunCoSynthesis(g, lib, CoSynthConfig{
		Policy: sched.ThermalAware, FloorplanGenerations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics.Feasible {
		t.Errorf("thermal co-synthesis missed deadline (makespan %v)", res.Metrics.Makespan)
	}
	if math.IsNaN(res.Metrics.MaxTemp) || res.Metrics.MaxTemp < 45 {
		t.Errorf("implausible max temp %v", res.Metrics.MaxTemp)
	}
}

func TestRunCoSynthesisUsesFewPEs(t *testing.T) {
	// Cost-driven selection should not instantiate more PEs than MaxPEs
	// and should prune unneeded ones.
	lib := stdLib(t)
	res, err := RunCoSynthesis(bm(t, "Bm1"), lib, CoSynthConfig{
		Policy: sched.Baseline, FloorplanGenerations: 5, MaxPEs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Arch.PEs); n < 1 || n > 5 {
		t.Errorf("co-synthesis produced %d PEs", n)
	}
}

func TestRunCoSynthesisErrors(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	if _, err := RunCoSynthesis(g, lib, CoSynthConfig{
		Policy: sched.Baseline, CandidateTypes: []string{"nonexistent"},
	}); err == nil {
		t.Error("unknown candidate type accepted")
	}
	if _, err := RunCoSynthesis(g, lib, CoSynthConfig{Policy: sched.Baseline, MaxPEs: -1}); err == nil {
		t.Error("negative MaxPEs accepted")
	}
	if _, err := RunCoSynthesis(taskgraph.NewGraph("empty", 1), lib, CoSynthConfig{}); err == nil {
		t.Error("empty graph accepted")
	}
}

// The paper's cross-table observation: the platform architecture yields
// lower temperatures than the customized (cost-minimized) architecture
// under the thermal-aware ASP, because four identical PEs let the
// scheduler balance the load.
func TestPlatformCoolerThanCoSynthesisThermal(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	plat, err := RunPlatform(g, lib, PlatformConfig{Policy: sched.ThermalAware})
	if err != nil {
		t.Fatal(err)
	}
	cos, err := RunCoSynthesis(g, lib, CoSynthConfig{
		Policy: sched.ThermalAware, FloorplanGenerations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Metrics.MaxTemp > cos.Metrics.MaxTemp+1 {
		t.Errorf("platform thermal max %v should not exceed co-synthesis max %v",
			plat.Metrics.MaxTemp, cos.Metrics.MaxTemp)
	}
}
