package cosynth

import (
	"context"
	"fmt"
	"math"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// PlatformConfig parameterizes the platform-based flow (Fig. 1b).
type PlatformConfig struct {
	// Policy selects the ASP variant; the thermal oracle is wired
	// automatically for ThermalAware.
	Policy sched.Policy
	// Sched overrides the scheduler configuration. Leave zero to use
	// sched.DefaultConfig(Policy).
	Sched *sched.Config
	// BusTimePerUnit is the shared-bus communication rate (time units per
	// data unit). Zero means DefaultBusTimePerUnit.
	BusTimePerUnit float64
	// HotSpot overrides the thermal model configuration; nil means
	// hotspot.DefaultConfig.
	HotSpot *hotspot.Config
	// Models supplies thermal models; nil means hotspot.NewModel. The
	// Engine layer injects its factorization cache here.
	Models ModelProvider
	// Platform overrides the paper's fixed 4-PE substrate with a custom
	// platform description — generated scenarios route their
	// heterogeneous platforms here. Nil keeps the paper platform.
	Platform *PlatformDesc
}

// PlatformDesc describes a custom platform substrate: one PE instance
// per library type name, arranged in the named floorplan layout. PE
// instances are named pe0, pe1, … in order, and the floorplan's blocks
// carry the same names so the thermal oracle can map between them.
type PlatformDesc struct {
	// TypeNames lists the technology-library PE type of each instance.
	TypeNames []string
	// Layout is "row" (default) or "grid".
	Layout string
}

// DefaultBusTimePerUnit is the communication rate used throughout the
// experiments: a 40-unit transfer costs two time units, small against
// ~100-unit tasks.
const DefaultBusTimePerUnit = 0.05

// BuildPlatform constructs the paper's platform substrate: the four
// "identical" PEs in a row floorplan with its thermal model and oracle.
// A row (not a 2×2 grid) is used so the platform has the edge/centre
// asymmetry every real package exhibits; see DESIGN.md.
func BuildPlatform(lib *techlib.Library, busTimePerUnit float64, hsCfg hotspot.Config) (sched.Architecture, *floorplan.Floorplan, *hotspot.Model, *sched.ModelOracle, error) {
	return buildPlatform(lib, busTimePerUnit, hsCfg, nil, nil)
}

// BuildPlatformDesc is BuildPlatform for a custom platform description
// (generated scenario/stream platforms) with an optional shared model
// provider, so callers outside this package — the Engine's stream flow —
// reuse the same substrate construction the offline flows go through.
func BuildPlatformDesc(lib *techlib.Library, busTimePerUnit float64, hsCfg hotspot.Config, models ModelProvider, desc *PlatformDesc) (sched.Architecture, *floorplan.Floorplan, *hotspot.Model, *sched.ModelOracle, error) {
	return buildPlatform(lib, busTimePerUnit, hsCfg, models, desc)
}

func buildPlatform(lib *techlib.Library, busTimePerUnit float64, hsCfg hotspot.Config, models ModelProvider, desc *PlatformDesc) (sched.Architecture, *floorplan.Floorplan, *hotspot.Model, *sched.ModelOracle, error) {
	typeNames := techlib.PlatformPETypeNames()
	if desc != nil {
		typeNames = desc.TypeNames
	}
	arch, err := sched.PlatformFromTypes(lib, typeNames, busTimePerUnit)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	fp, err := platformFloorplan(lib, arch, desc)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	model, err := models.newModel(fp, hsCfg)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	oracle, err := sched.NewModelOracle(model, arch)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	return arch, fp, model, oracle, nil
}

// platformFloorplan lays the platform's PEs out on the die. The paper
// platform (nil desc) keeps its historical row of identical blocks; a
// custom platform uses per-PE areas from the library, in a row or a
// near-square grid.
func platformFloorplan(lib *techlib.Library, arch sched.Architecture, desc *PlatformDesc) (*floorplan.Floorplan, error) {
	if desc == nil {
		area := lib.PEType(arch.PEs[0].Type).Area
		return floorplan.Row("pe", len(arch.PEs), area)
	}
	areas := make([]float64, len(arch.PEs))
	for i, pe := range arch.PEs {
		areas[i] = lib.PEType(pe.Type).Area
	}
	if desc.Layout == "grid" {
		return floorplan.GridOf(arch.PENames(), areas)
	}
	return floorplan.RowOf(arch.PENames(), areas)
}

// RunPlatform executes the platform-based flow: schedule g on the fixed
// 4-PE platform under the configured policy and extract the final
// temperature profile.
func RunPlatform(g *taskgraph.Graph, lib *techlib.Library, cfg PlatformConfig) (*Result, error) {
	return RunPlatformCtx(context.Background(), g, lib, cfg)
}

// RunPlatformCtx is RunPlatform with cancellation threaded into the
// ASP's greedy loop.
func RunPlatformCtx(ctx context.Context, g *taskgraph.Graph, lib *techlib.Library, cfg PlatformConfig) (*Result, error) {
	bus := cfg.BusTimePerUnit
	if bus == 0 {
		bus = DefaultBusTimePerUnit
	}
	hs := hotspot.DefaultConfig()
	if cfg.HotSpot != nil {
		hs = *cfg.HotSpot
	}
	arch, fp, model, oracle, err := buildPlatform(lib, bus, hs, cfg.Models, cfg.Platform)
	if err != nil {
		return nil, err
	}
	sc := sched.DefaultConfig(cfg.Policy)
	if cfg.Sched != nil {
		sc = *cfg.Sched
		sc.Policy = cfg.Policy
	}
	if cfg.Policy == sched.ThermalAware {
		sc.Oracle = oracle
	}
	s, err := sched.AllocateAndScheduleCtx(ctx, g, arch, lib, sc)
	if err != nil {
		return nil, fmt.Errorf("cosynth: platform schedule: %w", err)
	}
	m, err := computeMetrics(s, oracle)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(m.MaxTemp) {
		return nil, fmt.Errorf("cosynth: platform produced NaN temperature")
	}
	return &Result{
		Schedule: s, Arch: arch, Plan: fp, Model: model, Oracle: oracle, Metrics: m,
	}, nil
}
