package cosynth

import (
	"context"
	"fmt"
	"math"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// PlatformConfig parameterizes the platform-based flow (Fig. 1b).
type PlatformConfig struct {
	// Policy selects the ASP variant; the thermal oracle is wired
	// automatically for ThermalAware.
	Policy sched.Policy
	// Sched overrides the scheduler configuration. Leave zero to use
	// sched.DefaultConfig(Policy).
	Sched *sched.Config
	// BusTimePerUnit is the shared-bus communication rate (time units per
	// data unit). Zero means DefaultBusTimePerUnit.
	BusTimePerUnit float64
	// HotSpot overrides the thermal model configuration; nil means
	// hotspot.DefaultConfig.
	HotSpot *hotspot.Config
	// Models supplies thermal models; nil means hotspot.NewModel. The
	// Engine layer injects its factorization cache here.
	Models ModelProvider
}

// DefaultBusTimePerUnit is the communication rate used throughout the
// experiments: a 40-unit transfer costs two time units, small against
// ~100-unit tasks.
const DefaultBusTimePerUnit = 0.05

// BuildPlatform constructs the paper's platform substrate: the four
// "identical" PEs in a row floorplan with its thermal model and oracle.
// A row (not a 2×2 grid) is used so the platform has the edge/centre
// asymmetry every real package exhibits; see DESIGN.md.
func BuildPlatform(lib *techlib.Library, busTimePerUnit float64, hsCfg hotspot.Config) (sched.Architecture, *floorplan.Floorplan, *hotspot.Model, *sched.ModelOracle, error) {
	return buildPlatform(lib, busTimePerUnit, hsCfg, nil)
}

func buildPlatform(lib *techlib.Library, busTimePerUnit float64, hsCfg hotspot.Config, models ModelProvider) (sched.Architecture, *floorplan.Floorplan, *hotspot.Model, *sched.ModelOracle, error) {
	arch, err := sched.PlatformFromTypes(lib, techlib.PlatformPETypeNames(), busTimePerUnit)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	area := lib.PEType(arch.PEs[0].Type).Area
	fp, err := floorplan.Row("pe", len(arch.PEs), area)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	model, err := models.newModel(fp, hsCfg)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	oracle, err := sched.NewModelOracle(model, arch)
	if err != nil {
		return sched.Architecture{}, nil, nil, nil, err
	}
	return arch, fp, model, oracle, nil
}

// RunPlatform executes the platform-based flow: schedule g on the fixed
// 4-PE platform under the configured policy and extract the final
// temperature profile.
func RunPlatform(g *taskgraph.Graph, lib *techlib.Library, cfg PlatformConfig) (*Result, error) {
	return RunPlatformCtx(context.Background(), g, lib, cfg)
}

// RunPlatformCtx is RunPlatform with cancellation threaded into the
// ASP's greedy loop.
func RunPlatformCtx(ctx context.Context, g *taskgraph.Graph, lib *techlib.Library, cfg PlatformConfig) (*Result, error) {
	bus := cfg.BusTimePerUnit
	if bus == 0 {
		bus = DefaultBusTimePerUnit
	}
	hs := hotspot.DefaultConfig()
	if cfg.HotSpot != nil {
		hs = *cfg.HotSpot
	}
	arch, fp, model, oracle, err := buildPlatform(lib, bus, hs, cfg.Models)
	if err != nil {
		return nil, err
	}
	sc := sched.DefaultConfig(cfg.Policy)
	if cfg.Sched != nil {
		sc = *cfg.Sched
		sc.Policy = cfg.Policy
	}
	if cfg.Policy == sched.ThermalAware {
		sc.Oracle = oracle
	}
	s, err := sched.AllocateAndScheduleCtx(ctx, g, arch, lib, sc)
	if err != nil {
		return nil, fmt.Errorf("cosynth: platform schedule: %w", err)
	}
	m, err := computeMetrics(s, oracle)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(m.MaxTemp) {
		return nil, fmt.Errorf("cosynth: platform produced NaN temperature")
	}
	return &Result{
		Schedule: s, Arch: arch, Plan: fp, Model: model, Oracle: oracle, Metrics: m,
	}, nil
}
