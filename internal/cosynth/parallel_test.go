package cosynth

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"thermalsched/internal/sched"
	"thermalsched/internal/search"
)

// cosynthKey captures the observable outcome of a co-synthesis run —
// metrics, architecture, floorplan geometry and per-task assignment —
// for byte-identity comparisons across parallelism levels.
func cosynthKey(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "metrics=%+v\n", r.Metrics)
	for _, pe := range r.Arch.PEs {
		fmt.Fprintf(&b, "pe=%s type=%d\n", pe.Name, pe.Type)
	}
	if err := r.Plan.Write(&b); err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(&b, r.Schedule.Gantt())
	return b.String()
}

// The co-synthesis search visits exactly the architectures the serial
// flow visits: candidate neighborhoods are enumerated serially,
// evaluated over the pool, and selected in submission order, so the
// result is byte-identical at every parallelism level.
func TestCoSynthesisParallelMatchesSerial(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	for _, policy := range []sched.Policy{sched.MinTaskEnergy, sched.ThermalAware} {
		serial, err := RunCoSynthesis(g, lib, CoSynthConfig{
			Policy: policy, FloorplanGenerations: 8, Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := cosynthKey(t, serial)
		for _, p := range []int{2, 4} {
			got, err := RunCoSynthesis(g, lib, CoSynthConfig{
				Policy: policy, FloorplanGenerations: 8, Parallelism: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			if key := cosynthKey(t, got); key != want {
				t.Errorf("policy %v P=%d diverged from serial:\n got %s\nwant %s", policy, p, key, want)
			}
		}
	}
}

// A shared pool (the Engine's wiring) behaves like Parallelism, and the
// final Result aggregates the floorplanner's search accounting.
func TestCoSynthesisSharedPoolAndStats(t *testing.T) {
	lib := stdLib(t)
	g := bm(t, "Bm1")
	pool := search.NewPool(4)
	res, err := RunCoSynthesisCtx(context.Background(), g, lib, CoSynthConfig{
		Policy: sched.ThermalAware, FloorplanGenerations: 8, Search: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchEvals <= 0 {
		t.Errorf("SearchEvals = %d, want > 0", res.SearchEvals)
	}
	if res.SearchMemoHits <= 0 {
		t.Errorf("SearchMemoHits = %d, want > 0 (convergent GA populations revisit genomes)", res.SearchMemoHits)
	}
	serial, err := RunCoSynthesis(g, lib, CoSynthConfig{
		Policy: sched.ThermalAware, FloorplanGenerations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cosynthKey(t, res) != cosynthKey(t, serial) {
		t.Error("shared-pool run diverged from serial")
	}
}
