package cosynth

import (
	"context"
	"fmt"
	"math"
	"sort"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/search"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// CoSynthConfig parameterizes the co-synthesis flow (Fig. 1a).
type CoSynthConfig struct {
	// Policy selects the ASP variant used while evaluating candidate
	// architectures and for the final schedule.
	Policy sched.Policy
	// Sched overrides the scheduler configuration (Policy is forced).
	Sched *sched.Config
	// CandidateTypes are the library PE type names co-synthesis may
	// instantiate. Nil means the co-synthesis palette
	// (techlib.CoSynthesisSpecs names).
	CandidateTypes []string
	// MaxPEs caps the architecture size. Zero means 6.
	MaxPEs int
	// BusTimePerUnit as in PlatformConfig.
	BusTimePerUnit float64
	// HotSpot overrides the thermal model configuration.
	HotSpot *hotspot.Config
	// FloorplanGenerations sizes the GA floorplanner effort per candidate
	// architecture. Zero means 30.
	FloorplanGenerations int
	// Seed drives the GA floorplanner. For backwards compatibility a
	// zero Seed means 1 unless SeedSet is true.
	Seed int64
	// SeedSet marks Seed as explicitly chosen, making a literal zero
	// seed usable. The Engine API sets this whenever a request carries
	// a seed.
	SeedSet bool
	// Models supplies thermal models; nil means hotspot.NewModel. The
	// Engine layer injects its factorization cache here.
	Models ModelProvider
	// Parallelism bounds the concurrent candidate-architecture
	// evaluations of the co-synthesis neighborhood loops and, through
	// the shared token pool, the GA floorplanner's packing evaluations
	// inside each. Candidate enumeration and selection stay serial and
	// in submission order, so the Result is byte-identical for every
	// value. 0 and 1 both mean serial.
	Parallelism int
	// Search shares an enclosing token pool (the Engine passes its
	// process-wide pool so concurrent requests compose without
	// oversubscription). When set it takes precedence over Parallelism.
	Search *search.Pool
}

func (c *CoSynthConfig) withDefaults(lib *techlib.Library) (CoSynthConfig, error) {
	out := *c
	if out.CandidateTypes == nil {
		for _, s := range techlib.CoSynthesisSpecs() {
			out.CandidateTypes = append(out.CandidateTypes, s.Name)
		}
	}
	for _, name := range out.CandidateTypes {
		if _, ok := lib.PETypeIndex(name); !ok {
			return out, fmt.Errorf("cosynth: candidate PE type %q not in library", name)
		}
	}
	if out.MaxPEs == 0 {
		out.MaxPEs = 6
	}
	if out.MaxPEs < 1 {
		return out, fmt.Errorf("cosynth: MaxPEs %d invalid", out.MaxPEs)
	}
	if out.BusTimePerUnit == 0 {
		out.BusTimePerUnit = DefaultBusTimePerUnit
	}
	if out.FloorplanGenerations == 0 {
		out.FloorplanGenerations = 30
	}
	//thermalvet:allow seedzero(guarded by the SeedSet presence flag: zero with SeedSet unset means "not provided" and takes the historical default 1; an explicit Seed 0 sets SeedSet and is honored verbatim)
	if out.Seed == 0 && !out.SeedSet {
		out.Seed = 1
	}
	return out, nil
}

// RunCoSynthesis executes the co-synthesis flow: starting from the
// cheapest viable single-PE architecture, it grows/upgrades the PE set
// until the deadline is met, floorplanning every candidate (with the
// thermal objective when the policy is thermal-aware) and scheduling
// with the configured ASP; finally it prunes PEs that the deadline does
// not need, minimizing cost.
func RunCoSynthesis(g *taskgraph.Graph, lib *techlib.Library, cfg CoSynthConfig) (*Result, error) {
	return RunCoSynthesisCtx(context.Background(), g, lib, cfg)
}

// RunCoSynthesisCtx is RunCoSynthesis with cancellation: ctx is checked
// before every candidate-architecture evaluation and threaded into the
// GA floorplanner and the ASP, so long co-synthesis runs abort promptly.
//
// With Parallelism > 1 (or a shared Search pool) each neighborhood of
// candidate architectures is enumerated serially, evaluated
// concurrently, and selected in submission order, so the search visits
// exactly the architectures the serial flow visits and the Result is
// byte-identical for every parallelism level.
func RunCoSynthesisCtx(ctx context.Context, g *taskgraph.Graph, lib *techlib.Library, cfg CoSynthConfig) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c, err := cfg.withDefaults(lib)
	if err != nil {
		return nil, err
	}
	pool := c.Search
	if pool == nil {
		pool = search.NewPool(c.Parallelism)
	}

	// Search accounting: floorplanner packing evaluations and memo hits
	// summed over every candidate architecture explored, reported on the
	// final Result.
	totEvals, totMemoHits := 0, 0
	account := func(rs ...*Result) {
		for _, r := range rs {
			if r != nil {
				totEvals += r.SearchEvals
				totMemoHits += r.SearchMemoHits
			}
		}
	}
	// evaluateAll fans one candidate neighborhood over the pool, filling
	// results in submission order; the lowest-index error wins, exactly
	// as in the serial flow.
	evaluateAll := func(optss [][]int) ([]*Result, error) {
		out := make([]*Result, len(optss))
		err := pool.Map(len(optss), func(i int) error {
			r, err := evaluate(ctx, g, lib, optss[i], c, pool)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		account(out...)
		return out, nil
	}

	// Candidate type indices sorted by cost (cheapest first).
	type cand struct {
		name string
		idx  int
		cost float64
	}
	var cands []cand
	for _, name := range c.CandidateTypes {
		i, _ := lib.PETypeIndex(name)
		cands = append(cands, cand{name: name, idx: i, cost: lib.PEType(i).Cost})
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].cost < cands[i].cost {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}

	// Task types used by the graph (the initial PE must cover them
	// all), deduplicated through a set but iterated as a sorted slice
	// so coverage failures always report deterministically.
	usedSet := map[int]bool{}
	for _, t := range g.Tasks() {
		usedSet[t.Type] = true
	}
	used := make([]int, 0, len(usedSet))
	for tt := range usedSet {
		used = append(used, tt)
	}
	sort.Ints(used)
	covers := func(typeIdx int) bool {
		for _, tt := range used {
			if _, ok := lib.Lookup(typeIdx, tt); !ok {
				return false
			}
		}
		return true
	}
	unionCovers := func(types []int) bool {
		for _, tt := range used {
			found := false
			for _, ti := range types {
				if _, ok := lib.Lookup(ti, tt); ok {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return len(types) > 0
	}

	var seedType *cand
	for i := range cands {
		if covers(cands[i].idx) {
			seedType = &cands[i]
			break
		}
	}
	if seedType == nil {
		return nil, fmt.Errorf("cosynth: no candidate PE type covers all task types of %q", g.Name)
	}

	types := []int{seedType.idx} // current architecture as a type multiset
	best, err := evaluate(ctx, g, lib, types, c, pool)
	if err != nil {
		return nil, err
	}
	account(best)

	// Grow until feasible: at each step try appending each candidate type
	// and upgrading each existing slot to each candidate type. Among
	// infeasible variants the lowest makespan wins (progress towards the
	// deadline); once variants are feasible, the thermal-aware flow picks
	// the coolest (the Fig. 1a "meets requirement?" check includes the
	// thermal goal) while the power-aware flows pick the cheapest (the
	// classic co-synthesis cost objective).
	for !best.Metrics.Feasible && len(types) < c.MaxPEs {
		type option struct {
			types []int
			res   *Result
		}
		var bestOpt *option
		better := func(a, b *Result) bool {
			if a.Metrics.Feasible != b.Metrics.Feasible {
				return a.Metrics.Feasible
			}
			if !a.Metrics.Feasible {
				if math.Abs(a.Metrics.Makespan-b.Metrics.Makespan) > 1e-9 {
					return a.Metrics.Makespan < b.Metrics.Makespan
				}
				return a.Metrics.Cost < b.Metrics.Cost
			}
			if c.Policy == sched.ThermalAware {
				if math.Abs(a.Metrics.MaxTemp-b.Metrics.MaxTemp) > 1e-9 {
					return a.Metrics.MaxTemp < b.Metrics.MaxTemp
				}
			}
			if a.Metrics.Cost != b.Metrics.Cost {
				return a.Metrics.Cost < b.Metrics.Cost
			}
			return a.Metrics.Makespan < b.Metrics.Makespan
		}
		// Enumerate the whole neighborhood first (append candidates,
		// then per-slot upgrades), evaluate it over the pool, and pick
		// the winner in submission order.
		var opts [][]int
		for _, cd := range cands {
			opts = append(opts, append(append([]int{}, types...), cd.idx))
		}
		for slot := range types {
			for _, cd := range cands {
				if cd.idx == types[slot] {
					continue
				}
				upgraded := append([]int{}, types...)
				upgraded[slot] = cd.idx
				if !unionCovers(upgraded) {
					continue
				}
				opts = append(opts, upgraded)
			}
		}
		results, err := evaluateAll(opts)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			if bestOpt == nil || better(r, bestOpt.res) {
				bestOpt = &option{types: opts[i], res: r}
			}
		}
		if bestOpt == nil ||
			(!bestOpt.res.Metrics.Feasible && bestOpt.res.Metrics.Makespan >= best.Metrics.Makespan-1e-9) {
			break // no progress; return the best infeasible solution
		}
		types, best = bestOpt.types, bestOpt.res
	}

	// Thermal-aware growth phase: the Fig. 1a loop keeps iterating while
	// the thermal requirement improves, so once feasible the thermal flow
	// continues to add or swap PEs as long as peak temperature drops
	// meaningfully — trading cost for heat spreading, which is what
	// distinguishes the thermal-aware customized architectures of the
	// paper's Table 2.
	if c.Policy == sched.ThermalAware && best.Metrics.Feasible {
		for len(types) < c.MaxPEs {
			type option struct {
				types []int
				res   *Result
			}
			var bestOpt *option
			var opts [][]int
			for _, cd := range cands {
				opts = append(opts, append(append([]int{}, types...), cd.idx))
			}
			for slot := range types {
				for _, cd := range cands {
					if cd.idx == types[slot] {
						continue
					}
					swapped := append([]int{}, types...)
					swapped[slot] = cd.idx
					if !unionCovers(swapped) {
						continue
					}
					opts = append(opts, swapped)
				}
			}
			results, err := evaluateAll(opts)
			if err != nil {
				return nil, err
			}
			for i, r := range results {
				if !r.Metrics.Feasible {
					continue
				}
				if bestOpt == nil || r.Metrics.MaxTemp < bestOpt.res.Metrics.MaxTemp {
					bestOpt = &option{types: opts[i], res: r}
				}
			}
			if bestOpt == nil || bestOpt.res.Metrics.MaxTemp >= best.Metrics.MaxTemp-0.5 {
				break
			}
			types, best = bestOpt.types, bestOpt.res
		}
	}

	// Prune: drop PEs whose removal keeps the deadline. The power-aware
	// flows prune for cost alone; the thermal-aware flow additionally
	// refuses prunes that heat the die (removing a PE concentrates
	// power), mirroring the thermal goal in the flow's requirement check.
	if best.Metrics.Feasible {
		for changed := true; changed && len(types) > 1; {
			changed = false
			acceptable := func(r *Result) bool {
				if !r.Metrics.Feasible {
					return false
				}
				if c.Policy == sched.ThermalAware && r.Metrics.MaxTemp > best.Metrics.MaxTemp+0.5 {
					return false
				}
				return true
			}
			var opts [][]int
			for slot := 0; slot < len(types); slot++ {
				pruned := append(append([]int{}, types[:slot]...), types[slot+1:]...)
				if !unionCovers(pruned) {
					continue
				}
				opts = append(opts, pruned)
			}
			if pool.Parallel() && !pool.Saturated() {
				// Evaluate every prunable slot concurrently and commit
				// the first acceptable one — the same prune the serial
				// scan below commits, at the cost of speculative work on
				// the later slots. When every token is already held
				// (concurrent requests on a shared pool) the fan-out
				// would run inline anyway, so the saturation probe —
				// a racy hint, both branches commit the same prune —
				// routes to the early-exit serial scan instead of
				// paying for speculation with no concurrency to gain.
				// Errors are collected per slot and surfaced only when
				// the in-order scan reaches them before an acceptable
				// commit, exactly as the serial scan would: a failure
				// in a slot the serial path never evaluates must not
				// fail the parallel run.
				results := make([]*Result, len(opts))
				errs := make([]error, len(opts))
				_ = pool.Map(len(opts), func(i int) error {
					results[i], errs[i] = evaluate(ctx, g, lib, opts[i], c, pool)
					return nil
				})
				account(results...)
				for i, r := range results {
					if errs[i] != nil {
						return nil, errs[i]
					}
					if acceptable(r) {
						types, best = opts[i], r
						changed = true
						break
					}
				}
				continue
			}
			for i := range opts {
				r, err := evaluate(ctx, g, lib, opts[i], c, pool)
				if err != nil {
					return nil, err
				}
				account(r)
				if acceptable(r) {
					types, best = opts[i], r
					changed = true
					break
				}
			}
		}
	}
	best.SearchEvals, best.SearchMemoHits = totEvals, totMemoHits
	return best, nil
}

// evaluate builds a concrete architecture from a type multiset,
// floorplans it, wires the thermal model, runs the ASP, and scores it.
// It is safe for concurrent use (the neighborhood fan-out calls it from
// pool workers); pool is shared with the GA floorplanner so nested
// parallelism stays within one budget.
func evaluate(ctx context.Context, g *taskgraph.Graph, lib *techlib.Library, types []int, c CoSynthConfig, pool *search.Pool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cosynth: cancelled: %w", err)
	}
	arch := sched.Architecture{
		Name:           fmt.Sprintf("cosynth-%dpe", len(types)),
		BusTimePerUnit: c.BusTimePerUnit,
	}
	blocks := make([]floorplan.Block, 0, len(types))
	for i, ti := range types {
		name := fmt.Sprintf("pe%d", i)
		arch.PEs = append(arch.PEs, sched.PE{Name: name, Type: ti})
		blocks = append(blocks, floorplan.Block{
			Name: name, Area: lib.PEType(ti).Area, MinAspect: 0.5, MaxAspect: 2,
		})
	}
	if err := arch.Validate(lib); err != nil {
		return nil, err
	}

	hs := hotspot.DefaultConfig()
	if c.HotSpot != nil {
		hs = *c.HotSpot
	}

	// Pilot schedule (heuristic 3) for the floorplanner's power estimates.
	pilotCfg := sched.DefaultConfig(sched.MinTaskEnergy)
	pilot, err := sched.AllocateAndScheduleCtx(ctx, g, arch, lib, pilotCfg)
	if err != nil {
		return nil, fmt.Errorf("cosynth: pilot schedule: %w", err)
	}
	pilotPow, err := pilot.PEAveragePower(g.Deadline)
	if err != nil {
		return nil, err
	}
	powerByName := make(map[string]float64, len(arch.PEs))
	for i, pe := range arch.PEs {
		powerByName[pe.Name] = pilotPow[i]
	}

	// Floorplan the candidate architecture. The thermal-aware flow runs
	// the GA with the peak-temperature objective (ref [3]); other
	// policies pack for area only.
	gaCfg := floorplan.DefaultGAConfig()
	gaCfg.Generations = c.FloorplanGenerations
	gaCfg.Seed = c.Seed
	gaCfg.Pool = pool
	if c.Policy == sched.ThermalAware {
		gaCfg.Eval = func(fp *floorplan.Floorplan, power map[string]float64) (float64, error) {
			m, err := c.Models.newModel(fp, hs)
			if err != nil {
				return 0, err
			}
			temps, err := m.SteadyState(power)
			if err != nil {
				return 0, err
			}
			return temps.Max(), nil
		}
		gaCfg.Power = powerByName
		gaCfg.TempWeight = 1.0
	} else {
		gaCfg.TempWeight = 0
	}
	fpRes, err := floorplan.RunGACtx(ctx, blocks, gaCfg)
	if err != nil {
		return nil, fmt.Errorf("cosynth: floorplanning: %w", err)
	}

	model, err := c.Models.newModel(fpRes.Plan, hs)
	if err != nil {
		return nil, err
	}
	oracle, err := sched.NewModelOracle(model, arch)
	if err != nil {
		return nil, err
	}

	sc := sched.DefaultConfig(c.Policy)
	if c.Sched != nil {
		sc = *c.Sched
		sc.Policy = c.Policy
	}
	if c.Policy == sched.ThermalAware {
		sc.Oracle = oracle
	}
	s, err := sched.AllocateAndScheduleCtx(ctx, g, arch, lib, sc)
	if err != nil {
		return nil, fmt.Errorf("cosynth: schedule on %s: %w", arch.Name, err)
	}
	m, err := computeMetrics(s, oracle)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule: s, Arch: arch, Plan: fpRes.Plan, Model: model, Oracle: oracle, Metrics: m,
		SearchEvals: fpRes.Evals, SearchMemoHits: fpRes.MemoHits,
	}, nil
}
