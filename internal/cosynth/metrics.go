// Package cosynth implements the two flows of the paper's Figure 1:
//
//   - Fig. 1a, co-synthesis: deadline-driven selection of a customized
//     heterogeneous PE set, with the ASP as the inner routine and the
//     thermal-aware GA floorplanner + HotSpot model in the loop;
//   - Fig. 1b, platform-based design: a fixed platform of four identical
//     PEs with a fixed floorplan, where the ASP issues thermal inquiries
//     against the pre-built model.
//
// One simplification against the literal figure is documented in
// DESIGN.md: instead of invoking the floorplanner inside every ASP
// assignment step, each candidate architecture is floorplanned once
// (thermal-aware when the policy is thermal-aware) using power estimates
// from a pilot schedule; the ASP then runs with a thermal model of that
// fixed floorplan. This keeps the flow's structure — floorplanning and
// temperature extraction inside the co-synthesis loop — at a tractable
// cost.
package cosynth

import (
	"fmt"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
)

// Metrics are the three columns of the paper's tables plus context.
// The JSON field names are part of the serialized Response schema of
// the thermalsched Engine API and the thermschedd service.
type Metrics struct {
	TotalPower float64 `json:"totalPowerW"` // total energy / deadline, W (the "Total Pow." column)
	MaxTemp    float64 `json:"maxTempC"`    // peak steady-state block temperature, °C
	AvgTemp    float64 `json:"avgTempC"`    // average steady-state block temperature, °C
	Makespan   float64 `json:"makespan"`
	Feasible   bool    `json:"feasible"` // makespan ≤ deadline
	Cost       float64 `json:"cost"`     // summed PE cost (co-synthesis objective)
}

// ModelProvider constructs (or recalls) the thermal model of a
// floorplan under a configuration. The Engine layer injects a caching
// provider here so repeated flows over the same floorplan — every
// platform run, and repeated candidate layouts inside co-synthesis —
// reuse one factorization. The configuration carries the solver
// backend (hotspot.Config.Solver), so caching providers must key on it:
// a dense and a sparse model of the same floorplan are distinct cache
// entries. A nil provider means hotspot.NewModel. Providers must be
// safe for concurrent use and must return models that are safe for
// concurrent read-only use (as hotspot.NewModel's are).
type ModelProvider func(fp *floorplan.Floorplan, cfg hotspot.Config) (*hotspot.Model, error)

// newModel resolves a possibly-nil provider.
func (p ModelProvider) newModel(fp *floorplan.Floorplan, cfg hotspot.Config) (*hotspot.Model, error) {
	if p == nil {
		return hotspot.NewModel(fp, cfg)
	}
	return p(fp, cfg)
}

// Result is the outcome of one flow run.
type Result struct {
	Schedule *sched.Schedule
	Arch     sched.Architecture
	Plan     *floorplan.Floorplan
	Model    *hotspot.Model
	Oracle   *sched.ModelOracle
	Metrics  Metrics
	// SearchEvals and SearchMemoHits aggregate the floorplanner's
	// packing-evaluation accounting over every candidate architecture a
	// co-synthesis run explored (zero for platform runs, whose layout is
	// fixed). The chosen architecture and schedule are byte-identical at
	// every parallelism level; the counters themselves can run higher
	// under parallelism, which speculatively evaluates prune candidates
	// the serial scan skips.
	SearchEvals    int
	SearchMemoHits int
}

// computeMetrics evaluates the paper's table columns for a finished
// schedule against its thermal model.
func computeMetrics(s *sched.Schedule, oracle *sched.ModelOracle) (Metrics, error) {
	pow, err := s.PEAveragePower(s.Graph.Deadline)
	if err != nil {
		return Metrics{}, err
	}
	temps, err := oracle.Temps(pow)
	if err != nil {
		return Metrics{}, fmt.Errorf("cosynth: final temperature extraction: %w", err)
	}
	return Metrics{
		TotalPower: s.TotalPower(),
		MaxTemp:    temps.Max(),
		AvgTemp:    temps.Avg(),
		Makespan:   s.Makespan,
		Feasible:   s.MeetsDeadline(),
		Cost:       s.Arch.TotalCost(s.Lib),
	}, nil
}
