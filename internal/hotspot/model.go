package hotspot

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/geom"
	"thermalsched/internal/linalg"
)

// Model is a compact thermal network built from a floorplan. It is safe
// for concurrent read-only use after construction.
type Model struct {
	cfg    Config
	names  []string       // block names, in floorplan insertion order
	byName map[string]int // name -> block index
	n      int            // number of block nodes
	// Node layout: 0..n-1 die blocks, n..2n-1 the per-block spreader
	// regions, 2n the peripheral spreader ring, 2n+1 the heat sink.
	// Ambient is the reference (ground).
	total int
	csr   *linalg.CSR         // conductance matrix (relative-to-ambient formulation)
	solv  linalg.SteadySolver // factored/preconditioned backend per cfg.SolverKind
	caps  []float64           // node heat capacities (transient)

	// The dense image of csr, materialized on demand: the transient
	// stepper and Conductance() still consume a dense matrix, and the
	// dense solver path factors it eagerly. Sparse-backend models that
	// never step a transient never pay the n² expansion.
	gOnce sync.Once
	g     *linalg.Matrix

	// Influence matrix: because the RC network is linear, steady-state
	// block temperature rise is an affine function of block power,
	// rise = S·p with S[i][j] = (G⁻¹)[i][j] restricted to block nodes.
	// The dense backend computes all of S lazily (n triangular solves,
	// once per model) and answers every inquiry with n² multiply-adds.
	influOnce sync.Once
	influ     []float64 // n×n row-major; symmetric since G is
	influErr  error

	// Truncated influence representation (sparse/pcg backends): rows of
	// S are solved and cached one at a time, on demand, so a scheduler
	// touching k blocks holds k rows instead of the n×n matrix, and an
	// inquiry with k powered blocks costs k·n multiply-adds instead of
	// n² — the property that keeps per-candidate cost O(PEs) at grid
	// resolutions the dense influence matrix can't hold.
	truncated bool
	rowMu     sync.RWMutex
	rowCache  map[int][]float64
}

// NewModel builds the thermal network for fp under cfg. The floorplan
// must be valid (non-empty, no overlaps).
func NewModel(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("hotspot: %w", err)
	}
	blocks := fp.Blocks()
	n := len(blocks)
	total := 2*n + 2
	ring, sink := 2*n, 2*n+1
	spreaderOf := func(i int) int { return n + i }

	m := &Model{
		cfg:    cfg,
		names:  fp.Names(),
		byName: make(map[string]int, n),
		n:      n,
		total:  total,
		caps:   make([]float64, total),
	}
	for i, name := range m.names {
		m.byName[name] = i
	}

	// Assembly goes through the sparse builder for every backend. The
	// builder accumulates duplicates in insertion order, so its Dense()
	// image is bitwise identical to the historical direct Matrix.Add
	// assembly — the dense path stays the byte-for-byte golden
	// reference while the sparse backends share one assembly.
	gb := linalg.NewSparseBuilder(total)
	addConductance := func(i, j int, g float64) {
		gb.Add(i, i, g)
		gb.Add(j, j, g)
		gb.Add(i, j, -g)
		gb.Add(j, i, -g)
	}

	// Lateral conductances between abutting blocks, in the die and in
	// the copper spreader: G = k · thickness · sharedEdge / centreDistance.
	// The spreader path dominates (copper, thicker), which is what makes
	// centre blocks run hotter than edge blocks — the spatial effect the
	// thermal-aware scheduler exploits.
	// Iterate the adjacency map in index order: float accumulation into
	// the conductance matrix is order-sensitive at the last ulp, and a
	// randomized map walk would make nominally identical models differ
	// between builds (breaking the byte-identical cross-surface
	// contract for heterogeneous floorplans, whose conductances are not
	// all equal).
	adj := fp.Adjacency(geom.Eps)
	sharedOf := make([]float64, n) // total abutting edge length per block
	for i := 0; i < n; i++ {
		row := adj[i]
		if len(row) == 0 {
			continue
		}
		js := make([]int, 0, len(row))
		for j := range row {
			js = append(js, j)
		}
		sort.Ints(js)
		for _, j := range js {
			edge := row[j]
			sharedOf[i] += edge
			sharedOf[j] += edge
			d := blocks[i].Rect.Center().Dist(blocks[j].Rect.Center())
			if d <= 0 {
				continue
			}
			gDie := cfg.SiliconConductivity * cfg.DieThickness * edge / d
			addConductance(i, j, gDie)
			gSp := cfg.SpreaderConductivity * cfg.SpreaderThickness * edge / d
			addConductance(spreaderOf(i), spreaderOf(j), gSp)
		}
	}

	// Peripheral spreader ring: each block's spreader region couples to
	// the ring through its exposed (non-abutting) perimeter. Edge blocks
	// therefore sink heat into the package periphery that centre blocks
	// cannot reach directly — the physical reason edge placements run
	// cooler.
	bbox := fp.BoundingBox()
	ringArea := 2 * (bbox.W + bbox.H) * cfg.SpreaderRingWidth
	for i, b := range blocks {
		exposed := 2*(b.Rect.W+b.Rect.H) - sharedOf[i]
		if exposed <= 0 {
			continue
		}
		// Centre-of-block to centre-of-ring distance.
		d := (math.Sqrt(b.Rect.Area()) + cfg.SpreaderRingWidth) / 2
		g := cfg.SpreaderConductivity * cfg.SpreaderThickness * exposed / d
		addConductance(spreaderOf(i), ring, g)
	}

	// Vertical paths. Block → its spreader region: die conduction in
	// series with the interface material. Spreader region → sink: the
	// total spreader-to-sink resistance apportioned by area share.
	var totalArea float64
	for _, b := range blocks {
		totalArea += b.Rect.Area()
	}
	for i, b := range blocks {
		area := b.Rect.Area()
		rDie := cfg.DieThickness / (cfg.SiliconConductivity * area)
		rIface := cfg.InterfaceResistivity / area
		addConductance(i, spreaderOf(i), 1/(rDie+rIface))
		rSp := cfg.SpreaderToSinkResistance * totalArea / area
		addConductance(spreaderOf(i), sink, 1/rSp)
		m.caps[i] = cfg.SiliconVolumetricHeat * area * cfg.DieThickness
		m.caps[spreaderOf(i)] = cfg.SpreaderVolumetricHeat * area * cfg.SpreaderThickness
	}

	// Ring → sink: the spreader-to-sink resistance scaled by the ring's
	// area share, like the per-block regions.
	if ringArea > 0 {
		rRing := cfg.SpreaderToSinkResistance * totalArea / ringArea
		addConductance(ring, sink, 1/rRing)
	}
	m.caps[ring] = math.Max(cfg.SpreaderVolumetricHeat*ringArea*cfg.SpreaderThickness, 1e-6)

	// Sink → ambient. Ambient is the reference node, so the convection
	// conductance appears only on the sink's diagonal.
	gb.Add(sink, sink, 1/cfg.ConvectionResistance)
	m.caps[sink] = cfg.SinkHeatCapacity

	m.csr = gb.Build()
	switch cfg.SolverKind() {
	case SolverDense:
		chol, err := linalg.FactorCholesky(m.denseG())
		if err != nil {
			return nil, fmt.Errorf("hotspot: conductance matrix not SPD (floorplan degenerate?): %w", err)
		}
		m.solv = chol
	case SolverSparse:
		f, err := linalg.FactorSparseCholeskyOrdered(m.csr, linalg.MinDegreeOrdering(m.csr))
		if err != nil {
			return nil, fmt.Errorf("hotspot: conductance matrix not SPD (floorplan degenerate?): %w", err)
		}
		m.solv = f
		m.truncated = true
		m.rowCache = make(map[int][]float64)
	case SolverPCG:
		tol := cfg.PCGTolerance
		if tol == 0 {
			tol = DefaultPCGTolerance
		}
		s, err := linalg.NewPCG(m.csr, tol, 0)
		if err != nil {
			return nil, fmt.Errorf("hotspot: conductance matrix not SPD (floorplan degenerate?): %w", err)
		}
		m.solv = s
		m.truncated = true
		m.rowCache = make(map[int][]float64)
	}
	return m, nil
}

// denseG materializes (once) and returns the dense image of the
// conductance matrix. Callers must treat it as read-only.
func (m *Model) denseG() *linalg.Matrix {
	m.gOnce.Do(func() { m.g = m.csr.Dense() })
	return m.g
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// BlockNames returns the block names in node order.
func (m *Model) BlockNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// NumBlocks returns the number of block nodes (excluding spreader/sink).
func (m *Model) NumBlocks() int { return m.n }

// powerVector converts a name→watts map into the full node-power vector.
// Unknown names are an error; blocks absent from the map dissipate zero.
func (m *Model) powerVector(power map[string]float64) ([]float64, error) {
	p := make([]float64, m.total)
	names := make([]string, 0, len(power))
	for name := range power {
		names = append(names, name)
	}
	// The vector fill writes disjoint indices, but which invalid
	// entry gets reported must not depend on map order: iterate
	// sorted.
	sort.Strings(names)
	for _, name := range names {
		w := power[name]
		i, ok := m.byName[name]
		if !ok {
			return nil, fmt.Errorf("hotspot: power for unknown block %q", name)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("hotspot: invalid power %g W for block %q", w, name)
		}
		p[i] = w
	}
	return p, nil
}

// Temps holds per-block steady-state or instantaneous temperatures in °C.
type Temps struct {
	names  []string
	byName map[string]int
	values []float64 // block temps only, °C
}

// Of returns the temperature of the named block.
func (t Temps) Of(name string) (float64, bool) {
	i, ok := t.byName[name]
	if !ok {
		return 0, false
	}
	return t.values[i], true
}

// Values returns the block temperatures in node order (copy).
func (t Temps) Values() []float64 {
	out := make([]float64, len(t.values))
	copy(out, t.values)
	return out
}

// Names returns the block names in node order (copy).
func (t Temps) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Max returns the hottest block temperature.
func (t Temps) Max() float64 { return linalg.Max(t.values) }

// Min returns the coolest block temperature.
func (t Temps) Min() float64 { return linalg.Min(t.values) }

// Avg returns the mean block temperature — the quantity the paper's
// thermal-aware ASP minimizes.
func (t Temps) Avg() float64 { return linalg.Mean(t.values) }

// Spread returns Max − Min, a measure of thermal evenness.
func (t Temps) Spread() float64 { return t.Max() - t.Min() }

// SteadyState solves the network for the given per-block power map
// (watts) and returns block temperatures in °C.
func (m *Model) SteadyState(power map[string]float64) (Temps, error) {
	p, err := m.powerVector(power)
	if err != nil {
		return Temps{}, err
	}
	return m.steadyFromVector(p)
}

// SteadyStateVec is like SteadyState but takes powers indexed by block
// node order (length NumBlocks). It rides the influence-matrix fast
// path; callers that need zero allocations use SteadyStateInto.
func (m *Model) SteadyStateVec(power []float64) (Temps, error) {
	vals := make([]float64, m.n)
	if err := m.SteadyStateInto(vals, power); err != nil {
		return Temps{}, err
	}
	return Temps{names: m.names, byName: m.byName, values: vals}, nil
}

// SteadyStateInto computes steady-state block temperatures (°C) for a
// block-order power vector into dst (length NumBlocks) without
// allocating: one row of the cached influence matrix per output block.
// dst and power must not alias. This is the form behind every thermal
// inquiry of the thermal-aware ASP.
func (m *Model) SteadyStateInto(dst, power []float64) error {
	if len(power) != m.n {
		return fmt.Errorf("hotspot: power vector length %d, want %d", len(power), m.n)
	}
	if len(dst) != m.n {
		return fmt.Errorf("hotspot: temperature vector length %d, want %d", len(dst), m.n)
	}
	for i, w := range power {
		// One branch per element: w >= 0 is false for NaN, the upper
		// bound rejects +Inf (negatives and -Inf fail the first test).
		if !(w >= 0 && w <= math.MaxFloat64) {
			return fmt.Errorf("hotspot: invalid power %g W for block %q", w, m.names[i])
		}
	}
	n := m.n
	pw := power[:n]
	out := dst[:n]
	ambient := m.cfg.AmbientC
	if m.truncated {
		// Truncated influence: by symmetry of G⁻¹, the inquiry is the
		// powered-block-weighted sum of cached influence rows —
		// k·n multiply-adds for k powered blocks (k ≈ PEs ≪ n on large
		// platforms). The sum visits j in the same increasing order the
		// dense inner product does, skipping only exact-zero terms.
		for i := range out {
			out[i] = 0
		}
		for j, w := range pw {
			if w == 0 {
				continue
			}
			row, err := m.influenceRowCached(j)
			if err != nil {
				return err
			}
			row = row[:len(out)]
			for i := range out {
				out[i] += row[i] * w
			}
		}
		for i := range out {
			out[i] += ambient
		}
		return nil
	}
	if err := m.ensureInfluence(); err != nil {
		return err
	}
	for i := range out {
		// Re-slicing the row to len(pw) lets the compiler elide the
		// bounds checks in the inner product — the entire inquiry cost.
		row := m.influ[i*n:]
		row = row[:len(pw)]
		var s float64
		for j, w := range pw {
			s += row[j] * w
		}
		out[i] = s + ambient
	}
	return nil
}

// SteadyStateDirect is the reference steady-state path: a full
// triangular solve against the cached Cholesky factorization per call.
// The influence-matrix fast path is verified against it in tests; it
// also lets single-shot callers (one inquiry per model) skip the n
// solves an influence build costs.
func (m *Model) SteadyStateDirect(power []float64) (Temps, error) {
	if len(power) != m.n {
		return Temps{}, fmt.Errorf("hotspot: power vector length %d, want %d", len(power), m.n)
	}
	p := make([]float64, m.total)
	for i, w := range power {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Temps{}, fmt.Errorf("hotspot: invalid power %g W for block %q", w, m.names[i])
		}
		p[i] = w
	}
	return m.steadyFromVector(p)
}

func (m *Model) steadyFromVector(p []float64) (Temps, error) {
	rise := make([]float64, m.total)
	if err := m.solv.SolveInto(rise, p); err != nil {
		return Temps{}, fmt.Errorf("hotspot: steady-state solve: %w", err)
	}
	vals := make([]float64, m.n)
	for i := range vals {
		vals[i] = rise[i] + m.cfg.AmbientC
	}
	return Temps{names: m.names, byName: m.byName, values: vals}, nil
}

// ensureInfluence computes the block-restricted inverse-conductance
// matrix: n triangular solves against unit block loads, done once per
// model (thread-safe; cached models shared across concurrent runs pay
// for it a single time).
func (m *Model) ensureInfluence() error {
	m.influOnce.Do(func() {
		s := make([]float64, m.n*m.n)
		e := make([]float64, m.total)
		x := make([]float64, m.total)
		for j := 0; j < m.n; j++ {
			e[j] = 1
			if err := m.solv.SolveInto(x, e); err != nil {
				m.influErr = fmt.Errorf("hotspot: influence matrix solve: %w", err)
				return
			}
			e[j] = 0
			for i := 0; i < m.n; i++ {
				s[i*m.n+j] = x[i]
			}
		}
		m.influ = s
	})
	return m.influErr
}

// InfluenceRow returns row i of the influence matrix: the steady-state
// temperature rise of block i per watt injected into each block. The
// matrix is symmetric (G is), so row i is also block i's column of heat
// reach. Under the dense backend the whole matrix is built on first
// use; under the truncated backends only the requested row is solved
// and cached. The returned slice is shared read-only state — callers
// must not modify it.
func (m *Model) InfluenceRow(i int) ([]float64, error) {
	if i < 0 || i >= m.n {
		return nil, fmt.Errorf("hotspot: influence row %d out of range [0,%d)", i, m.n)
	}
	if m.truncated {
		return m.influenceRowCached(i)
	}
	if err := m.ensureInfluence(); err != nil {
		return nil, err
	}
	return m.influ[i*m.n : (i+1)*m.n], nil
}

// influenceRowCached returns (solving and caching on first request)
// influence row j under the truncated representation. The read path is
// an RLock plus a map probe — allocation-free once the row is warm.
func (m *Model) influenceRowCached(j int) ([]float64, error) {
	m.rowMu.RLock()
	row, ok := m.rowCache[j]
	m.rowMu.RUnlock()
	if ok {
		return row, nil
	}
	m.rowMu.Lock()
	defer m.rowMu.Unlock()
	if row, ok := m.rowCache[j]; ok {
		return row, nil
	}
	e := make([]float64, m.total)
	x := make([]float64, m.total)
	e[j] = 1
	if err := m.solv.SolveInto(x, e); err != nil {
		return nil, fmt.Errorf("hotspot: influence row solve: %w", err)
	}
	row = make([]float64, m.n)
	copy(row, x[:m.n])
	m.rowCache[j] = row
	return row, nil
}

// SteadyNodeRise solves the steady-state temperature rise of *every*
// node of the network — die blocks, spreader regions, ring and sink —
// under per-block powers in node order. The result is the full thermal
// state a Transient can be warm-started from (Transient.SetRise), so a
// closed-loop run can begin with the package already at the operating
// point of a sustained workload instead of at cold ambient.
func (m *Model) SteadyNodeRise(blockPower []float64) ([]float64, error) {
	if len(blockPower) != m.n {
		return nil, fmt.Errorf("hotspot: power vector length %d, want %d", len(blockPower), m.n)
	}
	p := make([]float64, m.total)
	copy(p, blockPower)
	rise := make([]float64, m.total)
	if err := m.solv.SolveInto(rise, p); err != nil {
		return nil, fmt.Errorf("hotspot: steady node solve: %w", err)
	}
	return rise, nil
}

// Conductance exposes the raw conductance matrix (a dense clone) for
// tests and diagnostics. It is identical across solver backends — only
// the factorization differs.
func (m *Model) Conductance() *linalg.Matrix { return m.denseG().Clone() }

// ConductanceNNZ returns the number of structural nonzeros of the
// sparse conductance matrix, for diagnostics and sparsity assertions.
func (m *Model) ConductanceNNZ() int { return m.csr.NNZ() }
