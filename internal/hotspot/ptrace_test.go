package hotspot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPowerTraceRoundTrip(t *testing.T) {
	p := &PowerTrace{
		Names: []string{"pe0", "pe1"},
		Samples: [][]float64{
			{1.5, 0},
			{0, 2.25},
			{3, 3},
		},
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPowerTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names) != 2 || got.Names[1] != "pe1" {
		t.Fatalf("names = %v", got.Names)
	}
	if len(got.Samples) != 3 || got.Samples[1][1] != 2.25 {
		t.Fatalf("samples = %v", got.Samples)
	}
}

func TestPowerTraceValidate(t *testing.T) {
	cases := []struct {
		name string
		p    PowerTrace
	}{
		{"no columns", PowerTrace{}},
		{"empty name", PowerTrace{Names: []string{""}}},
		{"duplicate name", PowerTrace{Names: []string{"a", "a"}}},
		{"ragged row", PowerTrace{Names: []string{"a", "b"}, Samples: [][]float64{{1}}}},
		{"negative power", PowerTrace{Names: []string{"a"}, Samples: [][]float64{{-1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
	good := PowerTrace{Names: []string{"a"}, Samples: [][]float64{{1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestReadPowerTraceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"comments only", "# hi\n"},
		{"ragged", "a b\n1\n"},
		{"bad number", "a\nxyz\n"},
		{"negative", "a\n-3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPowerTrace(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadPowerTrace(%q) succeeded", tc.in)
			}
		})
	}
}

func TestReadPowerTraceSkipsComments(t *testing.T) {
	in := "# power trace\npe0\tpe1\n# a row comment\n1\t2\n"
	p, err := ReadPowerTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 1 || p.Samples[0][1] != 2 {
		t.Fatalf("samples = %v", p.Samples)
	}
}

func TestPowerTraceReorder(t *testing.T) {
	p := &PowerTrace{
		Names:   []string{"b", "a"},
		Samples: [][]float64{{1, 2}, {3, 4}},
	}
	out, err := p.Reorder([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 2 || out[0][1] != 1 || out[0][2] != 0 {
		t.Errorf("reordered row = %v", out[0])
	}
	if _, err := p.Reorder([]string{"a"}); err == nil {
		t.Error("extra trace column accepted")
	}
}

func TestPowerTraceDrivesTransient(t *testing.T) {
	m := model4(t)
	p := &PowerTrace{
		Names:   []string{"pe0", "pe1", "pe2", "pe3"},
		Samples: [][]float64{{5, 0, 0, 0}, {0, 5, 0, 0}, {0, 0, 5, 0}, {0, 0, 0, 5}},
	}
	samples, err := p.Reorder(m.BlockNames())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(0.1)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := tr.Run(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 4 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	if traj[3].Max() <= DefaultConfig().AmbientC {
		t.Error("trace should heat the die")
	}
}
