package hotspot

import (
	"math"
	"testing"

	"thermalsched/internal/floorplan"
)

func solverModel(t *testing.T, blocks int, solver string) *Model {
	t.Helper()
	fp, err := floorplan.Grid("b", blocks, 4e-6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Solver = solver
	m, err := NewModel(fp, cfg)
	if err != nil {
		t.Fatalf("NewModel(%s): %v", solver, err)
	}
	return m
}

func TestSolverKindNormalization(t *testing.T) {
	var c Config
	if got := c.SolverKind(); got != SolverDense {
		t.Fatalf("SolverKind() = %q for empty Solver, want %q", got, SolverDense)
	}
	c.Solver = SolverSparse
	if got := c.SolverKind(); got != SolverSparse {
		t.Fatalf("SolverKind() = %q, want %q", got, SolverSparse)
	}
}

func TestConfigValidateSolver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Solver = "cuda"
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted unknown solver")
	}
	for _, s := range append(SolverNames(), "") {
		cfg.Solver = s
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate rejected solver %q: %v", s, err)
		}
	}
	cfg.Solver = ""
	cfg.PCGTolerance = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative PCGTolerance")
	}
	cfg.PCGTolerance = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted PCGTolerance 1")
	}
	cfg.PCGTolerance = math.NaN()
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted NaN PCGTolerance")
	}
}

// TestConductanceIdenticalAcrossBackends pins the shared-assembly
// property: the conductance matrix is bitwise identical no matter
// which solver backend the model was built for.
func TestConductanceIdenticalAcrossBackends(t *testing.T) {
	dense := solverModel(t, 12, SolverDense)
	sparse := solverModel(t, 12, SolverSparse)
	pcg := solverModel(t, 12, SolverPCG)
	gd, gs, gp := dense.Conductance(), sparse.Conductance(), pcg.Conductance()
	for i := 0; i < gd.Rows(); i++ {
		for j := 0; j < gd.Cols(); j++ {
			if gd.At(i, j) != gs.At(i, j) || gd.At(i, j) != gp.At(i, j) {
				t.Fatalf("G[%d,%d] differs across backends: dense %v sparse %v pcg %v",
					i, j, gd.At(i, j), gs.At(i, j), gp.At(i, j))
			}
		}
	}
	if nnz := dense.ConductanceNNZ(); nnz >= gd.Rows()*gd.Cols() {
		t.Fatalf("conductance NNZ %d not sparse for %d nodes", nnz, gd.Rows())
	}
}

// TestSolverBackendsAgree drives every backend through the full
// steady-state API surface and requires agreement with the dense
// golden reference far inside the documented 1e-6 K contract.
func TestSolverBackendsAgree(t *testing.T) {
	const blocks = 24
	dense := solverModel(t, blocks, SolverDense)
	p := make([]float64, blocks)
	for i := range p {
		p[i] = float64((i*7)%5) * 1.5
	}
	want := make([]float64, blocks)
	if err := dense.SteadyStateInto(want, p); err != nil {
		t.Fatal(err)
	}
	for _, solver := range []string{SolverSparse, SolverPCG} {
		// The sparse direct factorization tracks dense to rounding;
		// PCG is iterative, so it gets the documented contract bound.
		tol := 1e-9
		if solver == SolverPCG {
			tol = 1e-6
		}
		m := solverModel(t, blocks, solver)
		got := make([]float64, blocks)
		if err := m.SteadyStateInto(got, p); err != nil {
			t.Fatalf("%s SteadyStateInto: %v", solver, err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("%s temp[%d] = %v, dense %v (|Δ| = %g)",
					solver, i, got[i], want[i], math.Abs(got[i]-want[i]))
			}
		}
		direct, err := m.SteadyStateDirect(p)
		if err != nil {
			t.Fatalf("%s SteadyStateDirect: %v", solver, err)
		}
		for i, v := range direct.Values() {
			if math.Abs(v-want[i]) > tol {
				t.Fatalf("%s direct temp[%d] = %v, dense %v", solver, i, v, want[i])
			}
		}
		wrow, err := dense.InfluenceRow(3)
		if err != nil {
			t.Fatal(err)
		}
		grow, err := m.InfluenceRow(3)
		if err != nil {
			t.Fatalf("%s InfluenceRow: %v", solver, err)
		}
		for j := range wrow {
			if math.Abs(grow[j]-wrow[j]) > tol {
				t.Fatalf("%s InfluenceRow[3][%d] = %v, dense %v", solver, j, grow[j], wrow[j])
			}
		}
		wr, err := dense.SteadyNodeRise(p)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := m.SteadyNodeRise(p)
		if err != nil {
			t.Fatalf("%s SteadyNodeRise: %v", solver, err)
		}
		for i := range wr {
			if math.Abs(gr[i]-wr[i]) > tol {
				t.Fatalf("%s node rise[%d] = %v, dense %v", solver, i, gr[i], wr[i])
			}
		}
	}
}

// TestSparseBackendTransient checks that a sparse-backend model can
// still run the (dense) transient stepper, via the lazy dense image.
func TestSparseBackendTransient(t *testing.T) {
	m := solverModel(t, 9, SolverSparse)
	tr, err := m.NewTransient(0.01)
	if err != nil {
		t.Fatalf("NewTransient: %v", err)
	}
	temps, err := tr.Step(map[string]float64{"b0": 10})
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if temps.Max() <= m.Config().AmbientC {
		t.Fatalf("transient step did not heat: max %v", temps.Max())
	}
}

// TestTruncatedPathsZeroAllocs proves the sparse backend's hot paths
// allocate nothing once the touched influence rows are warm — the
// large-platform counterpart of the PR-2 dense guarantees.
func TestTruncatedPathsZeroAllocs(t *testing.T) {
	for _, solver := range []string{SolverSparse, SolverPCG} {
		m := solverModel(t, 16, solver)
		p := make([]float64, 16)
		p[1], p[6], p[11] = 4, 2.5, 7
		dst := make([]float64, 16)
		if err := m.SteadyStateInto(dst, p); err != nil { // warm the row cache
			t.Fatal(err)
		}
		if _, err := m.InfluenceRow(6); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := m.SteadyStateInto(dst, p); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s SteadyStateInto allocates %v per run after warm-up", solver, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if _, err := m.InfluenceRow(6); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s InfluenceRow allocates %v per run after warm-up", solver, n)
		}
	}
}
