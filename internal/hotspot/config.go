// Package hotspot implements a block-level compact thermal RC model in
// the style of HotSpot (Skadron, Abdelzaher, Stan — HPCA 2002), the tool
// the paper uses for temperature extraction.
//
// Given a floorplan and per-block power dissipation, the model builds a
// thermal network with one node per block plus lumped heat-spreader and
// heat-sink nodes:
//
//   - lateral conductances couple abutting blocks through the silicon
//     (proportional to shared edge length, inversely to centre distance);
//   - each block has a vertical path through the die and the thermal
//     interface to the spreader;
//   - the spreader connects to the sink, and the sink convects to ambient.
//
// Temperatures are solved relative to ambient, so zero power always gives
// ambient everywhere. The conductance matrix is symmetric positive
// definite by construction; steady state solves use a cached Cholesky
// factorization so a scheduler can issue thousands of thermal inquiries
// cheaply, which the paper's thermal-aware ASP does at every assignment.
package hotspot

import "fmt"

// Config holds the physical and package parameters of the thermal model.
// All values use SI units except AmbientC (degrees Celsius).
type Config struct {
	// SiliconConductivity is the thermal conductivity of the die, W/(m·K).
	SiliconConductivity float64
	// DieThickness is the silicon die thickness, m.
	DieThickness float64
	// SiliconVolumetricHeat is the volumetric heat capacity of silicon,
	// J/(m³·K). Used only by the transient solver.
	SiliconVolumetricHeat float64
	// InterfaceResistivity is the specific thermal resistance of the
	// die-to-spreader path (thermal interface material plus spreading),
	// K·m²/W. Divided by block area to obtain each block's vertical
	// resistance.
	InterfaceResistivity float64
	// SpreaderConductivity and SpreaderThickness describe the copper
	// heat spreader. Each block owns a spreader region; adjacent regions
	// couple laterally through the copper, the dominant lateral heat
	// path (and the reason centre blocks run hotter than edge blocks).
	SpreaderConductivity float64 // W/(m·K)
	SpreaderThickness    float64 // m
	// SpreaderVolumetricHeat is the volumetric heat capacity of the
	// spreader, J/(m³·K) (transient solver only).
	SpreaderVolumetricHeat float64
	// SpreaderToSinkResistance is the total spreader→sink resistance,
	// K/W, apportioned to the per-block spreader regions by area.
	SpreaderToSinkResistance float64
	// SpreaderRingWidth is the width of the peripheral spreader ring —
	// the copper extending beyond the die edge, m. Blocks on the die
	// boundary couple into the ring through their exposed perimeter and
	// so escape heat more easily than centre blocks. Without the ring,
	// every block in this network topology has an identical thermal
	// column sum and the die-average temperature degenerates to a pure
	// function of total power, blinding average-temperature-driven
	// placement to spatial distribution.
	SpreaderRingWidth float64
	// ConvectionResistance is the sink→ambient convection resistance, K/W.
	// This sets the overall operating point: total power × this resistance
	// is the sink's temperature rise.
	ConvectionResistance float64
	// SinkHeatCapacity is the lumped heat-sink capacity, J/K
	// (transient solver only).
	SinkHeatCapacity float64
	// AmbientC is the ambient temperature in °C.
	AmbientC float64
	// Solver selects the steady-state solver backend: SolverDense (the
	// golden reference; also the default when empty), SolverSparse
	// (sparse Cholesky with a min-degree ordering and an on-demand
	// truncated influence representation — the large-platform backend)
	// or SolverPCG (Jacobi-preconditioned conjugate gradient, the
	// factorization-free ablation path). All backends are deterministic;
	// sparse agrees with dense to ≤1e-6 K on the paper's benchmarks.
	Solver string
	// PCGTolerance is the relative residual tolerance of the PCG
	// backend; zero selects DefaultPCGTolerance. Ignored by the direct
	// backends.
	PCGTolerance float64
}

// Solver backend names accepted by Config.Solver.
const (
	SolverDense  = "dense"
	SolverSparse = "sparse"
	SolverPCG    = "pcg"
)

// DefaultPCGTolerance is the PCG backend's relative residual tolerance
// when Config.PCGTolerance is zero: tight enough that block
// temperatures agree with the direct solvers well inside the 1e-6 K
// dense-vs-sparse contract.
const DefaultPCGTolerance = 1e-10

// SolverNames returns the accepted solver backend names, for CLI help
// strings and validation messages.
func SolverNames() []string { return []string{SolverDense, SolverSparse, SolverPCG} }

// SolverKind returns the effective solver backend: Solver, with the
// empty string normalized to SolverDense. Cache keys and reports use
// this form so "" and "dense" never alias to different entries.
func (c Config) SolverKind() string {
	if c.Solver == "" {
		return SolverDense
	}
	return c.Solver
}

// DefaultConfig returns the calibration used throughout the reproduction.
// The package parameters (interface resistivity, convection resistance)
// are tuned so that the benchmark power levels reported in the paper
// (roughly 6–45 W across a handful of PEs) produce peak temperatures in
// the 65–125 °C band the paper's tables show, over a 45 °C ambient.
func DefaultConfig() Config {
	return Config{
		SiliconConductivity:      100.0,   // W/(m·K)
		DieThickness:             0.5e-3,  // 0.5 mm
		SiliconVolumetricHeat:    1.75e6,  // J/(m³·K)
		InterfaceResistivity:     1.2e-4,  // K·m²/W
		SpreaderConductivity:     400.0,   // W/(m·K), copper
		SpreaderThickness:        1.0e-3,  // 1 mm
		SpreaderVolumetricHeat:   3.5e6,   // J/(m³·K)
		SpreaderToSinkResistance: 0.5,     // K/W
		SpreaderRingWidth:        10.0e-3, // 10 mm of copper beyond the die edge
		ConvectionResistance:     1.1,     // K/W
		SinkHeatCapacity:         300.0,   // J/K
		AmbientC:                 45.0,
	}
}

// Validate reports the first implausible parameter.
func (c Config) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"SiliconConductivity", c.SiliconConductivity},
		{"DieThickness", c.DieThickness},
		{"SiliconVolumetricHeat", c.SiliconVolumetricHeat},
		{"InterfaceResistivity", c.InterfaceResistivity},
		{"SpreaderConductivity", c.SpreaderConductivity},
		{"SpreaderThickness", c.SpreaderThickness},
		{"SpreaderVolumetricHeat", c.SpreaderVolumetricHeat},
		{"SpreaderToSinkResistance", c.SpreaderToSinkResistance},
		{"SpreaderRingWidth", c.SpreaderRingWidth},
		{"ConvectionResistance", c.ConvectionResistance},
		{"SinkHeatCapacity", c.SinkHeatCapacity},
	}
	for _, ch := range checks {
		if !(ch.v > 0) {
			return fmt.Errorf("hotspot: %s must be positive, got %g", ch.name, ch.v)
		}
	}
	if c.AmbientC < -273.15 {
		return fmt.Errorf("hotspot: ambient %g °C below absolute zero", c.AmbientC)
	}
	switch c.Solver {
	case "", SolverDense, SolverSparse, SolverPCG:
	default:
		return fmt.Errorf("hotspot: unknown solver %q (want one of %v)", c.Solver, SolverNames())
	}
	if !(c.PCGTolerance >= 0) || c.PCGTolerance >= 1 {
		return fmt.Errorf("hotspot: PCGTolerance %g out of [0,1)", c.PCGTolerance)
	}
	return nil
}
