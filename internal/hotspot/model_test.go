package hotspot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermalsched/internal/floorplan"
)

func platform4(t testing.TB) *floorplan.Floorplan {
	t.Helper()
	fp, err := floorplan.Grid("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func model4(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel(platform4(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.ConvectionResistance = 0
	if err := c.Validate(); err == nil {
		t.Error("zero convection resistance accepted")
	}
	c = DefaultConfig()
	c.AmbientC = -300
	if err := c.Validate(); err == nil {
		t.Error("sub-absolute-zero ambient accepted")
	}
}

func TestNewModelRejectsBadInput(t *testing.T) {
	if _, err := NewModel(floorplan.New(), DefaultConfig()); err == nil {
		t.Error("empty floorplan accepted")
	}
	bad := DefaultConfig()
	bad.DieThickness = -1
	if _, err := NewModel(platform4(t), bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestZeroPowerGivesAmbient(t *testing.T) {
	m := model4(t)
	temps, err := m.SteadyState(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range temps.Names() {
		v, _ := temps.Of(name)
		if math.Abs(v-DefaultConfig().AmbientC) > 1e-9 {
			t.Errorf("block %s at %v °C with zero power, want ambient", name, v)
		}
	}
	if temps.Spread() > 1e-9 {
		t.Errorf("zero power spread = %v", temps.Spread())
	}
}

func TestPowerRaisesTemperature(t *testing.T) {
	m := model4(t)
	temps, err := m.SteadyState(map[string]float64{"pe0": 5})
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := temps.Of("pe0")
	if t0 <= DefaultConfig().AmbientC {
		t.Errorf("powered block at %v, want above ambient", t0)
	}
	// The powered block must be the hottest.
	if temps.Max() != t0 {
		t.Errorf("hottest = %v, powered block = %v", temps.Max(), t0)
	}
	// Every block is pulled above ambient by coupling.
	if temps.Min() <= DefaultConfig().AmbientC {
		t.Errorf("coolest = %v, want above ambient (coupling)", temps.Min())
	}
}

func TestNeighbourHotterThanDiagonal(t *testing.T) {
	// In a 2x2 grid: pe0 pe1 / pe2 pe3 (row-major). pe0's lateral
	// neighbours are pe1 and pe2; pe3 touches only at the corner.
	m := model4(t)
	temps, err := m.SteadyState(map[string]float64{"pe0": 8})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := temps.Of("pe1")
	t3, _ := temps.Of("pe3")
	if t1 <= t3 {
		t.Errorf("adjacent pe1 (%v) should be hotter than diagonal pe3 (%v)", t1, t3)
	}
}

func TestSpreadingLoadLowersPeak(t *testing.T) {
	// The physical effect the thermal-aware scheduler exploits: the same
	// total power spread over all PEs yields a lower peak temperature
	// than concentrated on one PE.
	m := model4(t)
	concentrated, err := m.SteadyState(map[string]float64{"pe0": 12})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := m.SteadyState(map[string]float64{"pe0": 3, "pe1": 3, "pe2": 3, "pe3": 3})
	if err != nil {
		t.Fatal(err)
	}
	if spread.Max() >= concentrated.Max() {
		t.Errorf("spread peak %v should be below concentrated peak %v",
			spread.Max(), concentrated.Max())
	}
	// Average rise is driven by total power, so averages should be close.
	if math.Abs(spread.Avg()-concentrated.Avg()) > 12 {
		t.Errorf("averages too far apart: %v vs %v", spread.Avg(), concentrated.Avg())
	}
}

func TestSteadyStateVecMatchesMap(t *testing.T) {
	m := model4(t)
	byMap, err := m.SteadyState(map[string]float64{"pe0": 2, "pe2": 4})
	if err != nil {
		t.Fatal(err)
	}
	byVec, err := m.SteadyStateVec([]float64{2, 0, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range byVec.Values() {
		if math.Abs(v-byMap.Values()[i]) > 1e-12 {
			t.Fatalf("vec/map disagree at %d: %v vs %v", i, v, byMap.Values()[i])
		}
	}
}

func TestSteadyStateErrors(t *testing.T) {
	m := model4(t)
	if _, err := m.SteadyState(map[string]float64{"nope": 1}); err == nil {
		t.Error("unknown block accepted")
	}
	if _, err := m.SteadyState(map[string]float64{"pe0": -1}); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := m.SteadyState(map[string]float64{"pe0": math.NaN()}); err == nil {
		t.Error("NaN power accepted")
	}
	if _, err := m.SteadyStateVec([]float64{1}); err == nil {
		t.Error("short power vector accepted")
	}
}

func TestTempsAccessors(t *testing.T) {
	m := model4(t)
	temps, err := m.SteadyState(map[string]float64{"pe0": 1, "pe1": 2, "pe2": 3, "pe3": 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(temps.Names()) != 4 || len(temps.Values()) != 4 {
		t.Error("Names/Values lengths wrong")
	}
	if _, ok := temps.Of("missing"); ok {
		t.Error("Of(missing) should report !ok")
	}
	if temps.Max() < temps.Avg() || temps.Avg() < temps.Min() {
		t.Error("Max/Avg/Min ordering violated")
	}
	if temps.Spread() < 0 {
		t.Error("negative spread")
	}
	if m.NumBlocks() != 4 {
		t.Errorf("NumBlocks = %d", m.NumBlocks())
	}
	if got := m.BlockNames(); len(got) != 4 || got[0] != "pe0" {
		t.Errorf("BlockNames = %v", got)
	}
}

func TestConductanceMatrixSymmetric(t *testing.T) {
	m := model4(t)
	g := m.Conductance()
	if !g.IsSymmetric(1e-9 * g.MaxAbs()) {
		t.Error("conductance matrix not symmetric")
	}
	// Diagonal dominance: every diagonal entry must be at least the sum
	// of the absolute off-diagonals in its row (equality off the sink row).
	for i := 0; i < g.Rows(); i++ {
		var off float64
		for j := 0; j < g.Cols(); j++ {
			if i != j {
				off += math.Abs(g.At(i, j))
			}
		}
		if g.At(i, i) < off-1e-9 {
			t.Errorf("row %d not diagonally dominant: %v < %v", i, g.At(i, i), off)
		}
	}
}

// Property: superposition — temperatures are affine in power, so
// T(a+b) − ambient = (T(a) − ambient) + (T(b) − ambient).
func TestSuperpositionProperty(t *testing.T) {
	m := model4(t)
	amb := DefaultConfig().AmbientC
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 4)
		b := make([]float64, 4)
		for i := range a {
			a[i] = rng.Float64() * 10
			b[i] = rng.Float64() * 10
		}
		sum := make([]float64, 4)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		ta, err1 := m.SteadyStateVec(a)
		tb, err2 := m.SteadyStateVec(b)
		ts, err3 := m.SteadyStateVec(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range sum {
			want := (ta.Values()[i] - amb) + (tb.Values()[i] - amb)
			got := ts.Values()[i] - amb
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — adding power to any block cannot cool any
// block (the network conductances are non-negative off-diagonal).
func TestMonotonicityProperty(t *testing.T) {
	m := model4(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]float64, 4)
		for i := range base {
			base[i] = rng.Float64() * 8
		}
		extra := make([]float64, 4)
		copy(extra, base)
		extra[rng.Intn(4)] += 1 + rng.Float64()*5
		t0, err1 := m.SteadyStateVec(base)
		t1, err2 := m.SteadyStateVec(extra)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range base {
			if t1.Values()[i] < t0.Values()[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The calibration target from DESIGN.md §5: paper-scale total power on
// the 4-PE platform must land peak temperatures in the paper's band.
func TestCalibrationBand(t *testing.T) {
	m := model4(t)
	// ~12 W concentrated unevenly, like a baseline (thermally unaware)
	// schedule would produce.
	temps, err := m.SteadyState(map[string]float64{"pe0": 7, "pe1": 3, "pe2": 1.5, "pe3": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if temps.Max() < 60 || temps.Max() > 135 {
		t.Errorf("peak %v °C outside plausible paper band [60, 135]", temps.Max())
	}
	if temps.Avg() < 55 || temps.Avg() > 120 {
		t.Errorf("avg %v °C outside plausible paper band [55, 120]", temps.Avg())
	}
}

func TestLargerFloorplanSolves(t *testing.T) {
	fp, err := floorplan.Grid("b", 25, 4e-6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	power := make(map[string]float64)
	for i, name := range m.BlockNames() {
		power[name] = float64(i%5) * 0.5
	}
	temps, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	if temps.Max() <= temps.Min() {
		t.Error("uneven power should give uneven temperatures")
	}
}

// Building the same model twice must produce bit-identical
// temperatures: the conductance assembly walks the adjacency map in
// sorted order, because float accumulation order matters at the last
// ulp once abutting blocks have unequal conductances (heterogeneous
// generated platforms). A randomized walk made nominally identical
// models drift across builds and processes.
func TestModelBuildDeterministicHeterogeneous(t *testing.T) {
	names := []string{"pe0", "pe1", "pe2", "pe3", "pe4", "pe5"}
	areas := []float64{9.6e-6, 12e-6, 16e-6, 21e-6, 26e-6, 32e-6}
	fp, err := floorplan.GridOf(names, areas)
	if err != nil {
		t.Fatal(err)
	}
	power := []float64{3, 5, 7, 9, 11, 13}
	temps := func() []float64 {
		m, err := NewModel(fp, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ts, err := m.SteadyStateVec(power)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(names))
		for i, n := range names {
			v, ok := ts.Of(n)
			if !ok {
				t.Fatalf("missing block %s", n)
			}
			out[i] = v
		}
		return out
	}
	a := temps()
	for run := 0; run < 10; run++ {
		b := temps()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d: block %s temp %v != %v (non-deterministic build)", run, names[i], b[i], a[i])
			}
		}
	}
}
