package hotspot

import (
	"math"
	"testing"
)

func TestTransientStartsAtAmbient(t *testing.T) {
	m := model4(t)
	tr, err := m.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	temps := tr.Temps()
	if math.Abs(temps.Max()-DefaultConfig().AmbientC) > 1e-9 {
		t.Errorf("initial temp %v, want ambient", temps.Max())
	}
	if tr.Time() != 0 {
		t.Errorf("initial time %v", tr.Time())
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := model4(t)
	power := map[string]float64{"pe0": 4, "pe1": 2, "pe2": 1, "pe3": 3}
	want, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var got Temps
	// The sink has hundreds of J/K and ~2 K/W to ambient: settle for a
	// long simulated time.
	for i := 0; i < 20000; i++ {
		got, err = tr.Step(power)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range got.Values() {
		if math.Abs(v-want.Values()[i]) > 0.05 {
			t.Errorf("block %d transient %v vs steady %v", i, v, want.Values()[i])
		}
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	m := model4(t)
	tr, err := m.NewTransient(0.1)
	if err != nil {
		t.Fatal(err)
	}
	power := map[string]float64{"pe0": 5}
	prev := -math.MaxFloat64
	for i := 0; i < 100; i++ {
		temps, err := tr.Step(power)
		if err != nil {
			t.Fatal(err)
		}
		if max := temps.Max(); max < prev-1e-9 {
			t.Fatalf("warm-up not monotone at step %d: %v < %v", i, max, prev)
		} else {
			prev = max
		}
	}
	if math.Abs(tr.Time()-10.0) > 1e-9 {
		t.Errorf("Time = %v, want 10", tr.Time())
	}
}

func TestTransientCooldown(t *testing.T) {
	m := model4(t)
	tr, err := m.NewTransient(0.1)
	if err != nil {
		t.Fatal(err)
	}
	hot := map[string]float64{"pe0": 10}
	for i := 0; i < 200; i++ {
		if _, err := tr.Step(hot); err != nil {
			t.Fatal(err)
		}
	}
	peakAfterHeat := tr.Temps().Max()
	for i := 0; i < 200; i++ {
		if _, err := tr.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	peakAfterCool := tr.Temps().Max()
	if peakAfterCool >= peakAfterHeat {
		t.Errorf("cooling failed: %v -> %v", peakAfterHeat, peakAfterCool)
	}
	tr.Reset()
	if tr.Time() != 0 || math.Abs(tr.Temps().Max()-DefaultConfig().AmbientC) > 1e-9 {
		t.Error("Reset did not restore ambient state")
	}
}

func TestTransientRunAndErrors(t *testing.T) {
	m := model4(t)
	tr, err := m.NewTransient(0.05)
	if err != nil {
		t.Fatal(err)
	}
	samples := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}}
	traj, err := tr.Run(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 3 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	if _, err := tr.StepVec([]float64{1}); err == nil {
		t.Error("short power vector accepted")
	}
	if _, err := tr.Step(map[string]float64{"bogus": 1}); err == nil {
		t.Error("unknown block accepted")
	}
	if _, err := m.NewTransient(-1); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestStepVecIntoMatchesStepVecAndDoesNotAllocate(t *testing.T) {
	m := model4(t)
	trA, err := m.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := m.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{6, 1, 0, 3}
	dst := make([]float64, m.NumBlocks())
	for step := 0; step < 25; step++ {
		want, err := trA.StepVec(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trB.StepVecInto(dst, p); err != nil {
			t.Fatal(err)
		}
		wv := want.Values()
		for i := range dst {
			if dst[i] != wv[i] {
				t.Fatalf("step %d block %d: StepVecInto %v, StepVec %v", step, i, dst[i], wv[i])
			}
		}
	}
	if err := trB.StepVecInto(dst, []float64{1}); err == nil {
		t.Error("short power vector accepted")
	}
	if err := trB.StepVecInto(dst[:1], p); err == nil {
		t.Error("short dst accepted")
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := trB.StepVecInto(dst, p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("StepVecInto allocates %v per run", n)
	}
}

// A transient warm-started from SteadyNodeRise is at a fixed point:
// stepping it under the same power must not move the block temperatures,
// and they must match the steady-state solve exactly.
func TestSetRiseWarmStartIsFixedPoint(t *testing.T) {
	m := model4(t)
	power := []float64{4, 2, 1, 3}
	rise, err := m.SteadyNodeRise(power)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SteadyStateVec(power)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetRise(rise); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, m.NumBlocks())
	for step := 0; step < 10; step++ {
		if err := tr.StepVecInto(got, power); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range m.BlockNames() {
		w, _ := want.Of(name)
		if math.Abs(got[i]-w) > 1e-9 {
			t.Errorf("block %s drifted to %v from steady %v", name, got[i], w)
		}
	}

	// Shape errors are rejected.
	if _, err := m.SteadyNodeRise(power[:2]); err == nil {
		t.Error("short power vector accepted")
	}
	if err := tr.SetRise(rise[:3]); err == nil {
		t.Error("short rise vector accepted")
	}
}
