package hotspot

import (
	"bytes"
	"strings"
	"testing"

	"thermalsched/internal/floorplan"
)

func TestWriteHeatMap(t *testing.T) {
	m := model4(t)
	fp, err := floorplan.Grid("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	temps, err := m.SteadyState(map[string]float64{"pe0": 8, "pe3": 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeatMap(&buf, fp, temps, 32); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "range") {
		t.Errorf("heat map missing legend:\n%s", out)
	}
	for _, name := range []string{"pe0", "pe1", "pe2", "pe3"} {
		if !strings.Contains(out, name) {
			t.Errorf("heat map missing block %s", name)
		}
	}
	// The hottest block gets the hottest glyph.
	if !strings.Contains(out, "@") {
		t.Errorf("heat map has no hot cells:\n%s", out)
	}
}

func TestWriteHeatMapUniform(t *testing.T) {
	m := model4(t)
	fp, err := floorplan.Grid("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	temps, err := m.SteadyState(nil) // everything at ambient
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeatMap(&buf, fp, temps, 16); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "45.0–45.0") {
		t.Errorf("uniform map legend wrong:\n%s", buf.String())
	}
}

func TestWriteHeatMapErrors(t *testing.T) {
	m := model4(t)
	fp, err := floorplan.Grid("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	temps, err := m.SteadyState(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeatMap(&buf, fp, temps, 4); err == nil {
		t.Error("tiny column count accepted")
	}
	if err := WriteHeatMap(&buf, floorplan.New(), temps, 32); err == nil {
		t.Error("empty floorplan accepted")
	}
}
