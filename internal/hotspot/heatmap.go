package hotspot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/geom"
)

// WriteHeatMap renders the floorplan's temperature field as an ASCII
// grid: cols × rows character cells over the bounding box, each cell
// showing the temperature bucket of the block underneath (' ' for empty
// die area, then '.', ':', '-', '=', '+', '*', '#', '@' from coolest to
// hottest across the observed range). A legend with the block names and
// temperatures follows. Useful for eyeballing schedules and floorplans
// in terminals; cmd/hotspotsim exposes it via -map.
func WriteHeatMap(w io.Writer, fp *floorplan.Floorplan, temps Temps, cols int) error {
	if cols < 8 {
		return fmt.Errorf("hotspot: heat map needs at least 8 columns, got %d", cols)
	}
	if err := fp.Validate(); err != nil {
		return err
	}
	bb := fp.BoundingBox()
	if !(bb.W > 0 && bb.H > 0) {
		return fmt.Errorf("hotspot: degenerate bounding box %v", bb)
	}
	// Terminal cells are roughly twice as tall as wide.
	rows := int(math.Max(2, math.Round(float64(cols)*bb.H/bb.W/2)))

	lo, hi := temps.Min(), temps.Max()
	ramp := []byte(" .:-=+*#@")
	bucket := func(t float64) byte {
		if hi-lo < 1e-9 {
			return ramp[len(ramp)/2]
		}
		i := 1 + int((t-lo)/(hi-lo)*float64(len(ramp)-2))
		if i > len(ramp)-1 {
			i = len(ramp) - 1
		}
		return ramp[i]
	}

	blocks := fp.Blocks()
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			p := geom.Point{
				X: bb.X + (float64(c)+0.5)/float64(cols)*bb.W,
				Y: bb.Y + (float64(r)+0.5)/float64(rows)*bb.H,
			}
			ch := byte(' ')
			for _, blk := range blocks {
				if blk.Rect.Contains(p) {
					if t, ok := temps.Of(blk.Name); ok {
						ch = bucket(t)
					}
					break
				}
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "range %.1f–%.1f °C\n", lo, hi)
	for _, name := range temps.Names() {
		t, _ := temps.Of(name)
		fmt.Fprintf(&b, "  %c %-8s %7.2f °C\n", bucket(t), name, t)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
