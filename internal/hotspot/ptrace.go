package hotspot

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PowerTrace is a sequence of per-block power samples, HotSpot .ptrace
// style: a header of block names followed by one row of watts per
// sampling interval.
type PowerTrace struct {
	Names   []string
	Samples [][]float64 // each row has len(Names) entries
}

// Validate checks structural consistency.
func (p *PowerTrace) Validate() error {
	if len(p.Names) == 0 {
		return fmt.Errorf("hotspot: power trace has no columns")
	}
	seen := make(map[string]bool, len(p.Names))
	for _, n := range p.Names {
		if n == "" {
			return fmt.Errorf("hotspot: power trace has empty column name")
		}
		if seen[n] {
			return fmt.Errorf("hotspot: duplicate power trace column %q", n)
		}
		seen[n] = true
	}
	for i, row := range p.Samples {
		if len(row) != len(p.Names) {
			return fmt.Errorf("hotspot: power trace row %d has %d values, want %d",
				i, len(row), len(p.Names))
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("hotspot: power trace row %d column %q negative (%g)",
					i, p.Names[j], v)
			}
		}
	}
	return nil
}

// Write serializes the trace: whitespace-separated header then rows.
func (p *PowerTrace) Write(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(p.Names, "\t"))
	for _, row := range p.Samples {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte('\t')
			}
			fmt.Fprintf(bw, "%.9g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadPowerTrace parses a .ptrace-style stream (see Write).
func ReadPowerTrace(r io.Reader) (*PowerTrace, error) {
	sc := bufio.NewScanner(r)
	var p PowerTrace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if p.Names == nil {
			p.Names = fields
			continue
		}
		if len(fields) != len(p.Names) {
			return nil, fmt.Errorf("hotspot: line %d: %d values, want %d", lineNo, len(fields), len(p.Names))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("hotspot: line %d: bad number %q: %w", lineNo, f, err)
			}
			row[i] = v
		}
		p.Samples = append(p.Samples, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hotspot: read power trace: %w", err)
	}
	if p.Names == nil {
		return nil, fmt.Errorf("hotspot: empty power trace")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Reorder returns the trace's samples re-indexed to match the given name
// order (e.g. a Model's block order). Names absent from the trace yield
// zero columns; extra trace columns are an error.
func (p *PowerTrace) Reorder(names []string) ([][]float64, error) {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	colMap := make([]int, len(p.Names)) // trace column -> output column
	for i, n := range p.Names {
		j, ok := idx[n]
		if !ok {
			return nil, fmt.Errorf("hotspot: trace column %q not in target order", n)
		}
		colMap[i] = j
	}
	out := make([][]float64, len(p.Samples))
	for s, row := range p.Samples {
		o := make([]float64, len(names))
		for i, v := range row {
			o[colMap[i]] = v
		}
		out[s] = o
	}
	return out, nil
}
