package hotspot

import (
	"fmt"

	"thermalsched/internal/linalg"
)

// Transient integrates the thermal network over time with fixed-step
// backward Euler. Construct one with Model.NewTransient; feed it power
// samples with Step. The state starts at ambient.
type Transient struct {
	m       *Model
	stepper *linalg.BackwardEulerStepper
	state   []float64 // temperature rise over ambient, all nodes
	next    []float64 // workspace for the incoming state (swapped with state)
	pbuf    []float64 // workspace: block powers widened to all nodes
	now     float64   // elapsed simulated seconds
}

// NewTransient creates a transient simulation with time step dt seconds.
func (m *Model) NewTransient(dt float64) (*Transient, error) {
	st, err := linalg.NewBackwardEulerStepper(m.denseG(), m.caps, dt)
	if err != nil {
		return nil, fmt.Errorf("hotspot: transient init: %w", err)
	}
	return &Transient{
		m:       m,
		stepper: st,
		state:   make([]float64, m.total),
		next:    make([]float64, m.total),
		pbuf:    make([]float64, m.total),
	}, nil
}

// Reset returns the simulation to ambient at t = 0.
func (tr *Transient) Reset() {
	for i := range tr.state {
		tr.state[i] = 0
	}
	tr.now = 0
}

// Time returns the elapsed simulated time in seconds.
func (tr *Transient) Time() float64 { return tr.now }

// SetRise overwrites the full node state with the given temperature
// rises over ambient (all nodes, in the model's node layout — the shape
// Model.SteadyNodeRise returns). It warm-starts a transient at a chosen
// operating point without advancing time.
func (tr *Transient) SetRise(rise []float64) error {
	if len(rise) != len(tr.state) {
		return fmt.Errorf("hotspot: rise vector length %d, want %d", len(rise), len(tr.state))
	}
	copy(tr.state, rise)
	return nil
}

// Step advances one time step under the given per-block power map and
// returns the block temperatures after the step.
func (tr *Transient) Step(power map[string]float64) (Temps, error) {
	p, err := tr.m.powerVector(power)
	if err != nil {
		return Temps{}, err
	}
	if err := tr.stepNodes(p); err != nil {
		return Temps{}, err
	}
	return tr.snapshot(), nil
}

// StepVec advances one time step with powers indexed by block node order.
func (tr *Transient) StepVec(power []float64) (Temps, error) {
	vals := make([]float64, tr.m.n)
	if err := tr.StepVecInto(vals, power); err != nil {
		return Temps{}, err
	}
	return Temps{names: tr.m.names, byName: tr.m.byName, values: vals}, nil
}

// StepVecInto advances one time step with powers indexed by block node
// order, writing the resulting block temperatures (°C) into dst without
// allocating — the DTM control loop's form.
func (tr *Transient) StepVecInto(dst, power []float64) error {
	if len(power) != tr.m.n {
		return fmt.Errorf("hotspot: power vector length %d, want %d", len(power), tr.m.n)
	}
	if len(dst) != tr.m.n {
		return fmt.Errorf("hotspot: temperature vector length %d, want %d", len(dst), tr.m.n)
	}
	copy(tr.pbuf, power) // non-block nodes of pbuf stay zero
	if err := tr.stepNodes(tr.pbuf); err != nil {
		return err
	}
	ambient := tr.m.cfg.AmbientC
	for i := range dst {
		dst[i] = tr.state[i] + ambient
	}
	return nil
}

// stepNodes advances the full node state under an all-nodes power
// vector, reusing the swap buffer so stepping never allocates.
func (tr *Transient) stepNodes(p []float64) error {
	if err := tr.stepper.StepInto(tr.next, tr.state, p); err != nil {
		return fmt.Errorf("hotspot: transient step: %w", err)
	}
	tr.state, tr.next = tr.next, tr.state
	tr.now += tr.stepper.Dt()
	return nil
}

// Temps returns the current block temperatures without advancing time.
func (tr *Transient) Temps() Temps { return tr.snapshot() }

func (tr *Transient) snapshot() Temps {
	vals := make([]float64, tr.m.n)
	for i := range vals {
		vals[i] = tr.state[i] + tr.m.cfg.AmbientC
	}
	return Temps{names: tr.m.names, byName: tr.m.byName, values: vals}
}

// Run integrates a sequence of power samples (each a per-block vector in
// node order, applied for one step) and returns the trajectory of block
// temperatures, one Temps per step.
func (tr *Transient) Run(samples [][]float64) ([]Temps, error) {
	out := make([]Temps, 0, len(samples))
	for i, s := range samples {
		t, err := tr.StepVec(s)
		if err != nil {
			return nil, fmt.Errorf("hotspot: sample %d: %w", i, err)
		}
		out = append(out, t)
	}
	return out, nil
}
