package hotspot

import (
	"fmt"

	"thermalsched/internal/linalg"
)

// Transient integrates the thermal network over time with fixed-step
// backward Euler. Construct one with Model.NewTransient; feed it power
// samples with Step. The state starts at ambient.
type Transient struct {
	m       *Model
	stepper *linalg.BackwardEulerStepper
	state   []float64 // temperature rise over ambient, all nodes
	now     float64   // elapsed simulated seconds
}

// NewTransient creates a transient simulation with time step dt seconds.
func (m *Model) NewTransient(dt float64) (*Transient, error) {
	st, err := linalg.NewBackwardEulerStepper(m.g, m.caps, dt)
	if err != nil {
		return nil, fmt.Errorf("hotspot: transient init: %w", err)
	}
	return &Transient{
		m:       m,
		stepper: st,
		state:   make([]float64, m.total),
	}, nil
}

// Reset returns the simulation to ambient at t = 0.
func (tr *Transient) Reset() {
	for i := range tr.state {
		tr.state[i] = 0
	}
	tr.now = 0
}

// Time returns the elapsed simulated time in seconds.
func (tr *Transient) Time() float64 { return tr.now }

// Step advances one time step under the given per-block power map and
// returns the block temperatures after the step.
func (tr *Transient) Step(power map[string]float64) (Temps, error) {
	p, err := tr.m.powerVector(power)
	if err != nil {
		return Temps{}, err
	}
	return tr.stepVec(p)
}

// StepVec advances one time step with powers indexed by block node order.
func (tr *Transient) StepVec(power []float64) (Temps, error) {
	if len(power) != tr.m.n {
		return Temps{}, fmt.Errorf("hotspot: power vector length %d, want %d", len(power), tr.m.n)
	}
	p := make([]float64, tr.m.total)
	copy(p, power)
	return tr.stepVec(p)
}

func (tr *Transient) stepVec(p []float64) (Temps, error) {
	next, err := tr.stepper.Step(tr.state, p)
	if err != nil {
		return Temps{}, fmt.Errorf("hotspot: transient step: %w", err)
	}
	tr.state = next
	tr.now += tr.stepper.Dt()
	return tr.snapshot(), nil
}

// Temps returns the current block temperatures without advancing time.
func (tr *Transient) Temps() Temps { return tr.snapshot() }

func (tr *Transient) snapshot() Temps {
	vals := make([]float64, tr.m.n)
	for i := range vals {
		vals[i] = tr.state[i] + tr.m.cfg.AmbientC
	}
	return Temps{names: tr.m.names, byName: tr.m.byName, values: vals}
}

// Run integrates a sequence of power samples (each a per-block vector in
// node order, applied for one step) and returns the trajectory of block
// temperatures, one Temps per step.
func (tr *Transient) Run(samples [][]float64) ([]Temps, error) {
	out := make([]Temps, 0, len(samples))
	for i, s := range samples {
		t, err := tr.StepVec(s)
		if err != nil {
			return nil, fmt.Errorf("hotspot: sample %d: %w", i, err)
		}
		out = append(out, t)
	}
	return out, nil
}
