package hotspot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermalsched/internal/floorplan"
)

// The influence-matrix fast path must reproduce the direct Cholesky
// solve: same linear system, different evaluation order.
func TestInfluenceFastPathMatchesDirect(t *testing.T) {
	fp, err := floorplan.Grid("b", 16, 4e-6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, m.NumBlocks())
		for i := range p {
			p[i] = rng.Float64() * 12
		}
		fast, err1 := m.SteadyStateVec(p)
		direct, err2 := m.SteadyStateDirect(p)
		if err1 != nil || err2 != nil {
			return false
		}
		fv, dv := fast.Values(), direct.Values()
		for i := range fv {
			if math.Abs(fv[i]-dv[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateIntoZeroAllocs(t *testing.T) {
	m := model4(t)
	p := []float64{8, 2, 0, 4}
	dst := make([]float64, m.NumBlocks())
	if err := m.SteadyStateInto(dst, p); err != nil { // warm the influence cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := m.SteadyStateInto(dst, p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SteadyStateInto allocates %v per run", n)
	}
}

func TestSteadyStateIntoValidation(t *testing.T) {
	m := model4(t)
	dst := make([]float64, m.NumBlocks())
	if err := m.SteadyStateInto(dst, []float64{1}); err == nil {
		t.Error("short power vector accepted")
	}
	if err := m.SteadyStateInto(dst[:2], []float64{1, 1, 1, 1}); err == nil {
		t.Error("short dst accepted")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := m.SteadyStateInto(dst, []float64{bad, 0, 0, 0}); err == nil {
			t.Errorf("invalid power %v accepted", bad)
		}
	}
}

// The influence matrix is (G⁻¹) restricted to block nodes; G is
// symmetric, so the restriction must be too.
func TestInfluenceRowSymmetric(t *testing.T) {
	m := model4(t)
	n := m.NumBlocks()
	for i := 0; i < n; i++ {
		ri, err := m.InfluenceRow(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(ri) != n {
			t.Fatalf("row %d has %d entries, want %d", i, len(ri), n)
		}
		for j := 0; j < n; j++ {
			rj, err := m.InfluenceRow(j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ri[j]-rj[i]) > 1e-12*(1+math.Abs(ri[j])) {
				t.Errorf("S[%d][%d] = %v, S[%d][%d] = %v: not symmetric", i, j, ri[j], j, i, rj[i])
			}
			if ri[j] <= 0 {
				t.Errorf("S[%d][%d] = %v, want positive (heat always spreads)", i, j, ri[j])
			}
		}
	}
	if _, err := m.InfluenceRow(-1); err == nil {
		t.Error("negative row index accepted")
	}
	if _, err := m.InfluenceRow(n); err == nil {
		t.Error("out-of-range row index accepted")
	}
}
