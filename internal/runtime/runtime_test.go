package runtime

import (
	"context"
	"math"
	"testing"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func platformRun(t *testing.T, bench string, policy sched.Policy) *cosynth.Result {
	t.Helper()
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Benchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseConfig() Config {
	return Config{DT: 1, TimeScale: 0.1, Exec: sim.Options{MinFactor: 1}}
}

// With no controller the closed-loop executor is exactly the open-loop
// discrete-event executor: same realization, same dispatch rule, so the
// same makespan and energy.
func TestUnthrottledMatchesOpenLoopExecutor(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	for _, seed := range []int64{0, 1, 7} {
		cfg := baseConfig()
		cfg.Exec = sim.Options{MinFactor: 0.6, Seed: seed}
		closed, err := Simulate(context.Background(), res.Schedule, res.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := closed.Validate(res.Schedule); err != nil {
			t.Fatal(err)
		}
		open, err := sim.Execute(res.Schedule, cfg.Exec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed.Makespan-open.Makespan) > 1e-6 {
			t.Errorf("seed %d: closed-loop makespan %g, open-loop %g", seed, closed.Makespan, open.Makespan)
		}
		if math.Abs(closed.Energy-open.Energy) > 1e-6 {
			t.Errorf("seed %d: closed-loop energy %g, open-loop %g", seed, closed.Energy, open.Energy)
		}
		if closed.ThrottleTime != 0 {
			t.Errorf("seed %d: unthrottled run reports throttle time %g", seed, closed.ThrottleTime)
		}
	}
}

// The closed-loop property of the acceptance criteria: with a toggle
// controller triggered below the schedule's peak steady-state
// temperature, throttling stretches execution, so the simulated
// makespan strictly exceeds the unthrottled makespan.
func TestThrottlingStretchesMakespan(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	peak := res.Metrics.MaxTemp
	trigger := 60.0
	if trigger >= peak {
		t.Fatalf("test trigger %g not below steady-state peak %g", trigger, peak)
	}

	free, err := Simulate(context.Background(), res.Schedule, res.Model, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := dtm.NewToggleController(trigger, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := dtm.Supervise(ctrl, dtm.DefaultLadder)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Supervisor = sup
	throttled, err := Simulate(context.Background(), res.Schedule, res.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := throttled.Validate(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if throttled.ThrottleTime <= 0 {
		t.Fatalf("trigger %g below peak %g yet no throttling occurred", trigger, peak)
	}
	if !(throttled.Makespan > free.Makespan) {
		t.Errorf("throttled makespan %g not strictly above unthrottled %g", throttled.Makespan, free.Makespan)
	}
	// Energy is conserved under throttling: work stretches, power scales.
	if math.Abs(throttled.Energy-free.Energy) > 1e-6*free.Energy {
		t.Errorf("throttling changed delivered energy: %g vs %g", throttled.Energy, free.Energy)
	}
}

// Warm-starting from the schedule's steady-state operating point makes
// the very first steps run hot, so a trigger below the steady peak
// throttles immediately.
func TestWarmStartBeginsAtOperatingPoint(t *testing.T) {
	res := platformRun(t, "Bm2", sched.ThermalAware)
	cfg := baseConfig()
	cfg.WarmStart = true
	r, err := Simulate(context.Background(), res.Schedule, res.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakTempC < res.Metrics.MaxTemp-15 {
		t.Errorf("warm-started peak %g far below steady-state peak %g", r.PeakTempC, res.Metrics.MaxTemp)
	}
	cold, err := Simulate(context.Background(), res.Schedule, res.Model, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.PeakTempC > cold.PeakTempC) {
		t.Errorf("warm start peak %g not above cold start peak %g", r.PeakTempC, cold.PeakTempC)
	}
}

// A controller throttled to factor 0 with an unreachable un-throttle
// band stalls the run; the step bound must turn that into an error
// rather than an infinite loop.
func TestStalledRunHitsStepBound(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	ctrl, err := dtm.NewToggleController(46, 1000, 0) // throttle to zero, never release
	if err != nil {
		t.Fatal(err)
	}
	sup, err := dtm.Supervise(ctrl, dtm.DefaultLadder)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Supervisor = sup
	cfg.WarmStart = true // start hot so the trigger fires immediately
	cfg.MaxSteps = 2000
	if _, err := Simulate(context.Background(), res.Schedule, res.Model, cfg); err == nil {
		t.Fatal("standstill run returned without error")
	}
}

func TestSimulateCancellation(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, res.Schedule, res.Model, baseConfig()); err == nil {
		t.Fatal("cancelled simulation returned without error")
	}
}

func TestConfigValidation(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	bad := []Config{
		{DT: 0, TimeScale: 1, Exec: sim.Options{MinFactor: 1}},
		{DT: 1, TimeScale: 0, Exec: sim.Options{MinFactor: 1}},
		{DT: 1, TimeScale: 1, Exec: sim.Options{MinFactor: 0}},
		{DT: 1, TimeScale: 1, MaxSteps: -1, Exec: sim.Options{MinFactor: 1}},
	}
	for i, cfg := range bad {
		if _, err := Simulate(context.Background(), res.Schedule, res.Model, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Supervisor state must never leak between Monte-Carlo replicas: the
// core resets the supervisor before stepping, so running replica N on a
// supervisor that already served N−1 other replicas is byte-identical
// to running it on a fresh instance. Exercised for the two stateful
// kinds — the PI controller's integral term and the admit controller's
// retry-after embargoes.
func TestSupervisorResetHygieneAcrossReplicas(t *testing.T) {
	res := platformRun(t, "Bm1", sched.ThermalAware)
	supervisors := map[string]func() dtm.Supervisor{
		"pi": func() dtm.Supervisor {
			ctrl, err := dtm.NewPIController(70, 0.05, 0.01, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			sup, err := dtm.Supervise(ctrl, dtm.DefaultLadder)
			if err != nil {
				t.Fatal(err)
			}
			return sup
		},
		"admit": func() dtm.Supervisor {
			sup, err := dtm.NewAdmitController(dtm.DefaultLadder, 0.7, 0.4, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			return sup
		},
	}
	run := func(sup dtm.Supervisor, seed int64) *Result {
		t.Helper()
		cfg := baseConfig()
		cfg.Supervisor = sup
		cfg.WarmStart = true // start hot so both kinds accumulate state
		cfg.Exec = sim.Options{MinFactor: 0.6, Seed: seed}
		r, err := Simulate(context.Background(), res.Schedule, res.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for name, build := range supervisors {
		t.Run(name, func(t *testing.T) {
			// Fresh instance per replica: the leak-free reference.
			var want []*Result
			for seed := int64(0); seed < 3; seed++ {
				want = append(want, run(build(), seed))
			}
			// One shared instance across all replicas in sequence.
			shared := build()
			for seed := int64(0); seed < 3; seed++ {
				got := run(shared, seed)
				ref := want[seed]
				if got.Makespan != ref.Makespan || got.PeakTempC != ref.PeakTempC ||
					got.ThrottleTime != ref.ThrottleTime || got.Energy != ref.Energy ||
					got.AdmissionDenials != ref.AdmissionDenials || got.Steps != ref.Steps {
					t.Errorf("seed %d: replica after %d prior runs differs from fresh instance:\n got %+v\nwant %+v",
						seed, seed, got, ref)
				}
				for id := range ref.Records {
					if got.Records[id] != ref.Records[id] {
						t.Errorf("seed %d: record %d differs between shared and fresh supervisor", seed, id)
					}
				}
			}
		})
	}
}

// ctgSchedule builds a schedule for a conditional task graph on two PEs
// whose floorplan blocks are named after the PEs, so the runtime can map
// them. t0 branches to t1 (p=0.6) or t2 (p=0.4); both lead to t3.
func ctgPlatform(t *testing.T) (*sched.Schedule, *cosynth.Result) {
	t.Helper()
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.NewGraph("ctg", 2000)
	for i := 0; i < 4; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: i % taskgraph.NumTaskTypes}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []taskgraph.Edge{
		{From: 0, To: 1, Data: 1, Prob: 0.6},
		{From: 0, To: 2, Data: 1, Prob: 0.4},
		{From: 1, To: 3, Data: 1},
		{From: 2, To: 3, Data: 1},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule, res
}

// Conditional runs through the closed loop: PEs that only host
// skipped-branch tasks draw exactly zero power, and the seeded
// realization is deterministic — two runs of the same replica seed are
// bit-identical, and the branch draw matches the open-loop executor's.
func TestConditionalSkippedBranchZeroPower(t *testing.T) {
	s, res := ctgPlatform(t)
	sawSkip := false
	for seed := int64(0); seed < 10; seed++ {
		cfg := baseConfig()
		cfg.Exec = sim.Options{MinFactor: 1, Seed: seed, Conditional: true}
		r1, err := Simulate(context.Background(), s, res.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r1.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		open, err := sim.Execute(s, cfg.Exec)
		if err != nil {
			t.Fatal(err)
		}
		for id := range r1.Records {
			if r1.Records[id].Skipped != open.Records[id].Skipped {
				t.Fatalf("seed %d: task %d branch draw differs from open-loop executor", seed, id)
			}
		}
		// Any PE that hosts only skipped tasks must contribute zero
		// power/energy to the thermal trace.
		executedOn := make([]bool, len(s.Arch.PEs))
		assignedOn := make([]bool, len(s.Arch.PEs))
		for _, rec := range r1.Records {
			assignedOn[rec.PE] = true
			if !rec.Skipped {
				executedOn[rec.PE] = true
			}
		}
		for pe := range executedOn {
			if assignedOn[pe] && !executedOn[pe] {
				sawSkip = true
				if r1.PerPEEnergy[pe] != 0 {
					t.Errorf("seed %d: PE %d hosts only skipped tasks yet drew %g energy",
						seed, pe, r1.PerPEEnergy[pe])
				}
			}
		}
		// Deterministic-seed contract: replaying the same seed is
		// bit-identical.
		r2, err := Simulate(context.Background(), s, res.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Makespan != r2.Makespan || r1.PeakTempC != r2.PeakTempC ||
			r1.ThrottleTime != r2.ThrottleTime || r1.Energy != r2.Energy {
			t.Errorf("seed %d: replay differs: %+v vs %+v", seed, r1, r2)
		}
		for id := range r1.Records {
			if r1.Records[id] != r2.Records[id] {
				t.Errorf("seed %d: record %d differs across replays", seed, id)
			}
		}
	}
	if !sawSkip {
		t.Log("no seed produced a PE with only skipped tasks; zero-power assertion not exercised")
	}
}
