// Package runtime closes the loop between the discrete-event schedule
// executor (internal/sim), the transient thermal RC model
// (hotspot.Transient) and a dynamic-thermal-management controller
// (internal/dtm).
//
// The open-loop dtm.Run feeds a *fixed* power trace through the
// controller: throttling scales power but nothing slows down, so the
// performance cost of DTM is only a proxy (denied energy). This package
// models the real feedback: the executor and the thermal model advance
// in lockstep steps of DT schedule time units, the controller observes
// the block temperatures after every step, and when it throttles a PE's
// power by factor s the task currently executing there stretches — its
// remaining work completes at rate s while drawing s × nominal power.
// Throttling therefore feeds back into task finish times, downstream
// ready times, makespan, deadline misses and the subsequent power the
// die sees, which is exactly how a thermally balanced static schedule
// pays off at run time: cooler blocks cross the trigger later (or
// never), accumulate less throttle time, and miss fewer deadlines.
//
// Dispatch semantics match internal/sim exactly: the task→PE mapping
// and each PE's dispatch order come from the static schedule, actual
// durations and conditional branches come from the same seeded
// sim.Realize draw, so a closed-loop replica is directly comparable to
// its open-loop counterpart under the same seed.
package runtime

import (
	"context"
	"fmt"
	"math"
	"sort"

	"thermalsched/internal/coloop"
	"thermalsched/internal/dtm"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
)

// Config parameterizes one closed-loop co-simulation.
type Config struct {
	// DT is the co-simulation step in schedule time units: the executor
	// advances by DT, then the thermal model steps once, then the
	// supervisor updates the throttle scales for the next step (a
	// one-step sensing delay, as in a real DTM loop).
	DT float64
	// TimeScale converts one schedule time unit into seconds of thermal
	// simulation; the transient integrates with step DT × TimeScale.
	TimeScale float64
	// Supervisor throttles per-block power and, when proactive
	// (dtm.Supervisor.Proactive), gates task starts through admission
	// queries: a denied PE holds its queue head until the supervisor's
	// retry-after hint expires, waiting at full speed instead of
	// starting and being throttled. Nil disables DTM — every PE runs at
	// full speed, which is the unthrottled reference run. Reactive
	// controllers adapt via dtm.Supervise.
	Supervisor dtm.Supervisor
	// Exec seeds the discrete-event executor: MinFactor, Seed and
	// Conditional have the same meaning (and the same RNG draws) as in
	// sim.Execute.
	Exec sim.Options
	// WarmStart initializes the thermal state to the steady-state
	// operating point of the schedule's deadline-averaged power instead
	// of cold ambient, modeling a die that has been running the workload
	// for a while.
	WarmStart bool
	// MaxSteps bounds the stepped loop as a safety net against a
	// controller that throttles the die to a standstill. Zero derives a
	// generous default from the static makespan.
	MaxSteps int
}

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	if !(c.DT > 0) {
		return fmt.Errorf("runtime: step DT must be positive, got %g", c.DT)
	}
	if !(c.TimeScale > 0) {
		return fmt.Errorf("runtime: TimeScale must be positive, got %g", c.TimeScale)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("runtime: negative MaxSteps %d", c.MaxSteps)
	}
	return c.Exec.Validate()
}

// Result is the outcome of one closed-loop run.
type Result struct {
	// Records holds the realized execution, indexed by task ID; skipped
	// conditional branches are marked as in sim. Power is the nominal
	// (unthrottled) draw of the task.
	Records []sim.TaskRecord
	// Makespan is the realized completion time in schedule units —
	// under throttling it exceeds the open-loop makespan of the same
	// realization.
	Makespan float64
	// Energy is the energy actually delivered, Σ scaled power × time.
	// Because throttling stretches work at conserved energy-per-task it
	// equals the nominal energy of the executed tasks.
	Energy float64
	// PerPEEnergy splits Energy by PE; a PE hosting only skipped
	// branches contributes exactly zero.
	PerPEEnergy []float64
	// Executed counts the tasks that actually ran.
	Executed int
	// Steps is the number of co-simulation steps taken.
	Steps int
	// PeakTempC is the hottest block temperature observed at any step.
	PeakTempC float64
	// ThrottleTime is the total busy PE time spent below full speed, in
	// schedule units — the run-time cost the static schedule is judged
	// by. PerPEThrottle splits it by PE.
	ThrottleTime  float64
	PerPEThrottle []float64
	// AdmissionDenials counts the admission queries a proactive
	// supervisor denied — each denial holds a PE's queue head for the
	// supervisor's retry-after hint. Zero under reactive controllers.
	AdmissionDenials int
	// DeadlineMet reports Makespan ≤ the graph's deadline.
	DeadlineMet bool
}

// completion tolerance: a task is done when its remaining work falls to
// a rounding error of its realized duration.
const workEps = 1e-9

// Simulate runs the schedule under the closed DTM loop. The model must
// contain a same-named block for every architecture PE (the platform
// and co-synthesis flows guarantee this). Cancelling ctx aborts the
// stepped loop promptly.
func Simulate(ctx context.Context, s *sched.Schedule, model *hotspot.Model, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	real, err := sim.Realize(s, cfg.Exec)
	if err != nil {
		return nil, err
	}

	// PE → thermal block mapping, by name.
	nPE := len(s.Arch.PEs)
	peNames := make([]string, nPE)
	for i, pe := range s.Arch.PEs {
		peNames[i] = pe.Name
	}
	peBlock, err := coloop.PEBlocks(model, peNames)
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 64*int(math.Ceil(s.Makespan/cfg.DT)) + 4096
	}

	core, err := coloop.New(coloop.Config{
		Model:      model,
		PEBlock:    peBlock,
		DT:         cfg.DT,
		TimeScale:  cfg.TimeScale,
		MaxSteps:   maxSteps,
		Supervisor: cfg.Supervisor,
		TrackPerPE: true,
	})
	if err != nil {
		return nil, err
	}
	if cfg.WarmStart {
		avg, err := s.PEAveragePower(s.Graph.Deadline)
		if err != nil {
			return nil, err
		}
		blockAvg := make([]float64, model.NumBlocks())
		for pe, w := range avg {
			blockAvg[peBlock[pe]] += w
		}
		if err := core.WarmStart(blockAvg); err != nil {
			return nil, err
		}
	}

	// Proactive supervisors gate dispatch: forecast quotes the rise a
	// candidate task's power causes on its PE's block within the task's
	// WCET duration (the realized duration would be future knowledge);
	// holdUntil[pe] is the retry-after hold a denial arms. Both stay
	// nil for reactive supervisors, keeping the classic toggle/PI path
	// byte-identical to the pre-supervisor loop.
	var forecast *coloop.RiseForecaster
	var holdUntil []float64
	if cfg.Supervisor != nil && cfg.Supervisor.Proactive() {
		var maxDur float64
		for _, a := range s.Assignments {
			if d := a.Finish - a.Start; d > maxDur {
				maxDur = d
			}
		}
		forecast, err = coloop.NewRiseForecaster(model, peBlock,
			cfg.DT*cfg.TimeScale, maxDur*cfg.TimeScale)
		if err != nil {
			return nil, err
		}
		holdUntil = make([]float64, nPE)
	}

	n := s.Graph.NumTasks()
	queues := sim.DispatchQueues(s)
	next := make([]int, nPE)        // per-PE queue cursor
	running := make([]int, nPE)     // task executing on the PE, or -1
	remaining := make([]float64, n) // work left, in schedule units at full speed
	done := make([]bool, n)
	records := make([]sim.TaskRecord, n)
	for pe := range running {
		running[pe] = -1
	}

	// The core owns the outer DT loop and its buffers: Step fills
	// core.StepEnergy and reads core.Scale, frozen for the step.
	scale, stepEnergy := core.Scale, core.StepEnergy

	res := &Result{
		Records:       records,
		PerPEThrottle: make([]float64, nPE),
	}

	// readyAt computes when task id's inputs are available on PE pe; ok
	// is false while any predecessor is still pending. Only fired edges
	// carry data; skipped predecessors impose no delay — the same rule
	// sim.Execute dispatches by.
	readyAt := func(id, pe int) (float64, bool) {
		t := 0.0
		for _, e := range s.Graph.Predecessors(id) {
			if !done[e.From] {
				return 0, false
			}
			if !real.Fired(e.From, e.To) || records[e.From].Skipped {
				continue
			}
			r := records[e.From].Finish
			if records[e.From].PE != pe {
				r += e.Data * s.Arch.BusTimePerUnit
			}
			if r > t {
				t = r
			}
		}
		return t, true
	}

	completed := 0
	// step is the micro event loop inside [now, stepEnd): dispatch
	// ready (and admitted) tasks, advance running ones at their PE's
	// throttle rate, process completions, repeat. Scales and
	// temperatures are frozen for the step.
	step := func(now, stepEnd float64) error {
		t := now
		for {
			// Dispatch to fixpoint: skipped branches complete instantly
			// (which can unblock heads on other PEs within the same
			// instant); runnable heads start once their inputs have
			// arrived and the supervisor admits them.
			for progressed := true; progressed; {
				progressed = false
				for pe := range queues {
					for running[pe] < 0 && next[pe] < len(queues[pe]) {
						id := queues[pe][next[pe]]
						if !real.Executes[id] {
							records[id] = sim.TaskRecord{Task: id, PE: pe, Skipped: true}
							done[id] = true
							next[pe]++
							completed++
							progressed = true
							continue
						}
						ready, ok := readyAt(id, pe)
						if !ok || ready > t {
							break
						}
						if holdUntil != nil {
							if holdUntil[pe] > t {
								break // admission hold still running
							}
							a := s.Assignments[id]
							adm := cfg.Supervisor.Admit(peBlock[pe], core.Temps,
								forecast.Rise(pe, a.Power, (a.Finish-a.Start)*cfg.TimeScale), t)
							if !adm.OK {
								res.AdmissionDenials++
								if adm.RetryAfter > 0 {
									holdUntil[pe] = t + adm.RetryAfter
								}
								break
							}
						}
						records[id] = sim.TaskRecord{
							Task: id, PE: pe, Start: t,
							Power: s.Assignments[id].Power,
						}
						remaining[id] = real.Actual[id]
						running[pe] = id
						next[pe]++
						progressed = true
					}
				}
			}
			if completed == n {
				return nil
			}

			// Next event: earliest completion, upcoming ready time or
			// expiring admission hold, capped at the step boundary.
			event := stepEnd
			for pe, id := range running {
				if id < 0 {
					continue
				}
				speed := scale[peBlock[pe]]
				if speed <= 0 {
					continue // stalled; can only resume after the controller relents
				}
				if fin := t + remaining[id]/speed; fin < event {
					event = fin
				}
			}
			for pe := range queues {
				if running[pe] >= 0 || next[pe] >= len(queues[pe]) {
					continue
				}
				id := queues[pe][next[pe]]
				if !real.Executes[id] {
					continue // handled by dispatch above
				}
				ready, ok := readyAt(id, pe)
				if !ok {
					continue
				}
				if holdUntil != nil && holdUntil[pe] > ready {
					ready = holdUntil[pe] // head waits out its admission hold
				}
				if ready > t && ready < event {
					event = ready
				}
			}

			// Advance all running tasks to the event, accumulating the
			// scaled energy and the throttled busy time.
			dt := event - t
			if dt > 0 {
				for pe, id := range running {
					if id < 0 {
						continue
					}
					speed := scale[peBlock[pe]]
					remaining[id] -= speed * dt
					w := records[id].Power
					stepEnergy[pe] += w * speed * dt
					if speed < 1 {
						res.PerPEThrottle[pe] += dt
					}
				}
			}
			t = event

			// Completions at the event instant.
			for pe, id := range running {
				if id < 0 {
					continue
				}
				if remaining[id] <= workEps*math.Max(1, real.Actual[id]) {
					records[id].Finish = t
					done[id] = true
					running[pe] = -1
					completed++
				}
			}
			if t >= stepEnd {
				return nil
			}
		}
	}

	err = core.Run(ctx, coloop.Hooks{
		Done: func() bool { return completed >= n },
		Step: step,
		Stalled: func(steps int) error {
			return fmt.Errorf("runtime: %d/%d tasks after %d steps — controller throttled the run to a standstill", completed, n, steps)
		},
		Cancelled: func(cause error) error {
			return fmt.Errorf("runtime: simulation cancelled: %w", cause)
		},
	})
	if err != nil {
		return nil, err
	}
	res.Energy = core.Energy
	res.PerPEEnergy = core.PerPEEnergy
	res.Steps = core.Steps
	res.PeakTempC = core.PeakTempC

	for _, r := range records {
		if r.Skipped {
			continue
		}
		res.Executed++
		if r.Finish > res.Makespan {
			res.Makespan = r.Finish
		}
	}
	for _, th := range res.PerPEThrottle {
		res.ThrottleTime += th
	}
	res.DeadlineMet = res.Makespan <= s.Graph.Deadline
	if res.Steps == 0 { // empty graph corner: never stepped, peak is ambient
		res.PeakTempC = model.Config().AmbientC
	}
	return res, nil
}

// Validate cross-checks the realized execution against the schedule's
// structure: every executed task ran on its assigned PE without
// overlap, and every fired precedence edge (with bus delay) was
// honoured. Throttling may stretch tasks, so durations are only checked
// to be at least the realized work.
func (r *Result) Validate(s *sched.Schedule) error {
	const tol = 1e-9
	n := s.Graph.NumTasks()
	if len(r.Records) != n {
		return fmt.Errorf("runtime: %d records for %d tasks", len(r.Records), n)
	}
	for id, rec := range r.Records {
		if rec.Task != id {
			return fmt.Errorf("runtime: record %d holds task %d", id, rec.Task)
		}
		if rec.PE != s.Assignments[id].PE {
			return fmt.Errorf("runtime: task %d migrated from its assigned PE", id)
		}
		if rec.Skipped {
			continue
		}
		if rec.Finish < rec.Start-tol {
			return fmt.Errorf("runtime: task %d has negative duration", id)
		}
	}
	for _, e := range s.Graph.Edges() {
		from, to := r.Records[e.From], r.Records[e.To]
		if from.Skipped || to.Skipped {
			continue
		}
		ready := from.Finish
		if from.PE != to.PE {
			ready += e.Data * s.Arch.BusTimePerUnit
		}
		if to.Start < ready-tol {
			return fmt.Errorf("runtime: edge %d->%d violated", e.From, e.To)
		}
	}
	byPE := make(map[int][]sim.TaskRecord)
	for _, rec := range r.Records {
		if rec.Skipped {
			continue
		}
		byPE[rec.PE] = append(byPE[rec.PE], rec)
	}
	// Walk PEs in sorted order so which overlap gets reported never
	// depends on map iteration order.
	pes := make([]int, 0, len(byPE))
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		recs := byPE[pe]
		for i := range recs {
			for j := i + 1; j < len(recs); j++ {
				a, b := recs[i], recs[j]
				if a.Start < b.Finish-tol && b.Start < a.Finish-tol {
					return fmt.Errorf("runtime: tasks %d and %d overlap on PE %d", a.Task, b.Task, pe)
				}
			}
		}
	}
	return nil
}
