package dtm

import (
	"math"
	"testing"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
)

func model4(t testing.TB) *hotspot.Model {
	t.Helper()
	fp, err := floorplan.Row("pe", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hotSamples produces a sustained high-power workload that would exceed
// the trigger temperature without DTM.
func hotSamples(steps int) [][]float64 {
	out := make([][]float64, steps)
	for i := range out {
		out[i] = []float64{12, 4, 4, 4}
	}
	return out
}

func TestToggleControllerValidation(t *testing.T) {
	if _, err := NewToggleController(80, -1, 0.5); err == nil {
		t.Error("negative hysteresis accepted")
	}
	if _, err := NewToggleController(80, 2, 1.0); err == nil {
		t.Error("throttle 1.0 accepted")
	}
	if _, err := NewToggleController(80, 2, -0.1); err == nil {
		t.Error("negative throttle accepted")
	}
	if _, err := NewToggleController(80, 2, 0.5); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestPIControllerValidation(t *testing.T) {
	if _, err := NewPIController(80, -1, 0, 0.2); err == nil {
		t.Error("negative kp accepted")
	}
	if _, err := NewPIController(80, 0.1, 0.01, 1.5); err == nil {
		t.Error("MinScale > 1 accepted")
	}
	if _, err := NewPIController(80, 0.1, 0.01, 0.2); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestToggleCapsTemperature(t *testing.T) {
	m := model4(t)
	// Unmanaged run for reference.
	unmanaged, err := Run(m, noopController{}, hotSamples(4000), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewToggleController(85, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	managed, err := Run(m, ctrl, hotSamples(4000), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if unmanaged.PeakTemp <= 85 {
		t.Fatalf("test workload too cool to exercise DTM: %v", unmanaged.PeakTemp)
	}
	if managed.PeakTemp >= unmanaged.PeakTemp {
		t.Errorf("DTM did not reduce peak: %v vs %v", managed.PeakTemp, unmanaged.PeakTemp)
	}
	// Overshoot past the trigger is bounded (one sensing step plus RC lag).
	if managed.PeakTemp > 92 {
		t.Errorf("managed peak %v overshoots the 85 °C trigger too far", managed.PeakTemp)
	}
	if managed.ThrottledFraction <= 0 {
		t.Error("throttling never engaged")
	}
	if managed.Slowdown() <= 0 || managed.Slowdown() >= 1 {
		t.Errorf("slowdown = %v, want (0, 1)", managed.Slowdown())
	}
}

func TestToggleHysteresisPreventsFlapping(t *testing.T) {
	ctrl, err := NewToggleController(80, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross the trigger, then sit inside the hysteresis band: the
	// controller must stay throttled at 78 °C (above 80−5).
	s1, err := ctrl.Scale([]float64{85})
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] != 0.5 {
		t.Fatalf("should throttle at 85: %v", s1)
	}
	s2, err := ctrl.Scale([]float64{78})
	if err != nil {
		t.Fatal(err)
	}
	if s2[0] != 0.5 {
		t.Errorf("should stay throttled inside the band: %v", s2)
	}
	s3, err := ctrl.Scale([]float64{74})
	if err != nil {
		t.Fatal(err)
	}
	if s3[0] != 1 {
		t.Errorf("should release below the band: %v", s3)
	}
}

func TestPIControllerTracksSetpoint(t *testing.T) {
	m := model4(t)
	ctrl, err := NewPIController(82, 0.08, 0.004, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, ctrl, hotSamples(6000), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	// PI control should keep the peak near the setpoint (a few degrees
	// of transient overshoot is inherent to the one-step sensing delay).
	if res.PeakTemp > 88 {
		t.Errorf("PI peak %v too far above the 82 °C setpoint", res.PeakTemp)
	}
	if res.Slowdown() <= 0 {
		t.Error("PI never throttled a hot workload")
	}
}

func TestPIControllerIdleBelowSetpoint(t *testing.T) {
	ctrl, err := NewPIController(90, 0.05, 0.002, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ctrl.Scale([]float64{50, 60})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s {
		if v != 1 {
			t.Errorf("scale[%d] = %v below setpoint, want 1", i, v)
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := model4(t)
	if _, err := Run(m, nil, hotSamples(1), 0.002); err == nil {
		t.Error("nil controller accepted")
	}
	ctrl, _ := NewToggleController(85, 3, 0.3)
	if _, err := Run(m, ctrl, [][]float64{{1, 2}}, 0.002); err == nil {
		t.Error("short sample accepted")
	}
	if _, err := Run(m, ctrl, nil, 0.002); err != nil {
		t.Errorf("empty run should succeed: %v", err)
	}
	res, err := Run(m, ctrl, nil, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown() != 0 {
		t.Error("empty run slowdown should be 0")
	}
}

func TestControllerResetClearsState(t *testing.T) {
	ctrl, _ := NewToggleController(80, 5, 0.5)
	if _, err := ctrl.Scale([]float64{100}); err != nil { // throttle
		t.Fatal(err)
	}
	ctrl.Reset()
	s, err := ctrl.Scale([]float64{78})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("after Reset, 78 °C should not be throttled: %v", s)
	}
	pi, _ := NewPIController(80, 0.05, 0.01, 0.1)
	if _, err := pi.Scale([]float64{120}); err != nil {
		t.Fatal(err)
	}
	pi.Reset()
	s, err = pi.Scale([]float64{70})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("after Reset, PI below setpoint should be 1: %v", s)
	}
}

// A statically thermal-balanced power split needs less throttling than a
// concentrated one for the same total power — the DTM-side argument for
// the paper's thermal-aware scheduling.
func TestBalancedLoadThrottlesLess(t *testing.T) {
	m := model4(t)
	mk := func(p []float64, steps int) [][]float64 {
		out := make([][]float64, steps)
		for i := range out {
			out[i] = p
		}
		return out
	}
	ctrl, err := NewToggleController(85, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	concentrated, err := Run(m, ctrl, mk([]float64{15, 3, 3, 3}, 5000), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := Run(m, ctrl, mk([]float64{6, 6, 6, 6}, 5000), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Slowdown() >= concentrated.Slowdown() {
		t.Errorf("balanced slowdown %v should be below concentrated %v",
			balanced.Slowdown(), concentrated.Slowdown())
	}
	if math.IsNaN(balanced.PeakTemp) {
		t.Error("NaN peak")
	}
}

// noopController never throttles (reference runs).
type noopController struct{}

func (noopController) ScaleInto(out, temps []float64) error {
	for i := range out {
		out[i] = 1
	}
	return nil
}

func (noopController) Reset() {}

// Controllers size their per-block state on first use; a mid-run block
// count change must be an explicit error, not a silent state discard.
func TestControllerRejectsMidRunResize(t *testing.T) {
	toggle, err := NewToggleController(80, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out4 := make([]float64, 4)
	if err := toggle.ScaleInto(out4, []float64{85, 70, 70, 70}); err != nil {
		t.Fatal(err)
	}
	if err := toggle.ScaleInto(make([]float64, 2), []float64{70, 70}); err == nil {
		t.Error("toggle accepted a block count change mid-run")
	}
	// The explicit contract: Reset starts a run with a new size.
	toggle.Reset()
	if err := toggle.ScaleInto(make([]float64, 2), []float64{70, 70}); err != nil {
		t.Errorf("toggle rejected new size after Reset: %v", err)
	}

	pi, err := NewPIController(82, 0.08, 0.004, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.ScaleInto(out4, []float64{85, 70, 70, 70}); err != nil {
		t.Fatal(err)
	}
	if err := pi.ScaleInto(make([]float64, 2), []float64{70, 70}); err == nil {
		t.Error("PI accepted a block count change mid-run")
	}
	pi.Reset()
	if err := pi.ScaleInto(make([]float64, 2), []float64{70, 70}); err != nil {
		t.Errorf("PI rejected new size after Reset: %v", err)
	}
	// Mismatched out/temps lengths are caught for both.
	if err := toggle.ScaleInto(make([]float64, 3), []float64{70, 70}); err == nil {
		t.Error("toggle accepted out/temps length mismatch")
	}
}

func TestScaleIntoZeroAllocs(t *testing.T) {
	toggle, err := NewToggleController(80, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := NewPIController(82, 0.08, 0.004, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 4)
	temps := []float64{85, 75, 70, 90}
	if err := toggle.ScaleInto(out, temps); err != nil { // size the state
		t.Fatal(err)
	}
	if err := pi.ScaleInto(out, temps); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := toggle.ScaleInto(out, temps); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ToggleController.ScaleInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := pi.ScaleInto(out, temps); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PIController.ScaleInto allocates %v per run", n)
	}
}
