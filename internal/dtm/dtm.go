// Package dtm implements dynamic thermal management in the style of the
// paper's reference [2] (Skadron, Abdelzaher, Stan — "Control-Theoretic
// Techniques and Thermal-RC Modeling for Accurate and Localized Dynamic
// Thermal Management", HPCA 2002): a run-time controller that watches the
// transient block temperatures of the thermal RC model and throttles
// per-PE power to keep the die under a trigger threshold.
//
// Two controllers are provided:
//
//   - ToggleController: classic threshold DTM — when any block crosses
//     the trigger temperature, the offending PE's power is cut to a fixed
//     throttle fraction until it cools below trigger − hysteresis.
//   - PIController: the control-theoretic variant of reference [2] — a
//     per-PE proportional–integral loop drives each block's temperature
//     error to zero, scaling power continuously in [MinScale, 1].
//
// The paper proper uses only steady-state temperatures; DTM is the
// natural run-time companion (experiment A3/extension in DESIGN.md) and
// shows how the static thermal-aware schedule reduces throttling.
//
// Beyond reactive scaling, the package defines the Supervisor contract
// (supervisor.go): thermal-state classification on a nominal/fair/
// serious/critical Ladder, graduated per-state throttle factors, and
// admission queries with retry-after hints. Reactive controllers adapt
// via the Supervise shim; AdmitController (predictive admission) and
// ZigZagController (forced idle-slack cooling gaps) implement the
// proactive side.
//
// Note that Run is the *open-loop* variant: it drives a fixed,
// precomputed power trace through the controller, so throttling scales
// power but cannot slow execution down — the performance cost is only
// the denied-energy proxy (RunResult.Slowdown). The closed-loop
// variant, in which throttling stretches the affected tasks and feeds
// back into makespan and deadline misses, is the shared stepping core
// internal/coloop under internal/runtime (the Engine's "simulate" flow)
// and internal/stream; both consume this package's Supervisor
// implementations directly.
package dtm

import (
	"fmt"

	"thermalsched/internal/hotspot"
)

// Controller scales each PE's requested power based on observed block
// temperatures, writing per-block multipliers in [0, 1] into a
// caller-supplied slice.
//
// Resize contract: a controller sizes its per-block state on the first
// ScaleInto call after construction or Reset. A later call with a
// different block count is an error — silently resizing would discard
// throttle/integral state mid-run. Call Reset to start a run with a new
// block count.
type Controller interface {
	// ScaleInto inspects the current block temperatures (°C, indexed
	// like the model's blocks) and writes per-block power multipliers
	// into out (same length as temps). It must not allocate on the
	// steady path.
	ScaleInto(out, temps []float64) error
	// Reset clears controller state between runs.
	Reset()
}

// scaleBuffers validates the out/temps pair and the controller's
// per-block state size (shared by both controllers' ScaleInto).
func scaleBuffers(out, temps []float64, state int) error {
	if len(out) != len(temps) {
		return fmt.Errorf("dtm: scale buffer has %d blocks for %d temperatures", len(out), len(temps))
	}
	if state >= 0 && state != len(temps) {
		return fmt.Errorf("dtm: block count changed mid-run from %d to %d (Reset between runs)",
			state, len(temps))
	}
	return nil
}

// ToggleController is threshold-triggered throttling with hysteresis.
type ToggleController struct {
	TriggerC   float64 // throttle when a block exceeds this temperature
	Hysteresis float64 // un-throttle below TriggerC − Hysteresis
	Throttle   float64 // power multiplier while throttled, in [0, 1)

	throttled []bool
}

// NewToggleController returns a toggle controller with the given
// trigger temperature, hysteresis band and throttle fraction.
func NewToggleController(triggerC, hysteresis, throttle float64) (*ToggleController, error) {
	if hysteresis < 0 {
		return nil, fmt.Errorf("dtm: negative hysteresis %g", hysteresis)
	}
	if throttle < 0 || throttle >= 1 {
		return nil, fmt.Errorf("dtm: throttle fraction %g out of [0, 1)", throttle)
	}
	return &ToggleController{TriggerC: triggerC, Hysteresis: hysteresis, Throttle: throttle}, nil
}

// ScaleInto implements Controller.
func (c *ToggleController) ScaleInto(out, temps []float64) error {
	state := -1
	if c.throttled != nil {
		state = len(c.throttled)
	}
	if err := scaleBuffers(out, temps, state); err != nil {
		return err
	}
	if c.throttled == nil {
		c.throttled = make([]bool, len(temps))
	}
	for i, t := range temps {
		switch {
		case t >= c.TriggerC:
			c.throttled[i] = true
		case t <= c.TriggerC-c.Hysteresis:
			c.throttled[i] = false
		}
		if c.throttled[i] {
			out[i] = c.Throttle
		} else {
			out[i] = 1
		}
	}
	return nil
}

// Scale is the allocating convenience form of ScaleInto.
func (c *ToggleController) Scale(temps []float64) ([]float64, error) {
	out := make([]float64, len(temps))
	if err := c.ScaleInto(out, temps); err != nil {
		return nil, err
	}
	return out, nil
}

// Reset implements Controller.
func (c *ToggleController) Reset() { c.throttled = nil }

// PIController is a per-block proportional–integral power controller.
type PIController struct {
	SetpointC float64 // target temperature
	Kp        float64 // proportional gain, 1/°C
	Ki        float64 // integral gain, 1/(°C·step)
	MinScale  float64 // lower bound on the power multiplier

	integral []float64
}

// NewPIController returns a PI controller for the given setpoint.
func NewPIController(setpointC, kp, ki, minScale float64) (*PIController, error) {
	if kp < 0 || ki < 0 {
		return nil, fmt.Errorf("dtm: negative gains (kp %g, ki %g)", kp, ki)
	}
	if minScale < 0 || minScale > 1 {
		return nil, fmt.Errorf("dtm: MinScale %g out of [0, 1]", minScale)
	}
	return &PIController{SetpointC: setpointC, Kp: kp, Ki: ki, MinScale: minScale}, nil
}

// ScaleInto implements Controller.
func (c *PIController) ScaleInto(out, temps []float64) error {
	state := -1
	if c.integral != nil {
		state = len(c.integral)
	}
	if err := scaleBuffers(out, temps, state); err != nil {
		return err
	}
	if c.integral == nil {
		c.integral = make([]float64, len(temps))
	}
	for i, t := range temps {
		err := t - c.SetpointC // positive when too hot
		if err > 0 {
			c.integral[i] += err
		} else {
			// Anti-windup: bleed the integral when below setpoint.
			c.integral[i] *= 0.9
		}
		scale := 1 - c.Kp*maxf(err, 0) - c.Ki*c.integral[i]
		if scale < c.MinScale {
			scale = c.MinScale
		}
		if scale > 1 {
			scale = 1
		}
		out[i] = scale
	}
	return nil
}

// Scale is the allocating convenience form of ScaleInto.
func (c *PIController) Scale(temps []float64) ([]float64, error) {
	out := make([]float64, len(temps))
	if err := c.ScaleInto(out, temps); err != nil {
		return nil, err
	}
	return out, nil
}

// Reset implements Controller.
func (c *PIController) Reset() { c.integral = nil }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RunResult summarizes a DTM transient run.
type RunResult struct {
	PeakTemp float64 // hottest block temperature observed, °C
	// ThrottledFraction is the fraction of (block, step) pairs that ran
	// below full power — the DTM performance cost proxy.
	ThrottledFraction float64
	// EnergyDelivered is Σ scaled power × dt: the work the PEs actually
	// got through, relative to EnergyRequested.
	EnergyDelivered float64
	EnergyRequested float64
	Steps           int
	// StateFractions is the fraction of (block, step) pairs spent in
	// each thermal state (indexed by ThermalState): the supervisor-eye
	// view of the run — how long the die dwelt at nominal vs fair vs
	// serious vs critical.
	StateFractions [NumThermalStates]float64
}

// Slowdown returns the fraction of requested energy that throttling
// denied, a proxy for the execution-time penalty DTM causes.
func (r RunResult) Slowdown() float64 {
	if r.EnergyRequested == 0 {
		return 0
	}
	return 1 - r.EnergyDelivered/r.EnergyRequested
}

// Run drives a transient simulation of the power samples (per-block, in
// model block order, one per step) under the controller. The controller
// observes the temperatures after each step and its scales apply to the
// next step's power — a one-step sensing delay, as in a real DTM loop.
// The loop reuses fixed scratch buffers, so a step allocates nothing.
//
// Run is the open-loop study: the power trace is fixed before the
// controller sees it, so throttling scales power but never reshapes the
// trace — the execution itself cannot slow down, and the performance
// cost is only the denied-energy proxy (RunResult.Slowdown). The
// closed-loop counterpart is internal/coloop, the shared stepping core
// under internal/runtime and internal/stream, where the supervisor's
// scales stretch running tasks and its admission decisions delay
// dispatches, both feeding back into the subsequent power the model
// sees. A reactive Controller is adapted to the supervisor contract
// behind the DefaultLadder shim; pass a Supervisor to RunSupervised
// directly to control the ladder.
func Run(model *hotspot.Model, ctrl Controller, samples [][]float64, dt float64) (*RunResult, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("dtm: nil controller")
	}
	sup, ok := ctrl.(Supervisor)
	if !ok {
		var err error
		if sup, err = Supervise(ctrl, DefaultLadder); err != nil {
			return nil, err
		}
	}
	return RunSupervised(model, sup, samples, dt)
}

// RunSupervised is Run with an explicit Supervisor: the same open-loop
// transient study, additionally tallying the per-state dwell fractions
// the supervisor's ladder induces.
func RunSupervised(model *hotspot.Model, sup Supervisor, samples [][]float64, dt float64) (*RunResult, error) {
	if sup == nil {
		return nil, fmt.Errorf("dtm: nil supervisor")
	}
	tr, err := model.NewTransient(dt)
	if err != nil {
		return nil, err
	}
	sup.Reset()
	n := model.NumBlocks()
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1
	}
	res := &RunResult{}
	scaled := make([]float64, n)
	temps := make([]float64, n)
	for step, p := range samples {
		if len(p) != n {
			return nil, fmt.Errorf("dtm: sample %d has %d blocks, want %d", step, len(p), n)
		}
		throttledBlocks := 0
		for i, w := range p {
			scaled[i] = w * scale[i]
			res.EnergyRequested += w * dt
			res.EnergyDelivered += scaled[i] * dt
			if scale[i] < 1 {
				throttledBlocks++
			}
		}
		res.ThrottledFraction += float64(throttledBlocks) / float64(n)
		if err := tr.StepVecInto(temps, scaled); err != nil {
			return nil, err
		}
		for i, t := range temps {
			if t > res.PeakTemp {
				res.PeakTemp = t
			}
			res.StateFractions[sup.StateOf(i, temps)]++
		}
		if err := sup.ScaleInto(scale, temps); err != nil {
			return nil, err
		}
		res.Steps++
	}
	if res.Steps > 0 {
		res.ThrottledFraction /= float64(res.Steps)
		for i := range res.StateFractions {
			res.StateFractions[i] /= float64(res.Steps * n)
		}
	}
	return res, nil
}
