package dtm

import (
	"fmt"
	"math"
)

// ThermalState is one rung of the supervisor's temperature ladder. The
// graduated states follow the proactive-DTM shape (nominal → fair →
// serious → critical): reactive controllers only ever distinguish
// "too hot" from "fine", while a supervisor can throttle gently at
// serious, hard at critical, and refuse new work before either.
type ThermalState int

const (
	// StateNominal: comfortably below every threshold.
	StateNominal ThermalState = iota
	// StateFair: warm — still full speed, but admission forecasting
	// starts to matter.
	StateFair
	// StateSerious: above the serious threshold — graduated throttling
	// and admission denial.
	StateSerious
	// StateCritical: above the critical threshold — hard throttling.
	StateCritical
	// NumThermalStates sizes per-state tallies.
	NumThermalStates = int(StateCritical) + 1
)

// String names the state for reports and logs.
func (s ThermalState) String() string {
	switch s {
	case StateNominal:
		return "nominal"
	case StateFair:
		return "fair"
	case StateSerious:
		return "serious"
	case StateCritical:
		return "critical"
	}
	return fmt.Sprintf("ThermalState(%d)", int(s))
}

// Ladder holds the three ascending temperature thresholds that split
// the temperature axis into the four thermal states.
type Ladder struct {
	FairC     float64 // nominal below, fair at or above
	SeriousC  float64 // serious at or above
	CriticalC float64 // critical at or above
}

// DefaultLadder is the calibrated ladder for the paper-scale platforms:
// serious sits at the simulate flow's historical 80 °C trigger, fair a
// comfortable margin below, critical at the hard-throttle point.
var DefaultLadder = Ladder{FairC: 72, SeriousC: 80, CriticalC: 88}

// Validate checks that the thresholds ascend strictly.
func (l Ladder) Validate() error {
	if !(l.FairC < l.SeriousC && l.SeriousC < l.CriticalC) {
		return fmt.Errorf("dtm: ladder thresholds must ascend (fair %g, serious %g, critical %g)",
			l.FairC, l.SeriousC, l.CriticalC)
	}
	return nil
}

// Classify maps a temperature onto the ladder.
func (l Ladder) Classify(tempC float64) ThermalState {
	switch {
	case tempC >= l.CriticalC:
		return StateCritical
	case tempC >= l.SeriousC:
		return StateSerious
	case tempC >= l.FairC:
		return StateFair
	}
	return StateNominal
}

// Admission is a supervisor's answer to "may this task start on that
// block now?".
type Admission struct {
	// OK grants the start. When false, RetryAfter is the supervisor's
	// hint (in the caller's loop time units, > 0) for when asking again
	// is worthwhile.
	OK         bool
	RetryAfter float64
	// State is the block's thermal state at decision time.
	State ThermalState
}

// Supervisor is the widened thermal-management contract: a Controller
// (per-block throttle factors, one-step sensing delay) that also
// classifies block temperatures into graduated thermal states and
// answers admission queries before work is dispatched. Reactive
// controllers adapt via Supervise; proactive ones (AdmitController,
// ZigZagController) implement denial directly.
type Supervisor interface {
	Controller
	// StateOf classifies block b's current temperature on the ladder.
	StateOf(b int, temps []float64) ThermalState
	// Admit decides whether a task predicted to raise block b's
	// temperature by riseC may start now (the caller's loop time).
	// Implementations may record per-block retry-after state; Reset
	// clears it.
	Admit(b int, temps []float64, riseC, now float64) Admission
	// Proactive reports whether Admit can ever deny. Callers skip the
	// admission bookkeeping entirely for reactive supervisors, keeping
	// the classic toggle/PI loops byte-identical to their pre-supervisor
	// behavior.
	Proactive() bool
}

// Supervise adapts a reactive Controller to the Supervisor contract:
// scaling and state classification work as before, and every admission
// is granted — reactive DTM only ever acts after the fact.
func Supervise(c Controller, l Ladder) (Supervisor, error) {
	if c == nil {
		return nil, fmt.Errorf("dtm: nil controller")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &supervised{Controller: c, ladder: l}, nil
}

type supervised struct {
	Controller
	ladder Ladder
}

func (s *supervised) StateOf(b int, temps []float64) ThermalState {
	return s.ladder.Classify(temps[b])
}

func (s *supervised) Admit(b int, temps []float64, riseC, now float64) Admission {
	return Admission{OK: true, State: s.ladder.Classify(temps[b])}
}

func (s *supervised) Proactive() bool { return false }

// AdmitController is predictive admission control: instead of throttling
// after a threshold trips, it refuses the starts whose forecast rise
// (supplied by the caller — the thermal model's unit-step self-response
// over the task's worst-case duration) would push the block to serious;
// the work waits at full speed rather than crawling at a throttle
// fraction. Throttling still exists as a safety net with graduated
// per-state factors for when the forecast is beaten by transients.
// State classification is sticky: promotions are immediate, but a block
// leaves a state only after cooling Hysteresis below the state's entry
// threshold — the same trip-and-release shape as the reactive toggle,
// so duels between the two measure admission, not band bookkeeping.
type AdmitController struct {
	Ladder Ladder
	// SeriousScale and CriticalScale are the graduated throttle factors
	// applied while a block sits in the corresponding state (nominal and
	// fair run at full power).
	SeriousScale  float64
	CriticalScale float64
	// RetryAfter is the admission hold, in loop time units: a denied
	// block refuses further starts until the hold expires, so callers
	// can sleep instead of re-asking every event.
	RetryAfter float64
	// Hysteresis is the demotion margin, °C: a block demotes one state
	// only once its temperature falls Hysteresis below that state's
	// entry threshold.
	Hysteresis float64

	embargo []float64      // per-block admission hold expiry, loop time
	state   []ThermalState // per-block sticky state, ScaleInto-owned
}

// NewAdmitController validates and builds an admission controller.
func NewAdmitController(l Ladder, seriousScale, criticalScale, retryAfter, hysteresis float64) (*AdmitController, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if seriousScale < 0 || seriousScale > 1 || criticalScale < 0 || criticalScale > 1 {
		return nil, fmt.Errorf("dtm: admission scales (serious %g, critical %g) out of [0, 1]",
			seriousScale, criticalScale)
	}
	if !(retryAfter > 0) {
		return nil, fmt.Errorf("dtm: admission RetryAfter %g must be positive", retryAfter)
	}
	if hysteresis < 0 {
		return nil, fmt.Errorf("dtm: admission Hysteresis %g must be non-negative", hysteresis)
	}
	return &AdmitController{
		Ladder:        l,
		SeriousScale:  seriousScale,
		CriticalScale: criticalScale,
		RetryAfter:    retryAfter,
		Hysteresis:    hysteresis,
	}, nil
}

// entry returns a state's entry threshold on the ladder.
func (c *AdmitController) entry(s ThermalState) float64 {
	switch s {
	case StateCritical:
		return c.Ladder.CriticalC
	case StateSerious:
		return c.Ladder.SeriousC
	}
	return c.Ladder.FairC
}

// stickyState classifies temperature t for a block previously in prev:
// promotions are immediate; demotions descend one rung at a time, each
// requiring t to fall Hysteresis below the rung's entry threshold.
func (c *AdmitController) stickyState(prev ThermalState, t float64) ThermalState {
	raw := c.Ladder.Classify(t)
	if raw >= prev {
		return raw
	}
	for prev > raw && t < c.entry(prev)-c.Hysteresis {
		prev--
	}
	return prev
}

// buffers lazily sizes the per-block state the controller carries.
func (c *AdmitController) buffers(n int) {
	if c.embargo == nil {
		c.embargo = make([]float64, n)
		c.state = make([]ThermalState, n)
	}
}

// ScaleInto implements Controller: graduated throttle factors per
// sticky state. ScaleInto owns the state memory — it runs once per
// sensing step, so demotions happen at the controller cadence.
func (c *AdmitController) ScaleInto(out, temps []float64) error {
	state := -1
	if c.embargo != nil {
		state = len(c.embargo)
	}
	if err := scaleBuffers(out, temps, state); err != nil {
		return err
	}
	c.buffers(len(temps))
	for i, t := range temps {
		c.state[i] = c.stickyState(c.state[i], t)
		switch c.state[i] {
		case StateCritical:
			out[i] = c.CriticalScale
		case StateSerious:
			out[i] = c.SeriousScale
		default:
			out[i] = 1
		}
	}
	return nil
}

// Reset implements Controller: admission holds and sticky states never
// leak across runs.
func (c *AdmitController) Reset() { c.embargo, c.state = nil, nil }

// StateOf implements Supervisor: the sticky classification, read-only.
func (c *AdmitController) StateOf(b int, temps []float64) ThermalState {
	c.buffers(len(temps))
	return c.stickyState(c.state[b], temps[b])
}

// Admit implements Supervisor: deny when the block is already at
// serious, or when it is fair (warm) and the forecast rise would take it
// to serious. A nominal block always admits — the steady-state forecast
// is a worst case (it assumes the task runs to thermal equilibrium), so
// gating it on the block already being warm is what keeps admission
// from deadlocking a cold platform while still refusing the starts that
// would tip a warm block over. A denial arms the block's retry-after
// hold; re-asking during the hold is answered from the hold without
// extending it.
func (c *AdmitController) Admit(b int, temps []float64, riseC, now float64) Admission {
	c.buffers(len(temps))
	st := c.stickyState(c.state[b], temps[b])
	if hold := c.embargo[b]; hold > now {
		return Admission{RetryAfter: hold - now, State: st}
	}
	if st >= StateSerious || (st >= StateFair && c.Ladder.Classify(temps[b]+riseC) >= StateSerious) {
		c.embargo[b] = now + c.RetryAfter
		return Admission{RetryAfter: c.RetryAfter, State: st}
	}
	return Admission{OK: true, State: st}
}

// Proactive implements Supervisor.
func (c *AdmitController) Proactive() bool { return true }

// ZigZagController implements idle-slack cooling in the style of
// Chrobak et al. (arXiv 0801.4238): a block that reaches the serious
// threshold is forced through a fixed-length cooling gap (power cut to
// CoolScale, new starts refused), then resumes full-speed work —
// alternating hot work phases with idle slack instead of running
// continuously at a fractional throttle.
type ZigZagController struct {
	Ladder Ladder
	// CoolSteps is the forced gap length in controller steps; StepTime
	// converts the remaining gap into the caller's loop time for
	// admission retry-after hints.
	CoolSteps int
	StepTime  float64
	// CoolScale is the power multiplier during a gap (typically 0 — a
	// true idle gap).
	CoolScale float64

	cooling []int // remaining gap steps per block
}

// NewZigZagController validates and builds a zig-zag controller.
// coolTime is the gap length in loop time units; it is rounded up to
// whole controller steps of stepTime.
func NewZigZagController(l Ladder, coolTime, stepTime, coolScale float64) (*ZigZagController, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if !(coolTime > 0) || !(stepTime > 0) {
		return nil, fmt.Errorf("dtm: zig-zag times must be positive (coolTime %g, stepTime %g)", coolTime, stepTime)
	}
	if coolScale < 0 || coolScale >= 1 {
		return nil, fmt.Errorf("dtm: zig-zag CoolScale %g out of [0, 1)", coolScale)
	}
	steps := int(math.Ceil(coolTime / stepTime))
	if steps < 1 {
		steps = 1
	}
	return &ZigZagController{Ladder: l, CoolSteps: steps, StepTime: stepTime, CoolScale: coolScale}, nil
}

// ScaleInto implements Controller: entering serious arms a cooling gap;
// blocks inside a gap run at CoolScale, everyone else at full power.
func (c *ZigZagController) ScaleInto(out, temps []float64) error {
	state := -1
	if c.cooling != nil {
		state = len(c.cooling)
	}
	if err := scaleBuffers(out, temps, state); err != nil {
		return err
	}
	if c.cooling == nil {
		c.cooling = make([]int, len(temps))
	}
	for i, t := range temps {
		if c.cooling[i] == 0 && c.Ladder.Classify(t) >= StateSerious {
			c.cooling[i] = c.CoolSteps
		}
		if c.cooling[i] > 0 {
			out[i] = c.CoolScale
			c.cooling[i]--
		} else {
			out[i] = 1
		}
	}
	return nil
}

// Reset implements Controller: cooling gaps never leak across runs.
func (c *ZigZagController) Reset() { c.cooling = nil }

// StateOf implements Supervisor.
func (c *ZigZagController) StateOf(b int, temps []float64) ThermalState {
	return c.Ladder.Classify(temps[b])
}

// Admit implements Supervisor: no new work starts on a block inside a
// cooling gap; the hint is the gap's remaining loop time.
func (c *ZigZagController) Admit(b int, temps []float64, riseC, now float64) Admission {
	if c.cooling == nil {
		c.cooling = make([]int, len(temps))
	}
	st := c.Ladder.Classify(temps[b])
	if rem := c.cooling[b]; rem > 0 {
		return Admission{RetryAfter: float64(rem) * c.StepTime, State: st}
	}
	return Admission{OK: true, State: st}
}

// Proactive implements Supervisor.
func (c *ZigZagController) Proactive() bool { return true }
