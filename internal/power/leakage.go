package power

import (
	"fmt"
	"math"
)

// LeakageModel captures the exponential temperature dependence of leakage
// power the paper's introduction motivates: each block leaks
//
//	P_leak(T) = Base · exp(Coeff · (T − RefC))
//
// watts on top of its dynamic power. Because leakage raises temperature
// and temperature raises leakage, the steady state is a fixed point,
// which FixedPoint computes by damped iteration.
type LeakageModel struct {
	// Base is the leakage power at the reference temperature, W per block.
	Base float64
	// Coeff is the exponential slope, 1/°C. Silicon-typical values are
	// 0.01–0.05 /°C.
	Coeff float64
	// RefC is the reference temperature in °C.
	RefC float64
}

// DefaultLeakage returns a model calibrated to contribute ~10% extra
// power at the benchmarks' operating points.
func DefaultLeakage() LeakageModel {
	return LeakageModel{Base: 0.15, Coeff: 0.025, RefC: 45}
}

// Validate reports the first implausible parameter.
func (l LeakageModel) Validate() error {
	if l.Base < 0 || math.IsNaN(l.Base) {
		return fmt.Errorf("power: leakage base %g invalid", l.Base)
	}
	if l.Coeff < 0 || l.Coeff > 1 {
		return fmt.Errorf("power: leakage coefficient %g out of [0,1]", l.Coeff)
	}
	return nil
}

// At returns the leakage power at temperature tC.
func (l LeakageModel) At(tC float64) float64 {
	return l.Base * math.Exp(l.Coeff*(tC-l.RefC))
}

// Solver abstracts the thermal model for the fixed-point iteration:
// given per-block power, return per-block temperatures (°C). It matches
// the signature the hotspot package provides via a small closure.
type Solver func(power []float64) ([]float64, error)

// FixedPointResult reports the outcome of a leakage fixed-point solve.
type FixedPointResult struct {
	Temps      []float64 // final block temperatures, °C
	Leakage    []float64 // final per-block leakage, W
	TotalPower []float64 // dynamic + leakage per block, W
	Iterations int
}

// FixedPoint iterates T = solve(P_dyn + leak(T)) with damping until the
// temperature change drops below tol (°C) or maxIter is hit. It errors
// on thermal runaway (temperatures diverging past 1000 °C).
func (l LeakageModel) FixedPoint(dynamic []float64, solve Solver, tol float64, maxIter int) (*FixedPointResult, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		return nil, fmt.Errorf("power: tolerance must be positive, got %g", tol)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("power: maxIter must be at least 1, got %d", maxIter)
	}
	n := len(dynamic)
	leak := make([]float64, n)
	for i := range leak {
		leak[i] = l.Base
	}
	var temps []float64
	for it := 1; it <= maxIter; it++ {
		total := make([]float64, n)
		for i := range total {
			total[i] = dynamic[i] + leak[i]
		}
		next, err := solve(total)
		if err != nil {
			return nil, fmt.Errorf("power: leakage iteration %d: %w", it, err)
		}
		if len(next) != n {
			return nil, fmt.Errorf("power: solver returned %d temps for %d blocks", len(next), n)
		}
		var delta float64
		for i, t := range next {
			if t > 1000 {
				return nil, fmt.Errorf("power: thermal runaway (block %d at %.0f °C)", i, t)
			}
			if temps != nil {
				delta = math.Max(delta, math.Abs(t-temps[i]))
			} else {
				delta = math.Inf(1)
			}
		}
		temps = next
		// Damped leakage update for stable convergence.
		for i := range leak {
			leak[i] = 0.5*leak[i] + 0.5*l.At(temps[i])
		}
		if delta < tol {
			total := make([]float64, n)
			for i := range total {
				total[i] = dynamic[i] + leak[i]
			}
			return &FixedPointResult{
				Temps: temps, Leakage: leak, TotalPower: total, Iterations: it,
			}, nil
		}
	}
	return nil, fmt.Errorf("power: leakage fixed point did not converge in %d iterations", maxIter)
}
