package power

import (
	"math"
	"testing"

	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// buildSchedule makes a small deterministic schedule on two PEs.
func buildSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	lib, err := techlib.NewLibrary(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddPEType(
		techlib.PEType{Name: "a", Cost: 1, Area: 1e-6, IdlePower: 0.5},
		[]techlib.Entry{{WCET: 10, WCPC: 4}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := lib.AddPEType(
		techlib.PEType{Name: "b", Cost: 1, Area: 1e-6, IdlePower: 0.25},
		[]techlib.Entry{{WCET: 20, WCPC: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.NewGraph("g", 100)
	for i := 0; i < 3; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(taskgraph.Edge{From: 0, To: 2, Data: 0}); err != nil {
		t.Fatal(err)
	}
	arch := sched.Architecture{
		Name: "duo",
		PEs:  []sched.PE{{Name: "p0", Type: 0}, {Name: "p1", Type: 1}},
	}
	s, err := sched.AllocateAndSchedule(g, arch, lib, sched.DefaultConfig(sched.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromScheduleBasics(t *testing.T) {
	s := buildSchedule(t)
	p, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PENames) != 2 || p.PENames[0] != "p0" {
		t.Errorf("PENames = %v", p.PENames)
	}
	if p.Horizon != s.Makespan {
		t.Errorf("Horizon = %v, want %v", p.Horizon, s.Makespan)
	}
	total := 0
	for _, ivs := range p.Busy {
		total += len(ivs)
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].Start {
				t.Error("intervals not sorted")
			}
		}
	}
	if total != 3 {
		t.Errorf("total intervals = %d, want 3", total)
	}
}

func TestFromScheduleRejectsCorrupt(t *testing.T) {
	s := buildSchedule(t)
	s.Assignments[0].Finish += 99
	if _, err := FromSchedule(s); err == nil {
		t.Error("corrupt schedule accepted")
	}
}

func TestPowerAt(t *testing.T) {
	s := buildSchedule(t)
	p, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	// During the first assignment on p0, power = 4 + idle 0.5.
	var first *Interval
	for _, ivs := range p.Busy {
		if len(ivs) > 0 && (first == nil || ivs[0].Start < first.Start) {
			first = &ivs[0]
		}
	}
	if first == nil {
		t.Fatal("no intervals")
	}
	mid := (first.Start + first.Finish) / 2
	at := p.PowerAt(mid)
	found := false
	for _, v := range at {
		if v > 1 { // busy power is well above idle
			found = true
		}
	}
	if !found {
		t.Errorf("PowerAt(%v) = %v, expected a busy PE", mid, at)
	}
	// Far past the horizon everything idles.
	at = p.PowerAt(p.Horizon + 100)
	for i, v := range at {
		if v != p.IdlePower[i] {
			t.Errorf("idle PowerAt = %v", at)
			break
		}
	}
}

func TestEnergyIncludesIdle(t *testing.T) {
	s := buildSchedule(t)
	p, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	e := p.Energy()
	// Busy-only energy from the schedule.
	busyOnly := s.PEEnergy()
	for i := range e {
		if e[i] < busyOnly[i] {
			t.Errorf("PE %d energy %v below busy-only %v", i, e[i], busyOnly[i])
		}
	}
}

func TestAveragePowerAndUtilization(t *testing.T) {
	s := buildSchedule(t)
	p, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := p.AveragePower(p.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	e := p.Energy()
	for i := range avg {
		if math.Abs(avg[i]-e[i]/p.Horizon) > 1e-12 {
			t.Errorf("AveragePower[%d] = %v", i, avg[i])
		}
	}
	if _, err := p.AveragePower(0); err == nil {
		t.Error("zero horizon accepted")
	}
	u := p.Utilization()
	for i, v := range u {
		if v < 0 || v > 1+1e-12 {
			t.Errorf("Utilization[%d] = %v out of [0,1]", i, v)
		}
	}
}

func TestSampleConservesEnergy(t *testing.T) {
	s := buildSchedule(t)
	p, err := FromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []float64{1, 3, 7.5} {
		samples, err := p.Sample(dt)
		if err != nil {
			t.Fatal(err)
		}
		// Integrate samples: all but the last cover dt, the last covers
		// the remainder of the horizon.
		got := make([]float64, len(p.Busy))
		for k, row := range samples {
			window := dt
			if rem := p.Horizon - float64(k)*dt; rem < dt {
				window = rem
			}
			for pe, v := range row {
				got[pe] += v * window
			}
		}
		want := p.Energy()
		for pe := range want {
			if math.Abs(got[pe]-want[pe]) > 1e-6*(1+want[pe]) {
				t.Errorf("dt=%v PE %d: sampled energy %v, want %v", dt, pe, got[pe], want[pe])
			}
		}
	}
	if _, err := p.Sample(0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestLeakageModelAt(t *testing.T) {
	l := LeakageModel{Base: 1, Coeff: 0.02, RefC: 45}
	if got := l.At(45); math.Abs(got-1) > 1e-12 {
		t.Errorf("At(ref) = %v, want 1", got)
	}
	if l.At(85) <= l.At(45) {
		t.Error("leakage must grow with temperature")
	}
	// 40 °C at 0.02/°C → e^0.8 ≈ 2.23x.
	if got := l.At(85); math.Abs(got-math.Exp(0.8)) > 1e-9 {
		t.Errorf("At(85) = %v", got)
	}
}

func TestLeakageValidate(t *testing.T) {
	if err := DefaultLeakage().Validate(); err != nil {
		t.Errorf("default leakage invalid: %v", err)
	}
	if err := (LeakageModel{Base: -1}).Validate(); err == nil {
		t.Error("negative base accepted")
	}
	if err := (LeakageModel{Base: 1, Coeff: 2}).Validate(); err == nil {
		t.Error("huge coefficient accepted")
	}
}

// fakeSolver emulates a single-block thermal model with R = 2 K/W over
// 45 °C ambient.
func fakeSolver(power []float64) ([]float64, error) {
	out := make([]float64, len(power))
	for i, p := range power {
		out[i] = 45 + 2*p
	}
	return out, nil
}

func TestLeakageFixedPointConverges(t *testing.T) {
	l := LeakageModel{Base: 0.2, Coeff: 0.02, RefC: 45}
	res, err := l.FixedPoint([]float64{5, 2}, fakeSolver, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the fixed point: T = 45 + 2(P_dyn + leak(T)).
	for i, temp := range res.Temps {
		leak := l.At(temp)
		want := 45 + 2*(res.TotalPower[i]-res.Leakage[i]+leak)
		if math.Abs(temp-want) > 1e-6 {
			t.Errorf("block %d: T=%v inconsistent with model (want %v)", i, temp, want)
		}
		if res.Leakage[i] <= 0 || res.TotalPower[i] <= res.Leakage[i] {
			t.Errorf("block %d leakage bookkeeping wrong: %+v", i, res)
		}
	}
	if res.Iterations < 2 {
		t.Error("fixed point should take several iterations")
	}
}

func TestLeakageHotterMeansMoreLeakage(t *testing.T) {
	l := DefaultLeakage()
	cold, err := l.FixedPoint([]float64{1}, fakeSolver, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := l.FixedPoint([]float64{10}, fakeSolver, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Leakage[0] <= cold.Leakage[0] {
		t.Errorf("leakage should rise with load: %v vs %v", hot.Leakage[0], cold.Leakage[0])
	}
}

func TestLeakageRunawayDetected(t *testing.T) {
	// R = 50 K/W with strong exponential feedback → runaway.
	runawaySolver := func(power []float64) ([]float64, error) {
		out := make([]float64, len(power))
		for i, p := range power {
			out[i] = 45 + 50*p
		}
		return out, nil
	}
	l := LeakageModel{Base: 1, Coeff: 0.1, RefC: 45}
	if _, err := l.FixedPoint([]float64{10}, runawaySolver, 1e-9, 500); err == nil {
		t.Error("thermal runaway not detected")
	}
}

func TestLeakageFixedPointParamErrors(t *testing.T) {
	l := DefaultLeakage()
	if _, err := l.FixedPoint([]float64{1}, fakeSolver, 0, 10); err == nil {
		t.Error("zero tol accepted")
	}
	if _, err := l.FixedPoint([]float64{1}, fakeSolver, 1e-9, 0); err == nil {
		t.Error("zero maxIter accepted")
	}
	bad := LeakageModel{Base: -1}
	if _, err := bad.FixedPoint([]float64{1}, fakeSolver, 1e-9, 10); err == nil {
		t.Error("invalid model accepted")
	}
	short := func([]float64) ([]float64, error) { return []float64{1}, nil }
	if _, err := l.FixedPoint([]float64{1, 2}, short, 1e-9, 10); err == nil {
		t.Error("short solver output accepted")
	}
}
