// Package power converts schedules into the power-domain quantities the
// thermal model and the paper's tables consume: per-PE energies and
// time-averaged powers, step-function power profiles, sampled transient
// traces, and a temperature-dependent leakage extension (the paper's §1
// motivates exactly this feedback: "leakage power increases exponentially
// with the temperature increase").
package power

import (
	"fmt"
	"math"
	"sort"

	"thermalsched/internal/sched"
)

// Interval is one busy stretch of a PE: [Start, Finish) at Power watts.
type Interval struct {
	Task   int
	Start  float64
	Finish float64
	Power  float64
}

// Profile is the per-PE power timeline of one schedule.
type Profile struct {
	// PENames lists the PEs in architecture order.
	PENames []string
	// Busy holds each PE's busy intervals sorted by start time.
	Busy [][]Interval
	// Horizon is the profile's time span (the schedule makespan).
	Horizon float64
	// IdlePower is the per-PE idle dissipation applied between intervals.
	IdlePower []float64
}

// FromSchedule extracts the power profile of a schedule, including each
// PE type's idle power.
func FromSchedule(s *sched.Schedule) (*Profile, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("power: %w", err)
	}
	nPE := len(s.Arch.PEs)
	p := &Profile{
		PENames:   s.Arch.PENames(),
		Busy:      make([][]Interval, nPE),
		Horizon:   s.Makespan,
		IdlePower: make([]float64, nPE),
	}
	for i, pe := range s.Arch.PEs {
		p.IdlePower[i] = s.Lib.PEType(pe.Type).IdlePower
	}
	for _, a := range s.Assignments {
		p.Busy[a.PE] = append(p.Busy[a.PE], Interval{
			Task: a.Task, Start: a.Start, Finish: a.Finish, Power: a.Power,
		})
	}
	for pe := range p.Busy {
		sort.Slice(p.Busy[pe], func(i, j int) bool {
			return p.Busy[pe][i].Start < p.Busy[pe][j].Start
		})
	}
	return p, nil
}

// PowerAt returns each PE's instantaneous power at time t.
func (p *Profile) PowerAt(t float64) []float64 {
	out := make([]float64, len(p.Busy))
	for pe, ivs := range p.Busy {
		out[pe] = p.IdlePower[pe]
		for _, iv := range ivs {
			if t >= iv.Start && t < iv.Finish {
				out[pe] = iv.Power + p.IdlePower[pe]
				break
			}
			if iv.Start > t {
				break
			}
		}
	}
	return out
}

// Energy returns each PE's total energy over the horizon: busy energy
// plus idle power in the gaps.
func (p *Profile) Energy() []float64 {
	out := make([]float64, len(p.Busy))
	for pe, ivs := range p.Busy {
		var busyTime float64
		for _, iv := range ivs {
			out[pe] += (iv.Finish - iv.Start) * iv.Power
			busyTime += iv.Finish - iv.Start
		}
		out[pe] += (p.Horizon - busyTime) * p.IdlePower[pe]
	}
	return out
}

// AveragePower returns each PE's energy divided by the given horizon.
func (p *Profile) AveragePower(horizon float64) ([]float64, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("power: horizon must be positive, got %g", horizon)
	}
	e := p.Energy()
	for i := range e {
		e[i] /= horizon
	}
	return e, nil
}

// Utilization returns each PE's busy fraction of the horizon.
func (p *Profile) Utilization() []float64 {
	out := make([]float64, len(p.Busy))
	if p.Horizon <= 0 {
		return out
	}
	for pe, ivs := range p.Busy {
		var busy float64
		for _, iv := range ivs {
			busy += iv.Finish - iv.Start
		}
		out[pe] = busy / p.Horizon
	}
	return out
}

// Sample returns the profile discretized with step dt: sample k covers
// [k·dt, (k+1)·dt) and holds each PE's average power over that window.
// The result feeds the transient thermal solver.
func (p *Profile) Sample(dt float64) ([][]float64, error) {
	if !(dt > 0) {
		return nil, fmt.Errorf("power: sample step must be positive, got %g", dt)
	}
	steps := int(math.Ceil(p.Horizon / dt))
	if steps == 0 {
		steps = 1
	}
	out := make([][]float64, steps)
	for k := 0; k < steps; k++ {
		t0 := float64(k) * dt
		t1 := math.Min(t0+dt, p.Horizon)
		row := make([]float64, len(p.Busy))
		for pe, ivs := range p.Busy {
			var busyEnergy, busyTime float64
			for _, iv := range ivs {
				lo := math.Max(iv.Start, t0)
				hi := math.Min(iv.Finish, t1)
				if hi > lo {
					busyEnergy += (hi - lo) * iv.Power
					busyTime += hi - lo
				}
			}
			window := t1 - t0
			if window <= 0 {
				window = dt
			}
			row[pe] = (busyEnergy + (window-busyTime)*p.IdlePower[pe]) / window
		}
		out[k] = row
	}
	return out, nil
}
