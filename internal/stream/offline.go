package stream

// clairvoyantBound returns a lower bound on the makespan of *any*
// schedule of the realized trace — even one built by a clairvoyant
// offline scheduler that knows every arrival and realized duration in
// advance. Two classical arguments, take the max:
//
//   - Release + work: job j cannot finish before its arrival plus its
//     fastest realized duration, so max_j (a_j + minDur_j) is a bound.
//   - Suffix load: the jobs arriving at or after a_i represent at least
//     Σ minDur of work that cannot start before a_i, spread over at
//     most nPE machines, so a_i + (suffix work)/nPE is a bound for
//     every arrival index i (jobs are sorted by arrival).
//
// Because every online schedule is in particular a schedule, the
// realized makespan is ≥ this bound, which makes the reported
// price-of-onlineness Makespan/Bound ≥ 1 by construction — a
// conservative estimate of the true competitive ratio (the bound may
// undercut the optimal offline makespan, never exceed it).
func clairvoyantBound(jobs []Job, dur []float64, capable []bool, nPE int) float64 {
	bound := 0.0
	suffix := 0.0
	minDur := make([]float64, len(jobs))
	for j := range jobs {
		best := 0.0
		first := true
		for p := 0; p < nPE; p++ {
			if !capable[j*nPE+p] {
				continue
			}
			if first || dur[j*nPE+p] < best {
				best = dur[j*nPE+p]
				first = false
			}
		}
		minDur[j] = best
		if b := jobs[j].Arrival + best; b > bound {
			bound = b
		}
	}
	for i := len(jobs) - 1; i >= 0; i-- {
		suffix += minDur[i]
		if b := jobs[i].Arrival + suffix/float64(nPE); b > bound {
			bound = b
		}
	}
	return bound
}
