package stream

import "fmt"

// Online policy names. These intentionally do not overlap the offline
// list-scheduler policy names (sched.ParsePolicy): an online policy
// decides placement with past knowledge only, so the two families are
// never interchangeable.
const (
	// PolicyFIFO serves jobs strictly in arrival order on the
	// lowest-index idle PE — the throughput-oblivious baseline.
	PolicyFIFO = "fifo"
	// PolicyRandom serves in arrival order on a seeded-random idle PE.
	PolicyRandom = "random"
	// PolicyCoolest serves in EDF order on the idle PE whose thermal
	// block reads coolest (last step's sensor values).
	PolicyCoolest = "coolest"
	// PolicyGreedy serves in EDF order on the idle PE whose predicted
	// steady-state average-temperature impact is smallest, computed
	// incrementally from the influence oracle — the online counterpart
	// of the paper's thermal-aware list scheduler.
	PolicyGreedy = "greedy"
)

// Policies lists the online policy names in their canonical order.
func Policies() []string {
	return []string{PolicyFIFO, PolicyRandom, PolicyCoolest, PolicyGreedy}
}

// ParsePolicy canonicalizes an online policy name; empty means
// PolicyGreedy.
func ParsePolicy(name string) (string, error) {
	if name == "" {
		return PolicyGreedy, nil
	}
	for _, p := range Policies() {
		if name == p {
			return p, nil
		}
	}
	return "", fmt.Errorf("stream: unknown online policy %q (want one of %v)", name, Policies())
}
