package stream

import "fmt"

// Online policy names. These intentionally do not overlap the offline
// list-scheduler policy names (sched.ParsePolicy): an online policy
// decides placement with past knowledge only, so the two families are
// never interchangeable.
const (
	// PolicyFIFO serves jobs strictly in arrival order on the
	// lowest-index idle PE — the throughput-oblivious baseline.
	PolicyFIFO = "fifo"
	// PolicyRandom serves in arrival order on a seeded-random idle PE.
	PolicyRandom = "random"
	// PolicyCoolest serves in EDF order on the idle PE whose thermal
	// block reads coolest (last step's sensor values).
	PolicyCoolest = "coolest"
	// PolicyGreedy serves in EDF order on the idle PE whose predicted
	// steady-state average-temperature impact is smallest, computed
	// incrementally from the influence oracle — the online counterpart
	// of the paper's thermal-aware list scheduler.
	PolicyGreedy = "greedy"
	// PolicyAdmit is PolicyGreedy gated by predictive admission: before
	// a PE may take a job, the thermal supervisor forecasts the start's
	// temperature rise and refuses it if the block would reach serious —
	// the job waits at full speed instead of running into throttling.
	// Requires a proactive Input.Supervisor and the influence oracle.
	PolicyAdmit = "admit"
	// PolicyZigzag is PolicyCoolest gated by idle-slack cooling in the
	// style of Chrobak et al. (arXiv 0801.4238): a block that reaches
	// serious is forced through a fixed cooling gap during which it
	// takes no new work. Requires a proactive Input.Supervisor.
	PolicyZigzag = "zigzag"
)

// Policies lists the online policy names in their canonical order.
func Policies() []string {
	return []string{PolicyFIFO, PolicyRandom, PolicyCoolest, PolicyGreedy, PolicyAdmit, PolicyZigzag}
}

// ParsePolicy canonicalizes an online policy name; empty means
// PolicyGreedy.
func ParsePolicy(name string) (string, error) {
	if name == "" {
		return PolicyGreedy, nil
	}
	for _, p := range Policies() {
		if name == p {
			return p, nil
		}
	}
	return "", fmt.Errorf("stream: unknown online policy %q (want one of %v)", name, Policies())
}
