package stream_test

import (
	"context"
	"math/rand"
	"testing"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/scenario"
	"thermalsched/internal/sim"
	"thermalsched/internal/stream"
)

// supervisorFor builds the proactive thermal supervisor the admit and
// zigzag policies require; the reactive policies run unsupervised.
func supervisorFor(t *testing.T, pol string, dt float64) dtm.Supervisor {
	t.Helper()
	switch pol {
	case stream.PolicyAdmit:
		sup, err := dtm.NewAdmitController(dtm.DefaultLadder, 0.7, 0.4, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return sup
	case stream.PolicyZigzag:
		sup, err := dtm.NewZigZagController(dtm.DefaultLadder, 5, dt, 0)
		if err != nil {
			t.Fatal(err)
		}
		return sup
	default:
		return nil
	}
}

// testInput builds a dispatch input from a generated stream workload,
// through the same substrate construction the engine's stream flow
// uses.
func testInput(t *testing.T, spec scenario.StreamSpec) stream.Input {
	t.Helper()
	wl, err := scenario.GenerateStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	arch, _, model, oracle, err := cosynth.BuildPlatformDesc(
		wl.Lib, cosynth.DefaultBusTimePerUnit, hotspot.DefaultConfig(), nil,
		&cosynth.PlatformDesc{TypeNames: wl.PETypeNames, Layout: wl.Layout})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]stream.Job, len(wl.Jobs))
	for i, j := range wl.Jobs {
		jobs[i] = stream.Job{ID: j.ID, Type: j.Type, Arrival: j.Arrival, Deadline: j.Deadline}
	}
	return stream.Input{Jobs: jobs, Lib: wl.Lib, Arch: arch, Model: model, Oracle: oracle}
}

// durationOn recomputes job j's realized duration on its assigned PE
// from the record itself (finish − start); used to cross-check
// capability below.
func capableOn(in stream.Input, job stream.Job, pe int) bool {
	_, ok := in.Lib.Lookup(in.Arch.PEs[pe].Type, job.Type)
	return ok
}

// Every policy must produce a valid online schedule: each job starts at
// or after its arrival, runs on a capable PE, and no two jobs overlap
// on one PE. The past-knowledge contract is structural — the dispatcher
// only ever offers released jobs to the policy — so validity plus
// determinism is what the records can witness.
func TestRunScheduleValidity(t *testing.T) {
	spec := scenario.StreamSpec{Seed: 9, Arrivals: scenario.ArrivalParams{Rate: 0.07}}
	in := testInput(t, spec)
	for _, pol := range stream.Policies() {
		sin := in
		sin.Supervisor = supervisorFor(t, pol, 1)
		res, err := stream.Run(context.Background(), sin, stream.Config{
			Policy: pol, DT: 1, TimeScale: 0.1, MinFactor: 0.7, Seed: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Jobs != len(in.Jobs) || len(res.Records) != len(in.Jobs) {
			t.Fatalf("%s: %d records for %d jobs", pol, len(res.Records), len(in.Jobs))
		}
		perPE := map[int][]stream.JobRecord{}
		for i, rec := range res.Records {
			if rec.Job != i {
				t.Fatalf("%s: record %d carries job %d", pol, i, rec.Job)
			}
			job := in.Jobs[i]
			if rec.Start < job.Arrival {
				t.Errorf("%s: job %d started %g before its arrival %g — future knowledge", pol, i, rec.Start, job.Arrival)
			}
			if rec.Finish <= rec.Start {
				t.Errorf("%s: job %d has empty execution [%g, %g]", pol, i, rec.Start, rec.Finish)
			}
			if rec.PE < 0 || rec.PE >= len(in.Arch.PEs) {
				t.Fatalf("%s: job %d on PE %d of %d", pol, i, rec.PE, len(in.Arch.PEs))
			}
			if !capableOn(in, job, rec.PE) {
				t.Errorf("%s: job %d (type %d) placed on incapable PE %d", pol, i, job.Type, rec.PE)
			}
			perPE[rec.PE] = append(perPE[rec.PE], rec)
		}
		for pe, recs := range perPE {
			for a := 0; a < len(recs); a++ {
				for b := a + 1; b < len(recs); b++ {
					x, y := recs[a], recs[b]
					if x.Start < y.Finish && y.Start < x.Finish {
						t.Errorf("%s: jobs %d and %d overlap on PE %d", pol, x.Job, y.Job, pe)
					}
				}
			}
		}
	}
}

// The clairvoyant bound must lower-bound every realized makespan —
// that is what makes Price = Makespan/Bound ≥ 1 meaningful rather
// than clamped.
func TestRunOfflineBoundIsLowerBound(t *testing.T) {
	for _, seed := range []int64{0, 1, 2} {
		in := testInput(t, scenario.StreamSpec{Seed: seed})
		for _, pol := range stream.Policies() {
			sin := in
			sin.Supervisor = supervisorFor(t, pol, 1)
			res, err := stream.Run(context.Background(), sin, stream.Config{
				Policy: pol, DT: 1, TimeScale: 0.1, MinFactor: 0.8, Seed: seed,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pol, err)
			}
			if res.OfflineBound <= 0 {
				t.Fatalf("seed %d %s: bound %g not positive", seed, pol, res.OfflineBound)
			}
			if res.Makespan < res.OfflineBound {
				t.Errorf("seed %d %s: makespan %g below the clairvoyant bound %g", seed, pol, res.Makespan, res.OfflineBound)
			}
			if res.Price < 1 {
				t.Errorf("seed %d %s: price %g below 1", seed, pol, res.Price)
			}
		}
	}
}

// One (workload, config) pair always dispatches identically — the
// dispatch seed is honored verbatim, zero included, and moves results.
func TestRunDeterministicAndSeeded(t *testing.T) {
	in := testInput(t, scenario.StreamSpec{Seed: 3})
	cfg := stream.Config{Policy: stream.PolicyGreedy, DT: 1, TimeScale: 0.1, MinFactor: 0.5, Seed: 0}
	a, err := stream.Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.PeakTempC != b.PeakTempC || a.Energy != b.Energy {
		t.Error("identical (input, config) produced different results")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across identical runs", i)
		}
	}
	cfg.Seed = 1
	c, err := stream.Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Error("seeds 0 and 1 realized identical makespans; the seed is not honored verbatim")
	}
}

// Cancelling the context aborts the stepped loop with an error.
func TestRunCancellation(t *testing.T) {
	in := testInput(t, scenario.StreamSpec{Seed: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stream.Run(ctx, in, stream.Config{
		Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0.1, MinFactor: 1,
	}); err == nil {
		t.Fatal("cancelled dispatch returned no error")
	}
}

// Config validation and the malformed-input guards.
func TestRunInputValidation(t *testing.T) {
	in := testInput(t, scenario.StreamSpec{Seed: 1})
	good := stream.Config{Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0.1, MinFactor: 1}
	bad := []stream.Config{
		{Policy: "psychic", DT: 1, TimeScale: 0.1, MinFactor: 1},
		{Policy: stream.PolicyFIFO, DT: 0, TimeScale: 0.1, MinFactor: 1},
		{Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0, MinFactor: 1},
		{Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0.1, MinFactor: 1.2},
		{Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0.1, MinFactor: 1, MaxSteps: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}

	unsorted := in
	unsorted.Jobs = append([]stream.Job(nil), in.Jobs...)
	unsorted.Jobs[0], unsorted.Jobs[1] = unsorted.Jobs[1], unsorted.Jobs[0]
	if _, err := stream.Run(context.Background(), unsorted, good); err == nil {
		t.Error("unsorted trace accepted")
	}

	empty := in
	empty.Jobs = nil
	if _, err := stream.Run(context.Background(), empty, good); err == nil {
		t.Error("empty trace accepted")
	}

	noOracle := in
	noOracle.Oracle = nil
	if _, err := stream.Run(context.Background(), noOracle, stream.Config{
		Policy: stream.PolicyGreedy, DT: 1, TimeScale: 0.1, MinFactor: 1,
	}); err == nil {
		t.Error("greedy without an oracle accepted")
	}
}

// The dispatcher and the batch realizer share one seeded duration-draw
// contract (sim.DrawFactors): factor j comes from the j-th variate of a
// source seeded with the run seed verbatim. Every record's realized
// duration must therefore equal WCET × the factor an independent
// DrawFactors call reproduces — exactly, not approximately.
func TestRunSharesRealizerDrawContract(t *testing.T) {
	in := testInput(t, scenario.StreamSpec{Seed: 4})
	for _, seed := range []int64{0, 1, 11} {
		const minFactor = 0.6
		res, err := stream.Run(context.Background(), in, stream.Config{
			Policy: stream.PolicyFIFO, DT: 1, TimeScale: 0.1, MinFactor: minFactor, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		factors := sim.DrawFactors(rand.New(rand.NewSource(seed)), len(in.Jobs), minFactor)
		for j, rec := range res.Records {
			e, ok := in.Lib.Lookup(in.Arch.PEs[rec.PE].Type, in.Jobs[j].Type)
			if !ok {
				t.Fatalf("seed %d: job %d ran on incapable PE %d", seed, j, rec.PE)
			}
			want := e.WCET * factors[j]
			// Finish is computed as start + duration, so compare in that
			// association — bit-exact, no epsilon.
			if rec.Finish != rec.Start+want {
				t.Errorf("seed %d: job %d realized duration %g, want WCET %g × shared factor %g = %g",
					seed, j, rec.Finish-rec.Start, e.WCET, factors[j], want)
			}
		}
	}
}

// ParsePolicy canonicalizes: empty means greedy, unknown names error.
func TestParsePolicy(t *testing.T) {
	if p, err := stream.ParsePolicy(""); err != nil || p != stream.PolicyGreedy {
		t.Errorf("empty policy parsed to (%q, %v), want greedy", p, err)
	}
	for _, p := range stream.Policies() {
		got, err := stream.ParsePolicy(p)
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = (%q, %v)", p, got, err)
		}
	}
	if _, err := stream.ParsePolicy("clairvoyant"); err == nil {
		t.Error("unknown policy accepted")
	}
}
