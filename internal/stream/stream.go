// Package stream is the online-scheduling subsystem: a discrete-event
// dispatcher that advances simulated time over the closed-loop thermal
// co-simulator, releasing independent jobs as they arrive and asking an
// online placement policy where (and implicitly when) each job runs.
//
// The contract separating this package from the offline flows is
// *past knowledge only*: when the policy places a job it can see the
// current thermal state, the set of running jobs and everything that
// already arrived — never future arrivals, future durations, or the
// realized duration of the job being placed (policies reason from WCET;
// the realized duration is revealed only through the completion event).
// The clairvoyant lower bound in offline.go is the yardstick: the
// price-of-onlineness ratio Makespan/OfflineBound is ≥ 1 by
// construction, and how far above 1 a policy sits is what campaigns
// measure, mirroring the competitive-analysis framing of Chrobak et
// al. (arXiv 0801.4238).
//
// Determinism matches the rest of the repository: all randomness (job
// duration factors, the random policy's PE draws) comes from the
// config seed, used verbatim — zero included — so a (workload, config)
// pair always produces byte-identical results.
package stream

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"thermalsched/internal/coloop"
	"thermalsched/internal/dtm"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
	"thermalsched/internal/techlib"
)

// Job is one independent unit of work released at Arrival with an
// absolute Deadline. Jobs have no precedence constraints — the online
// aperiodic-task model — and must be presented sorted by Arrival with
// IDs equal to their slice index.
type Job struct {
	ID       int
	Type     int
	Arrival  float64
	Deadline float64
}

// Input bundles the workload and platform for one dispatch run.
type Input struct {
	// Jobs is the arrival trace, sorted by Arrival, IDs dense from 0.
	Jobs []Job
	// Lib maps (PE type, task type) to WCET/WCPC.
	Lib *techlib.Library
	// Arch lists the PE instances; each PE's Type indexes Lib.
	Arch sched.Architecture
	// Model is the thermal RC model with one block per PE, by name.
	Model *hotspot.Model
	// Oracle is the incremental influence oracle over Model/Arch;
	// required by PolicyGreedy and PolicyAdmit, ignored by the other
	// policies. It is used exclusively by this run (the oracle is not
	// thread-safe).
	Oracle *sched.ModelOracle
	// Supervisor is the thermal supervisor gating dispatches. Jobs are
	// non-preemptive and always run at nominal speed, so a supervisor
	// acts on the stream purely through admission — refused starts
	// insert idle slack (the zig-zag discipline) rather than stretching
	// running jobs; the throttle factors it computes each step are not
	// applied to running work. A proactive supervisor is required by
	// PolicyAdmit and PolicyZigzag; nil disables supervision.
	Supervisor dtm.Supervisor
}

// Config parameterizes one dispatch run.
type Config struct {
	// Policy is one of Policies() (default PolicyGreedy when empty).
	Policy string
	// DT is the co-simulation step in schedule time units: the
	// dispatcher advances by DT, then the thermal model steps once and
	// the new temperatures become visible to the policy — the same
	// one-step sensing delay as internal/runtime.
	DT float64
	// TimeScale converts one schedule time unit into seconds of thermal
	// simulation.
	TimeScale float64
	// MinFactor draws each job's realized duration uniformly from
	// [MinFactor, 1] × WCET, exactly like sim.Options.MinFactor; 1
	// means every job runs at worst case.
	MinFactor float64
	// Seed drives the duration draws and the random policy, verbatim —
	// zero is an ordinary seed.
	Seed int64
	// MaxSteps bounds the stepped loop; zero derives a generous default
	// from the trace length and total work.
	MaxSteps int
}

// placeSeedSalt decorrelates the random policy's PE draws from the
// duration-factor stream, so both are independent functions of Seed.
const placeSeedSalt int64 = 0x3c6ef372fe94f82b

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	if _, err := ParsePolicy(c.Policy); err != nil {
		return err
	}
	if !(c.DT > 0) {
		return fmt.Errorf("stream: step DT must be positive, got %g", c.DT)
	}
	if !(c.TimeScale > 0) {
		return fmt.Errorf("stream: TimeScale must be positive, got %g", c.TimeScale)
	}
	if !(c.MinFactor > 0) || c.MinFactor > 1 {
		return fmt.Errorf("stream: MinFactor %g out of (0, 1]", c.MinFactor)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("stream: negative MaxSteps %d", c.MaxSteps)
	}
	return nil
}

// JobRecord is the realized execution of one job.
type JobRecord struct {
	Job    int     `json:"job"`
	PE     int     `json:"pe"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// Result is the outcome of one online dispatch run.
type Result struct {
	// Records holds the realized executions, indexed by job ID.
	Records []JobRecord
	// Jobs and Missed count the trace and its deadline misses (a miss
	// is a job finishing after its deadline; late jobs still run to
	// completion — lateness, not drop, semantics).
	Jobs, Missed int
	// MissRate is Missed / Jobs.
	MissRate float64
	// Makespan is the last finish time in schedule units.
	Makespan float64
	// MeanResponse averages finish − arrival over all jobs.
	MeanResponse float64
	// MaxLateness is the largest finish − deadline, floored at 0.
	MaxLateness float64
	// Energy is Σ power × busy time; PerPEBusy splits busy time by PE.
	Energy    float64
	PerPEBusy []float64
	// PeakTempC is the hottest block temperature at any step; AvgTempC
	// is the time average of the per-step mean block temperature.
	PeakTempC float64
	AvgTempC  float64
	// Steps is the number of thermal co-simulation steps taken.
	Steps int
	// AdmissionDenials counts dispatch attempts the thermal supervisor
	// refused (zero without a proactive supervisor). Re-asking a PE
	// still under an admission hold counts again: the figure measures
	// supervisor pressure on the dispatcher, not distinct holds.
	AdmissionDenials int
	// OfflineBound is the clairvoyant lower bound on the makespan of
	// any offline schedule of the realized trace; Price is
	// Makespan / OfflineBound, the price-of-onlineness ratio (≥ 1).
	OfflineBound float64
	Price        float64
}

// Run dispatches the arrival trace online under the configured policy.
// Cancelling ctx aborts the stepped loop promptly.
func Run(ctx context.Context, in Input, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, _ := ParsePolicy(cfg.Policy)
	if err := in.Arch.Validate(in.Lib); err != nil {
		return nil, err
	}
	n := len(in.Jobs)
	if n == 0 {
		return nil, fmt.Errorf("stream: empty arrival trace")
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			return nil, fmt.Errorf("stream: job %d carries ID %d (want dense arrival order)", i, j.ID)
		}
		if i > 0 && j.Arrival < in.Jobs[i-1].Arrival {
			return nil, fmt.Errorf("stream: jobs not sorted by arrival at index %d", i)
		}
		if j.Arrival < 0 || math.IsNaN(j.Arrival) || j.Deadline < j.Arrival {
			return nil, fmt.Errorf("stream: job %d has invalid arrival/deadline (%g, %g)", i, j.Arrival, j.Deadline)
		}
	}
	if (policy == PolicyGreedy || policy == PolicyAdmit) && in.Oracle == nil {
		return nil, fmt.Errorf("stream: policy %q needs the influence oracle", policy)
	}
	proactive := in.Supervisor != nil && in.Supervisor.Proactive()
	if (policy == PolicyAdmit || policy == PolicyZigzag) && !proactive {
		return nil, fmt.Errorf("stream: policy %q needs a proactive thermal supervisor", policy)
	}

	// Realized durations: factor_j drawn in job-ID order from the seed,
	// PE-independently — sim.DrawFactors is the same draw contract as
	// sim.Realize, so the trace realization never depends on placement
	// decisions and matches the batch realizer variate for variate.
	nPE := len(in.Arch.PEs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	factors := sim.DrawFactors(rng, n, cfg.MinFactor)
	dur := make([]float64, n*nPE)  // realized duration of job j on PE p
	wcet := make([]float64, n*nPE) // worst-case duration of job j on PE p
	pow := make([]float64, n*nPE)  // nominal power of job j on PE p
	capable := make([]bool, n*nPE) // lib coverage of (p.Type, j.Type)
	for j, job := range in.Jobs {
		f := factors[j]
		any := false
		for p, pe := range in.Arch.PEs {
			e, ok := in.Lib.Lookup(pe.Type, job.Type)
			if !ok {
				continue
			}
			dur[j*nPE+p] = e.WCET * f
			wcet[j*nPE+p] = e.WCET
			pow[j*nPE+p] = e.WCPC
			capable[j*nPE+p] = true
			any = true
		}
		if !any {
			return nil, fmt.Errorf("stream: no PE can run job %d (type %d)", j, job.Type)
		}
	}
	polrng := rand.New(rand.NewSource(cfg.Seed ^ placeSeedSalt))

	// PE → thermal block mapping, by name.
	peNames := make([]string, nPE)
	for i, pe := range in.Arch.PEs {
		peNames[i] = pe.Name
	}
	peBlock, err := coloop.PEBlocks(in.Model, peNames)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		serial := 0.0
		for j := range in.Jobs {
			worst := 0.0
			for p := 0; p < nPE; p++ {
				if capable[j*nPE+p] && dur[j*nPE+p] > worst {
					worst = dur[j*nPE+p]
				}
			}
			serial += worst
		}
		horizon := in.Jobs[n-1].Arrival
		maxSteps = 4*int(math.Ceil((horizon+serial)/cfg.DT)) + 4096
	}

	core, err := coloop.New(coloop.Config{
		Model:      in.Model,
		PEBlock:    peBlock,
		DT:         cfg.DT,
		TimeScale:  cfg.TimeScale,
		MaxSteps:   maxSteps,
		Supervisor: in.Supervisor,
	})
	if err != nil {
		return nil, err
	}
	temps := core.Temps // last sensed temperatures (ambient pre-start)

	var forecast *coloop.RiseForecaster // duration-aware admission forecast
	if proactive {
		var maxWCET float64
		for _, w := range wcet {
			if w > maxWCET {
				maxWCET = w
			}
		}
		forecast, err = coloop.NewRiseForecaster(in.Model, peBlock,
			cfg.DT*cfg.TimeScale, maxWCET*cfg.TimeScale)
		if err != nil {
			return nil, err
		}
	}

	records := make([]JobRecord, n)
	running := make([]int, nPE) // job on the PE, or -1
	finishAt := make([]float64, nPE)
	curPow := make([]float64, nPE) // nominal power of the running job
	for pe := range running {
		running[pe] = -1
	}
	var pending []int // released, unplaced job IDs

	nb := in.Model.NumBlocks()

	res := &Result{
		Records:   records,
		Jobs:      n,
		PerPEBusy: make([]float64, nPE),
	}

	edf := policy != PolicyFIFO && policy != PolicyRandom

	// admits asks the supervisor whether job j may start on pe at time
	// t, forecasting the block's rise as self-influence × job power
	// saturated over the job's WCET (the realized duration is future
	// knowledge). Reactive/no supervision always admits without a query.
	admits := func(j, pe int, t float64) bool {
		if !proactive {
			return true
		}
		adm := in.Supervisor.Admit(peBlock[pe], temps,
			forecast.Rise(pe, pow[j*nPE+pe], wcet[j*nPE+pe]*cfg.TimeScale), t)
		if !adm.OK {
			res.AdmissionDenials++
			return false
		}
		return true
	}

	// pickPE chooses an idle capable (and admitted) PE for job j per the
	// policy, or ok=false when none qualifies. The thermal policies read
	// temps — last step's temperatures, the one-step sensing delay.
	pickPE := func(j int, t float64) (int, bool, error) {
		var idle []int
		for pe := range running {
			if running[pe] < 0 && capable[j*nPE+pe] && admits(j, pe, t) {
				idle = append(idle, pe)
			}
		}
		if len(idle) == 0 {
			return 0, false, nil
		}
		switch policy {
		case PolicyFIFO:
			return idle[0], true, nil
		case PolicyRandom:
			return idle[polrng.Intn(len(idle))], true, nil
		case PolicyCoolest, PolicyZigzag:
			best := idle[0]
			for _, pe := range idle[1:] {
				if temps[peBlock[pe]] < temps[peBlock[best]] {
					best = pe
				}
			}
			return best, true, nil
		case PolicyGreedy, PolicyAdmit:
			// Predicted steady impact of adding the job's power on top
			// of the currently running draw — O(PEs) per candidate via
			// the influence rows.
			if err := in.Oracle.SetBase(curPow); err != nil {
				return 0, false, err
			}
			best, bestDelta := -1, math.Inf(1)
			for _, pe := range idle {
				d, err := in.Oracle.AvgTempDelta(pe, pow[j*nPE+pe])
				if err != nil {
					return 0, false, err
				}
				if d < bestDelta {
					best, bestDelta = pe, d
				}
			}
			return best, true, nil
		}
		return 0, false, fmt.Errorf("stream: unreachable policy %q", policy)
	}

	// dispatch places pending jobs on idle PEs at time t until no
	// further placement is possible. FIFO/random serve strictly in
	// arrival order (head-of-line blocking included); the thermal
	// policies serve in EDF order and may bypass an unplaceable head.
	dispatch := func(t float64) error {
		for len(pending) > 0 {
			placed := -1
			var onPE int
			limit := 1 // FIFO semantics: only the head may be placed
			if edf {
				limit = len(pending)
			}
			for idx := 0; idx < limit; idx++ {
				pe, ok, err := pickPE(pending[idx], t)
				if err != nil {
					return err
				}
				if ok {
					placed, onPE = idx, pe
					break
				}
			}
			if placed < 0 {
				return nil
			}
			j := pending[placed]
			pending = append(pending[:placed], pending[placed+1:]...)
			records[j] = JobRecord{Job: j, PE: onPE, Start: t, Finish: t + dur[j*nPE+onPE]}
			running[onPE] = j
			finishAt[onPE] = records[j].Finish
			curPow[onPE] = pow[j*nPE+onPE]
		}
		return nil
	}

	released, completed := 0, 0
	avgAccum := 0.0

	// Micro event loop inside [now, stepEnd): completions free PEs,
	// arrivals join the pending set, the policy dispatches, time
	// advances to the next event. Temperatures are frozen for the
	// step, exactly as in internal/runtime.
	step := func(now, stepEnd float64) error {
		t := now
		for {
			for pe, j := range running {
				if j >= 0 && finishAt[pe] <= t {
					running[pe] = -1
					curPow[pe] = 0
					completed++
				}
			}
			grew := false
			for released < n && in.Jobs[released].Arrival <= t {
				pending = append(pending, released)
				released++
				grew = true
			}
			if grew && edf {
				sort.Slice(pending, func(a, b int) bool {
					da, db := in.Jobs[pending[a]].Deadline, in.Jobs[pending[b]].Deadline
					if da != db {
						return da < db
					}
					return pending[a] < pending[b]
				})
			}
			if err := dispatch(t); err != nil {
				return err
			}

			event := stepEnd
			if released < n && in.Jobs[released].Arrival < event {
				event = in.Jobs[released].Arrival
			}
			for pe, j := range running {
				if j >= 0 && finishAt[pe] < event {
					event = finishAt[pe]
				}
			}
			if dt := event - t; dt > 0 {
				for pe, j := range running {
					if j >= 0 {
						core.StepEnergy[pe] += curPow[pe] * dt
						res.PerPEBusy[pe] += dt
					}
				}
			}
			t = event
			if t >= stepEnd {
				break
			}
		}
		return nil
	}

	err = core.Run(ctx, coloop.Hooks{
		Done: func() bool { return completed >= n },
		Step: step,
		Observe: func(temps []float64) {
			mean := 0.0
			for _, tc := range temps {
				mean += tc
			}
			avgAccum += mean / float64(nb)
		},
		Stalled: func(steps int) error {
			return fmt.Errorf("stream: %d/%d jobs after %d steps", completed, n, steps)
		},
		Cancelled: func(cause error) error {
			return fmt.Errorf("stream: dispatch cancelled: %w", cause)
		},
	})
	if err != nil {
		return nil, err
	}
	res.Energy = core.Energy
	res.Steps = core.Steps
	res.PeakTempC = core.PeakTempC

	res.AvgTempC = avgAccum / float64(res.Steps)
	sumResp := 0.0
	for j, rec := range records {
		if rec.Finish > res.Makespan {
			res.Makespan = rec.Finish
		}
		sumResp += rec.Finish - in.Jobs[j].Arrival
		if late := rec.Finish - in.Jobs[j].Deadline; late > 0 {
			res.Missed++
			if late > res.MaxLateness {
				res.MaxLateness = late
			}
		}
	}
	res.MissRate = float64(res.Missed) / float64(n)
	res.MeanResponse = sumResp / float64(n)
	res.OfflineBound = clairvoyantBound(in.Jobs, dur, capable, nPE)
	res.Price = 1
	if res.OfflineBound > 0 {
		res.Price = res.Makespan / res.OfflineBound
		if res.Price < 1 { // bound proof guarantees ≥ 1; clamp rounding dust
			res.Price = 1
		}
	}
	return res, nil
}
