package experiments

import (
	"fmt"
	"strings"

	"thermalsched/internal/sched"
)

// Table1 holds the power-heuristic comparison (paper Table 1): for each
// benchmark, the baseline and heuristics 1–3 under both architecture
// flows.
type Table1 struct {
	Benchmarks []string          // row labels, name/tasks/edges/deadline
	Policies   []sched.Policy    // Baseline, H1, H2, H3
	CoSynth    map[string][]Cell // label -> cell per policy
	Platform   map[string][]Cell
}

// RunTable1 regenerates Table 1.
func (s *Suite) RunTable1() (*Table1, error) {
	t := &Table1{
		Policies: []sched.Policy{sched.Baseline, sched.MinTaskPower, sched.MinPEPower, sched.MinTaskEnergy},
		CoSynth:  make(map[string][]Cell),
		Platform: make(map[string][]Cell),
	}
	for _, g := range s.Graphs {
		label := benchLabel(g)
		t.Benchmarks = append(t.Benchmarks, label)
		for _, p := range t.Policies {
			cc, err := s.CoSynthCell(g, p)
			if err != nil {
				return nil, err
			}
			pc, err := s.PlatformCell(g, p)
			if err != nil {
				return nil, err
			}
			t.CoSynth[label] = append(t.CoSynth[label], cc)
			t.Platform[label] = append(t.Platform[label], pc)
		}
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Power heuristics under co-synthesis and platform-based architectures\n")
	fmt.Fprintf(&b, "%-22s | %27s | %27s\n", "", "co-synthesis", "platform-based arch.")
	fmt.Fprintf(&b, "%-22s | %8s %9s %9s | %8s %9s %9s\n",
		"name/task/edge/ddl", "TotPow", "MaxTemp", "AvgTemp", "TotPow", "MaxTemp", "AvgTemp")
	rowNames := []string{"(baseline)", "Heuristic 1", "Heuristic 2", "Heuristic 3"}
	for _, label := range t.Benchmarks {
		for i, rn := range rowNames {
			name := label
			if i > 0 {
				name = "  " + rn
			}
			cc := t.CoSynth[label][i]
			pc := t.Platform[label][i]
			fmt.Fprintf(&b, "%-22s | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n",
				name, cc.TotalPower, cc.MaxTemp, cc.AvgTemp,
				pc.TotalPower, pc.MaxTemp, pc.AvgTemp)
		}
	}
	return b.String()
}

// BestPowerHeuristic returns, per benchmark, which heuristic (1-based
// index into Policies[1:]) achieved the lowest max temperature on the
// given flow cells.
func (t *Table1) BestPowerHeuristic(cells map[string][]Cell) map[string]int {
	out := make(map[string]int)
	for _, label := range t.Benchmarks {
		best, bestT := 1, cells[label][1].MaxTemp
		for i := 2; i < len(cells[label]); i++ {
			if cells[label][i].MaxTemp < bestT {
				best, bestT = i, cells[label][i].MaxTemp
			}
		}
		out[label] = best
	}
	return out
}

// VersusTable is the shared shape of Tables 2 and 3: per benchmark, the
// power-aware (heuristic 3) cell against the thermal-aware cell.
type VersusTable struct {
	Title      string
	Benchmarks []string
	Power      map[string]Cell
	Thermal    map[string]Cell
}

// RunTable2 regenerates Table 2: power-aware vs thermal-aware
// co-synthesis.
func (s *Suite) RunTable2() (*VersusTable, error) {
	t := &VersusTable{
		Title:   "Table 2. Power-aware vs thermal-aware approaches on co-synthesis architecture",
		Power:   make(map[string]Cell),
		Thermal: make(map[string]Cell),
	}
	for _, g := range s.Graphs {
		label := benchLabel(g)
		t.Benchmarks = append(t.Benchmarks, label)
		pc, err := s.CoSynthCell(g, sched.MinTaskEnergy)
		if err != nil {
			return nil, err
		}
		tc, err := s.CoSynthCell(g, sched.ThermalAware)
		if err != nil {
			return nil, err
		}
		t.Power[label] = pc
		t.Thermal[label] = tc
	}
	return t, nil
}

// RunTable3 regenerates Table 3: power-aware vs thermal-aware on the
// platform architecture.
func (s *Suite) RunTable3() (*VersusTable, error) {
	t := &VersusTable{
		Title:   "Table 3. Power-aware vs thermal-aware approaches on platform-based architecture",
		Power:   make(map[string]Cell),
		Thermal: make(map[string]Cell),
	}
	for _, g := range s.Graphs {
		label := benchLabel(g)
		t.Benchmarks = append(t.Benchmarks, label)
		pc, err := s.PlatformCell(g, sched.MinTaskEnergy)
		if err != nil {
			return nil, err
		}
		tc, err := s.PlatformCell(g, sched.ThermalAware)
		if err != nil {
			return nil, err
		}
		t.Power[label] = pc
		t.Thermal[label] = tc
	}
	return t, nil
}

// String renders the versus table in the paper's layout.
func (t *VersusTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-22s | %27s | %27s\n", "", "power-aware", "thermal-aware")
	fmt.Fprintf(&b, "%-22s | %8s %9s %9s | %8s %9s %9s\n",
		"benchmark", "TotPow", "MaxTemp", "AvgTemp", "TotPow", "MaxTemp", "AvgTemp")
	for _, label := range t.Benchmarks {
		p := t.Power[label]
		th := t.Thermal[label]
		fmt.Fprintf(&b, "%-22s | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n",
			label, p.TotalPower, p.MaxTemp, p.AvgTemp,
			th.TotalPower, th.MaxTemp, th.AvgTemp)
	}
	maxRed, avgRed := t.MeanReductions()
	fmt.Fprintf(&b, "mean reduction: max temp %.2f °C, avg temp %.2f °C\n", maxRed, avgRed)
	return b.String()
}

// MeanReductions returns the average (power-aware − thermal-aware)
// differences in max and avg temperature — the numbers the paper quotes
// as 10.9/6.95 °C (co-synthesis) and 9.75/5.02 °C (platform).
func (t *VersusTable) MeanReductions() (maxRed, avgRed float64) {
	if len(t.Benchmarks) == 0 {
		return 0, 0
	}
	for _, label := range t.Benchmarks {
		maxRed += t.Power[label].MaxTemp - t.Thermal[label].MaxTemp
		avgRed += t.Power[label].AvgTemp - t.Thermal[label].AvgTemp
	}
	n := float64(len(t.Benchmarks))
	return maxRed / n, avgRed / n
}

// Wins counts on how many benchmarks the thermal-aware cell improves on
// the power-aware cell for max and avg temperature.
func (t *VersusTable) Wins() (maxWins, avgWins int) {
	for _, label := range t.Benchmarks {
		if t.Thermal[label].MaxTemp <= t.Power[label].MaxTemp {
			maxWins++
		}
		if t.Thermal[label].AvgTemp <= t.Power[label].AvgTemp {
			avgWins++
		}
	}
	return maxWins, avgWins
}
