package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/scenario"
	"thermalsched/internal/sched"
)

// ScalingRow is one task-count point of the scaling study.
type ScalingRow struct {
	Tasks    int     `json:"tasks"`
	Edges    int     `json:"edges"`
	PEs      int     `json:"pes"`
	Deadline float64 `json:"deadline"`
	Makespan float64 `json:"makespan"`
	Feasible bool    `json:"feasible"`
	MaxTempC float64 `json:"maxTempC"`
	AvgTempC float64 `json:"avgTempC"`
	// Solver records the steady-state solver backend the row's thermal
	// inquiries ran on (dense, sparse or pcg), so a table is
	// self-describing when backends are compared side by side.
	Solver string `json:"solver"`
	// CacheHits and CacheMisses are the thermal-model cache's deltas
	// over this row (zero when no stats hook is wired): one miss is the
	// row's single factorization, hits count the runs that reused it.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// SchedMillis is the wall-clock cost of the whole platform run
	// (scheduling plus thermal extraction) — the number the PR-2 fast
	// path keeps flat-ish as task counts grow.
	SchedMillis float64 `json:"schedMillis"`
}

// ScalingTable is the repository's first beyond-the-paper table: the
// thermal-aware platform flow driven up task counts the paper's four
// benchmarks never reach, on a generated heterogeneous platform.
type ScalingTable struct {
	Policy sched.Policy `json:"-"`
	PEs    int          `json:"pes"`
	Seed   int64        `json:"seed"`
	Rows   []ScalingRow `json:"rows"`
}

// CacheStats reports cumulative thermal-model cache counters; the
// Engine passes its ModelCacheStats so each scaling row can record the
// cache traffic it generated. Nil disables the accounting.
type CacheStats func() (hits, misses uint64, size int)

// DefaultScalingSizes are the task counts of the scaling study, from
// the paper's benchmark scale (≈20 tasks) to 25× beyond it.
func DefaultScalingSizes() []int { return []int{20, 50, 100, 200, 500} }

// RunScalingTable generates one scenario per task count (layered shape,
// heterogeneous speed spread 0.6–2.0, grid floorplan) and runs the
// thermal-aware platform flow on it, recording schedule quality and
// wall-clock scheduling cost. base supplies the thermal calibration,
// solver backend and model cache (the Engine passes its own); Policy
// and Sched on base are ignored. stats, when non-nil, supplies the
// cumulative model-cache counters the per-row deltas are computed from.
// The generated inputs are deterministic in (sizes, pes, seed); only
// SchedMillis (and the cache traffic, which depends on prior cache
// state) varies between runs.
func RunScalingTable(ctx context.Context, sizes []int, pes int, seed int64, base cosynth.PlatformConfig, stats CacheStats) (*ScalingTable, error) {
	if len(sizes) == 0 {
		sizes = DefaultScalingSizes()
	}
	if pes == 0 {
		pes = 8
	}
	solver := "dense"
	if base.HotSpot != nil {
		solver = base.HotSpot.SolverKind()
	}
	t := &ScalingTable{Policy: sched.ThermalAware, PEs: pes, Seed: seed}
	for _, n := range sizes {
		sc, err := scenario.Generate(scenario.Spec{
			Name: fmt.Sprintf("scale%d", n),
			Seed: seed + int64(n),
			Graph: scenario.GraphParams{
				Tasks: n,
				CCR:   0.1,
			},
			Platform: scenario.PlatformParams{
				PEs:      pes,
				MinSpeed: 0.6,
				MaxSpeed: 2.0,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d tasks: %w", n, err)
		}
		cfg := base
		cfg.Policy, cfg.Sched = sched.ThermalAware, nil
		cfg.Platform = &cosynth.PlatformDesc{TypeNames: sc.PETypeNames, Layout: sc.Layout}
		var hits0, misses0 uint64
		if stats != nil {
			hits0, misses0, _ = stats()
		}
		//thermalvet:allow walltime(SchedMillis measures scheduler latency for the scaling table; the table is documented deterministic modulo wall-clock)
		start := time.Now()
		res, err := cosynth.RunPlatformCtx(ctx, sc.Graph, sc.Lib, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d tasks: %w", n, err)
		}
		row := ScalingRow{
			Tasks:    n,
			Edges:    sc.Graph.NumEdges(),
			PEs:      pes,
			Deadline: sc.Graph.Deadline,
			Makespan: res.Metrics.Makespan,
			Feasible: res.Metrics.Feasible,
			MaxTempC: res.Metrics.MaxTemp,
			AvgTempC: res.Metrics.AvgTemp,
			Solver:   solver,
			//thermalvet:allow walltime(SchedMillis measures scheduler latency for the scaling table; the table is documented deterministic modulo wall-clock)
			SchedMillis: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if stats != nil {
			hits1, misses1, _ := stats()
			row.CacheHits, row.CacheMisses = hits1-hits0, misses1-misses0
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// String renders the scaling table.
func (t *ScalingTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling study: thermal-aware platform flow on a generated %d-PE heterogeneous platform (seed %d)\n",
		t.PEs, t.Seed)
	fmt.Fprintf(&b, "%7s %7s | %9s %9s %8s | %9s %9s | %6s %5s/%-5s | %9s\n",
		"tasks", "edges", "makespan", "deadline", "feas", "MaxTemp", "AvgTemp", "solver", "hit", "miss", "sched ms")
	for _, r := range t.Rows {
		feas := "met"
		if !r.Feasible {
			feas = "MISSED"
		}
		fmt.Fprintf(&b, "%7d %7d | %9.1f %9.1f %8s | %9.2f %9.2f | %6s %5d/%-5d | %9.2f\n",
			r.Tasks, r.Edges, r.Makespan, r.Deadline, feas, r.MaxTempC, r.AvgTempC,
			r.Solver, r.CacheHits, r.CacheMisses, r.SchedMillis)
	}
	return b.String()
}
