package experiments

import (
	"strings"
	"testing"

	"thermalsched/internal/techlib"
)

func TestRunSweepStatisticalWin(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(lib, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibleBoth < 15 {
		t.Fatalf("only %d/30 sweep graphs feasible — deadline scaling off", res.FeasibleBoth)
	}
	// The robust part of the paper's headline in distribution: the
	// thermal-aware ASP wins *peak* temperature on a clear majority of
	// random graphs with a positive mean reduction. The average-
	// temperature advantage is instance-dependent (average temperature
	// in a compact RC model is almost a pure function of total power,
	// which heuristic 3 already near-minimizes), so only a sanity floor
	// is asserted for it; see EXPERIMENTS.md for the discussion.
	winRate := func(wins int) float64 { return float64(wins) / float64(res.FeasibleBoth) }
	if winRate(res.MaxWins) < 0.55 {
		t.Errorf("thermal max-temp win rate %.0f%% below 55%%\n%s", 100*winRate(res.MaxWins), res)
	}
	if res.MeanMaxRed <= 0 {
		t.Errorf("mean peak reduction non-positive\n%s", res)
	}
	if winRate(res.AvgWins) < 0.3 {
		t.Errorf("thermal avg-temp win rate %.0f%% collapsed below 30%%\n%s", 100*winRate(res.AvgWins), res)
	}
	out := res.String()
	if !strings.Contains(out, "thermal wins max temp") {
		t.Errorf("summary malformed: %s", out)
	}
}

func TestRunSweepValidation(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(lib, 0, 1); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSweepResultStringEmpty(t *testing.T) {
	r := &SweepResult{Graphs: 5}
	if !strings.Contains(r.String(), "0 feasible") {
		t.Errorf("empty sweep summary: %s", r.String())
	}
}
