package experiments

import (
	"strings"
	"testing"

	"thermalsched/internal/techlib"
)

func TestRunSweepStatisticalWin(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(lib, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeasibleBoth < 15 {
		t.Fatalf("only %d/30 sweep graphs feasible — deadline scaling off", res.FeasibleBoth)
	}
	// The robust part of the paper's headline in distribution: the
	// thermal-aware ASP wins *peak* temperature on a clear majority of
	// random graphs with a positive mean reduction. The average-
	// temperature advantage is instance-dependent (average temperature
	// in a compact RC model is almost a pure function of total power,
	// which heuristic 3 already near-minimizes), so only a sanity floor
	// is asserted for it; see EXPERIMENTS.md for the discussion.
	// Win rates are over *strict* wins now: a graph where both policies
	// produce the identical schedule is a tie, not a win.
	winRate := func(wins int) float64 { return float64(wins) / float64(res.FeasibleBoth) }
	if winRate(res.MaxWins) < 0.55 {
		t.Errorf("thermal max-temp strict win rate %.0f%% below 55%%\n%s", 100*winRate(res.MaxWins), res)
	}
	if res.MeanMaxRed <= 0 {
		t.Errorf("mean peak reduction non-positive\n%s", res)
	}
	if winRate(res.AvgWins) < 0.3 {
		t.Errorf("thermal avg-temp strict win rate %.0f%% collapsed below 30%%\n%s", 100*winRate(res.AvgWins), res)
	}
	// Wins and ties partition at most the feasible graphs.
	for _, c := range []struct {
		name       string
		wins, ties int
	}{
		{"max", res.MaxWins, res.MaxTies},
		{"avg", res.AvgWins, res.AvgTies},
		{"power", res.PowerWins, res.PowerTies},
	} {
		if c.wins+c.ties > res.FeasibleBoth {
			t.Errorf("%s: wins %d + ties %d exceed feasible %d", c.name, c.wins, c.ties, res.FeasibleBoth)
		}
	}
	out := res.String()
	if !strings.Contains(out, "thermal wins max temp") || !strings.Contains(out, "ties") {
		t.Errorf("summary malformed: %s", out)
	}
}

// Exact ties (identical schedules under both policies) count as ties,
// never as wins; only deltas above the epsilon are wins.
func TestTallyOutcome(t *testing.T) {
	cases := []struct {
		delta      float64
		wins, ties int
	}{
		{0, 0, 1},               // exact tie: identical schedules
		{WinEpsilon / 2, 0, 1},  // sub-epsilon noise is a tie
		{-WinEpsilon / 2, 0, 1}, // ... in either direction
		{1.5, 1, 0},             // genuine improvement
		{-1.5, 0, 0},            // genuine regression: neither win nor tie
	}
	for _, c := range cases {
		wins, ties := 0, 0
		tallyOutcome(c.delta, &wins, &ties)
		if wins != c.wins || ties != c.ties {
			t.Errorf("tallyOutcome(%g) = wins %d ties %d, want %d/%d", c.delta, wins, ties, c.wins, c.ties)
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(lib, 0, 1); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSweepResultStringEmpty(t *testing.T) {
	r := &SweepResult{Graphs: 5}
	if !strings.Contains(r.String(), "0 feasible") {
		t.Errorf("empty sweep summary: %s", r.String())
	}
}
