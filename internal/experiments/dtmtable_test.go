package experiments

import (
	"strings"
	"testing"
)

// The run-time acceptance property of the closed-loop subsystem: under
// identical DTM settings the thermal-aware schedule accumulates less
// total throttle time than the power-aware (heuristic 3) schedule on at
// least 3 of the 4 paper benchmarks — the run-time counterpart of the
// paper's Table 3 steady-state claim.
func TestDTMTableThermalThrottlesLess(t *testing.T) {
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := s.RunTableDTM(DefaultDTMSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Benchmarks) != 4 {
		t.Fatalf("table covers %d benchmarks, want 4", len(tab.Benchmarks))
	}
	for _, label := range tab.Benchmarks {
		p, th := tab.Power[label], tab.Thermal[label]
		if p.ThrottleTime <= 0 {
			t.Errorf("%s: power-aware schedule never throttled — trigger miscalibrated", label)
		}
		if p.Makespan <= 0 || th.Makespan <= 0 {
			t.Errorf("%s: degenerate makespans %+v %+v", label, p, th)
		}
	}
	if wins := tab.ThrottleWins(); wins < 3 {
		t.Errorf("thermal-aware throttles less on only %d/4 benchmarks\n%s", wins, tab)
	}
	if d := tab.MissDelta(); d < 0 {
		t.Errorf("thermal-aware misses %d more deadlines than power-aware\n%s", -d, tab)
	}
	out := tab.String()
	if !strings.Contains(out, "thermal-aware throttles less") {
		t.Errorf("summary malformed:\n%s", out)
	}
}
