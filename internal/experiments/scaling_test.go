package experiments

import (
	"context"
	"testing"

	"thermalsched/internal/cosynth"
)

func TestRunScalingTable(t *testing.T) {
	sizes := []int{20, 60, 150}
	if testing.Short() {
		sizes = []int{20, 60}
	}
	tab, err := RunScalingTable(context.Background(), sizes, 6, 3, cosynth.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(sizes) {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), len(sizes))
	}
	feasible := 0
	for i, r := range tab.Rows {
		if r.Tasks != sizes[i] {
			t.Errorf("row %d: tasks %d, want %d", i, r.Tasks, sizes[i])
		}
		if r.PEs != 6 {
			t.Errorf("row %d: PEs %d, want 6", i, r.PEs)
		}
		if r.Edges < r.Tasks-1 {
			t.Errorf("row %d: %d edges for %d tasks (disconnected?)", i, r.Edges, r.Tasks)
		}
		if !(r.Makespan > 0) || !(r.Deadline > 0) {
			t.Errorf("row %d: non-positive makespan %g or deadline %g", i, r.Makespan, r.Deadline)
		}
		if r.Feasible {
			feasible++
		} else if r.Makespan > 1.5*r.Deadline {
			// The thermal-aware ASP may trade some makespan past a
			// default-tightness deadline, but not grossly.
			t.Errorf("row %d: makespan %g far beyond deadline %g", i, r.Makespan, r.Deadline)
		}
		if r.MaxTempC < 30 || r.MaxTempC > 200 {
			t.Errorf("row %d: implausible max temperature %g", i, r.MaxTempC)
		}
		if r.AvgTempC > r.MaxTempC {
			t.Errorf("row %d: avg temp %g exceeds max temp %g", i, r.AvgTempC, r.MaxTempC)
		}
		if r.SchedMillis < 0 {
			t.Errorf("row %d: negative scheduling time %g", i, r.SchedMillis)
		}
		if r.Solver != "dense" {
			t.Errorf("row %d: solver %q, want dense for a nil HotSpot config", i, r.Solver)
		}
		if r.CacheHits != 0 || r.CacheMisses != 0 {
			t.Errorf("row %d: cache stats %d/%d with no stats hook", i, r.CacheHits, r.CacheMisses)
		}
	}
	if feasible*2 < len(tab.Rows) {
		t.Errorf("only %d/%d rows feasible at default tightness", feasible, len(tab.Rows))
	}
	if s := tab.String(); len(s) == 0 {
		t.Error("empty rendering")
	}

	// The generated inputs are deterministic: a second run must land on
	// identical schedule-quality numbers (only SchedMillis may differ).
	again, err := RunScalingTable(context.Background(), sizes, 6, 3, cosynth.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		a, b := tab.Rows[i], again.Rows[i]
		a.SchedMillis, b.SchedMillis = 0, 0
		if a != b {
			t.Errorf("row %d differs between runs:\n%+v\n%+v", i, a, b)
		}
	}
}
