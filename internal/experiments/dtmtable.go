package experiments

import (
	"context"
	"fmt"
	"strings"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/dtm"
	rt "thermalsched/internal/runtime"
	"thermalsched/internal/sched"
	"thermalsched/internal/sim"
)

// DTMCell is one benchmark × policy entry of the closed-loop run-time
// comparison.
type DTMCell struct {
	ThrottleTime float64 // total busy PE time below full speed, schedule units
	Makespan     float64 // realized makespan under throttling
	PeakTempC    float64 // hottest transient block temperature
	DeadlineMet  bool
}

// DTMSettings parameterizes the closed-loop study: one toggle
// controller configuration applied identically to both policies.
type DTMSettings struct {
	TriggerC   float64
	Hysteresis float64
	Throttle   float64
	DT         float64
	TimeScale  float64
}

// DefaultDTMSettings is the calibration of the run-time comparison: the
// trigger sits just below the paper benchmarks' steady-state peaks
// (83–88 °C on the platform), so a thermally unbalanced schedule
// crosses it during execution while a balanced one mostly stays under.
func DefaultDTMSettings() DTMSettings {
	return DTMSettings{TriggerC: 80, Hysteresis: 2, Throttle: 0.5, DT: 1, TimeScale: 0.1}
}

// DTMTable is the run-time counterpart of the paper's Table 3: instead
// of comparing steady-state temperatures of the power-aware (heuristic
// 3) and thermal-aware platform schedules, it runs both under the same
// closed-loop DTM controller and compares what the paper's framing
// ultimately promises — less throttling and fewer deadline misses at
// run time.
type DTMTable struct {
	Title      string
	Settings   DTMSettings
	Benchmarks []string
	Power      map[string]DTMCell
	Thermal    map[string]DTMCell
}

// RunTableDTM regenerates the closed-loop comparison over the suite's
// benchmarks. Both policies are simulated with identical controller
// settings, worst-case execution times (MinFactor 1) and a cold start,
// so every difference is attributable to the static schedule.
func (s *Suite) RunTableDTM(set DTMSettings) (*DTMTable, error) {
	t := &DTMTable{
		Title: fmt.Sprintf("Run-time DTM comparison on platform architecture (toggle @ %.0f °C, throttle %.2f)",
			set.TriggerC, set.Throttle),
		Settings: set,
		Power:    make(map[string]DTMCell),
		Thermal:  make(map[string]DTMCell),
	}
	for _, g := range s.Graphs {
		label := benchLabel(g)
		t.Benchmarks = append(t.Benchmarks, label)
		for _, p := range []sched.Policy{sched.MinTaskEnergy, sched.ThermalAware} {
			res, err := cosynth.RunPlatform(g, s.Lib, cosynth.PlatformConfig{Policy: p})
			if err != nil {
				return nil, fmt.Errorf("experiments: dtm table %s/%s: %w", g.Name, p, err)
			}
			ctrl, err := dtm.NewToggleController(set.TriggerC, set.Hysteresis, set.Throttle)
			if err != nil {
				return nil, err
			}
			sup, err := dtm.Supervise(ctrl, dtm.DefaultLadder)
			if err != nil {
				return nil, err
			}
			r, err := rt.Simulate(context.Background(), res.Schedule, res.Model, rt.Config{
				DT: set.DT, TimeScale: set.TimeScale, Supervisor: sup,
				Exec: sim.Options{MinFactor: 1},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: dtm simulate %s/%s: %w", g.Name, p, err)
			}
			cell := DTMCell{
				ThrottleTime: r.ThrottleTime,
				Makespan:     r.Makespan,
				PeakTempC:    r.PeakTempC,
				DeadlineMet:  r.DeadlineMet,
			}
			if p == sched.MinTaskEnergy {
				t.Power[label] = cell
			} else {
				t.Thermal[label] = cell
			}
		}
	}
	return t, nil
}

// ThrottleWins counts the benchmarks on which the thermal-aware
// schedule accumulated strictly less throttle time, and MissDelta the
// net deadline misses avoided (power misses − thermal misses).
func (t *DTMTable) ThrottleWins() (wins int) {
	for _, label := range t.Benchmarks {
		if t.Thermal[label].ThrottleTime < t.Power[label].ThrottleTime {
			wins++
		}
	}
	return wins
}

// MissDelta is the number of deadline misses the thermal-aware schedule
// avoids relative to the power-aware one under the same controller.
func (t *DTMTable) MissDelta() int {
	d := 0
	for _, label := range t.Benchmarks {
		if !t.Power[label].DeadlineMet {
			d++
		}
		if !t.Thermal[label].DeadlineMet {
			d--
		}
	}
	return d
}

// String renders the table in the layout of the paper's versus tables.
func (t *DTMTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-22s | %30s | %30s\n", "", "power-aware", "thermal-aware")
	fmt.Fprintf(&b, "%-22s | %9s %9s %10s | %9s %9s %10s\n",
		"benchmark", "Throttle", "Makespan", "Deadline", "Throttle", "Makespan", "Deadline")
	meets := func(ok bool) string {
		if ok {
			return "met"
		}
		return "MISSED"
	}
	for _, label := range t.Benchmarks {
		p, th := t.Power[label], t.Thermal[label]
		fmt.Fprintf(&b, "%-22s | %9.1f %9.1f %10s | %9.1f %9.1f %10s\n",
			label, p.ThrottleTime, p.Makespan, meets(p.DeadlineMet),
			th.ThrottleTime, th.Makespan, meets(th.DeadlineMet))
	}
	fmt.Fprintf(&b, "thermal-aware throttles less on %d/%d benchmarks, avoids %+d deadline miss(es)\n",
		t.ThrottleWins(), len(t.Benchmarks), t.MissDelta())
	return b.String()
}
