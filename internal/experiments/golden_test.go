package experiments

import (
	"math"
	"testing"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Golden regression values for the fully deterministic platform flow
// (no GA involved): every generator and the scheduler are seeded, so
// these numbers are stable build-to-build. A change here means the
// reproduction pipeline changed behaviour — bump deliberately, with an
// EXPERIMENTS.md update.
func TestGoldenTable3Platform(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		bench            string
		policy           sched.Policy
		totPow, max, avg float64
	}{
		{"Bm1", sched.MinTaskEnergy, 10.86, 87.24, 80.91},
		{"Bm1", sched.ThermalAware, 10.82, 83.29, 80.78},
		{"Bm2", sched.MinTaskEnergy, 10.89, 86.22, 81.02},
		{"Bm2", sched.ThermalAware, 10.66, 84.20, 80.26},
		{"Bm3", sched.MinTaskEnergy, 11.18, 85.90, 81.98},
		{"Bm3", sched.ThermalAware, 10.55, 83.82, 79.91},
		{"Bm4", sched.MinTaskEnergy, 12.08, 87.62, 84.96},
		{"Bm4", sched.ThermalAware, 11.66, 85.36, 83.57},
	}
	const tol = 0.15 // °C / W; generous against FP environment drift
	for _, g := range golden {
		graph, err := taskgraph.Benchmark(g.bench)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cosynth.RunPlatform(graph, lib, cosynth.PlatformConfig{Policy: g.policy})
		if err != nil {
			t.Fatalf("%s/%s: %v", g.bench, g.policy, err)
		}
		m := res.Metrics
		if math.Abs(m.TotalPower-g.totPow) > tol {
			t.Errorf("%s/%s total power %.2f, golden %.2f", g.bench, g.policy, m.TotalPower, g.totPow)
		}
		if math.Abs(m.MaxTemp-g.max) > tol {
			t.Errorf("%s/%s max temp %.2f, golden %.2f", g.bench, g.policy, m.MaxTemp, g.max)
		}
		if math.Abs(m.AvgTemp-g.avg) > tol {
			t.Errorf("%s/%s avg temp %.2f, golden %.2f", g.bench, g.policy, m.AvgTemp, g.avg)
		}
	}
}

// The headline deltas themselves, locked: thermal-aware improves peak
// temperature on every paper benchmark on the platform.
func TestGoldenThermalWinsEveryBenchmark(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range taskgraph.BenchmarkNames() {
		g, err := taskgraph.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.MinTaskEnergy})
		if err != nil {
			t.Fatal(err)
		}
		th, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: sched.ThermalAware})
		if err != nil {
			t.Fatal(err)
		}
		if th.Metrics.MaxTemp >= p.Metrics.MaxTemp {
			t.Errorf("%s: thermal max %.2f not below power-aware %.2f",
				name, th.Metrics.MaxTemp, p.Metrics.MaxTemp)
		}
		if th.Metrics.AvgTemp >= p.Metrics.AvgTemp {
			t.Errorf("%s: thermal avg %.2f not below power-aware %.2f",
				name, th.Metrics.AvgTemp, p.Metrics.AvgTemp)
		}
	}
}
