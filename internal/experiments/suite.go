// Package experiments regenerates the paper's evaluation artifacts:
// Table 1 (power-heuristic comparison under co-synthesis and
// platform-based architectures), Table 2 (power-aware vs thermal-aware
// co-synthesis), and Table 3 (power-aware vs thermal-aware platform),
// plus the repository's own ablations. Output formatting mirrors the
// paper's row/column layout so the tables can be compared side by side.
package experiments

import (
	"fmt"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Cell mirrors one benchmark × approach entry of the paper's tables.
type Cell struct {
	TotalPower float64
	MaxTemp    float64
	AvgTemp    float64
	Makespan   float64
	Feasible   bool
}

func cellOf(m cosynth.Metrics) Cell {
	return Cell{
		TotalPower: m.TotalPower,
		MaxTemp:    m.MaxTemp,
		AvgTemp:    m.AvgTemp,
		Makespan:   m.Makespan,
		Feasible:   m.Feasible,
	}
}

// Suite bundles the shared inputs of all experiments.
type Suite struct {
	Lib    *techlib.Library
	Graphs []*taskgraph.Graph
	// FloorplanGenerations bounds the GA effort inside co-synthesis.
	FloorplanGenerations int

	// cache avoids rerunning identical (benchmark, policy, flow) points
	// across tables.
	cosynthCache  map[string]Cell
	platformCache map[string]Cell
}

// NewSuite builds the standard suite: the four paper benchmarks over the
// standard technology library.
func NewSuite() (*Suite, error) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		return nil, err
	}
	graphs, err := taskgraph.Benchmarks()
	if err != nil {
		return nil, err
	}
	return &Suite{
		Lib:                  lib,
		Graphs:               graphs,
		FloorplanGenerations: 20,
		cosynthCache:         make(map[string]Cell),
		platformCache:        make(map[string]Cell),
	}, nil
}

// CoSynthCell runs (or recalls) the co-synthesis flow for one benchmark
// and policy.
func (s *Suite) CoSynthCell(g *taskgraph.Graph, p sched.Policy) (Cell, error) {
	key := g.Name + "/" + p.String()
	if c, ok := s.cosynthCache[key]; ok {
		return c, nil
	}
	res, err := cosynth.RunCoSynthesis(g, s.Lib, cosynth.CoSynthConfig{
		Policy:               p,
		FloorplanGenerations: s.FloorplanGenerations,
	})
	if err != nil {
		return Cell{}, fmt.Errorf("experiments: co-synthesis %s/%s: %w", g.Name, p, err)
	}
	c := cellOf(res.Metrics)
	s.cosynthCache[key] = c
	return c, nil
}

// PlatformCell runs (or recalls) the platform flow for one benchmark and
// policy.
func (s *Suite) PlatformCell(g *taskgraph.Graph, p sched.Policy) (Cell, error) {
	key := g.Name + "/" + p.String()
	if c, ok := s.platformCache[key]; ok {
		return c, nil
	}
	res, err := cosynth.RunPlatform(g, s.Lib, cosynth.PlatformConfig{Policy: p})
	if err != nil {
		return Cell{}, fmt.Errorf("experiments: platform %s/%s: %w", g.Name, p, err)
	}
	c := cellOf(res.Metrics)
	s.platformCache[key] = c
	return c, nil
}

// benchLabel formats the paper's "name/tasks/edges/deadline" row label.
func benchLabel(g *taskgraph.Graph) string {
	return fmt.Sprintf("%s/%d/%d/%.0f", g.Name, g.NumTasks(), g.NumEdges(), g.Deadline)
}
