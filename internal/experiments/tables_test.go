package experiments

import (
	"strings"
	"testing"

	"thermalsched/internal/sched"
)

// The full suite is expensive (GA floorplanning inside co-synthesis), so
// the heavyweight assertions share one suite via testMain-style lazy
// initialization.
var sharedSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	if sharedSuite == nil {
		s, err := NewSuite()
		if err != nil {
			t.Fatal(err)
		}
		s.FloorplanGenerations = 10
		sharedSuite = s
	}
	return sharedSuite
}

func TestSuiteConstruction(t *testing.T) {
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Graphs) != 4 {
		t.Errorf("suite has %d graphs", len(s.Graphs))
	}
	if s.Lib.NumPETypes() == 0 {
		t.Error("suite library empty")
	}
}

func TestTable1ShapeAndFeasibility(t *testing.T) {
	s := suite(t)
	tab, err := s.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Benchmarks) != 4 || len(tab.Policies) != 4 {
		t.Fatalf("table shape %dx%d", len(tab.Benchmarks), len(tab.Policies))
	}
	for _, label := range tab.Benchmarks {
		for i, c := range tab.Platform[label] {
			if !c.Feasible {
				t.Errorf("%s platform policy %d infeasible", label, i)
			}
			if c.TotalPower < 3 || c.TotalPower > 50 {
				t.Errorf("%s platform policy %d power %v out of band", label, i, c.TotalPower)
			}
			if c.MaxTemp < 50 || c.MaxTemp > 140 {
				t.Errorf("%s platform policy %d max temp %v out of band", label, i, c.MaxTemp)
			}
		}
		for i, c := range tab.CoSynth[label] {
			if !c.Feasible {
				t.Errorf("%s co-synthesis policy %d infeasible", label, i)
			}
		}
	}
	out := tab.String()
	for _, want := range []string{"Table 1", "Heuristic 3", "Bm4/51/60/2000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

// The paper's first finding: heuristic 3 (minimize task energy) is the
// best power heuristic. In our reproduction (as in the paper's own noisy
// co-synthesis column) H1 and H3 trade small wins on max temperature, so
// the assertions capture the robust part of the finding: H3 always beats
// the baseline on every metric, achieves the lowest total power of the
// three heuristics on most platform benchmarks, and stays within a few
// degrees of the best heuristic's peak temperature everywhere.
func TestHeuristic3IsBestPowerHeuristic(t *testing.T) {
	s := suite(t)
	tab, err := s.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	powerWins := 0
	for _, label := range tab.Benchmarks {
		cells := tab.Platform[label]
		base, h1, h2, h3 := cells[0], cells[1], cells[2], cells[3]
		if h3.MaxTemp > base.MaxTemp || h3.AvgTemp > base.AvgTemp || h3.TotalPower > base.TotalPower {
			t.Errorf("%s: heuristic 3 (%v/%v/%v) worse than baseline (%v/%v/%v)",
				label, h3.TotalPower, h3.MaxTemp, h3.AvgTemp,
				base.TotalPower, base.MaxTemp, base.AvgTemp)
		}
		if h3.TotalPower <= h1.TotalPower && h3.TotalPower <= h2.TotalPower {
			powerWins++
		}
		bestOther := h1.MaxTemp
		if h2.MaxTemp < bestOther {
			bestOther = h2.MaxTemp
		}
		if h3.MaxTemp > bestOther+4 {
			t.Errorf("%s: heuristic 3 max temp %v far above best heuristic %v",
				label, h3.MaxTemp, bestOther)
		}
	}
	if powerWins < 2 {
		t.Errorf("heuristic 3 lowest-power on only %d/4 platform benchmarks", powerWins)
	}
}

// The paper's headline (Tables 2 and 3): the thermal-aware ASP lowers
// max and avg temperature against the best power heuristic on most
// benchmarks, on both architecture flows.
func TestThermalAwareWinsTables2And3(t *testing.T) {
	s := suite(t)
	t3, err := s.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	maxWins, avgWins := t3.Wins()
	if maxWins < 3 || avgWins < 3 {
		t.Errorf("Table 3: thermal wins max on %d/4 and avg on %d/4; want >= 3\n%s",
			maxWins, avgWins, t3)
	}
	maxRed, avgRed := t3.MeanReductions()
	if maxRed <= 0 || avgRed <= 0 {
		t.Errorf("Table 3 mean reductions non-positive: max %.2f avg %.2f", maxRed, avgRed)
	}

	t2, err := s.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	maxWins2, avgWins2 := t2.Wins()
	if maxWins2+avgWins2 < 4 {
		t.Errorf("Table 2: thermal wins max on %d/4 and avg on %d/4\n%s",
			maxWins2, avgWins2, t2)
	}
}

func TestVersusTableString(t *testing.T) {
	v := &VersusTable{
		Title:      "Table X",
		Benchmarks: []string{"BmT/1/0/10"},
		Power:      map[string]Cell{"BmT/1/0/10": {TotalPower: 10, MaxTemp: 90, AvgTemp: 80}},
		Thermal:    map[string]Cell{"BmT/1/0/10": {TotalPower: 9, MaxTemp: 85, AvgTemp: 78}},
	}
	out := v.String()
	for _, want := range []string{"Table X", "thermal-aware", "5.00", "2.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	maxRed, avgRed := v.MeanReductions()
	if maxRed != 5 || avgRed != 2 {
		t.Errorf("reductions = %v, %v", maxRed, avgRed)
	}
	maxWins, avgWins := v.Wins()
	if maxWins != 1 || avgWins != 1 {
		t.Errorf("wins = %d, %d", maxWins, avgWins)
	}
}

func TestMeanReductionsEmpty(t *testing.T) {
	v := &VersusTable{}
	if m, a := v.MeanReductions(); m != 0 || a != 0 {
		t.Error("empty table reductions should be zero")
	}
}

func TestBestPowerHeuristic(t *testing.T) {
	tab := &Table1{
		Benchmarks: []string{"b"},
		Policies:   []sched.Policy{sched.Baseline, sched.MinTaskPower, sched.MinPEPower, sched.MinTaskEnergy},
	}
	cells := map[string][]Cell{
		"b": {{MaxTemp: 100}, {MaxTemp: 95}, {MaxTemp: 92}, {MaxTemp: 97}},
	}
	best := tab.BestPowerHeuristic(cells)
	if best["b"] != 2 {
		t.Errorf("best = %d, want 2", best["b"])
	}
}
