package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// SweepResult aggregates a randomized robustness study: the paper
// evaluates four hand-picked benchmarks; the sweep re-runs the
// power-aware vs thermal-aware platform comparison over many random
// task graphs and reports win rates and mean reductions, so the headline
// claim is backed by a distribution rather than four samples.
type SweepResult struct {
	Graphs       int `json:"graphs"`
	FeasibleBoth int `json:"feasibleBoth"` // graphs where both policies met the deadline
	// Wins are strict: the thermal-aware metric must improve on the
	// power-aware one by more than WinEpsilon. Graphs where the two
	// policies land within WinEpsilon of each other — typically because
	// both produced the identical schedule — are counted as ties, not
	// wins.
	MaxWins       int     `json:"maxWins"`   // thermal max-temp wins among FeasibleBoth
	AvgWins       int     `json:"avgWins"`   // thermal avg-temp wins among FeasibleBoth
	PowerWins     int     `json:"powerWins"` // thermal total-power wins among FeasibleBoth
	MaxTies       int     `json:"maxTies"`
	AvgTies       int     `json:"avgTies"`
	PowerTies     int     `json:"powerTies"`
	MeanMaxRed    float64 `json:"meanMaxRedC"`
	MeanAvgRed    float64 `json:"meanAvgRedC"`
	MeanPowerRedW float64 `json:"meanPowerRedW"`
}

// WinEpsilon separates a genuine metric improvement from floating-point
// noise: deltas within ±WinEpsilon (°C or W) count as ties. Identical
// schedules produce bit-identical metrics, so any honest improvement
// clears this comfortably.
const WinEpsilon = 1e-9

// tallyOutcome classifies one power-minus-thermal delta: a strict win
// (delta > WinEpsilon), a tie (|delta| ≤ WinEpsilon), or a loss.
func tallyOutcome(delta float64, wins, ties *int) {
	switch {
	case delta > WinEpsilon:
		*wins++
	case delta >= -WinEpsilon:
		*ties++
	}
}

// RunSweep generates count random task graphs (sizes spanning the
// paper's benchmark range) and compares heuristic 3 against the
// thermal-aware ASP on the platform flow.
func RunSweep(lib *techlib.Library, count int, seed int64) (*SweepResult, error) {
	return RunSweepCtx(context.Background(), lib, count, seed)
}

// RunSweepCtx is RunSweep with cancellation threaded into every
// scheduling run of the study.
func RunSweepCtx(ctx context.Context, lib *techlib.Library, count int, seed int64) (*SweepResult, error) {
	return RunSweepWith(ctx, lib, count, seed, cosynth.PlatformConfig{})
}

// RunSweepWith additionally takes a base platform configuration whose
// HotSpot, Models and BusTimePerUnit settings apply to every run of the
// study — the Engine passes its thermal calibration and model cache
// here. Policy and Sched are set per run and ignored on base.
func RunSweepWith(ctx context.Context, lib *techlib.Library, count int, seed int64, base cosynth.PlatformConfig) (*SweepResult, error) {
	if count < 1 {
		return nil, fmt.Errorf("experiments: sweep count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &SweepResult{Graphs: count}
	for i := 0; i < count; i++ {
		tasks := 15 + rng.Intn(40)
		minE := tasks - 1
		maxE := minE + tasks/2
		edges := minE + rng.Intn(maxE-minE+1)
		// Deadline scaled to task count with moderate slack, matching the
		// density of the paper's benchmarks (~40 units of deadline per
		// task on a 4-PE platform).
		deadline := float64(tasks) * (38 + 8*rng.Float64())
		g, err := taskgraph.Generate(taskgraph.GenParams{
			Name: fmt.Sprintf("sweep%d", i), Tasks: tasks, Edges: edges,
			Deadline: deadline, Types: taskgraph.NumTaskTypes,
			Sources: 1 + rng.Intn(2), MaxData: 40, Seed: rng.Int63(),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep graph %d: %w", i, err)
		}
		pCfg := base
		pCfg.Policy, pCfg.Sched = sched.MinTaskEnergy, nil
		pRes, err := cosynth.RunPlatformCtx(ctx, g, lib, pCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep %d power run: %w", i, err)
		}
		tCfg := base
		tCfg.Policy, tCfg.Sched = sched.ThermalAware, nil
		tRes, err := cosynth.RunPlatformCtx(ctx, g, lib, tCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep %d thermal run: %w", i, err)
		}
		if !pRes.Metrics.Feasible || !tRes.Metrics.Feasible {
			continue
		}
		res.FeasibleBoth++
		dMax := pRes.Metrics.MaxTemp - tRes.Metrics.MaxTemp
		dAvg := pRes.Metrics.AvgTemp - tRes.Metrics.AvgTemp
		dPow := pRes.Metrics.TotalPower - tRes.Metrics.TotalPower
		res.MeanMaxRed += dMax
		res.MeanAvgRed += dAvg
		res.MeanPowerRedW += dPow
		tallyOutcome(dMax, &res.MaxWins, &res.MaxTies)
		tallyOutcome(dAvg, &res.AvgWins, &res.AvgTies)
		tallyOutcome(dPow, &res.PowerWins, &res.PowerTies)
	}
	if res.FeasibleBoth > 0 {
		n := float64(res.FeasibleBoth)
		res.MeanMaxRed /= n
		res.MeanAvgRed /= n
		res.MeanPowerRedW /= n
	}
	return res, nil
}

// String renders the sweep summary.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Randomized sweep: %d graphs, %d feasible under both policies\n",
		r.Graphs, r.FeasibleBoth)
	if r.FeasibleBoth == 0 {
		return b.String()
	}
	n := float64(r.FeasibleBoth)
	fmt.Fprintf(&b, "  thermal wins max temp on %d/%d (%.0f%%, %d ties), mean reduction %.2f °C\n",
		r.MaxWins, r.FeasibleBoth, 100*float64(r.MaxWins)/n, r.MaxTies, r.MeanMaxRed)
	fmt.Fprintf(&b, "  thermal wins avg temp on %d/%d (%.0f%%, %d ties), mean reduction %.2f °C\n",
		r.AvgWins, r.FeasibleBoth, 100*float64(r.AvgWins)/n, r.AvgTies, r.MeanAvgRed)
	fmt.Fprintf(&b, "  thermal wins total power on %d/%d (%.0f%%, %d ties), mean reduction %.2f W\n",
		r.PowerWins, r.FeasibleBoth, 100*float64(r.PowerWins)/n, r.PowerTies, r.MeanPowerRedW)
	return b.String()
}
