package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermalsched/internal/cosynth"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

func platformSchedule(t testing.TB, bench string, policy sched.Policy) *sched.Schedule {
	t.Helper()
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Benchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cosynth.RunPlatform(g, lib, cosynth.PlatformConfig{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestOptionsValidate(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := (Options{MinFactor: bad}).Validate(); err == nil {
			t.Errorf("MinFactor %v accepted", bad)
		}
	}
	if err := (Options{MinFactor: 1}).Validate(); err != nil {
		t.Errorf("MinFactor 1 rejected: %v", err)
	}
}

func TestExecuteWorstCaseReproducesSchedule(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	res, err := Execute(s, Options{MinFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-s.Makespan) > 1e-6 {
		t.Errorf("worst-case replay makespan %v, schedule %v", res.Makespan, s.Makespan)
	}
	if math.Abs(res.Energy-s.TotalEnergy()) > 1e-6 {
		t.Errorf("worst-case replay energy %v, schedule %v", res.Energy, s.TotalEnergy())
	}
	for id, rec := range res.Records {
		a := s.Assignments[id]
		if math.Abs(rec.Start-a.Start) > 1e-6 || math.Abs(rec.Finish-a.Finish) > 1e-6 {
			t.Errorf("task %d timing differs: [%v,%v] vs [%v,%v]",
				id, rec.Start, rec.Finish, a.Start, a.Finish)
		}
	}
}

func TestExecuteShorterTasksNeverLater(t *testing.T) {
	s := platformSchedule(t, "Bm2", sched.MinTaskEnergy)
	res, err := Execute(s, Options{MinFactor: 0.6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Makespan > s.Makespan+1e-9 {
		t.Errorf("actual makespan %v exceeds worst case %v", res.Makespan, s.Makespan)
	}
	if res.Energy > s.TotalEnergy()+1e-9 {
		t.Errorf("actual energy %v exceeds worst case %v", res.Energy, s.TotalEnergy())
	}
	// Every task finishes no later than its static schedule slot.
	for id, rec := range res.Records {
		if rec.Finish > s.Assignments[id].Finish+1e-9 {
			t.Errorf("task %d finishes at %v, after static %v",
				id, rec.Finish, s.Assignments[id].Finish)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	a, err := Execute(s, Options{MinFactor: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(s, Options{MinFactor: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Records {
		if a.Records[id] != b.Records[id] {
			t.Fatalf("task %d differs across identical runs", id)
		}
	}
	c, err := Execute(s, Options{MinFactor: 0.7, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan && c.Energy == a.Energy {
		t.Log("warning: different seeds produced identical results (possible but unlikely)")
	}
}

func TestExecuteRejectsBadInput(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	if _, err := Execute(s, Options{MinFactor: 0}); err == nil {
		t.Error("invalid options accepted")
	}
	s.Assignments[0].Finish += 100 // corrupt
	if _, err := Execute(s, Options{MinFactor: 1}); err == nil {
		t.Error("corrupt schedule accepted")
	}
}

func TestResultValidateCatchesCorruption(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	res, err := Execute(s, Options{MinFactor: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res.Records[0].PE = (res.Records[0].PE + 1) % len(s.Arch.PEs)
	if err := res.Validate(); err == nil {
		t.Error("PE migration not detected")
	}
}

func TestTraceFeedsHotSpot(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.ThermalAware)
	res, err := Execute(s, Options{MinFactor: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := res.Trace(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Trace energy (Σ power × dt) must match the realized energy.
	var total float64
	for _, row := range trace.Samples {
		for _, w := range row {
			total += w * 10
		}
	}
	if math.Abs(total-res.Energy) > 1e-6*(1+res.Energy) {
		t.Errorf("trace energy %v, realized %v", total, res.Energy)
	}
	// And it must drive the thermal model.
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	_, _, model, _, err := cosynth.BuildPlatform(lib, cosynth.DefaultBusTimePerUnit, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples, err := trace.Reorder(model.BlockNames())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.NewTransient(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Trace(0); err == nil {
		t.Error("zero trace step accepted")
	}
}

// Property: for random factors and seeds, execution is always valid and
// never later/hungrier than the worst case.
func TestExecuteProperty(t *testing.T) {
	s := platformSchedule(t, "Bm3", sched.MinTaskEnergy)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opt := Options{MinFactor: 0.3 + 0.7*rng.Float64(), Seed: seed}
		res, err := Execute(s, opt)
		if err != nil {
			return false
		}
		return res.Validate() == nil &&
			res.Makespan <= s.Makespan+1e-9 &&
			res.Energy <= s.TotalEnergy()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// A makespan that is an exact multiple of dt must produce exactly
// Makespan/dt samples: the old `int(Makespan/dt)+1` sizing appended a
// trailing all-zero power row, padding every transient/DTM run with a
// spurious cooling step.
func TestTraceNoTrailingZeroSample(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	res, err := Execute(s, Options{MinFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, div := range []int{1, 3, 7} {
		dt := res.Makespan / float64(div)
		trace, err := res.Trace(dt)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace.Samples) != div {
			t.Fatalf("dt = makespan/%d: %d samples, want %d", div, len(trace.Samples), div)
		}
		last := trace.Samples[len(trace.Samples)-1]
		var power float64
		for _, w := range last {
			power += w
		}
		if power <= 0 {
			t.Errorf("dt = makespan/%d: trailing sample is all-zero", div)
		}
	}
	// dt longer than the makespan still yields the single covering sample.
	trace, err := res.Trace(res.Makespan * 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Samples) != 1 {
		t.Errorf("oversized dt: %d samples, want 1", len(trace.Samples))
	}
	// Energy is conserved whatever the sampling step.
	trace, err = res.Trace(res.Makespan / 5)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, row := range trace.Samples {
		for _, w := range row {
			total += w * res.Makespan / 5
		}
	}
	if math.Abs(total-res.Energy) > 1e-6*(1+res.Energy) {
		t.Errorf("trace energy %v, realized %v", total, res.Energy)
	}
}
