// Package sim is a discrete-event executor for schedules produced by the
// ASP: it replays a schedule with *actual* execution times (a seeded
// fraction of each task's WCET), preserving the task→PE mapping and each
// PE's dispatch order, and reports the realized timing, energy, and a
// power trace suitable for transient thermal simulation or DTM studies.
//
// The paper evaluates worst-case schedules only; this executor is the
// run-time companion that shows WCET-based guarantees hold under
// variable actual execution (makespan and energy can only shrink when
// execution times shrink, given a fixed mapping and dispatch order).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"thermalsched/internal/hotspot"
	"thermalsched/internal/sched"
)

// Options controls the executor.
type Options struct {
	// MinFactor is the lower bound of the per-task execution-time factor:
	// actual duration = WCET × uniform[MinFactor, 1]. 1 replays the
	// worst case exactly.
	MinFactor float64
	// Seed drives the per-task factors and the branch realization.
	Seed int64
	// Conditional enables conditional-task-graph execution: each edge
	// fires with its annotated probability (given its source executed);
	// tasks none of whose incoming edges fired are skipped and their
	// reserved PE slots are simply not used. Sources always execute.
	Conditional bool
}

// Validate reports the first invalid option.
func (o Options) Validate() error {
	if o.MinFactor <= 0 || o.MinFactor > 1 {
		return fmt.Errorf("sim: MinFactor %g out of (0, 1]", o.MinFactor)
	}
	return nil
}

// TaskRecord is the realized execution of one task.
type TaskRecord struct {
	Task   int
	PE     int
	Start  float64
	Finish float64
	Power  float64 // actual power draw while executing, W
	// Skipped marks a task whose branch was not taken in a conditional
	// run; its timing fields are zero.
	Skipped bool
}

// Result is the outcome of one simulated execution.
type Result struct {
	Schedule *sched.Schedule
	Records  []TaskRecord // indexed by task ID
	Makespan float64
	Energy   float64
	Executed int // number of tasks that actually ran

	fired map[[2]int]bool // realized edges, for Validate
}

// Realization is the seeded random draw one simulated execution runs
// under: per-task actual durations and, for conditional graphs, the
// realized branch decisions. Drawing it separately from replaying it
// lets the open-loop executor (Execute) and the closed-loop runtime
// co-simulator (internal/runtime) share one deterministic-seed
// contract: the same schedule, options and seed realize identical
// durations and branches in both, so open- and closed-loop results of
// the same replica are directly comparable.
type Realization struct {
	// Actual is the realized duration of each task, indexed by task ID
	// (WCET × uniform[MinFactor, 1], drawn in task-ID order).
	Actual []float64
	// Executes marks tasks whose branch was taken; always all-true for
	// unconditional runs.
	Executes []bool

	fired map[[2]int]bool
}

// Fired reports whether the edge from→to carried data in this
// realization (its source executed and, for conditional edges, its
// branch was drawn).
func (r *Realization) Fired(from, to int) bool { return r.fired[[2]int{from, to}] }

// DrawFactors draws n execution-time factors, uniform on
// [minFactor, 1], consuming exactly one rng variate per factor in index
// order. This is the single seeded duration-draw contract shared by the
// batch realizer (Realize) and the online dispatcher (internal/stream):
// both draw factor i for task/job i from the i-th variate of a source
// seeded with their Seed verbatim, so the two subsystems realize
// identical factor sequences from identical seeds.
func DrawFactors(rng *rand.Rand, n int, minFactor float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = minFactor + (1-minFactor)*rng.Float64()
	}
	return f
}

// Realize draws the seeded execution-time factors and branch decisions
// for one run of the schedule.
func Realize(s *sched.Schedule, opt Options) (*Realization, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := s.Graph.NumTasks()

	// Actual durations: WCET × the shared factor draw, in task-ID order.
	factors := DrawFactors(rng, n, opt.MinFactor)
	actual := make([]float64, n)
	for id := 0; id < n; id++ {
		a := s.Assignments[id]
		wcet := a.Finish - a.Start
		actual[id] = wcet * factors[id]
	}

	// Branch realization (conditional runs): per branch node, draw one
	// uniform variate and fire the sibling conditional edge whose
	// cumulative-probability interval contains it — mutually exclusive
	// branches, exactly one (or none, if probabilities sum below 1).
	// Unconditional edges always fire when their source executes.
	executes := make([]bool, n)
	firedEdge := make(map[[2]int]bool, s.Graph.NumEdges())
	if opt.Conditional {
		if err := s.Graph.ValidateProbabilities(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		order, err := s.Graph.TopoOrder()
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		for _, id := range order {
			if s.Graph.InDegree(id) == 0 {
				executes[id] = true
			}
			if !executes[id] {
				continue
			}
			u := rng.Float64()
			cum := 0.0
			for _, e := range s.Graph.Successors(id) {
				key := [2]int{e.From, e.To}
				if !e.IsConditional() {
					firedEdge[key] = true
					executes[e.To] = true
					continue
				}
				lo := cum
				cum += e.Prob
				if u >= lo && u < cum {
					firedEdge[key] = true
					executes[e.To] = true
				}
			}
		}
	} else {
		for id := range executes {
			executes[id] = true
		}
		for _, e := range s.Graph.Edges() {
			firedEdge[[2]int{e.From, e.To}] = true
		}
	}
	return &Realization{Actual: actual, Executes: executes, fired: firedEdge}, nil
}

// DispatchQueues returns the per-PE dispatch order implied by the
// schedule: task IDs grouped by assigned PE, each queue sorted by static
// start time. Both the open-loop executor and the closed-loop runtime
// dispatch in exactly this order, so throttling can stretch tasks but
// never reorder them.
func DispatchQueues(s *sched.Schedule) [][]int {
	queues := make([][]int, len(s.Arch.PEs))
	for id := 0; id < s.Graph.NumTasks(); id++ {
		pe := s.Assignments[id].PE
		queues[pe] = append(queues[pe], id)
	}
	for pe := range queues {
		q := queues[pe]
		sort.Slice(q, func(i, j int) bool {
			return s.Assignments[q[i]].Start < s.Assignments[q[j]].Start
		})
	}
	return queues
}

// Execute replays the schedule under the options. The task→PE mapping
// and the per-PE dispatch order are taken from the schedule; start times
// are recomputed event-style from actual durations and communication
// delays.
func Execute(s *sched.Schedule, opt Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	real, err := Realize(s, opt)
	if err != nil {
		return nil, err
	}
	n := s.Graph.NumTasks()
	actual, executes, firedEdge := real.Actual, real.Executes, real.fired

	// Per-PE dispatch queues in static start order.
	queues := DispatchQueues(s)

	records := make([]TaskRecord, n)
	done := make([]bool, n)
	next := make([]int, len(queues)) // per-PE queue cursor
	peFree := make([]float64, len(queues))
	completed := 0
	for completed < n {
		progressed := false
		for pe := range queues {
			for next[pe] < len(queues[pe]) {
				id := queues[pe][next[pe]]
				if !executes[id] {
					records[id] = TaskRecord{Task: id, PE: pe, Skipped: true}
					done[id] = true
					next[pe]++
					completed++
					progressed = true
					continue
				}
				ready, ok := readyTime(s, records, done, firedEdge, id, pe)
				if !ok {
					break // predecessors pending; revisit after progress
				}
				start := ready
				if peFree[pe] > start {
					start = peFree[pe]
				}
				finish := start + actual[id]
				records[id] = TaskRecord{
					Task: id, PE: pe, Start: start, Finish: finish,
					Power: s.Assignments[id].Power,
				}
				done[id] = true
				peFree[pe] = finish
				next[pe]++
				completed++
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("sim: dispatch deadlock with %d/%d tasks executed", completed, n)
		}
	}

	res := &Result{Schedule: s, Records: records, fired: firedEdge}
	for _, r := range records {
		if r.Skipped {
			continue
		}
		res.Executed++
		if r.Finish > res.Makespan {
			res.Makespan = r.Finish
		}
		res.Energy += (r.Finish - r.Start) * r.Power
	}
	return res, nil
}

// readyTime computes when task id's inputs are available on PE pe, or
// ok=false if a predecessor has not completed (or been skipped) yet.
// Only fired edges carry data; skipped predecessors impose no delay.
func readyTime(s *sched.Schedule, records []TaskRecord, done []bool, fired map[[2]int]bool, id, pe int) (float64, bool) {
	t := 0.0
	for _, e := range s.Graph.Predecessors(id) {
		if !done[e.From] {
			return 0, false
		}
		if !fired[[2]int{e.From, e.To}] || records[e.From].Skipped {
			continue
		}
		r := records[e.From].Finish
		if records[e.From].PE != pe {
			r += e.Data * s.Arch.BusTimePerUnit
		}
		if r > t {
			t = r
		}
	}
	return t, true
}

// Validate checks the realized execution: every task ran exactly once on
// its assigned PE, no PE overlap, and every precedence edge (with comm
// delay) was honoured.
func (r *Result) Validate() error {
	const tol = 1e-9
	n := r.Schedule.Graph.NumTasks()
	if len(r.Records) != n {
		return fmt.Errorf("sim: %d records for %d tasks", len(r.Records), n)
	}
	for id, rec := range r.Records {
		if rec.Task != id {
			return fmt.Errorf("sim: record %d holds task %d", id, rec.Task)
		}
		if rec.PE != r.Schedule.Assignments[id].PE {
			return fmt.Errorf("sim: task %d migrated from its assigned PE", id)
		}
		if rec.Skipped {
			continue
		}
		if rec.Finish < rec.Start-tol {
			return fmt.Errorf("sim: task %d has negative duration", id)
		}
	}
	for _, e := range r.Schedule.Graph.Edges() {
		from, to := r.Records[e.From], r.Records[e.To]
		if from.Skipped || to.Skipped {
			continue
		}
		if r.fired != nil && !r.fired[[2]int{e.From, e.To}] {
			continue // edge's branch was not taken; no data dependency
		}
		ready := from.Finish
		if from.PE != to.PE {
			ready += e.Data * r.Schedule.Arch.BusTimePerUnit
		}
		if to.Start < ready-tol {
			return fmt.Errorf("sim: edge %d->%d violated", e.From, e.To)
		}
	}
	byPE := make(map[int][]TaskRecord)
	for _, rec := range r.Records {
		if rec.Skipped {
			continue
		}
		byPE[rec.PE] = append(byPE[rec.PE], rec)
	}
	// Walk PEs in sorted order so which overlap gets reported never
	// depends on map iteration order.
	pes := make([]int, 0, len(byPE))
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		recs := byPE[pe]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
		for i := 1; i < len(recs); i++ {
			if recs[i].Start < recs[i-1].Finish-tol {
				return fmt.Errorf("sim: tasks %d and %d overlap on PE %d",
					recs[i-1].Task, recs[i].Task, pe)
			}
		}
	}
	return nil
}

// Trace converts the realized execution into a power trace sampled at dt
// (schedule time units per sample), in architecture PE order, ready for
// hotspot transient simulation. Samples cover the half-open intervals
// [k·dt, (k+1)·dt) up to the makespan: a run whose makespan is an exact
// multiple of dt gets exactly Makespan/dt samples, with no trailing
// all-zero cooling step.
func (r *Result) Trace(dt float64) (*hotspot.PowerTrace, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("sim: trace step must be positive, got %g", dt)
	}
	nPE := len(r.Schedule.Arch.PEs)
	// Half-open-interval guard: ceil with a relative epsilon so a
	// makespan computed as k·dt (possibly off by float rounding) yields
	// k samples, not k+1 — relative, so the guard holds for long traces
	// where the absolute rounding error of the ratio exceeds any fixed
	// epsilon.
	ratio := r.Makespan / dt
	steps := int(math.Ceil(ratio * (1 - 1e-12)))
	trace := &hotspot.PowerTrace{Names: r.Schedule.Arch.PENames()}
	for k := 0; k < steps; k++ {
		t0, t1 := float64(k)*dt, float64(k+1)*dt
		row := make([]float64, nPE)
		for _, rec := range r.Records {
			if rec.Skipped {
				continue
			}
			lo, hi := maxf(rec.Start, t0), minf(rec.Finish, t1)
			if hi > lo {
				row[rec.PE] += rec.Power * (hi - lo) / dt
			}
		}
		trace.Samples = append(trace.Samples, row)
	}
	return trace, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
