package sim

import (
	"math"
	"testing"

	"thermalsched/internal/sched"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// ctgSchedule builds a schedule for a conditional task graph on two PEs:
// t0 branches to t1 (p=0.6) or t2 (p=0.4); both lead to t3.
func ctgSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	lib, err := techlib.NewLibrary(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := lib.AddPEType(
			techlib.PEType{Name: name, Cost: 1, Area: 1e-6, IdlePower: 0},
			[]techlib.Entry{{WCET: 10, WCPC: 4}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	g := taskgraph.NewGraph("ctg", 1000)
	for i := 0; i < 4; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []taskgraph.Edge{
		{From: 0, To: 1, Data: 1, Prob: 0.6},
		{From: 0, To: 2, Data: 1, Prob: 0.4},
		{From: 1, To: 3, Data: 1},
		{From: 2, To: 3, Data: 1},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	arch := sched.Architecture{
		Name: "duo",
		PEs:  []sched.PE{{Name: "p0", Type: 0}, {Name: "p1", Type: 1}},
	}
	s, err := sched.AllocateAndSchedule(g, arch, lib, sched.DefaultConfig(sched.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConditionalExecutionSkipsOneBranch(t *testing.T) {
	s := ctgSchedule(t)
	sawSkip := false
	for seed := int64(0); seed < 20; seed++ {
		res, err := Execute(s, Options{MinFactor: 1, Seed: seed, Conditional: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Exactly one of t1/t2 runs; t0 and t3 always run.
		r1, r2 := res.Records[1], res.Records[2]
		if r1.Skipped == r2.Skipped {
			t.Fatalf("seed %d: branches t1/t2 skipped=%v/%v, want exactly one taken",
				seed, r1.Skipped, r2.Skipped)
		}
		if res.Records[0].Skipped || res.Records[3].Skipped {
			t.Fatalf("seed %d: unconditional tasks skipped", seed)
		}
		if res.Executed != 3 {
			t.Fatalf("seed %d: executed %d, want 3", seed, res.Executed)
		}
		if r1.Skipped {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Error("t1 never skipped in 20 seeds (p=0.6 branch)")
	}
}

func TestConditionalBranchFrequency(t *testing.T) {
	s := ctgSchedule(t)
	took1 := 0
	const n = 400
	for seed := int64(0); seed < n; seed++ {
		res, err := Execute(s, Options{MinFactor: 1, Seed: seed, Conditional: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Records[1].Skipped {
			took1++
		}
	}
	freq := float64(took1) / n
	if math.Abs(freq-0.6) > 0.08 {
		t.Errorf("branch t1 taken %.2f of runs, want ≈ 0.6", freq)
	}
}

func TestConditionalEnergyBelowWorstCase(t *testing.T) {
	s := ctgSchedule(t)
	res, err := Execute(s, Options{MinFactor: 1, Seed: 3, Conditional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= s.TotalEnergy() {
		t.Errorf("conditional energy %v should be below worst case %v (one branch skipped)",
			res.Energy, s.TotalEnergy())
	}
}

func TestExpectedEnergyMatchesProbabilities(t *testing.T) {
	s := ctgSchedule(t)
	exp, err := s.ExpectedEnergy()
	if err != nil {
		t.Fatal(err)
	}
	// Each task is 10 × 4 = 40 energy; P = [1, 0.6, 0.4, 1] → 40×3 = 120.
	if math.Abs(exp-120) > 1e-9 {
		t.Errorf("ExpectedEnergy = %v, want 120", exp)
	}
	if exp >= s.TotalEnergy() {
		t.Error("expected energy should be below worst case for a CTG")
	}
	pow, err := s.ExpectedPEAveragePower(1000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pow {
		sum += p
	}
	if math.Abs(sum-0.12) > 1e-9 {
		t.Errorf("expected power sum = %v, want 0.12", sum)
	}
	if _, err := s.ExpectedPEAveragePower(0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestExpectedEnergyEqualsTotalForPlainGraph(t *testing.T) {
	s := platformSchedule(t, "Bm1", sched.Baseline)
	exp, err := s.ExpectedEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp-s.TotalEnergy()) > 1e-9 {
		t.Errorf("plain graph: expected %v != total %v", exp, s.TotalEnergy())
	}
}

func TestUnconditionalRunIgnoresProbabilities(t *testing.T) {
	s := ctgSchedule(t)
	res, err := Execute(s, Options{MinFactor: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 {
		t.Errorf("non-conditional run executed %d/4 tasks", res.Executed)
	}
}

// Skipped-branch PEs contribute zero power to the transient trace: the
// power-trace columns of a PE whose every task was skipped must be
// all-zero, and executed tasks must still appear. This is the trace the
// closed-loop runtime (internal/runtime) and the open-loop dtm.Run both
// feed from.
func TestConditionalTraceSkippedPEZeroPower(t *testing.T) {
	s := ctgSchedule(t)
	sawSkippedPE := false
	for seed := int64(0); seed < 20; seed++ {
		res, err := Execute(s, Options{MinFactor: 1, Seed: seed, Conditional: true})
		if err != nil {
			t.Fatal(err)
		}
		trace, err := res.Trace(2)
		if err != nil {
			t.Fatal(err)
		}
		executedOn := make([]bool, len(s.Arch.PEs))
		assignedOn := make([]bool, len(s.Arch.PEs))
		for _, rec := range res.Records {
			assignedOn[rec.PE] = true
			if !rec.Skipped {
				executedOn[rec.PE] = true
			}
		}
		var colSum [8]float64
		for _, row := range trace.Samples {
			for pe, w := range row {
				colSum[pe] += w
			}
		}
		for pe := range s.Arch.PEs {
			if assignedOn[pe] && !executedOn[pe] {
				sawSkippedPE = true
				if colSum[pe] != 0 {
					t.Errorf("seed %d: PE %d hosts only skipped tasks yet traces %g W·samples",
						seed, pe, colSum[pe])
				}
			}
			if executedOn[pe] && colSum[pe] <= 0 {
				t.Errorf("seed %d: PE %d executed tasks but traces no power", seed, pe)
			}
		}
	}
	if !sawSkippedPE {
		t.Error("no seed produced a PE with only skipped tasks; assertion never exercised")
	}
}

// Realize and Execute share one deterministic-seed contract: the
// durations Execute realizes are exactly the Realization's, and the
// same seed draws the same branches.
func TestRealizeMatchesExecute(t *testing.T) {
	s := ctgSchedule(t)
	for seed := int64(0); seed < 5; seed++ {
		opt := Options{MinFactor: 0.5, Seed: seed, Conditional: true}
		real, err := Realize(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		for id, rec := range res.Records {
			if rec.Skipped != !real.Executes[id] {
				t.Errorf("seed %d: task %d skip disagrees with realization", seed, id)
			}
			if rec.Skipped {
				continue
			}
			if d := rec.Finish - rec.Start; math.Abs(d-real.Actual[id]) > 1e-9 {
				t.Errorf("seed %d: task %d duration %g, realization drew %g", seed, id, d, real.Actual[id])
			}
		}
	}
}
