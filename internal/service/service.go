// Package service exposes a thermalsched Engine as an HTTP/JSON API:
// request decoding and validation, flow routing, concurrency limiting,
// and the async job tier. cmd/thermschedd is the thin binary around it.
//
// Endpoints:
//
//	POST   /v1/run             one thermalsched.Request  -> one thermalsched.Response (synchronous)
//	POST   /v1/batch           []thermalsched.Request    -> []thermalsched.Response (synchronous)
//	POST   /v1/jobs            one thermalsched.Request  -> jobs.Job (202; submit-then-poll)
//	GET    /v1/jobs/{id}       jobs.Job (status + result when done)
//	GET    /v1/jobs/{id}/events  SSE job lifecycle stream
//	DELETE /v1/jobs/{id}       cancel; returns the resulting jobs.Job
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            liveness + engine cache/memo stats
//
// The wire schema is exactly the package's Request/Response types, so
// the CLI's -json output, the service's responses, and library-level
// JSON round trips all share one format; an async job's response is
// byte-identical to the synchronous /v1/run response for the same
// request. Every Engine flow is served, including the
// synthetic-scenario generate and campaign flows; their size limits
// (scenario.MaxTasks/MaxPEs, MaxCampaignScenarios) are enforced by
// Request.Validate before any work is admitted.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	"thermalsched"
	"thermalsched/internal/jobs"
)

// engineAPI is the slice of thermalsched.Engine the service consumes.
// It exists so tests can substitute a failing engine; production code
// always passes a real *thermalsched.Engine through New.
type engineAPI interface {
	Run(ctx context.Context, req thermalsched.Request) (*thermalsched.Response, error)
	RunBatch(ctx context.Context, reqs []thermalsched.Request) ([]*thermalsched.Response, error)
	ModelCacheStats() (hits, misses uint64, size int)
	ScenarioCacheStats() (hits, misses uint64, size int)
	SearchMemoStats() (evals, memoHits uint64)
}

// Config tunes the service.
type Config struct {
	// MaxInFlight bounds the number of synchronous requests being
	// executed at once across /v1/run and /v1/batch (a batch counts
	// once). Zero means DefaultMaxInFlight. The job tier has its own
	// worker pool (Jobs.Workers) and does not draw from this limit.
	MaxInFlight int
	// MaxBatch caps the entries accepted by /v1/batch. Zero means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps the request body size. Zero means
	// DefaultMaxBodyBytes. Oversized bodies are rejected with HTTP 413.
	MaxBodyBytes int64
	// Jobs tunes the async job tier (queue depth, worker pool,
	// journal path, retention); see jobs.Config.
	Jobs jobs.Config
	// RatePerSec and RateBurst bound per-client job submissions: each
	// client (X-Client-ID header, falling back to the remote address)
	// may submit RatePerSec jobs per second with bursts of RateBurst.
	// Zero RatePerSec disables rate limiting.
	RatePerSec float64
	RateBurst  float64
}

// Defaults for Config's zero values.
const (
	DefaultMaxInFlight  = 4
	DefaultMaxBatch     = 64
	DefaultMaxBodyBytes = 8 << 20
)

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// Validate reports the first invalid configuration field.
func (c Config) Validate() error {
	if c.MaxInFlight < 0 || c.MaxBatch < 0 || c.MaxBodyBytes < 0 {
		return fmt.Errorf("service: negative limits (inflight %d, batch %d, body %d)",
			c.MaxInFlight, c.MaxBatch, c.MaxBodyBytes)
	}
	if c.RatePerSec < 0 || c.RateBurst < 0 {
		return fmt.Errorf("service: negative rate limit (%g/s, burst %g)", c.RatePerSec, c.RateBurst)
	}
	return c.Jobs.Validate()
}

// Service routes scheduling requests to an Engine under a concurrency
// limit and owns the async job tier. Construct with New, Close on
// shutdown; it is safe for concurrent use.
type Service struct {
	engine engineAPI
	cfg    Config
	slots  chan struct{} // counting semaphore, one slot per running sync request
	jobs   *jobs.Manager
	rate   *jobs.RateLimiter
}

// New wraps an engine with validation, routing, concurrency limits and
// the job tier (replaying the journal when one is configured).
func New(engine *thermalsched.Engine, cfg Config) (*Service, error) {
	if engine == nil {
		return nil, fmt.Errorf("service: nil engine")
	}
	return newWith(engine, cfg)
}

func newWith(engine engineAPI, cfg Config) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	mgr, err := jobs.Open(engine, cfg.Jobs)
	if err != nil {
		return nil, err
	}
	var rate *jobs.RateLimiter
	if cfg.RatePerSec > 0 {
		rate = jobs.NewRateLimiter(cfg.RatePerSec, cfg.RateBurst)
	}
	return &Service{
		engine: engine,
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.MaxInFlight),
		jobs:   mgr,
		rate:   rate,
	}, nil
}

// Close shuts the job tier down: queued and running jobs are
// cancelled and the journal is flushed and closed.
func (s *Service) Close() error { return s.jobs.Close() }

// Handler returns the HTTP handler serving the service's endpoints.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// errorBody is the JSON error envelope for non-200 responses. Field is
// set on validation failures: the request field the error names, so
// clients can map 400s back to their inputs without parsing the
// message. Error always carries thermalsched's canonical message — the
// same text Request.Validate returns and the CLI prints.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var fe *thermalsched.FieldError
	if errors.As(err, &fe) {
		body.Field = fe.Field
	}
	writeJSON(w, status, body)
}

// acquire takes an execution slot. When the service is saturated the
// request queues here until a slot frees or the client disconnects —
// admission is blocking by design, so bursty callers see latency
// rather than rejections. (The async job tier is the non-blocking
// alternative: POST /v1/jobs returns immediately and rejects with 429
// only when its queue cap is hit.)
func (s *Service) acquire(r *http.Request) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

func (s *Service) release() { <-s.slots }

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req thermalsched.Request
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.acquire(r); err != nil {
		return // client cancelled while queued; nothing to write
	}
	defer s.release()
	resp, err := s.engine.Run(r.Context(), req)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return // client cancelled mid-run
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []thermalsched.Request
	if err := s.decode(w, r, &reqs); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: empty batch"))
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: batch of %d exceeds limit %d", len(reqs), s.cfg.MaxBatch))
		return
	}
	// Validate the whole batch up front so a malformed entry rejects the
	// request before any work runs.
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: batch entry %d: %w", i, err))
			return
		}
	}
	if err := s.acquire(r); err != nil {
		return
	}
	defer s.release()
	// The engine's own worker pool fans the batch out; the service-level
	// semaphore treats the batch as one unit of admission so a single
	// large batch cannot starve /v1/run callers of all slots.
	resps, err := s.engine.RunBatch(r.Context(), reqs)
	if err != nil {
		if r.Context().Err() != nil {
			return // client cancelled; partial results are moot
		}
		// Engine-level failure with a live client: report it. Falling
		// through here used to emit HTTP 200 with a null body.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resps)
}

type healthBody struct {
	Status string `json:"status"`
	// Model-cache stats (thermal-model factorizations).
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	CacheSize   int    `json:"cacheSize"`
	// Generated-scenario cache stats.
	ScenarioCacheHits   uint64 `json:"scenarioCacheHits"`
	ScenarioCacheMisses uint64 `json:"scenarioCacheMisses"`
	ScenarioCacheSize   int    `json:"scenarioCacheSize"`
	// Parallel-search memo accounting (co-synthesis floorplanner).
	SearchEvals    uint64 `json:"searchEvals"`
	SearchMemoHits uint64 `json:"searchMemoHits"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.engine.ModelCacheStats()
	scHits, scMisses, scSize := s.engine.ScenarioCacheStats()
	evals, memoHits := s.engine.SearchMemoStats()
	writeJSON(w, http.StatusOK, healthBody{
		Status:    "ok",
		CacheHits: hits, CacheMisses: misses, CacheSize: size,
		ScenarioCacheHits: scHits, ScenarioCacheMisses: scMisses, ScenarioCacheSize: scSize,
		SearchEvals: evals, SearchMemoHits: memoHits,
	})
}

// decode reads a size-capped JSON body into v, rejecting trailing data.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("service: trailing data after JSON body")
	}
	return nil
}

// decodeStatus maps a decode failure to its HTTP status: an oversized
// body is 413 Content Too Large (the cap is a policy limit, not a
// malformed request), everything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// clientKey identifies the submitting client for per-client rate
// limits: an explicit X-Client-ID header wins, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
