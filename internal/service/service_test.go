package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thermalsched"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// End-to-end: a platform-flow scheduling request over HTTP/JSON.
func TestServeRunPlatform(t *testing.T) {
	srv := testServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/run",
		`{"flow":"platform","benchmark":"Bm1","policy":"thermal"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out thermalsched.Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if out.Flow != thermalsched.FlowPlatform || out.Graph != "Bm1" || out.Policy != "thermal" {
		t.Errorf("response header wrong: %+v", out)
	}
	if out.Metrics == nil || !out.Metrics.Feasible {
		t.Errorf("expected a feasible Bm1 schedule, got %+v", out.Metrics)
	}
	if out.Metrics.MaxTemp <= 45 {
		t.Errorf("max temp %v not above ambient", out.Metrics.MaxTemp)
	}
	if len(out.PerPE) != 4 {
		t.Errorf("platform response has %d PEs, want 4", len(out.PerPE))
	}
}

func TestServeBatch(t *testing.T) {
	srv := testServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/batch",
		`[{"flow":"platform","benchmark":"Bm1"},{"flow":"platform","benchmark":"Bm2","policy":"h3"}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []thermalsched.Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding batch: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("batch returned %d entries", len(out))
	}
	for i, r := range out {
		if r.Error != "" || r.Metrics == nil {
			t.Errorf("batch entry %d failed: %+v", i, r)
		}
	}
	if out[0].Graph != "Bm1" || out[1].Graph != "Bm2" {
		t.Errorf("batch order not preserved: %s, %s", out[0].Graph, out[1].Graph)
	}
}

// End-to-end: the closed-loop simulate flow over HTTP/JSON.
func TestServeRunSimulate(t *testing.T) {
	srv := testServer(t, Config{})
	resp, body := post(t, srv.URL+"/v1/run",
		`{"flow":"simulate","benchmark":"Bm1","policy":"thermal","simulate":{"replicas":2,"seed":3,"minFactor":0.8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out thermalsched.Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	s := out.Simulate
	if s == nil {
		t.Fatalf("simulate response missing report: %s", body)
	}
	if s.Replicas != 2 || s.Controller != "toggle" {
		t.Errorf("report header wrong: %+v", s)
	}
	if s.Makespan.Max < s.Makespan.Min || s.Makespan.Mean <= 0 {
		t.Errorf("degenerate makespan stats: %+v", s.Makespan)
	}
	if s.PeakTempC.Min <= 45 {
		t.Errorf("peak temp %v not above ambient", s.PeakTempC.Min)
	}
}

// failingEngine stands in for an Engine whose RunBatch fails while the
// client is still connected.
type failingEngine struct{ err error }

func (f *failingEngine) Run(context.Context, thermalsched.Request) (*thermalsched.Response, error) {
	return nil, f.err
}

func (f *failingEngine) RunBatch(context.Context, []thermalsched.Request) ([]*thermalsched.Response, error) {
	return nil, f.err
}

func (f *failingEngine) ModelCacheStats() (uint64, uint64, int)    { return 0, 0, 0 }
func (f *failingEngine) ScenarioCacheStats() (uint64, uint64, int) { return 0, 0, 0 }
func (f *failingEngine) SearchMemoStats() (uint64, uint64)         { return 0, 0 }

// Regression: an engine-level batch failure with a live client must
// surface as a 500 JSON error envelope, never as HTTP 200 with a null
// body.
func TestServeBatchEngineFailure(t *testing.T) {
	svc, err := newWith(&failingEngine{err: errors.New("engine exploded")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})

	resp, body := post(t, srv.URL+"/v1/batch", `[{"flow":"platform","benchmark":"Bm1"}]`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, body)
	}
	if strings.TrimSpace(string(body)) == "null" {
		t.Fatal("batch failure produced a null body")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("missing error envelope: %s", body)
	}
	if !strings.Contains(e.Error, "engine exploded") {
		t.Errorf("envelope lost the cause: %q", e.Error)
	}
}

func TestServeValidationErrors(t *testing.T) {
	srv := testServer(t, Config{MaxBatch: 2})
	cases := []struct {
		path, body string
	}{
		{"/v1/run", `{`},                                                   // malformed JSON
		{"/v1/run", `{"flow":"warp"}`},                                     // unknown flow
		{"/v1/run", `{"flow":"platform"}`},                                 // no graph source
		{"/v1/run", `{"flow":"platform","benchmark":"Bm9"}`},               // unknown benchmark
		{"/v1/run", `{"flow":"platform","benchmark":"Bm1","bogusKnob":1}`}, // unknown field
		{"/v1/batch", `[]`},                                                // empty batch
		{"/v1/batch", `[{"flow":"platform","benchmark":"Bm1"},{"flow":"x","benchmark":"Bm1"}]`},
		{"/v1/batch", `[{"flow":"platform","benchmark":"Bm1"},{"flow":"platform","benchmark":"Bm2"},{"flow":"platform","benchmark":"Bm3"}]`}, // over MaxBatch
	}
	for _, tc := range cases {
		resp, body := post(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %q: status %d, want 400 (%s)", tc.path, tc.body, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s %q: missing error envelope: %s", tc.path, tc.body, body)
		}
	}
}

func TestServeHealth(t *testing.T) {
	srv := testServer(t, Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("health status %v", h["status"])
	}
	// All three engine stat families must be reported: the model
	// cache, the scenario cache, and the search memo.
	for _, key := range []string{
		"cacheHits", "cacheMisses", "cacheSize",
		"scenarioCacheHits", "scenarioCacheMisses", "scenarioCacheSize",
		"searchEvals", "searchMemoHits",
	} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q: %v", key, h)
		}
	}
}

// Regression: a body over MaxBodyBytes must surface as 413 Content Too
// Large, not a generic 400 — the cap is a policy limit, and clients
// need to distinguish "shrink your request" from "fix your request".
func TestServeOversizedBody413(t *testing.T) {
	srv := testServer(t, Config{MaxBodyBytes: 64})
	big := `{"flow":"platform","benchmark":"Bm1","policy":"` + strings.Repeat("x", 256) + `"}`
	for _, path := range []string{"/v1/run", "/v1/batch", "/v1/jobs"} {
		resp, body := post(t, srv.URL+path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: oversized body got status %d, want 413 (%s)", path, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error envelope: %s", path, body)
		}
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	srv := testServer(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status %d, want 405", resp.StatusCode)
	}
}
