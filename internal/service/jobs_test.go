package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"thermalsched"
	"thermalsched/internal/jobs"
)

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j jobs.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Job{}
}

func submitJob(t *testing.T, base, body string) (*http.Response, jobs.Job) {
	t.Helper()
	resp, raw := post(t, base+"/v1/jobs", body)
	var j jobs.Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("decoding job: %v\n%s", err, raw)
		}
	}
	return resp, j
}

// The full submit-then-poll lifecycle over HTTP, ending in a response
// identical in content to the synchronous path.
func TestJobSubmitPollLifecycle(t *testing.T) {
	srv := testServer(t, Config{})
	resp, j := submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm1","policy":"thermal"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if j.ID == "" || j.Fingerprint == "" {
		t.Fatalf("job missing identity: %+v", j)
	}
	done := pollJob(t, srv.URL, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Response == nil || done.Response.Graph != "Bm1" || !done.Response.Metrics.Feasible {
		t.Fatalf("job response wrong: %+v", done.Response)
	}
}

func TestJobUnknownIs404(t *testing.T) {
	srv := testServer(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job status %d, want 404", resp.StatusCode)
	}
}

// blockingEngine parks every evaluation until released, so tests can
// hold a worker busy and fill the queue deterministically.
type blockingEngine struct {
	started chan string
	release chan struct{}
}

func newBlockingEngine() *blockingEngine {
	return &blockingEngine{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingEngine) Run(ctx context.Context, req thermalsched.Request) (*thermalsched.Response, error) {
	b.started <- req.Benchmark
	select {
	case <-b.release:
		return &thermalsched.Response{Flow: req.Flow, Graph: req.Benchmark}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingEngine) RunBatch(context.Context, []thermalsched.Request) ([]*thermalsched.Response, error) {
	return nil, errors.New("unused")
}

func (b *blockingEngine) ModelCacheStats() (uint64, uint64, int)    { return 0, 0, 0 }
func (b *blockingEngine) ScenarioCacheStats() (uint64, uint64, int) { return 0, 0, 0 }
func (b *blockingEngine) SearchMemoStats() (uint64, uint64)         { return 0, 0 }

func blockingServer(t *testing.T, cfg Config) (*httptest.Server, *blockingEngine) {
	t.Helper()
	eng := newBlockingEngine()
	svc, err := newWith(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		close(eng.release)
		srv.Close()
		svc.Close()
	})
	return srv, eng
}

func TestJobCancelEndpoint(t *testing.T) {
	srv, eng := blockingServer(t, Config{Jobs: jobs.Config{Workers: 1}})
	// Bm1 occupies the single worker; Bm2 queues and can be cancelled
	// deterministically.
	_, first := submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm1"}`)
	<-eng.started
	_, queued := submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm2"}`)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.State != jobs.StateCancelled {
		t.Errorf("cancelled job in state %s", j.State)
	}
	// The occupying job still completes once released.
	eng.release <- struct{}{}
	if done := pollJob(t, srv.URL, first.ID); done.State != jobs.StateDone {
		t.Errorf("first job ended %s", done.State)
	}
}

// The SSE stream delivers lifecycle frames and terminates at the
// terminal state.
func TestJobEventsSSE(t *testing.T) {
	srv := testServer(t, Config{})
	_, j := submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm2"}`)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content type %q", ct)
	}
	var states []jobs.State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		states = append(states, ev.State)
	}
	if len(states) == 0 || states[len(states)-1] != jobs.StateDone {
		t.Fatalf("SSE lifecycle %v does not end in done", states)
	}
}

// Queue-depth backpressure surfaces as HTTP 429 with a Retry-After.
func TestJobQueueFull429(t *testing.T) {
	srv, eng := blockingServer(t, Config{Jobs: jobs.Config{Workers: 1, QueueDepth: 1}})
	// Bm1 occupies the worker; Bm2 fills the 1-deep queue; Bm3 must
	// bounce.
	submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm1"}`)
	<-eng.started
	if resp, body := post(t, srv.URL+"/v1/jobs", `{"flow":"platform","benchmark":"Bm2"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill status %d: %s", resp.StatusCode, body)
	}
	resp, body := post(t, srv.URL+"/v1/jobs", `{"flow":"platform","benchmark":"Bm3"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Errorf("429 envelope: %s", body)
	}
}

// Per-client rate limiting: the second immediate submission from one
// client is rejected 429; a distinct client is admitted.
func TestJobRateLimit429(t *testing.T) {
	srv := testServer(t, Config{RatePerSec: 0.001, RateBurst: 1})
	do := func(client string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
			strings.NewReader(`{"flow":"platform","benchmark":"Bm1"}`))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := do("alice"); got != http.StatusAccepted {
		t.Fatalf("first submission status %d", got)
	}
	if got := do("alice"); got != http.StatusTooManyRequests {
		t.Errorf("second immediate submission status %d, want 429", got)
	}
	if got := do("bob"); got != http.StatusAccepted {
		t.Errorf("distinct client throttled: status %d", got)
	}
}

// promLine matches one non-comment Prometheus text-format sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?[0-9.eE+-]+)$`)

// /metrics must parse as Prometheus text format and carry the queue,
// coalescing and all three engine-cache stat families.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t, Config{})
	_, j := submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm1"}`)
	pollJob(t, srv.URL, j.ID)
	submitJob(t, srv.URL, `{"flow":"platform","benchmark":"Bm1"}`) // stored-result coalesce

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	samples := map[string]float64{}
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		if !promLine.MatchString(line) {
			t.Errorf("line not Prometheus text format: %q", line)
			continue
		}
		var name string
		var v float64
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			name = line[:i]
			fmt.Sscanf(line[i+1:], "%g", &v)
		}
		samples[name] = v
	}
	if lines < 15 {
		t.Fatalf("only %d samples exported", lines)
	}
	for _, want := range []string{
		"thermschedd_jobs_submitted_total",
		"thermschedd_engine_evaluations_total",
		`thermschedd_coalesce_hits_total{kind="stored"}`,
		"thermschedd_queue_depth",
		"thermschedd_workers_busy",
		`thermschedd_jobs{state="done"}`,
		"thermschedd_model_cache_hits_total",
		"thermschedd_scenario_cache_misses_total",
		"thermschedd_search_evals_total",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("metrics missing %s", want)
		}
	}
	if samples["thermschedd_jobs_submitted_total"] != 2 {
		t.Errorf("submitted_total %g, want 2", samples["thermschedd_jobs_submitted_total"])
	}
	if samples["thermschedd_engine_evaluations_total"] != 1 {
		t.Errorf("evaluations_total %g, want 1 (duplicate must coalesce)", samples["thermschedd_engine_evaluations_total"])
	}
	if samples[`thermschedd_coalesce_hits_total{kind="stored"}`] != 1 {
		t.Errorf("stored coalesce hits %g, want 1", samples[`thermschedd_coalesce_hits_total{kind="stored"}`])
	}
}

// A journal-backed service serves a completed job's result after a
// restart without re-evaluating, and reports the replay in /metrics.
func TestJobJournalAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	engine, err := thermalsched.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := New(engine, Config{Jobs: jobs.Config{JournalPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(svc1.Handler())
	_, j := submitJob(t, srv1.URL, `{"flow":"platform","benchmark":"Bm3"}`)
	done := pollJob(t, srv1.URL, j.ID)
	srv1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(engine, Config{Jobs: jobs.Config{JournalPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(func() {
		srv2.Close()
		svc2.Close()
	})
	resp, j2 := submitJob(t, srv2.URL, `{"flow":"platform","benchmark":"Bm3"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d", resp.StatusCode)
	}
	if j2.State != jobs.StateDone || !j2.FromJournal {
		t.Fatalf("journaled result not served without evaluation: %+v", j2)
	}
	a, _ := json.Marshal(done.Response)
	b, _ := json.Marshal(j2.Response)
	if string(a) != string(b) {
		t.Errorf("journal round trip changed the response:\n  before %s\n  after  %s", a, b)
	}
	if s := svc2.Jobs().Stats(); s.Counters.Replayed != 1 || s.Counters.Evaluations != 0 {
		t.Errorf("replay counters wrong: %+v", s.Counters)
	}
}
