package service

// The async job tier's HTTP surface: submit-then-poll (or stream) on
// top of internal/jobs, plus the Prometheus-text /metrics endpoint.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"thermalsched"
	"thermalsched/internal/jobs"
)

// Jobs returns the underlying job manager, for tests and embedding
// callers that want programmatic access beside the HTTP surface.
func (s *Service) Jobs() *jobs.Manager { return s.jobs }

// handleJobSubmit accepts one request for asynchronous evaluation:
// 202 with the job snapshot on success (the snapshot is already
// terminal for coalesced stored-result hits), 429 under backpressure
// or rate limiting.
func (s *Service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req thermalsched.Request
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.rate.Allow(clientKey(r)) {
		s.jobs.Metrics().RejectedRate.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("service: client %q over the submission rate limit", clientKey(r)))
		return
	}
	job, err := s.jobs.Submit(req)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrQueueFull) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams the job's lifecycle as Server-Sent Events:
// one `event: state` frame per transition (the current state first),
// ending after the terminal frame. Poll GET /v1/jobs/{id} for the
// full result; events deliberately carry only the envelope so a slow
// consumer cannot buffer megabytes of campaign output.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.jobs.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatus(err), err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal state delivered
			}
			blob, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", blob)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func jobStatus(err error) int {
	if errors.Is(err, jobs.ErrUnknownJob) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// handleMetrics exports the job tier, dispatcher and engine-cache
// counters in the Prometheus text exposition format.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.jobs.Stats()
	mHits, mMisses, mSize := s.engine.ModelCacheStats()
	scHits, scMisses, scSize := s.engine.ScenarioCacheStats()
	sEvals, sMemo := s.engine.SearchMemoStats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &jobs.PromWriter{W: w}

	p.Family("thermschedd_jobs_submitted_total", "counter", "Job submissions accepted by POST /v1/jobs.")
	p.Sample("thermschedd_jobs_submitted_total", float64(st.Counters.Submitted))
	p.Family("thermschedd_engine_evaluations_total", "counter", "Engine evaluations started by the job tier; submitted minus evaluations is the work coalescing saved.")
	p.Sample("thermschedd_engine_evaluations_total", float64(st.Counters.Evaluations))
	p.Family("thermschedd_coalesce_hits_total", "counter", "Submissions coalesced onto an identical evaluation instead of running one.")
	p.LabelledSample("thermschedd_coalesce_hits_total", float64(st.Counters.CoalesceInflight), "kind", "inflight")
	p.LabelledSample("thermschedd_coalesce_hits_total", float64(st.Counters.CoalesceStored), "kind", "stored")
	p.Family("thermschedd_jobs_finished_total", "counter", "Jobs reaching a terminal state, by outcome.")
	p.LabelledSample("thermschedd_jobs_finished_total", float64(st.Counters.Completed), "outcome", "done")
	p.LabelledSample("thermschedd_jobs_finished_total", float64(st.Counters.Failed), "outcome", "failed")
	p.LabelledSample("thermschedd_jobs_finished_total", float64(st.Counters.Cancelled), "outcome", "cancelled")
	p.Family("thermschedd_jobs_rejected_total", "counter", "Job submissions rejected, by reason.")
	p.LabelledSample("thermschedd_jobs_rejected_total", float64(st.Counters.RejectedQueue), "reason", "queue_full")
	p.LabelledSample("thermschedd_jobs_rejected_total", float64(st.Counters.RejectedRate), "reason", "rate_limited")
	p.Family("thermschedd_journal_replayed_total", "counter", "Journal records restored at startup.")
	p.Sample("thermschedd_journal_replayed_total", float64(st.Counters.Replayed))
	p.Family("thermschedd_journal_errors_total", "counter", "Journal append failures.")
	p.Sample("thermschedd_journal_errors_total", float64(st.Counters.JournalErrors))

	p.Family("thermschedd_queue_depth", "gauge", "Evaluations queued but not yet running.")
	p.Sample("thermschedd_queue_depth", float64(st.QueueDepth))
	p.Family("thermschedd_queue_capacity", "gauge", "Queue-depth cap; submissions beyond it get HTTP 429.")
	p.Sample("thermschedd_queue_capacity", float64(st.QueueCap))
	p.Family("thermschedd_workers_busy", "gauge", "Job-tier workers currently evaluating (pool saturation numerator).")
	p.Sample("thermschedd_workers_busy", float64(st.Busy))
	p.Family("thermschedd_workers", "gauge", "Job-tier worker pool size.")
	p.Sample("thermschedd_workers", float64(st.Workers))
	p.Family("thermschedd_jobs", "gauge", "Retained jobs by state.")
	for _, state := range jobs.States() {
		p.LabelledSample("thermschedd_jobs", float64(st.ByState[state]), "state", string(state))
	}

	p.Family("thermschedd_model_cache_hits_total", "counter", "Thermal-model factorization cache hits.")
	p.Sample("thermschedd_model_cache_hits_total", float64(mHits))
	p.Family("thermschedd_model_cache_misses_total", "counter", "Thermal-model factorization cache misses.")
	p.Sample("thermschedd_model_cache_misses_total", float64(mMisses))
	p.Family("thermschedd_model_cache_entries", "gauge", "Thermal-model factorization cache size.")
	p.Sample("thermschedd_model_cache_entries", float64(mSize))
	p.Family("thermschedd_scenario_cache_hits_total", "counter", "Generated-scenario cache hits.")
	p.Sample("thermschedd_scenario_cache_hits_total", float64(scHits))
	p.Family("thermschedd_scenario_cache_misses_total", "counter", "Generated-scenario cache misses.")
	p.Sample("thermschedd_scenario_cache_misses_total", float64(scMisses))
	p.Family("thermschedd_scenario_cache_entries", "gauge", "Generated-scenario cache size.")
	p.Sample("thermschedd_scenario_cache_entries", float64(scSize))
	p.Family("thermschedd_search_evals_total", "counter", "Floorplan packings actually evaluated by the parallel search backbone.")
	p.Sample("thermschedd_search_evals_total", float64(sEvals))
	p.Family("thermschedd_search_memo_hits_total", "counter", "Search candidates answered from the expression-fingerprint memo.")
	p.Sample("thermschedd_search_memo_hits_total", float64(sMemo))
}
