package sched

import (
	"math"
	"math/rand"
	"testing"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// buildPlatform returns the 4-PE platform with both the oracle and the
// underlying model (the golden tests need the model to drive the slow
// reference path).
func buildPlatform(t testing.TB, lib *techlib.Library) (Architecture, *hotspot.Model, *ModelOracle) {
	t.Helper()
	arch, err := PlatformFromTypes(lib, techlib.PlatformPETypeNames(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	area := lib.PEType(arch.PEs[0].Type).Area
	fp, err := floorplan.Row("pe", 4, area)
	if err != nil {
		t.Fatal(err)
	}
	model, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewModelOracle(model, arch)
	if err != nil {
		t.Fatal(err)
	}
	return arch, model, oracle
}

// slowOracle is the pre-influence-matrix reference: a fresh triangular
// solve per inquiry, no incremental extension. The fast ModelOracle is
// verified against it — same semantics, different solver path.
type slowOracle struct {
	model     *hotspot.Model
	peToBlock []int
}

func newSlowOracle(t testing.TB, model *hotspot.Model, arch Architecture) *slowOracle {
	t.Helper()
	names := model.BlockNames()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	o := &slowOracle{model: model, peToBlock: make([]int, len(arch.PEs))}
	for i, pe := range arch.PEs {
		bi, ok := index[pe.Name]
		if !ok {
			t.Fatalf("PE %q has no block", pe.Name)
		}
		o.peToBlock[i] = bi
	}
	return o
}

func (o *slowOracle) AvgTemp(pePower []float64) (float64, error) {
	block := make([]float64, o.model.NumBlocks())
	for i, w := range pePower {
		block[o.peToBlock[i]] += w
	}
	temps, err := o.model.SteadyStateDirect(block)
	if err != nil {
		return 0, err
	}
	vals := temps.Values()
	var sum float64
	n := 0
	for i, w := range pePower {
		if w > 0 {
			sum += vals[o.peToBlock[i]]
			n++
		}
	}
	if n > 0 {
		return sum / float64(n), nil
	}
	return temps.Avg(), nil
}

// TestGoldenFastOracleMatchesSlow schedules all four paper benchmarks
// thermally with the influence-matrix fast path (incremental deltas)
// and with the reference per-inquiry solver: the schedules must be
// identical and the reported temperatures equal to 1e-9.
func TestGoldenFastOracleMatchesSlow(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, model, fast := buildPlatform(t, lib)
	slow := newSlowOracle(t, model, arch)
	for _, bench := range taskgraph.BenchmarkNames() {
		g, err := taskgraph.Benchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		cfgFast := DefaultConfig(ThermalAware)
		cfgFast.Oracle = fast
		sFast, err := AllocateAndSchedule(g, arch, lib, cfgFast)
		if err != nil {
			t.Fatalf("%s fast: %v", bench, err)
		}
		cfgSlow := DefaultConfig(ThermalAware)
		cfgSlow.Oracle = slow
		sSlow, err := AllocateAndSchedule(g, arch, lib, cfgSlow)
		if err != nil {
			t.Fatalf("%s slow: %v", bench, err)
		}
		for id := range sFast.Assignments {
			af, as := sFast.Assignments[id], sSlow.Assignments[id]
			if af != as {
				t.Errorf("%s task %d: fast %+v, slow %+v", bench, id, af, as)
			}
		}
		if sFast.Makespan != sSlow.Makespan {
			t.Errorf("%s makespan: fast %v, slow %v", bench, sFast.Makespan, sSlow.Makespan)
		}
		// Final temperatures from the fast path vs the direct solver.
		pow, err := sFast.PEAveragePower(g.Deadline)
		if err != nil {
			t.Fatal(err)
		}
		fastTemps, err := fast.Temps(pow)
		if err != nil {
			t.Fatal(err)
		}
		block := make([]float64, model.NumBlocks())
		for i, w := range pow {
			block[i] += w
		}
		directTemps, err := model.SteadyStateDirect(block)
		if err != nil {
			t.Fatal(err)
		}
		fv, dv := fastTemps.Values(), directTemps.Values()
		for i := range fv {
			if math.Abs(fv[i]-dv[i]) > 1e-9 {
				t.Errorf("%s block %d: fast %v, direct %v", bench, i, fv[i], dv[i])
			}
		}
	}
}

// TestIncrementalMatchesFullInquiry checks AvgTempDelta against the
// equivalent full AvgTemp over random bases and deltas, in both
// averaging modes.
func TestIncrementalMatchesFullInquiry(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	_, _, oracle := buildPlatform(t, lib)
	rng := rand.New(rand.NewSource(42))
	for _, allBlocks := range []bool{false, true} {
		oracle.AllBlocks = allBlocks
		for trial := 0; trial < 200; trial++ {
			base := make([]float64, 4)
			for i := range base {
				if rng.Float64() < 0.3 {
					continue // leave some PEs idle: exercises the in-use average
				}
				base[i] = rng.Float64() * 10
			}
			if err := oracle.SetBase(base); err != nil {
				t.Fatal(err)
			}
			pe := rng.Intn(4)
			delta := rng.Float64() * 8
			got, err := oracle.AvgTempDelta(pe, delta)
			if err != nil {
				t.Fatal(err)
			}
			full := append([]float64(nil), base...)
			full[pe] += delta
			want, err := oracle.AvgTemp(full)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("allBlocks=%v base=%v pe=%d delta=%v: delta %v, full %v",
					allBlocks, base, pe, delta, got, want)
			}
		}
	}
}

func TestIncrementalOracleErrors(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	_, _, oracle := buildPlatform(t, lib)
	if _, err := oracle.AvgTempDelta(0, 1); err == nil {
		t.Error("AvgTempDelta before SetBase accepted")
	}
	if err := oracle.SetBase([]float64{1}); err == nil {
		t.Error("short base accepted")
	}
	if err := oracle.SetBase([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.AvgTempDelta(-1, 1); err == nil {
		t.Error("negative PE accepted")
	}
	if _, err := oracle.AvgTempDelta(4, 1); err == nil {
		t.Error("out-of-range PE accepted")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := oracle.AvgTempDelta(0, bad); err == nil {
			t.Errorf("invalid delta %v accepted", bad)
		}
	}
}

// TestThermalInquiryZeroAllocs pins the tentpole property: steady-state
// inquiries — full and incremental — allocate nothing.
func TestThermalInquiryZeroAllocs(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	_, _, oracle := buildPlatform(t, lib)
	p := []float64{5, 0, 3, 1}
	if _, err := oracle.AvgTemp(p); err != nil { // warm up
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := oracle.AvgTemp(p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AvgTemp allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := oracle.SetBase(p); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.AvgTempDelta(2, 4.5); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SetBase+AvgTempDelta allocates %v per run", n)
	}
}

// Two PEs sharing one thermal block must have their powers accumulated,
// not overwritten. The public constructor rejects such architectures,
// so the scenario is built directly on the oracle's internals.
func TestOracleAccumulatesSharedBlockPower(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	_, model, single := buildPlatform(t, lib)
	shared := &ModelOracle{
		model:      model,
		peToBlock:  []int{0, 0}, // both PEs on block 0
		peRow:      make([][]float64, 2),
		numBlocks:  model.NumBlocks(),
		blockPower: make([]float64, model.NumBlocks()),
		temps:      make([]float64, model.NumBlocks()),
		basePE:     make([]float64, 2),
		baseTemps:  make([]float64, model.NumBlocks()),
	}
	for i := range shared.peRow {
		row, err := model.InfluenceRow(0)
		if err != nil {
			t.Fatal(err)
		}
		shared.peRow[i] = row
	}
	got, err := shared.AvgTemp([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.AvgTemp([]float64{5, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("shared-block AvgTemp = %v, want %v (5 W on block 0)", got, want)
	}
	// Temps must accumulate too.
	temps, err := shared.Temps([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.Temps([]float64{5, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	tv, rv := temps.Values(), ref.Values()
	for i := range tv {
		if math.Abs(tv[i]-rv[i]) > 1e-9 {
			t.Errorf("shared-block Temps[%d] = %v, want %v", i, tv[i], rv[i])
		}
	}
}

func TestNewModelOracleRejectsSharedBlocks(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, model, _ := buildPlatform(t, lib)
	dup := arch
	dup.PEs = append([]PE(nil), arch.PEs...)
	dup.PEs[1].Name = dup.PEs[0].Name // two PEs → one block
	if _, err := NewModelOracle(model, dup); err == nil {
		t.Error("architecture with two PEs on one block accepted")
	}
}

func TestValidateRejectsDuplicatePENames(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, _, _ := buildPlatform(t, lib)
	dup := arch
	dup.PEs = append([]PE(nil), arch.PEs...)
	dup.PEs[2].Name = dup.PEs[0].Name
	if err := dup.Validate(lib); err == nil {
		t.Error("duplicate PE names accepted by Validate")
	}
}

// TestSparseOracleMatchesDenseAndAllocsNothing runs the incremental
// oracle on a sparse-backend model: the answers must track the dense
// oracle to rounding, and — the large-platform contract — the full and
// incremental inquiry paths must allocate nothing once the touched
// influence rows are warm.
func TestSparseOracleMatchesDenseAndAllocsNothing(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, _, denseOracle := buildPlatform(t, lib)
	area := lib.PEType(arch.PEs[0].Type).Area
	fp, err := floorplan.Row("pe", 4, area)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hotspot.DefaultConfig()
	cfg.Solver = hotspot.SolverSparse
	model, err := hotspot.NewModel(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewModelOracle(model, arch)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{5, 0, 3, 1}
	got, err := oracle.AvgTemp(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := denseOracle.AvgTemp(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("sparse AvgTemp = %v, dense %v", got, want)
	}
	if err := oracle.SetBase(p); err != nil {
		t.Fatal(err)
	}
	if err := denseOracle.SetBase(p); err != nil {
		t.Fatal(err)
	}
	gd, err := oracle.AvgTempDelta(2, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := denseOracle.AvgTempDelta(2, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gd-wd) > 1e-9 {
		t.Fatalf("sparse AvgTempDelta = %v, dense %v", gd, wd)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := oracle.AvgTemp(p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("sparse AvgTemp allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := oracle.SetBase(p); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.AvgTempDelta(2, 4.5); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("sparse SetBase+AvgTempDelta allocates %v per run", n)
	}
}
