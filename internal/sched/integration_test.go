package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"thermalsched/internal/floorplan"
	"thermalsched/internal/hotspot"
	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// buildPlatformModel creates the 4-PE platform with its thermal model,
// mirroring the paper's platform-based flow (Fig. 1b).
func buildPlatformModel(t testing.TB, lib *techlib.Library) (Architecture, *ModelOracle) {
	t.Helper()
	arch, err := PlatformFromTypes(lib, techlib.PlatformPETypeNames(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	area := lib.PEType(arch.PEs[0].Type).Area
	fp, err := floorplan.Grid("pe", 4, area)
	if err != nil {
		t.Fatal(err)
	}
	model, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewModelOracle(model, arch)
	if err != nil {
		t.Fatal(err)
	}
	return arch, oracle
}

func TestModelOracleMapping(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, oracle := buildPlatformModel(t, lib)

	// Zero power → ambient average.
	avg, err := oracle.AvgTemp(make([]float64, len(arch.PEs)))
	if err != nil {
		t.Fatal(err)
	}
	if avg != hotspot.DefaultConfig().AmbientC {
		t.Errorf("zero-power avg = %v, want ambient", avg)
	}

	// More power → higher average.
	hot, err := oracle.AvgTemp([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if hot <= avg {
		t.Errorf("power did not raise average temp: %v", hot)
	}

	// Wrong vector length rejected.
	if _, err := oracle.AvgTemp([]float64{1}); err != nil {
		// expected
	} else {
		t.Error("short power vector accepted")
	}
	if _, err := oracle.Temps([]float64{1}); err == nil {
		t.Error("short power vector accepted by Temps")
	}
}

func TestModelOracleRejectsUnknownPE(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.Grid("other", 4, 16e-6)
	if err != nil {
		t.Fatal(err)
	}
	model, err := hotspot.NewModel(fp, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	arch, err := Platform(lib, techlib.PlatformPEType, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelOracle(model, arch); err == nil {
		t.Error("name mismatch between model and architecture accepted")
	}
}

// The headline behaviour of the paper: the thermal-aware ASP yields a
// lower peak and average steady-state temperature than the baseline on
// the platform architecture, because it balances power across PEs.
func TestThermalAwareBeatsBaselineOnPlatform(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, oracle := buildPlatformModel(t, lib)
	g, err := taskgraph.Benchmark("Bm1")
	if err != nil {
		t.Fatal(err)
	}

	base, err := AllocateAndSchedule(g, arch, lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ThermalAware)
	cfg.Oracle = oracle
	therm, err := AllocateAndSchedule(g, arch, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Schedule{base, therm} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}

	basePow, err := base.PEAveragePower(g.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	thermPow, err := therm.PEAveragePower(g.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	baseTemps, err := oracle.Temps(basePow)
	if err != nil {
		t.Fatal(err)
	}
	thermTemps, err := oracle.Temps(thermPow)
	if err != nil {
		t.Fatal(err)
	}
	if thermTemps.Max() > baseTemps.Max() {
		t.Errorf("thermal-aware peak %v should not exceed baseline peak %v",
			thermTemps.Max(), baseTemps.Max())
	}
	if thermTemps.Avg() > baseTemps.Avg()+1e-9 {
		t.Errorf("thermal-aware avg %v should not exceed baseline avg %v",
			thermTemps.Avg(), baseTemps.Avg())
	}
}

// All four paper benchmarks must schedule feasibly on the platform under
// every policy — the paper's tables compare feasible schedules only.
func TestAllBenchmarksFeasibleOnPlatform(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, oracle := buildPlatformModel(t, lib)
	graphs, err := taskgraph.Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		for _, p := range Policies() {
			cfg := DefaultConfig(p)
			if p == ThermalAware {
				cfg.Oracle = oracle
			}
			s, err := AllocateAndSchedule(g, arch, lib, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, p, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid schedule: %v", g.Name, p, err)
			}
			if !s.MeetsDeadline() {
				t.Errorf("%s/%s: makespan %.0f misses deadline %.0f",
					g.Name, p, s.Makespan, g.Deadline)
			}
		}
	}
}

// Property: schedules of random graphs under random policies are always
// structurally valid.
func TestRandomGraphsScheduleValidProperty(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, oracle := buildPlatformModel(t, lib)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		minE := n - 1
		maxE := n * (n - 1) / 2
		e := minE + rng.Intn(maxE-minE+1)
		g, err := taskgraph.Generate(taskgraph.GenParams{
			Name: "p", Tasks: n, Edges: e, Deadline: 1e9,
			Types: taskgraph.NumTaskTypes, Sources: 1, MaxData: 20, Seed: seed,
		})
		if err != nil {
			return false
		}
		p := Policies()[rng.Intn(len(Policies()))]
		cfg := DefaultConfig(p)
		if p == ThermalAware {
			cfg.Oracle = oracle
		}
		s, err := AllocateAndSchedule(g, arch, lib, cfg)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every schedule's makespan respects the two classic lower
// bounds — the critical path (using each task's fastest WCET) and the
// total fastest work divided by the PE count.
func TestMakespanLowerBoundsProperty(t *testing.T) {
	lib, err := techlib.StandardLibrary()
	if err != nil {
		t.Fatal(err)
	}
	arch, oracle := buildPlatformModel(t, lib)
	fastest := func(taskType int) float64 {
		best := math.Inf(1)
		for _, pe := range arch.PEs {
			if e, ok := lib.Lookup(pe.Type, taskType); ok && e.WCET < best {
				best = e.WCET
			}
		}
		return best
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g, err := taskgraph.Generate(taskgraph.GenParams{
			Name: "lb", Tasks: n, Edges: n - 1 + rng.Intn(n),
			Deadline: 1e9, Types: taskgraph.NumTaskTypes,
			Sources: 1, MaxData: 10, Seed: seed,
		})
		if err != nil {
			return false
		}
		p := Policies()[rng.Intn(len(Policies()))]
		cfg := DefaultConfig(p)
		if p == ThermalAware {
			cfg.Oracle = oracle
		}
		s, err := AllocateAndSchedule(g, arch, lib, cfg)
		if err != nil {
			return false
		}
		cp, err := g.CriticalPathLength(func(tk taskgraph.Task) float64 {
			return fastest(tk.Type)
		}, nil)
		if err != nil {
			return false
		}
		var work float64
		for _, tk := range g.Tasks() {
			work += fastest(tk.Type)
		}
		lower := math.Max(cp, work/float64(len(arch.PEs)))
		return s.Makespan >= lower-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
