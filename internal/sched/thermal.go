package sched

import (
	"fmt"

	"thermalsched/internal/hotspot"
)

// ModelOracle adapts a hotspot.Model to the ThermalOracle interface the
// thermal-aware ASP consumes. The architecture's PE names must each have
// a same-named block in the model's floorplan (extra blocks are allowed
// and dissipate nothing).
type ModelOracle struct {
	// AllBlocks averages inquiry temperatures over every block instead
	// of only the PEs currently in use (power > 0). The default (false)
	// matches the paper's "average temperature of all using PEs"; it is
	// also what keeps the inquiry sensitive to how power is distributed,
	// since the all-blocks mean of a compact RC network is almost a pure
	// function of total power.
	AllBlocks bool

	model *hotspot.Model
	// blockPower is the scratch power vector in model block order;
	// peToBlock maps architecture PE index to model block index.
	peToBlock []int
	numBlocks int
}

// NewModelOracle wires an architecture to a thermal model by block name.
func NewModelOracle(model *hotspot.Model, arch Architecture) (*ModelOracle, error) {
	names := model.BlockNames()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	o := &ModelOracle{
		model:     model,
		peToBlock: make([]int, len(arch.PEs)),
		numBlocks: model.NumBlocks(),
	}
	for i, pe := range arch.PEs {
		bi, ok := index[pe.Name]
		if !ok {
			return nil, fmt.Errorf("sched: PE %q has no block in the thermal model", pe.Name)
		}
		o.peToBlock[i] = bi
	}
	return o, nil
}

// AvgTemp implements ThermalOracle: steady-state block temperatures under
// the given per-PE power, averaged over the PEs in use (power > 0). The
// paper observes "the average temperature of all using PEs"; averaging
// over in-use PEs is also what makes the inquiry sensitive to power
// *distribution* — on a perfectly symmetric platform the all-blocks mean
// depends only on total power and could not steer placement. When no PE
// is in use the average falls back to all blocks (ambient).
func (o *ModelOracle) AvgTemp(pePower []float64) (float64, error) {
	if len(pePower) != len(o.peToBlock) {
		return 0, fmt.Errorf("sched: oracle got %d powers for %d PEs", len(pePower), len(o.peToBlock))
	}
	block := make([]float64, o.numBlocks)
	for i, w := range pePower {
		block[o.peToBlock[i]] = w
	}
	temps, err := o.model.SteadyStateVec(block)
	if err != nil {
		return 0, err
	}
	if !o.AllBlocks {
		vals := temps.Values()
		var sum float64
		n := 0
		for i, w := range pePower {
			if w > 0 {
				sum += vals[o.peToBlock[i]]
				n++
			}
		}
		if n > 0 {
			return sum / float64(n), nil
		}
	}
	return temps.Avg(), nil
}

// Temps returns the full steady-state temperatures for a per-PE power
// vector — used when reporting the final schedule's thermal profile.
func (o *ModelOracle) Temps(pePower []float64) (hotspot.Temps, error) {
	if len(pePower) != len(o.peToBlock) {
		return hotspot.Temps{}, fmt.Errorf("sched: oracle got %d powers for %d PEs", len(pePower), len(o.peToBlock))
	}
	block := make([]float64, o.numBlocks)
	for i, w := range pePower {
		block[o.peToBlock[i]] = w
	}
	return o.model.SteadyStateVec(block)
}
