package sched

import (
	"fmt"
	"math"

	"thermalsched/internal/hotspot"
	"thermalsched/internal/linalg"
)

// ModelOracle adapts a hotspot.Model to the ThermalOracle interface the
// thermal-aware ASP consumes. The architecture's PE names must each have
// a same-named block in the model's floorplan (extra blocks are allowed
// and dissipate nothing). It also implements IncrementalOracle on top of
// the model's influence matrix, so a scheduling step's PE candidates are
// answered with O(PEs) delta updates instead of fresh solves.
//
// A ModelOracle owns scratch buffers and is therefore NOT safe for
// concurrent use; the flows construct one oracle per run (the underlying
// model may be shared freely).
type ModelOracle struct {
	// AllBlocks averages inquiry temperatures over every block instead
	// of only the PEs currently in use (power > 0). The default (false)
	// matches the paper's "average temperature of all using PEs"; it is
	// also what keeps the inquiry sensitive to how power is distributed,
	// since the all-blocks mean of a compact RC network is almost a pure
	// function of total power.
	AllBlocks bool

	model *hotspot.Model
	// peToBlock maps architecture PE index to model block index.
	peToBlock []int
	numBlocks int

	// peRow[i] is the influence-matrix row of PE i's block: the °C/W
	// heat reach of power injected there. Populated on first SetBase so
	// flows that never issue a thermal inquiry (non-thermal policies
	// build an oracle too, for final metrics) skip the influence build.
	peRow     [][]float64
	rowsReady bool

	// Scratch state (reused across calls; zero steady-state allocations).
	blockPower []float64 // power gathered into model block order
	temps      []float64 // block temperatures of the last solve, °C
	basePE     []float64 // IncrementalOracle: base per-PE power
	baseTemps  []float64 // IncrementalOracle: block temps of the base, °C
	baseSet    bool
}

// NewModelOracle wires an architecture to a thermal model by block name.
// It rejects architectures in which two PEs land on the same block —
// such duplicates (duplicate PE names) are already rejected by
// Architecture.Validate, but the oracle is the layer that would
// otherwise silently mis-attribute their power.
func NewModelOracle(model *hotspot.Model, arch Architecture) (*ModelOracle, error) {
	names := model.BlockNames()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	n := model.NumBlocks()
	o := &ModelOracle{
		model:      model,
		peToBlock:  make([]int, len(arch.PEs)),
		peRow:      make([][]float64, len(arch.PEs)),
		numBlocks:  n,
		blockPower: make([]float64, n),
		temps:      make([]float64, n),
		basePE:     make([]float64, len(arch.PEs)),
		baseTemps:  make([]float64, n),
	}
	claimed := make(map[int]string, len(arch.PEs))
	for i, pe := range arch.PEs {
		bi, ok := index[pe.Name]
		if !ok {
			return nil, fmt.Errorf("sched: PE %q has no block in the thermal model", pe.Name)
		}
		if prev, dup := claimed[bi]; dup {
			return nil, fmt.Errorf("sched: PEs %q and %q map to the same thermal block", prev, pe.Name)
		}
		claimed[bi] = pe.Name
		o.peToBlock[i] = bi
	}
	return o, nil
}

// ensureRows caches each PE's influence-matrix row, building the
// model's influence matrix on first use.
func (o *ModelOracle) ensureRows() error {
	if o.rowsReady {
		return nil
	}
	for i, bi := range o.peToBlock {
		row, err := o.model.InfluenceRow(bi)
		if err != nil {
			return err
		}
		o.peRow[i] = row
	}
	o.rowsReady = true
	return nil
}

// gather accumulates per-PE powers into the block-order scratch vector.
// Accumulation (not assignment) keeps the oracle correct even if several
// PEs ever share one block.
func (o *ModelOracle) gather(pePower []float64) []float64 {
	for i := range o.blockPower {
		o.blockPower[i] = 0
	}
	for i, w := range pePower {
		o.blockPower[o.peToBlock[i]] += w
	}
	return o.blockPower
}

// AvgTemp implements ThermalOracle: steady-state block temperatures under
// the given per-PE power, averaged over the PEs in use (power > 0). The
// paper observes "the average temperature of all using PEs"; averaging
// over in-use PEs is also what makes the inquiry sensitive to power
// *distribution* — on a perfectly symmetric platform the all-blocks mean
// depends only on total power and could not steer placement. When no PE
// is in use the average falls back to all blocks (ambient).
// The call is allocation-free: it reuses the oracle's scratch buffers
// and the model's influence matrix.
func (o *ModelOracle) AvgTemp(pePower []float64) (float64, error) {
	if len(pePower) != len(o.peToBlock) {
		return 0, fmt.Errorf("sched: oracle got %d powers for %d PEs", len(pePower), len(o.peToBlock))
	}
	if err := o.model.SteadyStateInto(o.temps, o.gather(pePower)); err != nil {
		return 0, err
	}
	if !o.AllBlocks {
		var sum float64
		n := 0
		for i, w := range pePower {
			if w > 0 {
				sum += o.temps[o.peToBlock[i]]
				n++
			}
		}
		if n > 0 {
			return sum / float64(n), nil
		}
	}
	return linalg.Mean(o.temps), nil
}

// SetBase implements IncrementalOracle: it solves the shared base power
// vector once so AvgTempDelta can answer each candidate from it.
func (o *ModelOracle) SetBase(pePower []float64) error {
	if len(pePower) != len(o.peToBlock) {
		return fmt.Errorf("sched: oracle got %d powers for %d PEs", len(pePower), len(o.peToBlock))
	}
	if err := o.ensureRows(); err != nil {
		return err
	}
	if err := o.model.SteadyStateInto(o.baseTemps, o.gather(pePower)); err != nil {
		o.baseSet = false
		return err
	}
	copy(o.basePE, pePower)
	o.baseSet = true
	return nil
}

// AvgTempDelta implements IncrementalOracle: AvgTemp of the base vector
// with deltaW added to PE pe, answered with one influence-matrix column
// instead of a solve — O(blocks + PEs) and allocation-free.
func (o *ModelOracle) AvgTempDelta(pe int, deltaW float64) (float64, error) {
	if !o.baseSet {
		return 0, fmt.Errorf("sched: AvgTempDelta before SetBase")
	}
	if pe < 0 || pe >= len(o.peToBlock) {
		return 0, fmt.Errorf("sched: AvgTempDelta PE %d out of range [0,%d)", pe, len(o.peToBlock))
	}
	if deltaW < 0 || math.IsNaN(deltaW) || math.IsInf(deltaW, 0) {
		return 0, fmt.Errorf("sched: AvgTempDelta invalid power delta %g W", deltaW)
	}
	// The influence matrix is symmetric, so the candidate block's row is
	// its heat reach: adding deltaW there raises block i by row[i]·deltaW.
	row := o.peRow[pe]
	if !o.AllBlocks {
		var sum float64
		n := 0
		for j, w := range o.basePE {
			if j == pe {
				w += deltaW
			}
			if w > 0 {
				bj := o.peToBlock[j]
				sum += o.baseTemps[bj] + row[bj]*deltaW
				n++
			}
		}
		if n > 0 {
			return sum / float64(n), nil
		}
	}
	var sum float64
	for i, t := range o.baseTemps {
		sum += t + row[i]*deltaW
	}
	return sum / float64(len(o.baseTemps)), nil
}

// Temps returns the full steady-state temperatures for a per-PE power
// vector — used when reporting the final schedule's thermal profile.
// It takes the direct solve: reporting happens once per run, and a
// single triangular solve is cheaper than building the influence
// matrix for flows that never inquire (non-thermal policies).
func (o *ModelOracle) Temps(pePower []float64) (hotspot.Temps, error) {
	if len(pePower) != len(o.peToBlock) {
		return hotspot.Temps{}, fmt.Errorf("sched: oracle got %d powers for %d PEs", len(pePower), len(o.peToBlock))
	}
	return o.model.SteadyStateDirect(o.gather(pePower))
}
