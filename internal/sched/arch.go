// Package sched implements the paper's primary contribution: the task
// Allocation and Scheduling Procedure (ASP), a list scheduler driven by
// static criticality (longest path to the end of the task graph) and a
// dynamic criticality that folds in either a power heuristic (the
// power-aware ASP, heuristics 1–3) or the average temperature reported
// by a HotSpot-style thermal model (the thermal-aware ASP).
package sched

import (
	"fmt"

	"thermalsched/internal/techlib"
)

// PE is one processing-element instance in a target architecture.
type PE struct {
	Name string
	// Type indexes the technology library's PE types.
	Type int
}

// Architecture is the set of PE instances the ASP maps tasks onto, plus
// the shared-bus communication model: transferring d data units between
// two distinct PEs takes d × BusTimePerUnit time units (transfers within
// one PE are free). The paper's platform-based experiments use four
// identical PEs; co-synthesis produces heterogeneous sets.
type Architecture struct {
	Name           string
	PEs            []PE
	BusTimePerUnit float64
}

// Validate checks the architecture against a technology library.
func (a Architecture) Validate(lib *techlib.Library) error {
	if len(a.PEs) == 0 {
		return fmt.Errorf("sched: architecture %q has no PEs", a.Name)
	}
	if a.BusTimePerUnit < 0 {
		return fmt.Errorf("sched: architecture %q has negative bus rate", a.Name)
	}
	seen := make(map[string]bool, len(a.PEs))
	for _, pe := range a.PEs {
		if pe.Name == "" {
			return fmt.Errorf("sched: architecture %q has a PE with empty name", a.Name)
		}
		if seen[pe.Name] {
			return fmt.Errorf("sched: architecture %q has duplicate PE name %q", a.Name, pe.Name)
		}
		seen[pe.Name] = true
		if pe.Type < 0 || pe.Type >= lib.NumPETypes() {
			return fmt.Errorf("sched: PE %q has type %d outside library range [0,%d)",
				pe.Name, pe.Type, lib.NumPETypes())
		}
	}
	return nil
}

// PENames returns the PE names in architecture order.
func (a Architecture) PENames() []string {
	out := make([]string, len(a.PEs))
	for i, pe := range a.PEs {
		out[i] = pe.Name
	}
	return out
}

// TotalCost sums the library cost of every PE instance (the co-synthesis
// objective).
func (a Architecture) TotalCost(lib *techlib.Library) float64 {
	var sum float64
	for _, pe := range a.PEs {
		sum += lib.PEType(pe.Type).Cost
	}
	return sum
}

// PlatformFromTypes builds an architecture with one PE instance per
// named library type, called pe0, pe1, …. The paper's platform of "four
// identical PEs" uses techlib.PlatformPETypeNames: nominally identical
// cores whose library rows carry per-instance table jitter.
func PlatformFromTypes(lib *techlib.Library, typeNames []string, busTimePerUnit float64) (Architecture, error) {
	if len(typeNames) == 0 {
		return Architecture{}, fmt.Errorf("sched: platform needs at least one PE type name")
	}
	arch := Architecture{
		Name:           fmt.Sprintf("platform-%dpe", len(typeNames)),
		BusTimePerUnit: busTimePerUnit,
	}
	for i, name := range typeNames {
		ti, ok := lib.PETypeIndex(name)
		if !ok {
			return Architecture{}, fmt.Errorf("sched: platform PE type %q not in library", name)
		}
		arch.PEs = append(arch.PEs, PE{Name: fmt.Sprintf("pe%d", i), Type: ti})
	}
	if err := arch.Validate(lib); err != nil {
		return Architecture{}, err
	}
	return arch, nil
}

// Platform builds a homogeneous architecture: count identical PEs of the
// named library type, called pe0, pe1, ….
func Platform(lib *techlib.Library, peTypeName string, count int, busTimePerUnit float64) (Architecture, error) {
	if count < 1 {
		return Architecture{}, fmt.Errorf("sched: platform needs at least one PE, got %d", count)
	}
	ti, ok := lib.PETypeIndex(peTypeName)
	if !ok {
		return Architecture{}, fmt.Errorf("sched: platform PE type %q not in library", peTypeName)
	}
	arch := Architecture{
		Name:           fmt.Sprintf("platform-%dx-%s", count, peTypeName),
		BusTimePerUnit: busTimePerUnit,
	}
	for i := 0; i < count; i++ {
		arch.PEs = append(arch.PEs, PE{Name: fmt.Sprintf("pe%d", i), Type: ti})
	}
	if err := arch.Validate(lib); err != nil {
		return Architecture{}, err
	}
	return arch, nil
}
