package sched

import (
	"fmt"
	"strings"
)

// Policy selects the ASP variant: how the dynamic criticality's last term
// (the paper's "Pow" / "Avg_Temp") is computed.
type Policy int

// ASP variants from the paper, §2.
const (
	// Baseline ignores power and temperature entirely (traditional ASP).
	Baseline Policy = iota
	// MinTaskPower is power heuristic 1: minimize the power consumption
	// of the current task on the candidate PE.
	MinTaskPower
	// MinPEPower is power heuristic 2: minimize the cumulative average
	// power of the candidate processing element.
	MinPEPower
	// MinTaskEnergy is power heuristic 3: minimize the energy of the
	// current task (WCET × WCPC) — the winner among the paper's power
	// heuristics.
	MinTaskEnergy
	// ThermalAware substitutes the average temperature returned by the
	// thermal model for the Pow term (the paper's contribution).
	ThermalAware
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case MinTaskPower:
		return "heuristic1"
	case MinPEPower:
		return "heuristic2"
	case MinTaskEnergy:
		return "heuristic3"
	case ThermalAware:
		return "thermal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a name (as printed by String) back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "baseline":
		return Baseline, nil
	case "heuristic1", "h1", "minpower":
		return MinTaskPower, nil
	case "heuristic2", "h2", "minpepower":
		return MinPEPower, nil
	case "heuristic3", "h3", "minenergy":
		return MinTaskEnergy, nil
	case "thermal", "thermalaware", "thermal-aware":
		return ThermalAware, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q", s)
	}
}

// Policies lists all ASP variants in paper order.
func Policies() []Policy {
	return []Policy{Baseline, MinTaskPower, MinPEPower, MinTaskEnergy, ThermalAware}
}

// ThermalOracle answers the thermal-aware ASP's temperature inquiries:
// given per-PE average power (W, indexed like the architecture's PE
// list), return the average block temperature in °C. The cosynth layer
// backs this with the HotSpot-style model; tests may use fakes.
type ThermalOracle interface {
	AvgTemp(pePower []float64) (float64, error)
}

// IncrementalOracle is an optional ThermalOracle extension the greedy
// ASP exploits: between the PE candidates of one scheduling step only a
// single coordinate of the inquiry power vector changes (the candidate
// PE gains the task's power), so the oracle can answer from a shared
// base solution with an O(1)-coordinate delta instead of a fresh solve.
// SetBase fixes the step's common power vector; AvgTempDelta then
// answers AvgTemp(base + deltaW·e_pe) for one candidate. Implementations
// need not be safe for concurrent use.
type IncrementalOracle interface {
	ThermalOracle
	// SetBase fixes the base per-PE power vector subsequent
	// AvgTempDelta calls build on. The slice is copied.
	SetBase(pePower []float64) error
	// AvgTempDelta is AvgTemp of the base vector with deltaW watts
	// added to PE pe. deltaW must be non-negative and finite.
	AvgTempDelta(pe int, deltaW float64) (float64, error)
}

// Config tunes the ASP. The weight fields convert the heterogeneous
// units of the DC equation's last term into schedule time units:
//
//	DC = SC − WCET − max(avail, ready) − weight·term
//
// The paper leaves these scales implicit; DefaultConfig's values are
// calibrated so the last term is commensurate with task WCETs for the
// standard library (see DESIGN.md).
type Config struct {
	Policy Policy
	// PowerWeight scales watts into time units for heuristics 1 and 2.
	PowerWeight float64
	// EnergyWeight scales energy (W × time) into time units for
	// heuristic 3.
	EnergyWeight float64
	// TempWeight scales °C into time units for the thermal-aware ASP.
	TempWeight float64
	// ThermalHorizon is the fixed time window (in schedule time units)
	// over which accumulated energies are converted to the power vector
	// of a thermal inquiry. A fixed window keeps inquiry temperatures —
	// and therefore the effective strength of TempWeight — independent
	// of the benchmark's deadline. Zero means DefaultThermalHorizon.
	ThermalHorizon float64
	// Oracle must be non-nil when Policy == ThermalAware.
	Oracle ThermalOracle
}

// DefaultThermalHorizon is the default power-accumulation window for
// thermal inquiries, sized to the standard library's task scale.
const DefaultThermalHorizon = 1000

// DefaultConfig returns the calibrated configuration for a policy.
// ThermalAware configs still need the Oracle to be set by the caller.
func DefaultConfig(p Policy) Config {
	return Config{
		Policy:         p,
		PowerWeight:    20.0, // ~6 W tasks → ~120 time units, the WCET scale
		EnergyWeight:   0.3,  // ~600 energy-unit tasks → ~180 time units
		TempWeight:     10.0, // ~°C-scale inquiry deltas → WCET-scale DC terms
		ThermalHorizon: DefaultThermalHorizon,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch c.Policy {
	case Baseline, MinTaskPower, MinPEPower, MinTaskEnergy:
	case ThermalAware:
		if c.Oracle == nil {
			return fmt.Errorf("sched: thermal-aware policy requires a ThermalOracle")
		}
		if c.TempWeight < 0 {
			return fmt.Errorf("sched: negative TempWeight %g", c.TempWeight)
		}
	default:
		return fmt.Errorf("sched: unknown policy %d", int(c.Policy))
	}
	if c.PowerWeight < 0 || c.EnergyWeight < 0 {
		return fmt.Errorf("sched: negative weights (power %g, energy %g)",
			c.PowerWeight, c.EnergyWeight)
	}
	return nil
}
