package sched

import (
	"math"
	"strings"
	"testing"

	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// testLib builds a 2-task-type library with a slow/cool and a fast/hot PE
// type whose numbers are easy to reason about.
func testLib(t testing.TB) *techlib.Library {
	t.Helper()
	lib, err := techlib.NewLibrary(2)
	if err != nil {
		t.Fatal(err)
	}
	// slow: type0 {100, 2W}, type1 {120, 3W}
	if err := lib.AddPEType(
		techlib.PEType{Name: "slow", Cost: 10, Area: 9e-6, IdlePower: 0.1},
		[]techlib.Entry{{WCET: 100, WCPC: 2}, {WCET: 120, WCPC: 3}}, nil); err != nil {
		t.Fatal(err)
	}
	// fast: type0 {50, 8W}, type1 {60, 10W} — 2x speed, 4x power, 2x energy
	if err := lib.AddPEType(
		techlib.PEType{Name: "fast", Cost: 50, Area: 16e-6, IdlePower: 0.2},
		[]techlib.Entry{{WCET: 50, WCPC: 8}, {WCET: 60, WCPC: 10}}, nil); err != nil {
		t.Fatal(err)
	}
	return lib
}

// chainGraph builds t0 -> t1 -> t2, all type 0.
func chainGraph(t testing.TB, deadline float64) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph("chain", deadline)
	for i := 0; i < 3; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := g.AddEdge(taskgraph.Edge{From: i, To: i + 1, Data: 10}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// forkGraph builds t0 -> {t1..t4}, all type 0: four independent children.
func forkGraph(t testing.TB, deadline float64) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph("fork", deadline)
	for i := 0; i < 5; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 5; i++ {
		if err := g.AddEdge(taskgraph.Edge{From: 0, To: i, Data: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func twoPEArch(busRate float64) Architecture {
	return Architecture{
		Name:           "duo",
		PEs:            []PE{{Name: "p0", Type: 0}, {Name: "p1", Type: 1}},
		BusTimePerUnit: busRate,
	}
}

func TestArchitectureValidate(t *testing.T) {
	lib := testLib(t)
	good := twoPEArch(0)
	if err := good.Validate(lib); err != nil {
		t.Errorf("valid arch rejected: %v", err)
	}
	cases := []Architecture{
		{Name: "empty"},
		{Name: "dup", PEs: []PE{{Name: "a", Type: 0}, {Name: "a", Type: 1}}},
		{Name: "noname", PEs: []PE{{Name: "", Type: 0}}},
		{Name: "badtype", PEs: []PE{{Name: "a", Type: 7}}},
		{Name: "negbus", PEs: []PE{{Name: "a", Type: 0}}, BusTimePerUnit: -1},
	}
	for _, a := range cases {
		if err := a.Validate(lib); err == nil {
			t.Errorf("arch %q accepted", a.Name)
		}
	}
}

func TestArchitectureHelpers(t *testing.T) {
	lib := testLib(t)
	a := twoPEArch(0)
	if got := a.PENames(); len(got) != 2 || got[1] != "p1" {
		t.Errorf("PENames = %v", got)
	}
	if got := a.TotalCost(lib); got != 60 {
		t.Errorf("TotalCost = %v, want 60", got)
	}
}

func TestPlatform(t *testing.T) {
	lib := testLib(t)
	arch, err := Platform(lib, "slow", 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.PEs) != 4 || arch.PEs[3].Name != "pe3" {
		t.Errorf("platform PEs = %v", arch.PEs)
	}
	for _, pe := range arch.PEs {
		if lib.PEType(pe.Type).Name != "slow" {
			t.Error("platform PE has wrong type")
		}
	}
	if _, err := Platform(lib, "missing", 4, 0); err == nil {
		t.Error("unknown PE type accepted")
	}
	if _, err := Platform(lib, "slow", 0, 0); err == nil {
		t.Error("zero-count platform accepted")
	}
}

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v -> %q -> %v (%v)", p, p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Error("nonsense policy parsed")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(Baseline).Validate(); err != nil {
		t.Errorf("default baseline invalid: %v", err)
	}
	c := DefaultConfig(ThermalAware)
	if err := c.Validate(); err == nil {
		t.Error("thermal config without oracle accepted")
	}
	c.Oracle = fakeOracle{}
	if err := c.Validate(); err != nil {
		t.Errorf("thermal config with oracle rejected: %v", err)
	}
	c = DefaultConfig(Baseline)
	c.PowerWeight = -1
	if err := c.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Config{Policy: Policy(42)}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

// fakeOracle returns a fixed average temperature plus a bias proportional
// to the power imbalance, so thermal-aware scheduling prefers balance.
type fakeOracle struct{}

func (fakeOracle) AvgTemp(pePower []float64) (float64, error) {
	var sum, max float64
	for _, p := range pePower {
		sum += p
		if p > max {
			max = p
		}
	}
	return 45 + sum + 2*max, nil
}

func TestBaselineChainSchedule(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	s, err := AllocateAndSchedule(g, twoPEArch(0), lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	// All tasks are type 0; the fast PE runs them in 50 each. A chain has
	// no parallelism, so the baseline should finish in 150 on the fast PE.
	if s.Makespan != 150 {
		t.Errorf("makespan = %v, want 150 (fast PE chain)", s.Makespan)
	}
	if !s.MeetsDeadline() {
		t.Error("deadline missed")
	}
}

func TestBaselineUsesParallelism(t *testing.T) {
	lib := testLib(t)
	g := forkGraph(t, 1000)
	s, err := AllocateAndSchedule(g, twoPEArch(0), lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	busy := s.PEBusy()
	if busy[0] == 0 || busy[1] == 0 {
		t.Errorf("both PEs should be used: busy = %v", busy)
	}
}

func TestCommunicationDelaysRespected(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	// Make cross-PE communication very expensive: chain should stay on
	// one PE.
	s, err := AllocateAndSchedule(g, twoPEArch(50), lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pe := s.Assignments[0].PE
	for _, a := range s.Assignments {
		if a.PE != pe {
			t.Errorf("expensive bus should keep the chain on one PE: %+v", s.Assignments)
			break
		}
	}
}

func TestHeuristic3PrefersLowEnergyPE(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	cfg := DefaultConfig(MinTaskEnergy)
	cfg.EnergyWeight = 1.0 // dominate: always pick the low-energy PE
	s, err := AllocateAndSchedule(g, twoPEArch(0), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// slow PE: energy 200/task; fast: 400/task. With a dominant energy
	// weight every task should sit on the slow PE (index 0).
	for _, a := range s.Assignments {
		if a.PE != 0 {
			t.Errorf("task %d on PE %d, want slow PE 0", a.Task, a.PE)
		}
	}
	if s.TotalEnergy() != 600 {
		t.Errorf("TotalEnergy = %v, want 600", s.TotalEnergy())
	}
}

func TestHeuristic1PrefersLowPowerPE(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	cfg := DefaultConfig(MinTaskPower)
	cfg.PowerWeight = 1000 // dominate
	s, err := AllocateAndSchedule(g, twoPEArch(0), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Assignments {
		if a.PE != 0 {
			t.Errorf("task %d on PE %d, want low-power PE 0", a.Task, a.PE)
		}
	}
}

func TestHeuristic2BalancesPEPower(t *testing.T) {
	lib := testLib(t)
	// Two identical PEs so power balance is the only differentiator.
	arch := Architecture{
		Name: "twin",
		PEs:  []PE{{Name: "a", Type: 0}, {Name: "b", Type: 0}},
	}
	g := forkGraph(t, 10000)
	cfg := DefaultConfig(MinPEPower)
	cfg.PowerWeight = 500
	s, err := AllocateAndSchedule(g, arch, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	e := s.PEEnergy()
	if e[0] == 0 || e[1] == 0 {
		t.Errorf("heuristic 2 should spread energy over both PEs: %v", e)
	}
}

func TestThermalAwareBalancesLoad(t *testing.T) {
	lib := testLib(t)
	arch := Architecture{
		Name: "twin",
		PEs:  []PE{{Name: "a", Type: 0}, {Name: "b", Type: 0}},
	}
	g := forkGraph(t, 10000)
	cfg := DefaultConfig(ThermalAware)
	cfg.Oracle = fakeOracle{}
	cfg.TempWeight = 100
	s, err := AllocateAndSchedule(g, arch, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	busy := s.PEBusy()
	if busy[0] == 0 || busy[1] == 0 {
		t.Errorf("thermal ASP should spread load: busy = %v", busy)
	}
}

func TestSchedulerErrors(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)

	// Library without coverage for the graph's task types.
	partial, err := techlib.NewLibrary(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.AddPEType(
		techlib.PEType{Name: "only1", Cost: 1, Area: 1e-6},
		[]techlib.Entry{{}, {WCET: 1, WCPC: 1}}, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	archP := Architecture{Name: "p", PEs: []PE{{Name: "x", Type: 0}}}
	if _, err := AllocateAndSchedule(g, archP, partial, DefaultConfig(Baseline)); err == nil {
		t.Error("uncoverable graph scheduled")
	}

	// Invalid architecture.
	if _, err := AllocateAndSchedule(g, Architecture{Name: "e"}, lib, DefaultConfig(Baseline)); err == nil {
		t.Error("empty arch accepted")
	}
	// Invalid graph.
	if _, err := AllocateAndSchedule(taskgraph.NewGraph("e", 1), twoPEArch(0), lib, DefaultConfig(Baseline)); err == nil {
		t.Error("empty graph accepted")
	}
	// Invalid config.
	bad := DefaultConfig(ThermalAware) // no oracle
	if _, err := AllocateAndSchedule(g, twoPEArch(0), lib, bad); err == nil {
		t.Error("oracle-less thermal config accepted")
	}
}

func TestScheduleMetrics(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	s, err := AllocateAndSchedule(g, twoPEArch(0), lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline chain on fast PE: 3 tasks × 50 × 8 W = 1200 energy.
	if s.TotalEnergy() != 1200 {
		t.Errorf("TotalEnergy = %v, want 1200", s.TotalEnergy())
	}
	if got := s.TotalPower(); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("TotalPower = %v, want 1.2", got)
	}
	avg, err := s.PEAveragePower(s.Graph.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range avg {
		sum += p
	}
	if math.Abs(sum-1.2) > 1e-12 {
		t.Errorf("sum of PE average power = %v, want 1.2", sum)
	}
	if _, err := s.PEAveragePower(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if !strings.Contains(s.Gantt(), "makespan") {
		t.Error("Gantt output malformed")
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	lib := testLib(t)
	g := chainGraph(t, 1000)
	fresh := func() *Schedule {
		s, err := AllocateAndSchedule(g, twoPEArch(0), lib, DefaultConfig(Baseline))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	corruptions := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"wrong PE index", func(s *Schedule) { s.Assignments[0].PE = 9 }},
		{"negative start", func(s *Schedule) { s.Assignments[0].Start = -5 }},
		{"wrong duration", func(s *Schedule) { s.Assignments[0].Finish += 10 }},
		{"precedence violation", func(s *Schedule) {
			s.Assignments[1].Start = 0
			s.Assignments[1].Finish = s.Assignments[1].Start +
				(s.Assignments[1].Finish - s.Assignments[1].Start)
		}},
		{"task id mismatch", func(s *Schedule) { s.Assignments[0].Task = 2 }},
		{"missing assignment", func(s *Schedule) { s.Assignments = s.Assignments[:2] }},
		{"makespan too small", func(s *Schedule) { s.Makespan = 1 }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := fresh()
			tc.mut(s)
			if err := s.Validate(); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
}

func TestOverlapDetection(t *testing.T) {
	lib := testLib(t)
	// Two independent tasks forced onto one PE at overlapping times.
	g := taskgraph.NewGraph("pair", 1000)
	for i := 0; i < 2; i++ {
		if err := g.AddTask(taskgraph.Task{ID: i, Name: "t", Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	arch := Architecture{Name: "solo", PEs: []PE{{Name: "a", Type: 0}}}
	s, err := AllocateAndSchedule(g, arch, lib, DefaultConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Assignments[1].Start = s.Assignments[0].Start
	s.Assignments[1].Finish = s.Assignments[1].Start + 100
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap not detected: %v", err)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	lib := testLib(t)
	g, err := taskgraph.Generate(taskgraph.GenParams{
		Name: "r", Tasks: 20, Edges: 30, Deadline: 5000, Types: 2,
		Sources: 2, MaxData: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AllocateAndSchedule(g, twoPEArch(0.1), lib, DefaultConfig(MinTaskEnergy))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllocateAndSchedule(g, twoPEArch(0.1), lib, DefaultConfig(MinTaskEnergy))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("schedule not deterministic at task %d", i)
		}
	}
}
