package sched

import (
	"context"
	"fmt"
	"math"

	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// AllocateAndSchedule runs the ASP: it maps every task of g onto a PE of
// arch and fixes its start time, using the DC selection rule
//
//	DC(task i, PE j) = SC(i) − WCET(i,j) − max(avail(j), ready(i,j)) − term
//
// where term is the policy's power or temperature penalty. At every step
// the (ready task, PE) pair with the highest DC is committed, exactly the
// greedy loop of Xie & Wolf's ASP with the paper's extra term.
//
// The returned schedule may miss the deadline; callers (co-synthesis)
// check MeetsDeadline and react. Scheduling only fails on structural
// problems: invalid inputs or a task no PE in arch can run.
func AllocateAndSchedule(g *taskgraph.Graph, arch Architecture, lib *techlib.Library, cfg Config) (*Schedule, error) {
	return AllocateAndScheduleCtx(context.Background(), g, arch, lib, cfg)
}

// AllocateAndScheduleCtx is AllocateAndSchedule with cancellation: the
// greedy loop checks ctx before every task commitment (each step of a
// thermal-aware run issues tasks×PEs thermal inquiries, so this is the
// natural abort granularity) and returns a ctx-wrapping error promptly
// after cancellation.
func AllocateAndScheduleCtx(ctx context.Context, g *taskgraph.Graph, arch Architecture, lib *techlib.Library, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(lib); err != nil {
		return nil, err
	}

	// Static criticality: longest path to the end of the graph, weighting
	// each task with its mean WCET over the library and each edge with
	// its bus transfer time (zero when communication is not modelled).
	meanWCET := make(map[int]float64)
	scWeight := func(t taskgraph.Task) float64 {
		if v, ok := meanWCET[t.Type]; ok {
			return v
		}
		v, err := lib.MeanWCET(t.Type)
		if err != nil {
			v = 0 // unreachable for validated libraries; SC stays conservative
		}
		meanWCET[t.Type] = v
		return v
	}
	sc, err := g.StaticCriticality(scWeight, func(e taskgraph.Edge) float64 {
		return e.Data * arch.BusTimePerUnit
	})
	if err != nil {
		return nil, err
	}

	n := g.NumTasks()
	nPE := len(arch.PEs)
	assigned := make([]bool, n)
	assignments := make([]Assignment, n)
	remainingPreds := make([]int, n)
	for id := 0; id < n; id++ {
		remainingPreds[id] = g.InDegree(id)
	}
	peAvail := make([]float64, nPE)
	peEnergy := make([]float64, nPE)
	scheduledCount := 0

	// Adjacency and library rows, materialized once: Predecessors and
	// Lookup are called for every (ready task, PE) candidate of every
	// greedy step, and per-call slice allocation there dominates the
	// non-thermal scheduling cost.
	preds := make([][]taskgraph.Edge, n)
	succs := make([][]taskgraph.Edge, n)
	for id := 0; id < n; id++ {
		preds[id] = g.Predecessors(id)
		succs[id] = g.Successors(id)
	}
	entries := make([]techlib.Entry, n*nPE)
	entryOK := make([]bool, n*nPE)
	for task := 0; task < n; task++ {
		for pe := 0; pe < nPE; pe++ {
			entries[task*nPE+pe], entryOK[task*nPE+pe] = lib.Lookup(arch.PEs[pe].Type, g.Task(task).Type)
		}
	}

	// Thermal-inquiry machinery, hoisted out of the candidate loop. The
	// inquiry power vector is a scratch slice reused across candidates;
	// when the oracle supports incremental evaluation (the model-backed
	// oracle does), each greedy step solves the shared base power once
	// and every candidate is answered with an O(PEs) delta update.
	horizon := cfg.ThermalHorizon
	if horizon <= 0 {
		horizon = DefaultThermalHorizon
	}
	var (
		pePower   []float64
		incOracle IncrementalOracle
	)
	if cfg.Policy == ThermalAware {
		pePower = make([]float64, nPE)
		incOracle, _ = cfg.Oracle.(IncrementalOracle)
	}

	// ready(i, j): earliest time task i's inputs are available on PE j.
	readyOn := func(task, pe int) float64 {
		t := 0.0
		for _, e := range preds[task] {
			p := assignments[e.From]
			r := p.Finish
			if p.PE != pe {
				r += e.Data * arch.BusTimePerUnit
			}
			if r > t {
				t = r
			}
		}
		return t
	}

	// term computes the policy's DC penalty for a candidate.
	term := func(task, pe int, entry techlib.Entry, finish float64) (float64, error) {
		switch cfg.Policy {
		case Baseline:
			return 0, nil
		case MinTaskPower:
			return cfg.PowerWeight * entry.WCPC, nil
		case MinPEPower:
			// Cumulative average power of the PE if this task lands there.
			return cfg.PowerWeight * (peEnergy[pe] + entry.Energy()) / finish, nil
		case MinTaskEnergy:
			return cfg.EnergyWeight * entry.Energy(), nil
		case ThermalAware:
			// Paper §2.2: "pass the cumulating power consumptions of each
			// PE along with the consuming power incurred by current
			// scheduled task to the HotSpot", then average the returned
			// temperatures. Cumulated energies are converted to power
			// over a fixed horizon (normalizing by the candidate's finish
			// time would let the scheduler "cool" the die by stretching
			// the schedule); the candidate task contributes its full
			// execution power on the candidate PE, so an inquiry sees the
			// heat of running this task *now* on top of that PE's
			// history — which is what makes hot-on-hot placements
			// expensive and yields thermal balance.
			var (
				avg float64
				err error
			)
			if incOracle != nil {
				// The base (peEnergy/horizon) is fixed per greedy step;
				// this candidate only adds the task's power on its PE.
				avg, err = incOracle.AvgTempDelta(pe, entry.Energy()/horizon+entry.WCPC)
			} else {
				for j := range pePower {
					e := peEnergy[j]
					if j == pe {
						e += entry.Energy()
					}
					pePower[j] = e / horizon
				}
				pePower[pe] += entry.WCPC
				avg, err = cfg.Oracle.AvgTemp(pePower)
			}
			if err != nil {
				return 0, fmt.Errorf("sched: thermal inquiry for task %d on PE %q: %w",
					task, arch.PEs[pe].Name, err)
			}
			return cfg.TempWeight * avg, nil
		default:
			return 0, fmt.Errorf("sched: unknown policy %d", int(cfg.Policy))
		}
	}

	for scheduledCount < n {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sched: cancelled with %d/%d tasks scheduled: %w",
				scheduledCount, n, err)
		}
		if incOracle != nil {
			// One steady-state solve for the step's shared base power;
			// the candidate loop below only pays per-candidate deltas.
			for j := range pePower {
				pePower[j] = peEnergy[j] / horizon
			}
			if err := incOracle.SetBase(pePower); err != nil {
				return nil, fmt.Errorf("sched: thermal inquiry base: %w", err)
			}
		}
		bestTask, bestPE := -1, -1
		bestDC := math.Inf(-1)
		var bestStart, bestFinish, bestPower float64
		progress := false
		for task := 0; task < n; task++ {
			if assigned[task] || remainingPreds[task] > 0 {
				continue
			}
			runnableSomewhere := false
			for pe := 0; pe < nPE; pe++ {
				entry, ok := entries[task*nPE+pe], entryOK[task*nPE+pe]
				if !ok {
					continue
				}
				runnableSomewhere = true
				ready := readyOn(task, pe)
				start := math.Max(peAvail[pe], ready)
				finish := start + entry.WCET
				penalty, err := term(task, pe, entry, finish)
				if err != nil {
					return nil, err
				}
				dc := sc[task] - entry.WCET - start - penalty
				if dc > bestDC {
					bestDC, bestTask, bestPE = dc, task, pe
					bestStart, bestFinish, bestPower = start, finish, entry.WCPC
				}
			}
			if !runnableSomewhere {
				return nil, fmt.Errorf("sched: task %d (type %d) runnable on no PE of %q",
					task, g.Task(task).Type, arch.Name)
			}
			progress = true
		}
		if !progress || bestTask < 0 {
			return nil, fmt.Errorf("sched: no ready task found with %d/%d scheduled (cycle?)",
				scheduledCount, n)
		}
		assignments[bestTask] = Assignment{
			Task: bestTask, PE: bestPE,
			Start: bestStart, Finish: bestFinish, Power: bestPower,
		}
		assigned[bestTask] = true
		scheduledCount++
		peAvail[bestPE] = bestFinish
		peEnergy[bestPE] += (bestFinish - bestStart) * bestPower
		for _, e := range succs[bestTask] {
			remainingPreds[e.To]--
		}
	}

	makespan := 0.0
	for _, a := range assignments {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	return &Schedule{
		Graph:       g,
		Arch:        arch,
		Lib:         lib,
		Assignments: assignments,
		Makespan:    makespan,
	}, nil
}
