package sched

import (
	"fmt"
	"sort"
	"strings"

	"thermalsched/internal/taskgraph"
	"thermalsched/internal/techlib"
)

// Assignment records where and when one task executes.
type Assignment struct {
	Task   int
	PE     int // index into the architecture's PE list
	Start  float64
	Finish float64
	Power  float64 // WCPC while executing, W
}

// Energy returns the worst-case energy of the assignment.
func (a Assignment) Energy() float64 { return (a.Finish - a.Start) * a.Power }

// Schedule is a complete task mapping and timing produced by the ASP.
type Schedule struct {
	Graph       *taskgraph.Graph
	Arch        Architecture
	Lib         *techlib.Library
	Assignments []Assignment // indexed by task ID
	Makespan    float64
}

// MeetsDeadline reports whether the makespan fits the graph's deadline.
func (s *Schedule) MeetsDeadline() bool { return s.Makespan <= s.Graph.Deadline }

// Assignment returns the assignment of the given task.
func (s *Schedule) Assignment(task int) Assignment { return s.Assignments[task] }

// TotalEnergy returns the summed worst-case energy of all assignments.
func (s *Schedule) TotalEnergy() float64 {
	var sum float64
	for _, a := range s.Assignments {
		sum += a.Energy()
	}
	return sum
}

// PEEnergy returns per-PE energy, indexed like Arch.PEs.
func (s *Schedule) PEEnergy() []float64 {
	out := make([]float64, len(s.Arch.PEs))
	for _, a := range s.Assignments {
		out[a.PE] += a.Energy()
	}
	return out
}

// PEBusy returns per-PE busy time.
func (s *Schedule) PEBusy() []float64 {
	out := make([]float64, len(s.Arch.PEs))
	for _, a := range s.Assignments {
		out[a.PE] += a.Finish - a.Start
	}
	return out
}

// PEAveragePower returns each PE's energy averaged over the given time
// horizon (use the graph deadline for the paper's "total power" metric,
// or the makespan for utilization-normalized power). The result is the
// power vector handed to the thermal model.
func (s *Schedule) PEAveragePower(horizon float64) ([]float64, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("sched: power horizon must be positive, got %g", horizon)
	}
	e := s.PEEnergy()
	for i := range e {
		e[i] /= horizon
	}
	return e, nil
}

// TotalPower returns total energy divided by the deadline — the
// "Total Pow." column of the paper's tables.
func (s *Schedule) TotalPower() float64 {
	return s.TotalEnergy() / s.Graph.Deadline
}

// ExpectedEnergy returns the probability-weighted energy of the
// schedule for a conditional task graph: Σ P(task) × E(task), where
// P(task) comes from Graph.ExecutionProbabilities. For unconditional
// graphs it equals TotalEnergy.
func (s *Schedule) ExpectedEnergy() (float64, error) {
	probs, err := s.Graph.ExecutionProbabilities()
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, a := range s.Assignments {
		sum += probs[a.Task] * a.Energy()
	}
	return sum, nil
}

// ExpectedPEAveragePower is PEAveragePower weighted by task execution
// probabilities — the per-PE power a conditional task graph dissipates
// in expectation, the right input for expected-temperature analysis.
func (s *Schedule) ExpectedPEAveragePower(horizon float64) ([]float64, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("sched: power horizon must be positive, got %g", horizon)
	}
	probs, err := s.Graph.ExecutionProbabilities()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(s.Arch.PEs))
	for _, a := range s.Assignments {
		out[a.PE] += probs[a.Task] * a.Energy() / horizon
	}
	return out, nil
}

// Validate checks that the schedule is structurally sound:
// every task assigned exactly once to an in-range PE, task timings
// consistent with the library WCETs, no two tasks overlapping on one PE,
// and every precedence edge respected including bus delay.
func (s *Schedule) Validate() error {
	n := s.Graph.NumTasks()
	if len(s.Assignments) != n {
		return fmt.Errorf("sched: %d assignments for %d tasks", len(s.Assignments), n)
	}
	const tol = 1e-9
	for id := 0; id < n; id++ {
		a := s.Assignments[id]
		if a.Task != id {
			return fmt.Errorf("sched: assignment %d records task %d", id, a.Task)
		}
		if a.PE < 0 || a.PE >= len(s.Arch.PEs) {
			return fmt.Errorf("sched: task %d assigned to missing PE %d", id, a.PE)
		}
		if a.Start < -tol || a.Finish < a.Start-tol {
			return fmt.Errorf("sched: task %d has invalid interval [%g, %g]", id, a.Start, a.Finish)
		}
		e, ok := s.Lib.Lookup(s.Arch.PEs[a.PE].Type, s.Graph.Task(id).Type)
		if !ok {
			return fmt.Errorf("sched: task %d type %d not runnable on PE %q",
				id, s.Graph.Task(id).Type, s.Arch.PEs[a.PE].Name)
		}
		if d := a.Finish - a.Start; d < e.WCET-tol || d > e.WCET+tol {
			return fmt.Errorf("sched: task %d duration %g differs from WCET %g", id, d, e.WCET)
		}
		if a.Finish > s.Makespan+tol {
			return fmt.Errorf("sched: task %d finishes at %g after makespan %g", id, a.Finish, s.Makespan)
		}
	}
	// Precedence with communication delay.
	for _, edge := range s.Graph.Edges() {
		from, to := s.Assignments[edge.From], s.Assignments[edge.To]
		ready := from.Finish
		if from.PE != to.PE {
			ready += edge.Data * s.Arch.BusTimePerUnit
		}
		if to.Start < ready-tol {
			return fmt.Errorf("sched: edge %d->%d violated: start %g before ready %g",
				edge.From, edge.To, to.Start, ready)
		}
	}
	// No overlap per PE.
	byPE := make([][]Assignment, len(s.Arch.PEs))
	for _, a := range s.Assignments {
		byPE[a.PE] = append(byPE[a.PE], a)
	}
	for pe, as := range byPE {
		sort.Slice(as, func(i, j int) bool { return as[i].Start < as[j].Start })
		for i := 1; i < len(as); i++ {
			if as[i].Start < as[i-1].Finish-tol {
				return fmt.Errorf("sched: tasks %d and %d overlap on PE %q",
					as[i-1].Task, as[i].Task, s.Arch.PEs[pe].Name)
			}
		}
	}
	return nil
}

// Gantt renders a per-PE timeline for human inspection.
func (s *Schedule) Gantt() string {
	byPE := make([][]Assignment, len(s.Arch.PEs))
	for _, a := range s.Assignments {
		byPE[a.PE] = append(byPE[a.PE], a)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %q on %q: makespan %.1f (deadline %.1f)\n",
		s.Graph.Name, s.Arch.Name, s.Makespan, s.Graph.Deadline)
	for pe, as := range byPE {
		sort.Slice(as, func(i, j int) bool { return as[i].Start < as[j].Start })
		fmt.Fprintf(&b, "  %-8s", s.Arch.PEs[pe].Name)
		for _, a := range as {
			fmt.Fprintf(&b, " %s[%.0f-%.0f]", s.Graph.Task(a.Task).Name, a.Start, a.Finish)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
