// Package coloop is the shared closed-loop co-simulation core under
// internal/runtime (the batch "simulate" flow) and internal/stream (the
// online dispatcher). Both co-simulators advance the same outer loop:
// simulated time moves in fixed steps of DT schedule units; inside each
// step the client runs its own micro event loop (dispatching, advancing
// and completing work) while depositing the energy every PE actually
// drew into StepEnergy; then the transient thermal RC model steps once
// over the implied block power, the new temperatures become visible
// (one-step sensing delay), and the thermal supervisor sets the next
// step's per-block throttle scales. The core owns that outer loop —
// stepping, energy-to-power accumulation, peak tracking, warm start,
// stall bounding and context polling — so the two executors differ only
// in their micro loops.
//
// Determinism is the core's first constraint: the accumulation order of
// every float sum is fixed (PE index order, block index order), so a
// client refactored onto the core produces byte-identical results to
// the loop it replaced, and results never depend on parallelism.
package coloop

import (
	"context"
	"fmt"
	"math"

	"thermalsched/internal/dtm"
	"thermalsched/internal/hotspot"
)

// ctxCheckInterval is how many steps pass between context polls.
const ctxCheckInterval = 256

// Config parameterizes one closed-loop core.
type Config struct {
	// Model is the thermal RC model; PEBlock maps each PE index to its
	// model block (see PEBlocks).
	Model   *hotspot.Model
	PEBlock []int
	// DT is the co-simulation step in schedule time units; TimeScale
	// converts one schedule time unit into seconds of thermal
	// simulation, so the transient integrates with step DT × TimeScale.
	DT        float64
	TimeScale float64
	// MaxSteps bounds the stepped loop as a safety net against a
	// supervisor that throttles the run to a standstill; required > 0
	// (clients derive their own generous defaults from the workload).
	MaxSteps int
	// Supervisor throttles per-block power and answers admission
	// queries. Nil disables thermal management — every PE runs at full
	// speed, the unthrottled reference.
	Supervisor dtm.Supervisor
	// TrackPerPE enables the PerPEEnergy split (the batch simulator
	// reports it; the stream dispatcher does not).
	TrackPerPE bool
}

// Hooks is the client half of the loop: the micro event loop and its
// error surfaces. Done, Step, Stalled and Cancelled are required;
// Observe is optional.
type Hooks struct {
	// Done reports whether the workload is finished; the loop exits
	// without stepping further.
	Done func() bool
	// Step runs the client's micro event loop over [now, stepEnd),
	// depositing every PE's drawn energy into Core.StepEnergy (zeroed
	// before each call) and reading Core.Scale for throttle rates.
	Step func(now, stepEnd float64) error
	// Observe sees the fresh temperatures right after the thermal step,
	// before the supervisor updates the scales — for per-step client
	// statistics. Nil means no observation.
	Observe func(temps []float64)
	// Stalled builds the client's error for a run exceeding MaxSteps.
	Stalled func(steps int) error
	// Cancelled wraps a context cancellation in the client's error.
	Cancelled func(cause error) error
}

// Core is one closed-loop co-simulation in progress. The exported
// slices are the client contract: Step fills StepEnergy (per PE, in
// energy units = power × schedule time) and reads Scale (per block,
// frozen for the step); Temps always holds the last sensed block
// temperatures (ambient before the first step).
type Core struct {
	cfg Config
	tr  *hotspot.Transient

	StepEnergy []float64
	Scale      []float64
	Temps      []float64
	blockPower []float64

	// Accumulated results, in the same order the pre-core loops
	// accumulated them.
	Energy      float64
	PerPEEnergy []float64 // non-nil iff cfg.TrackPerPE
	PeakTempC   float64
	Steps       int
	now         float64
}

// New validates the configuration and builds a ready core: transient
// state at ambient, scales at full speed, supervisor reset.
func New(cfg Config) (*Core, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("coloop: nil thermal model")
	}
	if !(cfg.DT > 0) {
		return nil, fmt.Errorf("coloop: step DT must be positive, got %g", cfg.DT)
	}
	if !(cfg.TimeScale > 0) {
		return nil, fmt.Errorf("coloop: TimeScale must be positive, got %g", cfg.TimeScale)
	}
	if cfg.MaxSteps <= 0 {
		return nil, fmt.Errorf("coloop: MaxSteps must be positive, got %d", cfg.MaxSteps)
	}
	nb := cfg.Model.NumBlocks()
	for pe, b := range cfg.PEBlock {
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("coloop: PE %d maps to block %d of %d", pe, b, nb)
		}
	}
	tr, err := cfg.Model.NewTransient(cfg.DT * cfg.TimeScale)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:        cfg,
		tr:         tr,
		StepEnergy: make([]float64, len(cfg.PEBlock)),
		Scale:      make([]float64, nb),
		Temps:      make([]float64, nb),
		blockPower: make([]float64, nb),
		PeakTempC:  math.Inf(-1),
	}
	for i := range c.Scale {
		c.Scale[i] = 1
	}
	ambient := cfg.Model.Config().AmbientC
	for i := range c.Temps {
		c.Temps[i] = ambient
	}
	if cfg.TrackPerPE {
		c.PerPEEnergy = make([]float64, len(cfg.PEBlock))
	}
	if cfg.Supervisor != nil {
		cfg.Supervisor.Reset()
	}
	return c, nil
}

// WarmStart initializes the thermal state to the steady-state operating
// point of the given per-block average power, modeling a die that has
// been running the workload for a while. Call before Run.
func (c *Core) WarmStart(blockAvg []float64) error {
	rise, err := c.cfg.Model.SteadyNodeRise(blockAvg)
	if err != nil {
		return err
	}
	return c.tr.SetRise(rise)
}

// Supervisor returns the configured supervisor (nil when thermal
// management is disabled) for clients that query admissions.
func (c *Core) Supervisor() dtm.Supervisor { return c.cfg.Supervisor }

// Run drives the outer loop until the client reports done: zero the
// step energies, run the client's micro loop, step the thermal model
// over the drawn power, track the peak, let the client observe, and
// have the supervisor set the next step's scales.
func (c *Core) Run(ctx context.Context, h Hooks) error {
	if h.Done == nil || h.Step == nil || h.Stalled == nil || h.Cancelled == nil {
		return fmt.Errorf("coloop: incomplete hooks (Done, Step, Stalled and Cancelled are required)")
	}
	for !h.Done() {
		if c.Steps >= c.cfg.MaxSteps {
			return h.Stalled(c.Steps)
		}
		if c.Steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return h.Cancelled(err)
			}
		}
		stepEnd := c.now + c.cfg.DT
		for pe := range c.StepEnergy {
			c.StepEnergy[pe] = 0
		}
		if err := h.Step(c.now, stepEnd); err != nil {
			return err
		}

		// Thermal step over the energy the PEs actually drew; the new
		// temperatures become visible to the client and the supervisor —
		// the one-step sensing delay of a real DTM loop.
		for i := range c.blockPower {
			c.blockPower[i] = 0
		}
		for pe, e := range c.StepEnergy {
			c.blockPower[c.cfg.PEBlock[pe]] += e / c.cfg.DT
			if c.PerPEEnergy != nil {
				c.PerPEEnergy[pe] += e
			}
			c.Energy += e
		}
		if err := c.tr.StepVecInto(c.Temps, c.blockPower); err != nil {
			return err
		}
		for _, t := range c.Temps {
			if t > c.PeakTempC {
				c.PeakTempC = t
			}
		}
		if h.Observe != nil {
			h.Observe(c.Temps)
		}
		if c.cfg.Supervisor != nil {
			if err := c.cfg.Supervisor.ScaleInto(c.Scale, c.Temps); err != nil {
				return err
			}
		}
		c.Steps++
		c.now = stepEnd
	}
	return nil
}

// PEBlocks maps PE names to thermal-model block indices by name. The
// returned error is unprefixed; callers wrap it with their package
// prefix.
func PEBlocks(model *hotspot.Model, peNames []string) ([]int, error) {
	names := model.BlockNames()
	blockOf := make(map[string]int, len(names))
	for i, n := range names {
		blockOf[n] = i
	}
	out := make([]int, len(peNames))
	for i, n := range peNames {
		bi, ok := blockOf[n]
		if !ok {
			return nil, fmt.Errorf("PE %q has no block in the thermal model", n)
		}
		out[i] = bi
	}
	return out, nil
}

// SelfInfluence returns, per PE, the steady-state temperature rise of
// the PE's own block per watt drawn on it — the forecast slope
// predictive admission multiplies by a candidate task's power. Rows
// come from the model's influence matrix (lazily built, shared,
// read-only).
func SelfInfluence(model *hotspot.Model, peBlock []int) ([]float64, error) {
	out := make([]float64, len(peBlock))
	for pe, b := range peBlock {
		row, err := model.InfluenceRow(b)
		if err != nil {
			return nil, err
		}
		out[pe] = row[b]
	}
	return out, nil
}

// riseCurveCap bounds the sampled horizon of a RiseForecaster: tasks
// longer than riseCurveCap steps clamp to the last sample, which by
// then is sink-paced and nearly flat at task timescales.
const riseCurveCap = 4096

// RiseForecaster turns the influence oracle's steady-state slope into
// a duration-aware admission forecast. The slope is the asymptote of a
// block's unit-step response, but the thermal network is two-tier: the
// die block answers in fractions of a second while the shared
// spreader/sink leg — which dominates the steady-state resistance —
// moves over minutes. A task-length draw therefore realizes only the
// fast-tier fraction of its asymptotic rise, and gating on the
// asymptote collapses predictive admission into one more temperature
// threshold (every task's forecast clears the band, however short the
// task). The forecaster samples each PE block's actual unit-step
// self-response on the model's own integrator, so the rise a
// supervisor is quoted is the rise the candidate could physically
// cause within its worst-case duration.
type RiseForecaster struct {
	dtSec  float64
	curves [][]float64 // per PE: self-rise (K/W) after step i+1 of 1 W
}

// NewRiseForecaster samples the unit-step self-response of every PE
// block at dtSec granularity out to maxDurSec (clamped to riseCurveCap
// steps). Blocks shared by several PEs are integrated once.
func NewRiseForecaster(model *hotspot.Model, peBlock []int, dtSec, maxDurSec float64) (*RiseForecaster, error) {
	if !(dtSec > 0) {
		return nil, fmt.Errorf("coloop: forecaster step %g must be positive", dtSec)
	}
	steps := int(math.Ceil(maxDurSec / dtSec))
	if steps < 1 {
		steps = 1
	}
	if steps > riseCurveCap {
		steps = riseCurveCap
	}
	ambient := model.Config().AmbientC
	byBlock := make(map[int][]float64)
	f := &RiseForecaster{dtSec: dtSec, curves: make([][]float64, len(peBlock))}
	for pe, b := range peBlock {
		if curve, ok := byBlock[b]; ok {
			f.curves[pe] = curve
			continue
		}
		tr, err := model.NewTransient(dtSec)
		if err != nil {
			return nil, err
		}
		unit := make([]float64, model.NumBlocks())
		unit[b] = 1
		temps := make([]float64, model.NumBlocks())
		curve := make([]float64, steps)
		for i := range curve {
			if err := tr.StepVecInto(temps, unit); err != nil {
				return nil, err
			}
			curve[i] = temps[b] - ambient
		}
		byBlock[b] = curve
		f.curves[pe] = curve
	}
	return f, nil
}

// Rise forecasts the self-rise (°C) a draw of power watts sustained
// for durSec seconds causes on the PE's block, rounding the horizon up
// to the next sampled step (worst case within the grid) and clamping
// beyond the sampled range.
func (f *RiseForecaster) Rise(pe int, power, durSec float64) float64 {
	curve := f.curves[pe]
	idx := int(math.Ceil(durSec/f.dtSec)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(curve) {
		idx = len(curve) - 1
	}
	return power * curve[idx]
}
