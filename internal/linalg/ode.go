package linalg

import (
	"errors"
	"fmt"
)

// The transient thermal model is the linear ODE
//
//	C·dT/dt = P(t) − G·T
//
// with diagonal capacitance C, conductance G and power injection P.
// BackwardEuler is unconditionally stable and is the default integrator;
// RK4 is provided for cross-checking accuracy on small steps.

// BackwardEulerStepper integrates C·dT/dt = P − G·T with the implicit
// scheme (C/dt + G)·T₊ = C/dt·T + P. The left-hand matrix is factored
// once at construction, so stepping is O(n²) per step.
type BackwardEulerStepper struct {
	n    int
	dt   float64
	caps []float64 // diagonal capacitances (copy)
	lu   *LU
	rhs  []float64 // workspace for StepInto, so stepping never allocates
}

// NewBackwardEulerStepper builds a stepper for conductance matrix g
// (n×n), diagonal capacitances c (length n) and fixed step dt (seconds).
func NewBackwardEulerStepper(g *Matrix, c []float64, dt float64) (*BackwardEulerStepper, error) {
	n := g.Rows()
	if g.Cols() != n {
		return nil, fmt.Errorf("linalg: conductance matrix must be square, got %dx%d", n, g.Cols())
	}
	if len(c) != n {
		return nil, fmt.Errorf("linalg: capacitance length %d, want %d", len(c), n)
	}
	if dt <= 0 {
		return nil, errors.New("linalg: step size must be positive")
	}
	for i, ci := range c {
		if ci <= 0 {
			return nil, fmt.Errorf("linalg: capacitance[%d] = %g, must be positive", i, ci)
		}
	}
	lhs := g.Clone()
	for i := 0; i < n; i++ {
		lhs.Add(i, i, c[i]/dt)
	}
	lu, err := FactorLU(lhs)
	if err != nil {
		return nil, fmt.Errorf("linalg: factor backward-Euler system: %w", err)
	}
	cc := make([]float64, n)
	copy(cc, c)
	return &BackwardEulerStepper{n: n, dt: dt, caps: cc, lu: lu, rhs: make([]float64, n)}, nil
}

// Dt returns the fixed step size.
func (s *BackwardEulerStepper) Dt() float64 { return s.dt }

// Step advances the state t by one step under power injection p and
// returns the new state. t and p are not modified.
func (s *BackwardEulerStepper) Step(t, p []float64) ([]float64, error) {
	next := make([]float64, s.n)
	if err := s.StepInto(next, t, p); err != nil {
		return nil, err
	}
	return next, nil
}

// StepInto advances the state t by one step under power injection p,
// writing the new state into dst without allocating. dst may alias t
// (the right-hand side is assembled in an internal workspace before dst
// is written); the stepper is consequently not safe for concurrent use.
func (s *BackwardEulerStepper) StepInto(dst, t, p []float64) error {
	if len(t) != s.n || len(p) != s.n {
		return fmt.Errorf("linalg: Step lengths t=%d p=%d, want %d", len(t), len(p), s.n)
	}
	if len(dst) != s.n {
		return fmt.Errorf("linalg: StepInto dst length %d, want %d", len(dst), s.n)
	}
	for i := range s.rhs {
		s.rhs[i] = s.caps[i]/s.dt*t[i] + p[i]
	}
	return s.lu.SolveInto(dst, s.rhs)
}

// RK4Step advances C·dT/dt = p − G·t by one explicit classical
// Runge-Kutta step of size dt and returns the new state. Explicit
// integration of a stiff RC network needs small dt; this exists to
// cross-validate BackwardEulerStepper in tests.
func RK4Step(g *Matrix, c, t, p []float64, dt float64) []float64 {
	deriv := func(state []float64) []float64 {
		gt := g.MulVec(state)
		d := make([]float64, len(state))
		for i := range d {
			d[i] = (p[i] - gt[i]) / c[i]
		}
		return d
	}
	k1 := deriv(t)
	k2 := deriv(addScaled(t, dt/2, k1))
	k3 := deriv(addScaled(t, dt/2, k2))
	k4 := deriv(addScaled(t, dt, k3))
	out := make([]float64, len(t))
	for i := range out {
		out[i] = t[i] + dt/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return out
}

func addScaled(base []float64, s float64, v []float64) []float64 {
	out := make([]float64, len(base))
	for i := range out {
		out[i] = base[i] + s*v[i]
	}
	return out
}
