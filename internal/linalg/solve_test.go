package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  →  x = 1, y = 3
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveLU(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1, 3}, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{3, 2}, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Error("FactorLU on non-square matrix should error")
	}
}

func TestLURHSLength(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("Solve with wrong rhs length should error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{3, 8, 4, 6})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -14, 1e-10) {
		t.Errorf("Det = %v, want -14", f.Det())
	}
	// Determinant of identity is 1 regardless of pivoting.
	fi, _ := FactorLU(Identity(4))
	if !almostEq(fi.Det(), 1, 1e-12) {
		t.Errorf("Det(I) = %v", fi.Det())
	}
}

func TestLUMultipleRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 6)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		want := make([]float64, 6)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(got, want, 1e-8) {
			t.Fatalf("rhs %d: got %v, want %v", k, got, want)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 2, 2, 3})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve([]float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 → x=1.5, y=2
	if !vecAlmostEq(x, []float64{1.5, 2}, 1e-12) {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	asym := NewMatrixFrom(2, 2, []float64{1, 2, 0, 1})
	if _, err := FactorCholesky(asym); !errors.Is(err, ErrNotSPD) {
		t.Errorf("asymmetric: err = %v, want ErrNotSPD", err)
	}
	indef := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := FactorCholesky(indef); !errors.Is(err, ErrNotSPD) {
		t.Errorf("indefinite: err = %v, want ErrNotSPD", err)
	}
	if _, err := FactorCholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should error")
	}
}

func TestCholeskyRHSLength(t *testing.T) {
	c, err := FactorCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Error("Solve with wrong rhs length should error")
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Not SPD (asymmetric) but solvable: SolveSPD must still succeed.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 0, 3})
	x, err := SolveSPD(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1.5, 2}, 1e-12) {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestSolveTridiag(t *testing.T) {
	// System: [2 1 0; 1 2 1; 0 1 2] x = [4 8 8] → x = [1 2 3]
	x, err := SolveTridiag(
		[]float64{1, 1},
		[]float64{2, 2, 2},
		[]float64{1, 1},
		[]float64{4, 8, 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1, 2, 3}, 1e-12) {
		t.Errorf("x = %v, want [1 2 3]", x)
	}
}

func TestSolveTridiagErrors(t *testing.T) {
	if _, err := SolveTridiag(nil, nil, nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveTridiag([]float64{1}, []float64{1, 1}, []float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("inconsistent lengths should error")
	}
	if _, err := SolveTridiag([]float64{1}, []float64{0, 1}, []float64{1}, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Error("zero leading pivot should be ErrSingular")
	}
}

func TestSolveTridiagSingleElement(t *testing.T) {
	x, err := SolveTridiag(nil, []float64{4}, nil, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{2}, 0) {
		t.Errorf("x = %v, want [2]", x)
	}
}

func TestCGMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 8)
	want := make([]float64, 8)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	got, err := CG(a, b, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, want, 1e-6) {
		t.Errorf("CG = %v, want %v", got, want)
	}
}

func TestCGZeroRHS(t *testing.T) {
	x, err := CG(Identity(3), []float64{0, 0, 0}, 1e-10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{0, 0, 0}, 0) {
		t.Errorf("CG zero rhs = %v", x)
	}
}

func TestCGErrors(t *testing.T) {
	if _, err := CG(NewMatrix(2, 2), []float64{1, 2, 3}, 1e-10, 10); err == nil {
		t.Error("dimension mismatch should error")
	}
	// Indefinite matrix: p·Ap goes non-positive.
	indef := NewMatrixFrom(2, 2, []float64{-1, 0, 0, -1})
	if _, err := CG(indef, []float64{1, 1}, 1e-10, 10); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

// Property: LU solves random SPD systems to high accuracy.
func TestLURandomSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 10
		}
		b := a.MulVec(want)
		got, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		return vecAlmostEq(got, want, 1e-6*(1+NormInf(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky and LU agree on random SPD systems.
func TestCholeskyMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xc, err1 := SolveSPD(a, b)
		xl, err2 := SolveLU(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return vecAlmostEq(xc, xl, 1e-7*(1+NormInf(xl)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: det(A) via LU matches cofactor expansion for 3×3 matrices.
func TestDetMatches3x3Cofactor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 3, 3)
		a, b, c := m.At(0, 0), m.At(0, 1), m.At(0, 2)
		d, e, g := m.At(1, 0), m.At(1, 1), m.At(1, 2)
		h, i, j := m.At(2, 0), m.At(2, 1), m.At(2, 2)
		want := a*(e*j-g*i) - b*(d*j-g*h) + c*(d*i-e*h)
		f3, err := FactorLU(m)
		if err != nil {
			// Singular random matrix: essentially never, but acceptable.
			return math.Abs(want) < 1e-9
		}
		return almostEq(f3.Det(), want, 1e-9*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLUNearSingular(t *testing.T) {
	// Rows differ by ~1e-14 of the matrix scale: an exact-zero pivot
	// test would accept this and amplify rounding noise into a garbage
	// solution; the relative threshold must flag it.
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4 + 1e-14})
	if _, err := FactorLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("near-singular err = %v, want ErrSingular", err)
	}
}

func TestLUTinyButWellConditioned(t *testing.T) {
	// The singularity threshold is relative to the matrix's own scale,
	// so a tiny well-conditioned matrix must still factor.
	a := NewMatrixFrom(2, 2, []float64{1e-20, 0, 0, 2e-20})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("tiny diagonal matrix rejected: %v", err)
	}
	x, err := f.Solve([]float64{1e-20, 4e-20})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1, 2}, 1e-12) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestLUSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 6)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 6)
	if err := f.SolveInto(got, b); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, want, 0) {
		t.Errorf("SolveInto = %v, Solve = %v", got, want)
	}
	// In-place: x aliasing b is allowed.
	alias := append([]float64(nil), b...)
	if err := f.SolveInto(alias, alias); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(alias, want, 0) {
		t.Errorf("aliased SolveInto = %v, want %v", alias, want)
	}
	if err := f.SolveInto(make([]float64, 5), b); err == nil {
		t.Error("short dst accepted")
	}
	if err := f.SolveInto(got, b[:3]); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestCholeskySolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 6)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 6)
	if err := c.SolveInto(got, b); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, want, 0) {
		t.Errorf("SolveInto = %v, Solve = %v", got, want)
	}
	alias := append([]float64(nil), b...)
	if err := c.SolveInto(alias, alias); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(alias, want, 0) {
		t.Errorf("aliased SolveInto = %v, want %v", alias, want)
	}
	if err := c.SolveInto(make([]float64, 5), b); err == nil {
		t.Error("short dst accepted")
	}
}

func TestSolveIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 8)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = 1 + float64(i)
	}
	x := make([]float64, 8)
	if n := testing.AllocsPerRun(100, func() {
		if err := c.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Cholesky.SolveInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := f.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("LU.SolveInto allocates %v per run", n)
	}
}
