package linalg

import (
	"fmt"
	"math"
	"sync"
)

// PCG is a Jacobi-preconditioned conjugate-gradient solver over a CSR
// matrix, packaged behind the SteadySolver interface. It is the
// factorization-free backend: no fill, O(nnz) per iteration, and on
// the diagonally dominant thermal conductance networks the Jacobi
// preconditioner keeps iteration counts modest. Arithmetic is strictly
// sequential, so results are deterministic for a given matrix and
// right-hand side.
type PCG struct {
	a       *CSR
	invDiag []float64
	tol     float64
	maxIter int

	mu   sync.Mutex
	free [][]float64 // 4n scratch blocks: r, z, p, ap
}

// NewPCG validates a (square CSR with strictly positive diagonal, as
// any conductance matrix has) and returns a solver with relative
// residual tolerance tol. maxIter <= 0 selects a default generous
// enough for SPD systems, which converge in at most n exact-arithmetic
// steps.
func NewPCG(a *CSR, tol float64, maxIter int) (*PCG, error) {
	if !(tol > 0) || tol >= 1 {
		return nil, fmt.Errorf("linalg: PCG tolerance %g out of (0,1)", tol)
	}
	n := a.n
	if maxIter <= 0 {
		maxIter = 4*n + 20
	}
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if !(d > 0) {
			return nil, fmt.Errorf("linalg: PCG needs a positive diagonal, got %g at %d: %w", d, i, ErrNotSPD)
		}
		inv[i] = 1 / d
	}
	return &PCG{a: a, invDiag: inv, tol: tol, maxIter: maxIter}, nil
}

// N returns the system dimension.
func (s *PCG) N() int { return s.n() }

func (s *PCG) n() int { return s.a.n }

// Solve solves A·x = b.
func (s *PCG) Solve(b []float64) ([]float64, error) {
	x := make([]float64, s.n())
	if err := s.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into x, starting from the zero vector, to
// relative residual s.tol on ‖b‖. Scratch vectors come from an
// internal freelist, so after first use the path is allocation-free;
// SolveInto is safe for concurrent use. x and b may alias. It returns
// ErrNoConverge when the iteration budget is exhausted.
func (s *PCG) SolveInto(x, b []float64) error {
	n := s.n()
	if len(b) != n {
		return fmt.Errorf("linalg: PCG.Solve rhs length %d, want %d", len(b), n)
	}
	if len(x) != n {
		return fmt.Errorf("linalg: PCG.SolveInto dst length %d, want %d", len(x), n)
	}
	scratch := s.getScratch()
	r, z, p, ap := scratch[:n], scratch[n:2*n], scratch[2*n:3*n], scratch[3*n:4*n]
	copy(r, b)
	bnorm := Norm2(r) // read via r so x may alias b
	for i := range x {
		x[i] = 0
	}
	if bnorm == 0 {
		s.putScratch(scratch)
		return nil
	}
	for i := 0; i < n; i++ {
		z[i] = s.invDiag[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)
	var err error = ErrNoConverge
	for it := 0; it < s.maxIter; it++ {
		s.a.MulVecInto(ap, p)
		den := Dot(p, ap)
		if den <= 0 {
			err = ErrNotSPD
			break
		}
		alpha := rz / den
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		if Norm2(r) <= s.tol*bnorm {
			err = nil
			break
		}
		for i := 0; i < n; i++ {
			z[i] = s.invDiag[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	s.putScratch(scratch)
	if err != nil {
		return err
	}
	// Guard against a silent NaN escape (e.g. overflow mid-iteration).
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrNoConverge
		}
	}
	return nil
}

func (s *PCG) getScratch() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		z := s.free[n-1]
		s.free = s.free[:n-1]
		return z
	}
	return make([]float64, 4*s.n())
}

func (s *PCG) putScratch(z []float64) {
	s.mu.Lock()
	s.free = append(s.free, z)
	s.mu.Unlock()
}
