package linalg

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix. It is the sparse counterpart
// of Matrix for the thermal conductance networks: symmetric, diagonally
// dominant, and — away from the heat-sink row — very sparse (a grid
// node touches at most four lateral neighbors plus one vertical one).
// CSR is immutable after construction; build one with a SparseBuilder.
type CSR struct {
	n      int
	rowPtr []int // len n+1; row i occupies colIdx/vals[rowPtr[i]:rowPtr[i+1]]
	colIdx []int // column indices, strictly increasing within a row
	vals   []float64
}

// N returns the matrix dimension (CSR matrices here are always square).
func (a *CSR) N() int { return a.n }

// NNZ returns the number of stored (structurally nonzero) entries.
func (a *CSR) NNZ() int { return len(a.vals) }

// At returns the element at row i, column j (0 when not stored).
// It is O(log row-length); hot paths should iterate rows directly.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	k := lo + sort.SearchInts(a.colIdx[lo:hi], j)
	if k < hi && a.colIdx[k] == j {
		return a.vals[k]
	}
	return 0
}

// MaxAbs returns the largest absolute stored value.
func (a *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range a.vals {
		if x := math.Abs(v); x > mx {
			mx = x
		}
	}
	return mx
}

// MulVecInto computes y = a·x without allocating. x and y must not
// alias.
func (a *CSR) MulVecInto(y, x []float64) {
	if len(x) != a.n || len(y) != a.n {
		panic(fmt.Sprintf("linalg: CSR.MulVecInto dimension mismatch: n=%d len(x)=%d len(y)=%d", a.n, len(x), len(y)))
	}
	for i := 0; i < a.n; i++ {
		var s float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.vals[k] * x[a.colIdx[k]]
		}
		y[i] = s
	}
}

// Dense expands the CSR matrix to a dense Matrix. Because the builder
// accumulates duplicate coordinates in insertion order, the dense image
// is bitwise identical to assembling the same Add sequence directly
// into a Matrix — the property the hotspot package relies on to keep
// the dense solver path byte-for-byte unchanged while assembling
// through the sparse builder.
func (a *CSR) Dense() *Matrix {
	m := NewMatrix(a.n, a.n)
	for i := 0; i < a.n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			m.Set(i, a.colIdx[k], a.vals[k])
		}
	}
	return m
}

// SparseBuilder accumulates (row, col, value) triplets and compresses
// them into a CSR matrix. Duplicate coordinates are summed in insertion
// order, matching the semantics of repeated Matrix.Add calls exactly
// (float addition is not associative; order is part of the determinism
// contract).
type SparseBuilder struct {
	n    int
	rows []int
	cols []int
	vals []float64
}

// NewSparseBuilder returns a builder for an n×n matrix. It panics if n
// is not positive; dimensions are programmer-controlled, never input.
func NewSparseBuilder(n int) *SparseBuilder {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: invalid sparse dimension %d", n))
	}
	return &SparseBuilder{n: n}
}

// Add records a[i,j] += v.
func (b *SparseBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("linalg: SparseBuilder.Add index (%d,%d) out of range for n=%d", i, j, b.n))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// Build compresses the accumulated triplets into a CSR matrix. The
// builder may be reused afterwards (further Adds extend the same
// triplet log), but callers in this repository build exactly once.
func (b *SparseBuilder) Build() *CSR {
	// Sort an index permutation by (row, col), stably: ties keep
	// insertion order, so summing duplicates in permuted order equals
	// summing them in insertion order per coordinate.
	perm := make([]int, len(b.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		px, py := perm[x], perm[y]
		if b.rows[px] != b.rows[py] {
			return b.rows[px] < b.rows[py]
		}
		return b.cols[px] < b.cols[py]
	})
	a := &CSR{n: b.n, rowPtr: make([]int, b.n+1)}
	lastI, lastJ := -1, -1
	for _, p := range perm {
		i, j, v := b.rows[p], b.cols[p], b.vals[p]
		if i == lastI && j == lastJ {
			a.vals[len(a.vals)-1] += v
			continue
		}
		lastI, lastJ = i, j
		a.rowPtr[i+1]++
		a.colIdx = append(a.colIdx, j)
		a.vals = append(a.vals, v)
	}
	for i := 0; i < b.n; i++ {
		a.rowPtr[i+1] += a.rowPtr[i]
	}
	return a
}
