// Package linalg implements the small dense linear-algebra kernels the
// thermal RC model needs: matrices, LU and Cholesky factorizations,
// a conjugate-gradient solver, and implicit/explicit ODE steppers.
//
// The Go standard library ships no numerics, and this reproduction is
// offline-only, so everything here is written from scratch. Matrices are
// dense row-major float64; the thermal networks in this repository are a
// few dozen to a few hundred nodes, well within dense-solver territory.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed r×c matrix. It panics if r or c is not
// positive; matrix dimensions are programmer-controlled, never input data.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major values. It panics if
// len(values) != r*c.
func NewMatrixFrom(r, c int, values []float64) *Matrix {
	if len(values) != r*c {
		panic(fmt.Sprintf("linalg: need %d values for %dx%d, got %d", r*c, r, c, len(values)))
	}
	m := NewMatrix(r, c)
	copy(m.data, values)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at row i, column j by v. The thermal network
// builder accumulates conductances, so this is a primitive.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// MulVec computes y = m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %dx%d · %d", m.rows, m.cols, len(x)))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m·n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.Add(i, j, a*n.At(k, j))
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMatrix returns m + n as a new matrix.
func (m *Matrix) AddMatrix(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic("linalg: AddMatrix dimension mismatch")
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += n.data[i]
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Vector helpers. Vectors are plain []float64 so callers can use them
// without wrapping; these functions centralize the arithmetic.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// SubVec returns a-b as a new vector.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a+b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// ScaleVec returns s·v as a new vector.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Mean returns the arithmetic mean of v, 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Max returns the maximum of v. It panics on an empty slice: every caller
// in this repository has at least one thermal node.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum of v. It panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	mn := v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
	}
	return mn
}
