package linalg

import (
	"math"
	"testing"
)

// A single RC node: C·dT/dt = P − G·T has the closed form
// T(t) = P/G + (T0 − P/G)·exp(−G·t/C).
func TestBackwardEulerSingleNodeConvergesToAnalytic(t *testing.T) {
	g := NewMatrixFrom(1, 1, []float64{2.0}) // G = 2 W/K
	c := []float64{4.0}                      // C = 4 J/K
	p := []float64{10.0}                     // P = 10 W
	dt := 0.001
	st, err := NewBackwardEulerStepper(g, c, dt)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0}
	steps := 2000
	for i := 0; i < steps; i++ {
		state, err = st.Step(state, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	tEnd := float64(steps) * dt
	analytic := 5.0 + (0-5.0)*math.Exp(-2.0*tEnd/4.0)
	if !almostEq(state[0], analytic, 0.01) {
		t.Errorf("T(%v) = %v, analytic %v", tEnd, state[0], analytic)
	}
}

func TestBackwardEulerReachesSteadyState(t *testing.T) {
	// Two coupled nodes; at steady state G·T = P.
	g := NewMatrixFrom(2, 2, []float64{3, -1, -1, 2})
	c := []float64{1, 1}
	p := []float64{5, 0}
	st, err := NewBackwardEulerStepper(g, c, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{0, 0}
	for i := 0; i < 5000; i++ {
		state, err = st.Step(state, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := SolveLU(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(state, want, 1e-6) {
		t.Errorf("steady state = %v, want %v", state, want)
	}
}

func TestBackwardEulerStability(t *testing.T) {
	// Huge step on a stiff system must not blow up (unconditional stability).
	g := NewMatrixFrom(2, 2, []float64{1000, -1, -1, 1000})
	c := []float64{1e-3, 1e-3}
	p := []float64{1, 1}
	st, err := NewBackwardEulerStepper(g, c, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{100, -100}
	for i := 0; i < 50; i++ {
		state, err = st.Step(state, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(state[0]) || math.Abs(state[0]) > 1e6 {
			t.Fatalf("diverged at step %d: %v", i, state)
		}
	}
}

func TestBackwardEulerAgreesWithRK4(t *testing.T) {
	g := NewMatrixFrom(2, 2, []float64{5, -2, -2, 4})
	c := []float64{2, 3}
	p := []float64{7, 1}
	dt := 1e-4
	st, err := NewBackwardEulerStepper(g, c, dt)
	if err != nil {
		t.Fatal(err)
	}
	be := []float64{0, 0}
	rk := []float64{0, 0}
	for i := 0; i < 5000; i++ {
		be, err = st.Step(be, p)
		if err != nil {
			t.Fatal(err)
		}
		rk = RK4Step(g, c, rk, p, dt)
	}
	if !vecAlmostEq(be, rk, 1e-3) {
		t.Errorf("backward Euler %v vs RK4 %v", be, rk)
	}
}

func TestBackwardEulerStepperValidation(t *testing.T) {
	g := Identity(2)
	c := []float64{1, 1}
	cases := []struct {
		name string
		f    func() error
	}{
		{"non-square", func() error {
			_, err := NewBackwardEulerStepper(NewMatrix(2, 3), c, 0.1)
			return err
		}},
		{"cap length", func() error {
			_, err := NewBackwardEulerStepper(g, []float64{1}, 0.1)
			return err
		}},
		{"zero dt", func() error {
			_, err := NewBackwardEulerStepper(g, c, 0)
			return err
		}},
		{"negative capacitance", func() error {
			_, err := NewBackwardEulerStepper(g, []float64{1, -1}, 0.1)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.f() == nil {
				t.Error("want error, got nil")
			}
		})
	}
	st, err := NewBackwardEulerStepper(g, c, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dt() != 0.1 {
		t.Errorf("Dt = %v", st.Dt())
	}
	if _, err := st.Step([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("Step with short state should error")
	}
}

func TestStepIntoMatchesStepAndDoesNotAllocate(t *testing.T) {
	g := NewMatrixFrom(2, 2, []float64{2, -1, -1, 2})
	c := []float64{1, 2}
	s, err := NewBackwardEulerStepper(g, c, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{1, 3}
	p := []float64{4, 0}
	want, err := s.Step(state, p)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 2)
	if err := s.StepInto(got, state, p); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, want, 0) {
		t.Errorf("StepInto = %v, Step = %v", got, want)
	}
	// dst aliasing the state is the natural in-place stepping form.
	alias := append([]float64(nil), state...)
	if err := s.StepInto(alias, alias, p); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(alias, want, 0) {
		t.Errorf("aliased StepInto = %v, want %v", alias, want)
	}
	if err := s.StepInto(make([]float64, 1), state, p); err == nil {
		t.Error("short dst accepted")
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := s.StepInto(got, state, p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("StepInto allocates %v per run", n)
	}
}
